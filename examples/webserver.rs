//! A miniature Apache: accept/stat/open/read/close over the userspace
//! kernel, showing the §4.2 per-core accept queues at work.
//!
//! Run with: `cargo run --example webserver`

use mosbench::workloads::apache::ApacheDriver;
use mosbench::workloads::KernelChoice;
use std::sync::atomic::Ordering;

fn run(choice: KernelChoice, connections: u32) {
    println!("--- {} kernel ---", choice.label());
    let driver = ApacheDriver::new(choice, 4);

    // Clients connect; the NIC steers each handshake to a core's queue.
    for i in 0..connections {
        driver.client_connect(0xc0a8_0000 + i);
    }

    // Worker processes (one per core) serve round-robin, stealing only
    // when their own backlog runs dry.
    let mut served_local = 0u32;
    let mut served_total = 0u32;
    loop {
        let mut progress = false;
        for core in 0..4 {
            if let Some(local) = driver.serve_one(core) {
                progress = true;
                served_total += 1;
                if local {
                    served_local += 1;
                }
            }
        }
        if !progress {
            break;
        }
    }
    println!("requests served:    {served_total} ({served_local} entirely on their arrival core)");
    let nstats = driver.kernel().net().stats();
    println!(
        "accepts:            {} from local queues, {} stolen, {} from the shared backlog",
        nstats.accept_local_queue.load(Ordering::Relaxed),
        nstats.accept_steals.load(Ordering::Relaxed),
        nstats.accept_shared_queue.load(Ordering::Relaxed),
    );
    let vstats = driver.kernel().vfs().stats();
    println!(
        "per-request VFS:    {} dcache hits, {} dentry-lock acquisitions\n",
        vstats.dcache_hits.load(Ordering::Relaxed),
        vstats.dentry_lock_acquisitions.load(Ordering::Relaxed),
    );
}

fn main() {
    println!("Apache-style static file serving, stock vs PK (4 cores)\n");
    run(KernelChoice::Stock, 200);
    run(KernelChoice::Pk, 200);
    println!(
        "With per-core backlogs + hash flow steering, a connection is \
         accepted and processed on the core its packets arrive on."
    );
}
