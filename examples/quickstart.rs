//! Quickstart: sloppy counters in five minutes.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Demonstrates the paper's core technique (§4.3): one logical counter
//! split into a central counter plus per-core spare references, so that
//! hot get/put traffic never touches a shared cache line.

use mosbench::percpu::CoreId;
use mosbench::sloppy::{Counter, SloppyCounter, SloppyRefCount};

fn main() {
    // A sloppy counter sized for an 8-core machine.
    let counter = SloppyCounter::new(8);

    // Acquiring references: the first acquire on each core misses its
    // (empty) spare bank and charges the central counter.
    for core in 0..8 {
        counter.acquire(CoreId(core), 1);
    }
    println!(
        "after 8 acquires:    central={} in-use={}",
        counter.central(),
        counter.in_use()
    );

    // Releasing banks the references locally: the central counter does
    // not move.
    for core in 0..8 {
        counter.release(CoreId(core), 1);
    }
    println!(
        "after 8 releases:    central={} spares={} in-use={}",
        counter.central(),
        counter.spares(),
        counter.in_use()
    );

    // From now on, each core's get/put traffic is satisfied entirely
    // from its local bank — no shared-cache-line traffic at all.
    let (central_before, _) = counter.op_counts();
    for round in 0..10_000 {
        let core = CoreId(round % 8);
        counter.acquire(core, 1);
        counter.release(core, 1);
    }
    let (central_after, _) = counter.op_counts();
    println!(
        "10,000 hot get/put pairs touched the central counter {} times",
        central_after - central_before
    );

    // The invariant the paper states: central = in-use + spares.
    assert_eq!(counter.central(), counter.in_use() + counter.spares());

    // Reading the exact value is the expensive operation — reconcile
    // sweeps every core's bank. That's why sloppy counters suit objects
    // that are "relatively infrequently de-allocated".
    assert_eq!(counter.reconcile(), 0);
    println!("reconciled exact value: {}", counter.value());

    // The packaged refcount runs the full dentry-style lifecycle.
    let rc = SloppyRefCount::new(8);
    rc.get(CoreId(3)).unwrap();
    rc.put(CoreId(5)); // released on a different core: still balanced
    rc.put(CoreId(0)); // drop the creator's reference
    rc.try_dealloc().expect("no references remain");
    assert!(rc.get(CoreId(1)).is_err(), "dead objects stay dead");
    println!("refcount lifecycle complete: object deallocated exactly once");
}
