//! A miniature memcached: per-core UDP key-value instances over the
//! network-stack substrate, showing the dst_entry refcount fix.
//!
//! Run with: `cargo run --example keyvalue`

use mosbench::workloads::memcached::MemcachedDriver;
use mosbench::workloads::KernelChoice;
use std::sync::atomic::Ordering;

fn run(choice: KernelChoice) {
    println!("--- {} kernel ---", choice.label());
    let driver = MemcachedDriver::new(choice, 4);

    // 20 clients send batches of 20 requests, spread deterministically
    // over the 4 per-core instances (as the paper's clients do).
    for client in 0..20u32 {
        driver.client_batch(client, (client % 4) as usize);
    }
    let served = driver.drain_all();
    println!("requests served:    {served}");

    let stats = driver.kernel().net().stats();
    println!(
        "steering:           {} to the owning core, {} misdirected",
        stats.rx_steered_local.load(Ordering::Relaxed),
        stats.rx_misdirected.load(Ordering::Relaxed),
    );
    println!(
        "skb allocation:     {} per-core, {} via the global node-0 pool",
        stats.skb_percore_allocs.load(Ordering::Relaxed),
        stats.skb_global_allocs.load(Ordering::Relaxed),
    );
    // One hot destination: every response routes through the same
    // dst_entry. Its refcount is the §5.3 "final bottleneck".
    let dst = driver.kernel().net().dst_cache();
    println!("routes cached:      {}", dst.len());
    println!(
        "proto accounting:   UDP usage now {} bytes (balanced)\n",
        driver
            .kernel()
            .net()
            .proto()
            .usage(mosbench::net::Protocol::Udp)
    );
}

fn main() {
    println!("memcached-style key-value serving, stock vs PK (4 cores)\n");
    run(KernelChoice::Stock);
    run(KernelChoice::Pk);
    println!(
        "PK allocates buffers from per-core pools on the local NUMA node \
         and counts dst_entry references sloppily."
    );
}
