//! Drive the 48-core machine model directly: build a custom workload as
//! a queueing network and sweep it, comparing a non-scalable spin lock
//! with an MCS-style scalable lock and a sloppy counter.
//!
//! Run with: `cargo run --example simulate48`

use mosbench::sim::{CoreSweep, MachineSpec, Network, Station, WorkloadModel};

/// A synthetic syscall-ish workload: 20 µs of work per op, of which a
/// tunable slice serializes on one shared object.
struct Synthetic {
    label: &'static str,
    shared: Station,
}

impl WorkloadModel for Synthetic {
    fn name(&self) -> String {
        self.label.to_string()
    }

    fn machine(&self) -> MachineSpec {
        MachineSpec::paper()
    }

    fn network(&self, _cores: usize) -> Network {
        let mut net = Network::new();
        net.push(Station::delay("local work", 48_000.0, false));
        net.push(self.shared.clone());
        net
    }
}

fn main() {
    println!("A synthetic op (20 µs local work + 1 µs on one shared object)");
    println!("under three implementations of the shared object:\n");
    let variants = [
        Synthetic {
            label: "non-scalable spin lock",
            shared: Station::spinlock("shared", 2_400.0, 0.5, true),
        },
        Synthetic {
            label: "scalable (MCS) lock",
            shared: Station::queue("shared", 2_400.0, true),
        },
        Synthetic {
            label: "sloppy counter (central touched 1/100 ops)",
            shared: Station::queue("shared", 24.0, true),
        },
    ];
    print!("{:>6}", "cores");
    for v in &variants {
        print!("  {:>28}", v.label);
    }
    println!("    (ops/sec/core)");
    for cores in CoreSweep::paper_core_counts() {
        print!("{cores:>6}");
        for v in &variants {
            let p = CoreSweep::point(v, cores);
            print!("  {:>28.0}", p.per_core_per_sec);
        }
        println!();
    }
    println!(
        "\nThe spin lock collapses (waiters slow the holder), the MCS lock \
         saturates flat, and the sloppy counter barely notices 48 cores — \
         the same three regimes as the paper's Figures 4-8."
    );
}
