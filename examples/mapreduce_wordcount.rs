//! Metis in miniature: a MapReduce word count and inverted index whose
//! intermediate tables fault through the kernel's memory substrate,
//! comparing 4 KB pages with 2 MB super-pages (§5.8 / Figure 11).
//!
//! Run with: `cargo run --example mapreduce_wordcount`

use mosbench::kernel::{Kernel, KernelConfig};
use mosbench::mapreduce::{MapReduce, MapReduceConfig, MemoryHook, WordCount};
use mosbench::mm::PageSize;
use std::sync::atomic::Ordering;

fn corpus() -> Vec<String> {
    (0..64)
        .map(|i| {
            format!(
                "{i}\tthe quick brown fox jumps over the lazy dog \
                 segment {} of the corpus with shared and unique tokens t{}",
                i % 8,
                i
            )
        })
        .collect()
}

fn run(kernel: &Kernel, page_size: PageSize, label: &str) {
    let mr = MapReduce::new(MapReduceConfig {
        workers: 4,
        memory: Some(MemoryHook {
            space: kernel.new_address_space(),
            page_size,
            bytes_per_pair: 256,
        }),
    });
    let out = mr.run(&WordCount, &corpus()).expect("table memory");
    let the = out.iter().find(|(w, _)| w == "the").map(|(_, n)| *n);
    let stats = kernel.mm_stats();
    println!(
        "{label:<14} distinct words: {:>4}   'the' count: {:?}   faults: {} x 4KB, {} x 2MB",
        out.len(),
        the.unwrap_or(0),
        stats.faults_4k.load(Ordering::Relaxed),
        stats.faults_2m.load(Ordering::Relaxed),
    );
    stats.reset();
}

fn main() {
    println!("MapReduce word count over the mm substrate (4 workers)\n");
    let stock = Kernel::new(KernelConfig::stock(4));
    run(&stock, PageSize::Base4K, "stock + 4KB:");
    let pk = Kernel::new(KernelConfig::pk(4));
    run(&pk, PageSize::Super2M, "PK + 2MB:");
    println!(
        "\nIdentical results; the super-page run takes 512x fewer page \
         faults for the same table memory — the Figure-11 fix."
    );
}
