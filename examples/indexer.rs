//! pedsort end to end: index a generated corpus through the real
//! two-phase indexer (§3.6) and query the result.
//!
//! Run with: `cargo run --example indexer`

use mosbench::kernel::{Kernel, KernelConfig};
use mosbench::percpu::CoreId;
use mosbench::workloads::pedsort_indexer::{load_final_index, Indexer};
use std::sync::atomic::Ordering;
use std::sync::Arc;

fn main() {
    let kernel = Arc::new(Kernel::new(KernelConfig::pk(4)));
    let core = CoreId(0);

    // A small synthetic corpus: 120 "source files" with overlapping
    // vocabulary, sized unevenly so the sorted work queue matters.
    kernel.vfs().mkdir_p("/corpus", core).unwrap();
    let vocab = ["lock", "mutex", "dentry", "socket", "page", "counter"];
    for i in 0..120 {
        let mut text = String::new();
        for w in 0..(5 + (i % 40)) {
            text.push_str(vocab[(i + w) % vocab.len()]);
            text.push(' ');
            text.push_str(&format!("sym{i}_{w} "));
        }
        kernel
            .vfs()
            .write_file(&format!("/corpus/src{i:03}.c"), text.as_bytes(), core)
            .unwrap();
    }

    // Index with 4 workers; small limits so phases 1 and 2 both do real
    // work on this corpus size.
    let indexer = Indexer::with_limits(Arc::clone(&kernel), 256, 512);
    let stats = indexer.run("/corpus", "/index", 4).expect("index run");
    println!("indexed {} files, {} tokens", stats.files, stats.tokens);
    println!(
        "phase 1 flushed {} intermediate indexes; phase 2 wrote {} final chunks",
        stats.intermediate_flushes, stats.final_chunks
    );
    println!("distinct terms: {}", stats.distinct_terms);

    // Query the index.
    let index = load_final_index(&kernel, "/index").expect("load index");
    for term in ["dentry", "mutex"] {
        let postings = index.get(term).map(Vec::len).unwrap_or(0);
        println!("'{term}' appears {postings} times across the corpus");
    }

    // The file-system side of phase 1 is visible in the kernel stats.
    let vstats = kernel.vfs().stats();
    println!(
        "\nVFS traffic: {} dcache hits, {} misses, all lookups lock-free: {}",
        vstats.dcache_hits.load(Ordering::Relaxed),
        vstats.dcache_misses.load(Ordering::Relaxed),
        vstats.dentry_lock_acquisitions.load(Ordering::Relaxed) == 0,
    );
}
