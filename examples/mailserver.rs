//! A miniature Exim: mail delivery through the userspace kernel.
//!
//! Run with: `cargo run --example mailserver`
//!
//! Reproduces the paper's Exim workload shape (§3.1/§5.2) on the real
//! substrate — process forks, spool-file churn across 62 directories,
//! per-user mailbox appends — on both the stock and PK kernels, then
//! prints the shared-cache-line traffic each kernel generated. The
//! difference is the whole point of the paper: the PK kernel does the
//! same work while barely touching shared lines.

use mosbench::percpu::CoreId;
use mosbench::workloads::exim::EximDriver;
use mosbench::workloads::KernelChoice;
use std::sync::atomic::Ordering;
use std::sync::Arc;

fn run(choice: KernelChoice) {
    println!("--- {} kernel ---", choice.label());
    let driver = Arc::new(EximDriver::new(choice, 4).expect("boot exim"));

    // Four "SMTP client" threads, each hammering its own core with
    // connections (10 messages per connection, like the paper's driver).
    std::thread::scope(|s| {
        for core in 0..4 {
            let driver = Arc::clone(&driver);
            s.spawn(move || {
                for conn in 0..5 {
                    driver
                        .run_connection(CoreId(core), core * 100 + conn)
                        .expect("delivery");
                }
            });
        }
    });

    println!("messages delivered: {}", driver.delivered());
    let k = driver.kernel();
    println!("processes forked:   {}", k.procs().fork_count());
    let vstats = k.vfs().stats();
    println!(
        "vfsmount lookups:   {} central (shared lock), {} per-core cache hits",
        vstats.mount_central_lookups.load(Ordering::Relaxed),
        vstats.mount_percore_hits.load(Ordering::Relaxed),
    );
    println!(
        "dlookup:            {} lock-free, {} per-dentry lock acquisitions",
        vstats.lockfree_lookups.load(Ordering::Relaxed),
        vstats.dentry_lock_acquisitions.load(Ordering::Relaxed),
    );
    println!(
        "open-file lists:    {} global-lock ops, {} per-core ops",
        vstats.open_list_global_ops.load(Ordering::Relaxed),
        vstats.open_list_percore_ops.load(Ordering::Relaxed),
    );
    println!(
        "shared events total: {}   core-local events total: {}\n",
        vstats.shared_events(),
        vstats.local_events()
    );
}

fn main() {
    println!("Exim-style mail delivery, stock vs PK (4 cores, 20 connections)\n");
    run(KernelChoice::Stock);
    run(KernelChoice::Pk);
    println!(
        "Same mail, same syscalls — the PK kernel routes nearly all of the \
         bookkeeping through per-core structures."
    );
}
