//! Per-fix configuration switches for the network stack.

/// Selects, fix by fix, stock versus PK behaviour. Each flag corresponds
/// to a Figure-1 row (plus the accept-queue and flow-steering changes of
/// §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// Number of cores served (sizes per-core structures and NIC queues).
    pub cores: usize,
    /// Number of NUMA memory nodes (for DMA-buffer placement).
    pub numa_nodes: usize,
    /// "Use sloppy counters for IP routing table entries" (`dst_entry`).
    pub sloppy_dst_refs: bool,
    /// "Use sloppy counters for protocol usage counting."
    pub sloppy_proto_accounting: bool,
    /// Per-core packet-buffer free lists instead of one list on the node
    /// "closest to the I/O bus" (§4.5).
    pub percore_skb_pools: bool,
    /// "Allocate Ethernet device DMA buffers from the local memory node"
    /// instead of node 0.
    pub local_dma_alloc: bool,
    /// "User per-core backlog queues for listening sockets" with
    /// steal-on-empty (§4.2).
    pub percore_accept_queues: bool,
    /// Deterministic header-hash flow steering (PK) versus the stock
    /// IXGBE sample-every-20th-TX-packet flow director that misdirects
    /// short connections (§4.2).
    pub hash_flow_steering: bool,
    /// Place read-only `net_device`/`device` fields on their own cache
    /// lines (§4.6). Functionally inert; drives the false-sharing cost
    /// model and the layout types in the nic module.
    pub isolate_false_sharing: bool,
    /// Software Receive Flow Steering (§4.2 cites RFS \[25\]): the kernel
    /// re-steers polled packets to the core that owns the flow's socket,
    /// paying a cross-core queue hop when the hardware misdirected them.
    pub software_rfs: bool,
    /// Retire replaced socket/listener table snapshots through `call_rcu`
    /// deferred-free queues instead of blocking the binding thread on a
    /// `synchronize()` grace period. Not a Figure-1 fix; on in both
    /// presets, off for the blocking-writer baseline.
    pub deferred_reclamation: bool,
    /// Bound on a listener's total accept backlog (across per-core
    /// queues); 0 = unbounded, the historical behaviour and the
    /// default in both presets. When the bound is hit, `enqueue`
    /// refuses the connection and the stack surfaces
    /// `NetError::Backpressure` — the admission-control hook the
    /// serving layer's `OverloadPolicy` lowers onto.
    pub accept_backlog_cap: usize,
    /// Number of independent flow-steering table shards (generation-2,
    /// §7). Stock keeps the single global table (1); the per-socket
    /// sharding fix keys this off the machine's socket count so flow
    /// registration contends only within a socket.
    pub flow_table_shards: usize,
    /// Swap the `dst_entry` sloppy counters for SNZI trees
    /// (generation-2, §7) where the flat per-core banks saturate past
    /// 48 cores. Off in stock, on in PK.
    pub snzi_dst_refs: bool,
}

impl NetConfig {
    /// Stock Linux 2.6.35-rc5: every fix disabled.
    pub fn stock(cores: usize) -> Self {
        Self {
            cores,
            numa_nodes: 8,
            sloppy_dst_refs: false,
            sloppy_proto_accounting: false,
            percore_skb_pools: false,
            local_dma_alloc: false,
            percore_accept_queues: false,
            hash_flow_steering: false,
            isolate_false_sharing: false,
            software_rfs: false,
            deferred_reclamation: true,
            accept_backlog_cap: 0,
            flow_table_shards: 1,
            snzi_dst_refs: false,
        }
    }

    /// The PK kernel: every fix enabled.
    pub fn pk(cores: usize) -> Self {
        Self {
            cores,
            numa_nodes: 8,
            sloppy_dst_refs: true,
            sloppy_proto_accounting: true,
            percore_skb_pools: true,
            local_dma_alloc: true,
            percore_accept_queues: true,
            hash_flow_steering: true,
            isolate_false_sharing: true,
            software_rfs: false,
            deferred_reclamation: true,
            accept_backlog_cap: 0,
            flow_table_shards: 8,
            snzi_dst_refs: true,
        }
    }

    /// Maps a core to its NUMA memory node (6 cores per node, like the
    /// paper's 8×6 Opteron machine).
    pub fn node_of_core(&self, core: usize) -> usize {
        let per_node = self.cores.div_ceil(self.numa_nodes).max(1);
        (core / per_node).min(self.numa_nodes - 1)
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        Self::pk(48)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ() {
        assert!(NetConfig::pk(8).sloppy_dst_refs);
        assert!(!NetConfig::stock(8).sloppy_dst_refs);
    }

    #[test]
    fn node_mapping_covers_all_nodes() {
        let c = NetConfig::pk(48);
        assert_eq!(c.node_of_core(0), 0);
        assert_eq!(c.node_of_core(5), 0);
        assert_eq!(c.node_of_core(6), 1);
        assert_eq!(c.node_of_core(47), 7);
    }

    #[test]
    fn node_mapping_small_machines() {
        let c = NetConfig::pk(2);
        assert_eq!(c.node_of_core(0), 0);
        assert_eq!(c.node_of_core(1), 1);
    }
}
