//! Per-protocol memory accounting.

use crate::config::NetConfig;
use crate::stats::NetStats;
use pk_percpu::CoreId;
use pk_sloppy::{AtomicCounter, Counter, SloppyCounter};
use std::sync::Arc;

/// A transport protocol with tracked memory usage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// TCP.
    Tcp,
    /// UDP.
    Udp,
}

/// Tracks "the amount of memory allocated by each network protocol (such
/// as TCP or UDP)" (§4.3).
///
/// Every packet allocation charges the owning protocol's counter and
/// every free uncharges it — which in stock Linux means every core
/// hammers one cache line per protocol ("cores contend on counters for
/// tracking protocol memory consumption", Figure 1). PK swaps in sloppy
/// counters.
pub struct ProtoAccounting {
    tcp: Box<dyn Counter>,
    udp: Box<dyn Counter>,
    stats: Arc<NetStats>,
}

impl std::fmt::Debug for ProtoAccounting {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProtoAccounting")
            .field("backing", &self.tcp.name())
            .field("tcp_usage", &self.tcp.value())
            .field("udp_usage", &self.udp.value())
            .finish()
    }
}

impl ProtoAccounting {
    /// Creates accounting counters per `config`.
    pub fn new(config: NetConfig, stats: Arc<NetStats>) -> Self {
        let make = |sloppy: bool| -> Box<dyn Counter> {
            if sloppy {
                Box::new(SloppyCounter::new(config.cores))
            } else {
                Box::new(AtomicCounter::new())
            }
        };
        Self {
            tcp: make(config.sloppy_proto_accounting),
            udp: make(config.sloppy_proto_accounting),
            stats,
        }
    }

    fn counter(&self, proto: Protocol) -> &dyn Counter {
        match proto {
            Protocol::Tcp => self.tcp.as_ref(),
            Protocol::Udp => self.udp.as_ref(),
        }
    }

    /// Charges `bytes` of memory to `proto` on behalf of `core`.
    pub fn charge(&self, proto: Protocol, bytes: usize, core: CoreId) {
        self.counter(proto).add(core, bytes as i64);
        self.record(proto);
    }

    /// Releases `bytes` of memory from `proto` on behalf of `core`.
    pub fn uncharge(&self, proto: Protocol, bytes: usize, core: CoreId) {
        self.counter(proto).add(core, -(bytes as i64));
        self.record(proto);
    }

    fn record(&self, _proto: Protocol) {
        if self.tcp.name() == "sloppy" {
            NetStats::bump(&self.stats.proto_local_ops);
        } else {
            NetStats::bump(&self.stats.proto_shared_ops);
        }
    }

    /// Current memory attributed to `proto` (exact; may traverse cores).
    pub fn usage(&self, proto: Protocol) -> i64 {
        self.counter(proto).value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_balance() {
        for cfg in [NetConfig::stock(4), NetConfig::pk(4)] {
            let acc = ProtoAccounting::new(cfg, Arc::new(NetStats::new()));
            acc.charge(Protocol::Udp, 1500, CoreId(0));
            acc.charge(Protocol::Udp, 1500, CoreId(1));
            acc.charge(Protocol::Tcp, 64, CoreId(2));
            assert_eq!(acc.usage(Protocol::Udp), 3000);
            assert_eq!(acc.usage(Protocol::Tcp), 64);
            acc.uncharge(Protocol::Udp, 1500, CoreId(3));
            acc.uncharge(Protocol::Udp, 1500, CoreId(0));
            acc.uncharge(Protocol::Tcp, 64, CoreId(2));
            assert_eq!(acc.usage(Protocol::Udp), 0);
            assert_eq!(acc.usage(Protocol::Tcp), 0);
        }
    }

    #[test]
    fn stats_split_by_backing() {
        let stats = Arc::new(NetStats::new());
        let acc = ProtoAccounting::new(NetConfig::stock(4), Arc::clone(&stats));
        acc.charge(Protocol::Tcp, 10, CoreId(0));
        assert_eq!(
            stats
                .proto_shared_ops
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );

        let stats2 = Arc::new(NetStats::new());
        let acc2 = ProtoAccounting::new(NetConfig::pk(4), Arc::clone(&stats2));
        acc2.charge(Protocol::Tcp, 10, CoreId(0));
        assert_eq!(
            stats2
                .proto_local_ops
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
    }
}
