//! The destination (routing) cache and its reference counts.

use crate::config::NetConfig;
use crate::stats::NetStats;
use parking_lot::RwLock;
use pk_percpu::CoreId;
use pk_sloppy::{DeallocError, RefCount};
use std::collections::HashMap;
use std::sync::Arc;

/// A routing-table entry (`struct dst_entry`).
///
/// "IP packet transmission contends on routing table entries" (Figure 1):
/// every transmitted packet takes and drops a reference on the
/// destination entry it routes through, so with one hot destination the
/// refcount cache line serializes all senders. PK's fix is a sloppy
/// counter (§4.3, §5.3 — the "final bottleneck" for memcached).
#[derive(Debug)]
pub struct DstEntry {
    /// Destination IPv4 address.
    pub dest_ip: u32,
    /// Next-hop/egress label (opaque in this model).
    pub gateway: u32,
    refcount: RefCount,
}

impl DstEntry {
    /// Creates an entry with one (cache) reference.
    pub fn new(dest_ip: u32, gateway: u32, sloppy: bool, cores: usize) -> Arc<Self> {
        Self::with_refcount(dest_ip, gateway, RefCount::new(sloppy, cores))
    }

    /// [`DstEntry::new`] with an explicit refcount backing — how the
    /// cache selects the generation-2 SNZI tree when
    /// `NetConfig::snzi_dst_refs` is set.
    pub fn with_refcount(dest_ip: u32, gateway: u32, refcount: RefCount) -> Arc<Self> {
        Arc::new(Self {
            dest_ip,
            gateway,
            refcount,
        })
    }

    /// Takes a reference for a packet in flight.
    pub fn get(&self, core: CoreId) -> Result<(), DeallocError> {
        self.refcount.get(core)
    }

    /// Drops a packet's reference.
    pub fn put(&self, core: CoreId) {
        self.refcount.put(core);
    }

    /// Exact reference count.
    pub fn references(&self) -> i64 {
        self.refcount.references()
    }

    /// Returns `(shared_ops, local_ops)` of the refcount.
    pub fn refcount_ops(&self) -> (u64, u64) {
        self.refcount.op_counts()
    }

    /// Attempts to deallocate the entry (reconciles if sloppy).
    pub fn try_dealloc(&self) -> Result<(), DeallocError> {
        self.refcount.try_dealloc()
    }
}

/// The destination cache: destination IP → [`DstEntry`].
#[derive(Debug)]
pub struct DstCache {
    entries: RwLock<HashMap<u32, Arc<DstEntry>>>,
    config: NetConfig,
    stats: Arc<NetStats>,
}

impl DstCache {
    /// Creates an empty cache.
    pub fn new(config: NetConfig, stats: Arc<NetStats>) -> Self {
        Self {
            entries: RwLock::new(HashMap::new()),
            config,
            stats,
        }
    }

    /// Looks up (or creates) the entry for `dest_ip` and takes a packet
    /// reference on it on behalf of `core`.
    pub fn route(&self, dest_ip: u32, core: CoreId) -> Arc<DstEntry> {
        if let Some(e) = self.entries.read().get(&dest_ip).cloned() {
            if e.get(core).is_ok() {
                self.account(&e);
                return e;
            }
        }
        let mut table = self.entries.write();
        let e = table
            .entry(dest_ip)
            .or_insert_with(|| {
                DstEntry::with_refcount(
                    dest_ip,
                    dest_ip ^ 0x0101_0101,
                    RefCount::new_scaled(
                        self.config.sloppy_dst_refs,
                        self.config.snzi_dst_refs,
                        self.config.cores,
                        self.config.numa_nodes,
                    ),
                )
            })
            .clone();
        e.get(core).expect("cached dst cannot be dead");
        self.account(&e);
        e
    }

    fn account(&self, e: &DstEntry) {
        // Mirror the refcount's shared/local split into the stack stats.
        let (shared, local) = e.refcount_ops();
        self.stats
            .dst_shared_ops
            .store(shared, std::sync::atomic::Ordering::Relaxed);
        self.stats
            .dst_local_ops
            .store(local, std::sync::atomic::Ordering::Relaxed);
    }

    /// Number of cached routes.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Returns whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attempts to evict the route for `dest_ip`; fails while packets
    /// hold references (the reconcile-on-dealloc protocol).
    pub fn evict(&self, dest_ip: u32) -> Result<(), DeallocError> {
        let mut table = self.entries.write();
        let Some(e) = table.get(&dest_ip) else {
            return Err(DeallocError::AlreadyDead);
        };
        // Drop the cache's own reference for the check, restoring it on
        // failure.
        e.put(CoreId(0));
        match e.try_dealloc() {
            Ok(()) => {
                table.remove(&dest_ip);
                Ok(())
            }
            Err(err) => {
                e.get(CoreId(0)).expect("entry still live");
                Err(err)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(sloppy: bool) -> DstCache {
        let cfg = if sloppy {
            // Pin the flat sloppy backing: these tests exercise the
            // §4.3 protocol; the SNZI tree has its own test below.
            NetConfig {
                snzi_dst_refs: false,
                ..NetConfig::pk(4)
            }
        } else {
            NetConfig::stock(4)
        };
        DstCache::new(cfg, Arc::new(NetStats::new()))
    }

    #[test]
    fn route_creates_then_reuses() {
        let c = cache(true);
        let e1 = c.route(0x0a000001, CoreId(0));
        let e2 = c.route(0x0a000001, CoreId(1));
        assert!(Arc::ptr_eq(&e1, &e2));
        assert_eq!(c.len(), 1);
        assert_eq!(e1.references(), 3); // cache + 2 packets
        e1.put(CoreId(0));
        e2.put(CoreId(1));
    }

    #[test]
    fn hot_destination_is_core_local_when_sloppy() {
        let c = cache(true);
        // Warm up each core's spares.
        let mut refs = Vec::new();
        for core in 0..4 {
            refs.push((core, c.route(1, CoreId(core))));
        }
        for (core, e) in refs {
            e.put(CoreId(core));
        }
        let e = c.route(1, CoreId(2));
        let (shared_before, _) = e.refcount_ops();
        e.put(CoreId(2));
        for _ in 0..1_000 {
            let e = c.route(1, CoreId(2));
            e.put(CoreId(2));
        }
        let e = c.route(1, CoreId(2));
        let (shared_after, _) = e.refcount_ops();
        e.put(CoreId(2));
        assert_eq!(shared_before, shared_after, "hot path must stay local");
    }

    #[test]
    fn atomic_refcount_is_always_shared() {
        let c = cache(false);
        for _ in 0..100 {
            let e = c.route(1, CoreId(0));
            e.put(CoreId(0));
        }
        let e = c.route(1, CoreId(0));
        let (shared, local) = e.refcount_ops();
        e.put(CoreId(0));
        assert!(shared >= 200);
        assert_eq!(local, 0);
    }

    #[test]
    fn pk_preset_routes_through_the_snzi_tree() {
        // The full PK preset (snzi_dst_refs on) backs dst refcounts with
        // the per-socket tree. Under sustained load a core always has
        // packets in flight, so its leaf stays nonzero and further
        // get/put pairs never leave the leaf.
        let c = DstCache::new(NetConfig::pk(8), Arc::new(NetStats::new()));
        let pin = c.route(1, CoreId(2)); // keeps core 2's leaf nonzero
        let e = c.route(1, CoreId(2));
        let (shared_before, _) = e.refcount_ops();
        e.put(CoreId(2));
        for _ in 0..1_000 {
            let e = c.route(1, CoreId(2));
            e.put(CoreId(2));
        }
        let e = c.route(1, CoreId(2));
        let (shared_after, _) = e.refcount_ops();
        e.put(CoreId(2));
        assert_eq!(
            shared_before, shared_after,
            "loaded leaf must stay core-local under the SNZI tree"
        );
        pin.put(CoreId(2));
    }

    #[test]
    fn evict_respects_in_flight_packets() {
        let c = cache(true);
        let e = c.route(7, CoreId(0));
        assert!(c.evict(7).is_err(), "packet in flight");
        e.put(CoreId(0));
        assert_eq!(c.evict(7), Ok(()));
        assert!(c.is_empty());
        assert!(c.evict(7).is_err(), "already gone");
    }
}
