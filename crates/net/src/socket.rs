//! UDP sockets.

use crate::nic::FlowHash;
use crate::skb::Skb;
use pk_sync::SpinLock;
use std::collections::VecDeque;
use std::sync::Arc;

/// A datagram received on a socket.
#[derive(Debug)]
pub struct Datagram {
    /// Sender flow tuple (for replies).
    pub from: FlowHash,
    /// The packet buffer.
    pub skb: Skb,
}

/// A bound UDP socket with a per-socket receive queue.
///
/// "A received packet typically passes through multiple queues before
/// finally arriving at a per-socket queue, from which the application
/// reads it" (§4.2). memcached binds one of these per core, each on its
/// own port, so queues never cross cores when steering works.
#[derive(Debug)]
pub struct UdpSocket {
    /// The bound port.
    pub port: u16,
    rx: SpinLock<VecDeque<Datagram>>,
}

impl UdpSocket {
    /// Creates a socket bound to `port`.
    pub fn new(port: u16) -> Arc<Self> {
        let s = Arc::new(Self {
            port,
            rx: SpinLock::new(VecDeque::new()),
        });
        s.rx.set_class(pk_lockdep::register_class(
            "net.socket.rx",
            "pk-net",
            pk_lockdep::LockKind::Spin,
        ));
        s
    }

    /// Delivers a datagram into the socket's receive queue.
    pub fn deliver(&self, from: FlowHash, skb: Skb) {
        self.rx.lock().push_back(Datagram { from, skb });
    }

    /// Receives the oldest pending datagram, if any.
    pub fn recv(&self) -> Option<Datagram> {
        self.rx.lock().pop_front()
    }

    /// Number of queued datagrams.
    pub fn pending(&self) -> usize {
        self.rx.lock().len()
    }

    /// Contention stats of the socket-queue lock.
    pub fn queue_lock_stats(&self) -> &pk_sync::LockStats {
        self.rx.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn flow() -> FlowHash {
        FlowHash {
            src_ip: 1,
            src_port: 9999,
            dst_ip: 2,
            dst_port: 11211,
        }
    }

    #[test]
    fn deliver_then_recv_fifo() {
        let s = UdpSocket::new(11211);
        s.deliver(
            flow(),
            Skb {
                data: Bytes::from_static(b"a"),
                node: 0,
            },
        );
        s.deliver(
            flow(),
            Skb {
                data: Bytes::from_static(b"b"),
                node: 0,
            },
        );
        assert_eq!(s.pending(), 2);
        assert_eq!(s.recv().unwrap().skb.data.as_ref(), b"a");
        assert_eq!(s.recv().unwrap().skb.data.as_ref(), b"b");
        assert!(s.recv().is_none());
    }
}
