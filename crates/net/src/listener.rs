//! Listening sockets: the shared backlog versus per-core accept queues.

use crate::config::NetConfig;
use crate::nic::FlowHash;
use crate::stats::NetStats;
use pk_percpu::{CoreId, PerCore};
use pk_sync::SpinLock;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A pending connection request (a completed TCP handshake waiting in the
/// listen backlog).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnRequest {
    /// The connection's flow tuple.
    pub flow: FlowHash,
    /// The core whose NIC queue the handshake arrived on.
    pub arrived_on: CoreId,
}

/// An accepted connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Connection {
    /// The connection's flow tuple.
    pub flow: FlowHash,
    /// The core that accepted (and will process) it.
    pub core: CoreId,
    /// Whether it was accepted on the same core the handshake arrived on
    /// (the §4.2 goal: "all processing for that connection will remain
    /// entirely on one core").
    pub local: bool,
}

/// A listening socket (§4.2).
///
/// Stock: "concurrent accept system calls contend on shared socket
/// fields" — one backlog queue under one lock. PK: "queue requests on a
/// per-core backlog queue for the listening socket, so that a thread will
/// accept and process connections that the IXGBE directs to the core
/// running that thread. If accept finds the current core's backlog queue
/// empty, it attempts to steal a connection request from a different
/// core's queue."
#[derive(Debug)]
pub struct Listener {
    /// The bound port.
    pub port: u16,
    shared: SpinLock<VecDeque<ConnRequest>>,
    percore: PerCore<SpinLock<VecDeque<ConnRequest>>>,
    queued: AtomicU64,
    config: NetConfig,
    stats: Arc<NetStats>,
}

impl Listener {
    /// Creates a listener on `port`.
    pub fn new(port: u16, config: NetConfig, stats: Arc<NetStats>) -> Self {
        use pk_lockdep::{register_class, LockKind};
        let percore_class = register_class("net.listener.percore_queue", "pk-net", LockKind::Spin);
        let listener = Self {
            port,
            shared: SpinLock::new(VecDeque::new()),
            percore: PerCore::new_with(config.cores, |_| {
                let l = SpinLock::new(VecDeque::new());
                l.set_class(percore_class);
                l
            }),
            queued: AtomicU64::new(0),
            config,
            stats,
        };
        listener.shared.set_class(register_class(
            "net.listener.backlog",
            "pk-net",
            LockKind::Spin,
        ));
        listener
    }

    /// Enqueues a completed handshake that arrived on `core`'s NIC queue.
    ///
    /// Returns `false` — refusing the connection — when the config's
    /// `accept_backlog_cap` is set and the listener's total backlog is
    /// already at it. A refusal bumps `accept_overflows`; the caller
    /// (the stack's RX path) surfaces it as backpressure so admission
    /// control composes with both the shared and per-core layouts.
    pub fn enqueue(&self, flow: FlowHash, core: CoreId) -> bool {
        let cap = self.config.accept_backlog_cap as u64;
        if cap > 0 && self.backlog() >= cap {
            NetStats::bump(&self.stats.accept_overflows);
            return false;
        }
        let req = ConnRequest {
            flow,
            arrived_on: core,
        };
        if self.config.percore_accept_queues {
            // The NIC's flow steering delivers the handshake to `core`'s
            // queue regardless of which core runs the driver — a
            // documented cross-core producer, not a discipline bug.
            let _migrate = pk_lockdep::MigrationScope::enter();
            self.percore.get(core).lock().push_back(req);
        } else {
            self.shared.lock().push_back(req);
        }
        self.queued.fetch_add(1, Ordering::Release);
        true
    }

    /// Accepts a pending connection on `core`.
    ///
    /// PK prefers the local core's backlog and steals on empty; stock
    /// serializes all accepts on the shared queue.
    pub fn accept(&self, core: CoreId) -> Option<Connection> {
        if self.config.percore_accept_queues {
            pk_lockdep::check_percore_mutation("net.listener.percore_queue", core.index());
            if let Some(req) = self.percore.get(core).lock().pop_front() {
                self.queued.fetch_sub(1, Ordering::Release);
                NetStats::bump(&self.stats.accept_local_queue);
                return Some(Connection {
                    flow: req.flow,
                    core,
                    local: req.arrived_on == core,
                });
            }
            // Steal from the other cores' queues — the §4.2 escape hatch
            // for an idle acceptor, an intentional cross-core removal.
            let _migrate = pk_lockdep::MigrationScope::enter();
            for offset in 1..self.percore.cores() {
                let victim = CoreId((core.index() + offset) % self.percore.cores());
                if let Some(req) = self.percore.get(victim).lock().pop_front() {
                    self.queued.fetch_sub(1, Ordering::Release);
                    NetStats::bump(&self.stats.accept_steals);
                    return Some(Connection {
                        flow: req.flow,
                        core,
                        local: false,
                    });
                }
            }
            None
        } else {
            let req = self.shared.lock().pop_front()?;
            self.queued.fetch_sub(1, Ordering::Release);
            NetStats::bump(&self.stats.accept_shared_queue);
            Some(Connection {
                flow: req.flow,
                core,
                local: req.arrived_on == core,
            })
        }
    }

    /// Total pending connection requests.
    pub fn backlog(&self) -> u64 {
        self.queued.load(Ordering::Acquire)
    }

    /// Contention stats of the shared backlog lock.
    pub fn shared_lock_stats(&self) -> &pk_sync::LockStats {
        self.shared.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(p: u16) -> FlowHash {
        FlowHash {
            src_ip: 1,
            src_port: p,
            dst_ip: 2,
            dst_port: 80,
        }
    }

    #[test]
    fn stock_accepts_fifo_from_shared_queue() {
        let stats = Arc::new(NetStats::new());
        let l = Listener::new(80, NetConfig::stock(4), Arc::clone(&stats));
        l.enqueue(flow(1), CoreId(0));
        l.enqueue(flow(2), CoreId(1));
        let c1 = l.accept(CoreId(3)).unwrap();
        assert_eq!(c1.flow, flow(1));
        assert!(!c1.local, "arrived on 0, accepted on 3");
        let c2 = l.accept(CoreId(1)).unwrap();
        assert!(c2.local);
        assert!(l.accept(CoreId(0)).is_none());
        assert_eq!(stats.accept_shared_queue.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn pk_prefers_local_queue() {
        let stats = Arc::new(NetStats::new());
        let l = Listener::new(80, NetConfig::pk(4), Arc::clone(&stats));
        l.enqueue(flow(1), CoreId(2));
        let c = l.accept(CoreId(2)).unwrap();
        assert!(c.local);
        assert_eq!(stats.accept_local_queue.load(Ordering::Relaxed), 1);
        assert_eq!(stats.accept_steals.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn pk_steals_when_local_empty() {
        let stats = Arc::new(NetStats::new());
        let l = Listener::new(80, NetConfig::pk(4), Arc::clone(&stats));
        l.enqueue(flow(9), CoreId(3));
        let c = l.accept(CoreId(0)).unwrap();
        assert_eq!(c.flow, flow(9));
        assert!(!c.local);
        assert_eq!(stats.accept_steals.load(Ordering::Relaxed), 1);
        assert_eq!(l.backlog(), 0);
    }

    #[test]
    fn backlog_counts_all_queues() {
        let l = Listener::new(80, NetConfig::pk(4), Arc::new(NetStats::new()));
        for i in 0..4 {
            l.enqueue(flow(i as u16), CoreId(i));
        }
        assert_eq!(l.backlog(), 4);
        l.accept(CoreId(0)).unwrap();
        assert_eq!(l.backlog(), 3);
    }

    #[test]
    fn bounded_backlog_refuses_at_the_cap() {
        let stats = Arc::new(NetStats::new());
        let mut config = NetConfig::pk(4);
        config.accept_backlog_cap = 2;
        let l = Listener::new(80, config, Arc::clone(&stats));
        assert!(l.enqueue(flow(1), CoreId(0)));
        assert!(l.enqueue(flow(2), CoreId(1)));
        assert!(!l.enqueue(flow(3), CoreId(2)), "third must be refused");
        assert_eq!(l.backlog(), 2);
        assert_eq!(stats.accept_overflows.load(Ordering::Relaxed), 1);
        // Draining one slot re-opens admission.
        l.accept(CoreId(0)).unwrap();
        assert!(l.enqueue(flow(4), CoreId(3)));
    }

    #[test]
    fn concurrent_accepts_drain_exactly_once() {
        let l = Arc::new(Listener::new(
            80,
            NetConfig::pk(4),
            Arc::new(NetStats::new()),
        ));
        for i in 0..400u16 {
            l.enqueue(flow(i), CoreId((i % 4) as usize));
        }
        let handles: Vec<_> = (0..4)
            .map(|core| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    let mut got = 0;
                    while l.accept(CoreId(core)).is_some() {
                        got += 1;
                    }
                    got
                })
            })
            .collect();
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 400);
        assert_eq!(l.backlog(), 0);
    }
}
