//! A multi-queue NIC model (Intel 82599 "IXGBE").

use crate::config::NetConfig;
use crate::error::{DropReason, RxDrop};
use crate::skb::Skb;
use crate::stats::NetStats;
use parking_lot::RwLock;
use pk_fault::{FaultPlane, FaultPoint};
use pk_percpu::{CoreId, PerCore};
use pk_sync::SpinLock;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A connection/flow identifier (the packet-header 4-tuple hash input).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowHash {
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Source port.
    pub src_port: u16,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Destination port.
    pub dst_port: u16,
}

impl FlowHash {
    /// A deterministic header hash (stands in for the card's RSS hash).
    pub fn hash(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for v in [
            self.src_ip as u64,
            self.src_port as u64,
            self.dst_ip as u64,
            self.dst_port as u64,
        ] {
            h ^= v;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        // Finalize (splitmix64 avalanche) so sequential tuples spread
        // evenly across queues.
        h ^= h >> 30;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^ (h >> 31)
    }
}

/// A packet sitting in a receive queue.
#[derive(Debug)]
pub struct RxPacket {
    /// The flow it belongs to.
    pub flow: FlowHash,
    /// The buffer.
    pub skb: Skb,
}

/// The multi-queue card with its flow-steering policy (§4.2).
///
/// * **PK / hash steering** — the card is configured "to direct each
///   packet to a queue (and thus core) using a hash of the packet
///   headers," so *all* of a connection's packets (including the
///   handshake) land on one core.
/// * **Stock / sampling** — the IXGBE driver "samples every 20th outgoing
///   TCP packet and updates the hardware's flow directing tables." Flows
///   with no sampled entry fall back to the hash, and short connections
///   whose entry points at a *previous* user of that 4-tuple slot get
///   misdirected.
///
/// Each queue has a bounded FIFO; the card also models the §5.4 internal
/// receive-FIFO overflow via a per-card packets-per-poll-interval cap.
#[derive(Debug)]
pub struct Nic {
    queues: Vec<SpinLock<VecDeque<RxPacket>>>,
    /// Flow-director state, sharded per socket
    /// ([`NetConfig::flow_table_shards`]): a sampling update from a core
    /// only writes its socket's shard, so the rwlock cache line stops
    /// bouncing between packages (generation-2 fix past 48 cores).
    flow_table: Vec<RwLock<HashMap<u64, usize>>>,
    port_table: RwLock<HashMap<u16, usize>>,
    tx_counters: PerCore<AtomicU64>,
    queue_capacity: usize,
    config: NetConfig,
    stats: Arc<NetStats>,
    /// `net.rx_drop`: a single packet lost on the wire.
    fault_rx_drop: FaultPoint,
    /// `net.link_flap`: the link drops and renegotiates, losing the next
    /// [`LINK_FLAP_DROPS`] packets.
    fault_link_flap: FaultPoint,
    link_down_remaining: AtomicU64,
}

/// Sampling period of the stock flow director.
const SAMPLE_PERIOD: u64 = 20;

/// Packets lost while the link renegotiates after a flap.
const LINK_FLAP_DROPS: u64 = 16;

impl Nic {
    /// Creates a card with one RX queue per core.
    pub fn new(config: NetConfig, stats: Arc<NetStats>) -> Self {
        Self::with_faults(config, stats, &FaultPlane::disabled())
    }

    /// Like [`Nic::new`], with receive loss injectable through `faults`
    /// (`net.rx_drop`, `net.link_flap`).
    pub fn with_faults(config: NetConfig, stats: Arc<NetStats>, faults: &FaultPlane) -> Self {
        let queue_class =
            pk_lockdep::register_class("net.nic.rx_queue", "pk-net", pk_lockdep::LockKind::Spin);
        Self {
            queues: (0..config.cores)
                .map(|_| {
                    let q = SpinLock::new(VecDeque::new());
                    q.set_class(queue_class);
                    q
                })
                .collect(),
            flow_table: (0..config.flow_table_shards.max(1))
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            port_table: RwLock::new(HashMap::new()),
            tx_counters: PerCore::new_with(config.cores, |_| AtomicU64::new(0)),
            queue_capacity: 4096,
            config,
            stats,
            fault_rx_drop: faults.point("net.rx_drop"),
            fault_link_flap: faults.point("net.link_flap"),
            link_down_remaining: AtomicU64::new(0),
        }
    }

    /// Configures the card to "inspect the port number in each incoming
    /// packet header \[and\] place the packet on the queue dedicated to the
    /// associated ... core" (§5.3) — used by memcached on both kernels.
    pub fn pin_port(&self, dst_port: u16, queue: usize) {
        self.port_table
            .write()
            .insert(dst_port, queue % self.queues.len());
    }

    /// The queue (= core) the card will steer `flow` to right now.
    pub fn steer(&self, flow: &FlowHash) -> usize {
        if let Some(&q) = self.port_table.read().get(&flow.dst_port) {
            return q;
        }
        if !self.config.hash_flow_steering {
            let h = flow.hash();
            if let Some(&q) = self.flow_shard(h).read().get(&h) {
                return q;
            }
        }
        (flow.hash() as usize) % self.queues.len()
    }

    /// Delivers an incoming packet. `owner` is the core that will process
    /// the flow (for steering-accuracy stats).
    ///
    /// On overflow, injected loss, or a down link, the packet is refused
    /// and the buffer handed back in the [`RxDrop`] so the caller can
    /// release it and its accounting — the drop is never silent.
    pub fn rx(&self, flow: FlowHash, skb: Skb, owner: CoreId) -> Result<(), RxDrop> {
        if self.fault_link_flap.should_inject() {
            self.link_down_remaining
                .store(LINK_FLAP_DROPS, Ordering::Relaxed);
        }
        if self
            .link_down_remaining
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
            .is_ok()
        {
            NetStats::bump(&self.stats.rx_link_down_drops);
            return Err(RxDrop {
                reason: DropReason::LinkDown,
                skb,
            });
        }
        if self.fault_rx_drop.should_inject() {
            NetStats::bump(&self.stats.rx_fault_drops);
            return Err(RxDrop {
                reason: DropReason::FaultInjected,
                skb,
            });
        }
        let q = self.steer(&flow);
        if q == owner.index() % self.queues.len() {
            NetStats::bump(&self.stats.rx_steered_local);
        } else {
            NetStats::bump(&self.stats.rx_misdirected);
        }
        let mut queue = self.queues[q].lock();
        if queue.len() >= self.queue_capacity {
            NetStats::bump(&self.stats.rx_fifo_drops);
            return Err(RxDrop {
                reason: DropReason::QueueOverflow,
                skb,
            });
        }
        queue.push_back(RxPacket { flow, skb });
        Ok(())
    }

    /// Requeues a packet onto `target`'s queue (software re-steering:
    /// RPS/RFS). Unlike [`Nic::rx`], never drops.
    pub fn requeue(&self, pkt: RxPacket, target: CoreId) {
        self.queues[target.index() % self.queues.len()]
            .lock()
            .push_back(pkt);
    }

    /// Polls the RX queue belonging to `core`.
    pub fn poll(&self, core: CoreId) -> Option<RxPacket> {
        self.queues[core.index() % self.queues.len()]
            .lock()
            .pop_front()
    }

    /// Transmits a packet on `core`'s TX queue.
    ///
    /// Under the stock sampling policy, every 20th packet per core
    /// updates the flow-director table to point this flow at this core.
    pub fn tx(&self, core: CoreId, flow: FlowHash) {
        if !self.config.hash_flow_steering {
            let n = self.tx_counters.get(core).fetch_add(1, Ordering::Relaxed) + 1;
            if n.is_multiple_of(SAMPLE_PERIOD) {
                let h = flow.hash();
                self.flow_shard(h)
                    .write()
                    .insert(h, core.index() % self.queues.len());
            }
        }
    }

    /// The flow-director shard holding flow hash `h`. With one shard
    /// (stock) this is the single global table; with per-socket sharding
    /// the hash picks a stable shard so steer/tx agree on placement.
    fn flow_shard(&self, h: u64) -> &RwLock<HashMap<u64, usize>> {
        &self.flow_table[(h as usize) % self.flow_table.len()]
    }

    /// Number of flow-director shards (1 = unsharded stock layout).
    pub fn flow_table_shards(&self) -> usize {
        self.flow_table.len()
    }

    /// Returns the number of RX queues.
    pub fn queue_count(&self) -> usize {
        self.queues.len()
    }

    /// Total packets currently queued across all RX queues.
    pub fn pending(&self) -> usize {
        self.queues.iter().map(|q| q.lock().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn flow(src_port: u16) -> FlowHash {
        FlowHash {
            src_ip: 0x0a00_0001,
            src_port,
            dst_ip: 0x0a00_0002,
            dst_port: 80,
        }
    }

    fn skb() -> Skb {
        Skb {
            data: Bytes::from_static(b"pkt"),
            node: 0,
        }
    }

    #[test]
    fn hash_steering_is_deterministic_per_flow() {
        let nic = Nic::new(NetConfig::pk(8), Arc::new(NetStats::new()));
        let f = flow(1234);
        let q = nic.steer(&f);
        for _ in 0..10 {
            assert_eq!(nic.steer(&f), q);
        }
    }

    #[test]
    fn hash_steering_spreads_flows() {
        let nic = Nic::new(NetConfig::pk(8), Arc::new(NetStats::new()));
        let mut used = std::collections::HashSet::new();
        for p in 0..200 {
            used.insert(nic.steer(&flow(p)));
        }
        assert!(used.len() >= 6, "flows should spread over queues");
    }

    #[test]
    fn sampling_updates_flow_table_every_20th_tx() {
        let nic = Nic::new(NetConfig::stock(8), Arc::new(NetStats::new()));
        let f = flow(5555);
        let default_q = nic.steer(&f);
        // 19 transmissions: no update yet.
        for _ in 0..19 {
            nic.tx(CoreId(3), f);
        }
        assert_eq!(nic.steer(&f), default_q);
        nic.tx(CoreId(3), f); // the 20th
        assert_eq!(nic.steer(&f), 3);
    }

    #[test]
    fn flow_table_shards_follow_topology() {
        // Stock keeps the single global flow-director table; a PK config
        // lowered for a multi-socket machine shards it per socket.
        let stock = Nic::new(NetConfig::stock(8), Arc::new(NetStats::new()));
        assert_eq!(stock.flow_table_shards(), 1);
        let pk = Nic::new(
            NetConfig {
                flow_table_shards: 64,
                ..NetConfig::stock(8)
            },
            Arc::new(NetStats::new()),
        );
        assert_eq!(pk.flow_table_shards(), 64);
    }

    #[test]
    fn sharded_sampling_still_steers_correctly() {
        // Sharding must not change observable steering: the sampled
        // entry written on tx is found by steer regardless of which
        // shard the hash lands in.
        let nic = Nic::new(
            NetConfig {
                flow_table_shards: 8,
                ..NetConfig::stock(8)
            },
            Arc::new(NetStats::new()),
        );
        for port in 100..108u16 {
            let f = flow(port);
            for _ in 0..SAMPLE_PERIOD {
                nic.tx(CoreId(5), f);
            }
        }
        // 8 flows × 20 tx on one core → 8 sampled updates, one per flow.
        for port in 100..108u16 {
            assert_eq!(nic.steer(&flow(port)), 5, "port {port}");
        }
    }

    #[test]
    fn rx_counts_steering_accuracy() {
        let stats = Arc::new(NetStats::new());
        let nic = Nic::new(NetConfig::pk(4), Arc::clone(&stats));
        let f = flow(42);
        let owner = CoreId(nic.steer(&f));
        assert!(nic.rx(f, skb(), owner).is_ok());
        assert!(nic.rx(f, skb(), CoreId(owner.index() + 1)).is_ok());
        assert_eq!(stats.rx_steered_local.load(Ordering::Relaxed), 1);
        assert_eq!(stats.rx_misdirected.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn poll_drains_the_right_queue() {
        let nic = Nic::new(NetConfig::pk(4), Arc::new(NetStats::new()));
        let f = flow(42);
        let q = nic.steer(&f);
        nic.rx(f, skb(), CoreId(q)).unwrap();
        assert!(nic.poll(CoreId((q + 1) % 4)).is_none());
        let pkt = nic.poll(CoreId(q)).unwrap();
        assert_eq!(pkt.flow, f);
        assert_eq!(nic.pending(), 0);
    }

    #[test]
    fn queue_overflow_drops() {
        let stats = Arc::new(NetStats::new());
        let mut nic = Nic::new(NetConfig::pk(2), Arc::clone(&stats));
        nic.queue_capacity = 2;
        let f = flow(1);
        let q = CoreId(nic.steer(&f));
        assert!(nic.rx(f, skb(), q).is_ok());
        assert!(nic.rx(f, skb(), q).is_ok());
        assert!(nic.rx(f, skb(), q).is_err(), "third packet overflows");
        assert_eq!(stats.rx_fifo_drops.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn overflow_surfaces_backpressure_and_returns_the_buffer() {
        // Regression: overflow drops used to return a bare `false`,
        // leaking the skb (and its protocol charge) with no signal the
        // caller could act on.
        let stats = Arc::new(NetStats::new());
        let mut nic = Nic::new(NetConfig::pk(2), Arc::clone(&stats));
        nic.queue_capacity = 1;
        let f = flow(1);
        let q = CoreId(nic.steer(&f));
        nic.rx(f, skb(), q).unwrap();
        let drop = nic.rx(f, skb(), q).unwrap_err();
        assert_eq!(drop.reason, DropReason::QueueOverflow);
        assert_eq!(drop.skb.data.as_ref(), b"pkt", "buffer comes back");
        assert_eq!(nic.pending(), 1, "the dropped packet never queued");
    }

    #[test]
    fn injected_rx_drop_is_reported() {
        let stats = Arc::new(NetStats::new());
        let faults = FaultPlane::with_seed(7);
        faults.set("net.rx_drop", pk_fault::FaultSchedule::EveryNth(2));
        faults.enable();
        let nic = Nic::with_faults(NetConfig::pk(2), Arc::clone(&stats), &faults);
        let f = flow(1);
        let q = CoreId(nic.steer(&f));
        assert!(nic.rx(f, skb(), q).is_ok());
        let drop = nic.rx(f, skb(), q).unwrap_err();
        assert_eq!(drop.reason, DropReason::FaultInjected);
        assert_eq!(stats.rx_fault_drops.load(Ordering::Relaxed), 1);
        assert_eq!(nic.pending(), 1);
    }

    #[test]
    fn link_flap_drops_a_burst_then_recovers() {
        let stats = Arc::new(NetStats::new());
        let faults = FaultPlane::with_seed(7);
        faults.set("net.link_flap", pk_fault::FaultSchedule::OneShot(0));
        faults.enable();
        let nic = Nic::with_faults(NetConfig::pk(2), Arc::clone(&stats), &faults);
        let f = flow(1);
        let q = CoreId(nic.steer(&f));
        for i in 0..LINK_FLAP_DROPS {
            let drop = nic.rx(f, skb(), q).unwrap_err();
            assert_eq!(drop.reason, DropReason::LinkDown, "packet {i}");
        }
        assert!(nic.rx(f, skb(), q).is_ok(), "link back up");
        assert_eq!(
            stats.rx_link_down_drops.load(Ordering::Relaxed),
            LINK_FLAP_DROPS
        );
    }
}
