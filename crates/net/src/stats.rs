//! Network-stack contention diagnostics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters of shared-cache-line events inside the network stack.
#[derive(Debug, Default)]
pub struct NetStats {
    /// Skb allocations from the shared node-0 pool (stock).
    pub skb_global_allocs: AtomicU64,
    /// Skb allocations from per-core pools (PK).
    pub skb_percore_allocs: AtomicU64,
    /// Skb allocations that crossed NUMA nodes (stock DMA policy).
    pub skb_remote_node_allocs: AtomicU64,
    /// dst_entry refcount operations hitting the shared counter.
    pub dst_shared_ops: AtomicU64,
    /// dst_entry refcount operations satisfied core-locally.
    pub dst_local_ops: AtomicU64,
    /// Protocol-accounting updates hitting the shared counter.
    pub proto_shared_ops: AtomicU64,
    /// Protocol-accounting updates satisfied core-locally.
    pub proto_local_ops: AtomicU64,
    /// Accepts served from the shared single backlog (stock).
    pub accept_shared_queue: AtomicU64,
    /// Accepts served from the local core's backlog (PK).
    pub accept_local_queue: AtomicU64,
    /// Accepts that had to steal from another core's backlog.
    pub accept_steals: AtomicU64,
    /// Connections refused because the listener's bounded accept
    /// backlog (`accept_backlog_cap`) was full — admission control in
    /// action, not packet loss.
    pub accept_overflows: AtomicU64,
    /// Incoming packets steered to the core that owns the flow.
    pub rx_steered_local: AtomicU64,
    /// Incoming packets misdirected to another core (stock sampling).
    pub rx_misdirected: AtomicU64,
    /// Packets dropped because the card's internal FIFO overflowed.
    pub rx_fifo_drops: AtomicU64,
    /// Packets dropped by an injected `net.rx_drop` fault.
    pub rx_fault_drops: AtomicU64,
    /// Packets dropped while the link renegotiated after a flap.
    pub rx_link_down_drops: AtomicU64,
}

impl NetStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bumps a counter by one.
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` to a counter.
    #[cfg_attr(not(test), expect(dead_code))]
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Fraction of incoming packets delivered to the owning core.
    pub fn steering_accuracy(&self) -> f64 {
        let local = self.rx_steered_local.load(Ordering::Relaxed);
        let miss = self.rx_misdirected.load(Ordering::Relaxed);
        if local + miss == 0 {
            1.0
        } else {
            local as f64 / (local + miss) as f64
        }
    }

    /// Resets every counter.
    pub fn reset(&self) {
        for c in [
            &self.skb_global_allocs,
            &self.skb_percore_allocs,
            &self.skb_remote_node_allocs,
            &self.dst_shared_ops,
            &self.dst_local_ops,
            &self.proto_shared_ops,
            &self.proto_local_ops,
            &self.accept_shared_queue,
            &self.accept_local_queue,
            &self.accept_steals,
            &self.accept_overflows,
            &self.rx_steered_local,
            &self.rx_misdirected,
            &self.rx_fifo_drops,
            &self.rx_fault_drops,
            &self.rx_link_down_drops,
        ] {
            c.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steering_accuracy_computation() {
        let s = NetStats::new();
        assert_eq!(s.steering_accuracy(), 1.0);
        NetStats::add(&s.rx_steered_local, 3);
        NetStats::bump(&s.rx_misdirected);
        assert!((s.steering_accuracy() - 0.75).abs() < 1e-12);
        s.reset();
        assert_eq!(s.rx_steered_local.load(Ordering::Relaxed), 0);
    }
}
