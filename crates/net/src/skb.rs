//! Packet buffers (`skbuff`) and their free lists.

use crate::config::NetConfig;
use crate::stats::NetStats;
use bytes::Bytes;
use pk_percpu::{CoreId, PerCore};
use pk_sync::SpinLock;
use std::sync::Arc;

/// A packet buffer: payload plus the NUMA node its backing memory lives
/// on.
#[derive(Debug, Clone)]
pub struct Skb {
    /// Packet payload.
    pub data: Bytes,
    /// NUMA node the buffer was allocated from.
    pub node: usize,
}

impl Skb {
    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Free lists of packet buffers.
///
/// Stock Linux allocates all packet buffers (and Ethernet DMA buffers)
/// "from a single free list in the memory system closest to the I/O bus"
/// — node 0 — causing contention on that node's lock and remote-node
/// traffic; PK uses per-core free lists and allocates DMA buffers "from
/// the local memory node" (§4.5, Figure 1, §5.3: local allocation alone
/// improved memcached throughput ~30%).
#[derive(Debug)]
pub struct SkbPool {
    global: SpinLock<Vec<Skb>>,
    percore: PerCore<SpinLock<Vec<Skb>>>,
    config: NetConfig,
    stats: Arc<NetStats>,
}

impl SkbPool {
    /// Creates empty free lists under `config`.
    pub fn new(config: NetConfig, stats: Arc<NetStats>) -> Self {
        use pk_lockdep::{register_class, LockKind};
        let percore_class = register_class("net.skb.pool_percore", "pk-net", LockKind::Spin);
        let pool = Self {
            global: SpinLock::new(Vec::new()),
            percore: PerCore::new_with(config.cores, |_| {
                let l = SpinLock::new(Vec::new());
                l.set_class(percore_class);
                l
            }),
            config,
            stats,
        };
        pool.global.set_class(register_class(
            "net.skb.pool_global",
            "pk-net",
            LockKind::Spin,
        ));
        pool
    }

    /// Allocates a buffer for `data` on behalf of `core`.
    ///
    /// Recycles a free buffer when available; the returned buffer's NUMA
    /// node follows the configured DMA policy.
    pub fn alloc(&self, core: CoreId, data: Bytes) -> Skb {
        let node = if self.config.local_dma_alloc {
            self.config.node_of_core(core.index())
        } else {
            0
        };
        if node != self.config.node_of_core(core.index()) {
            NetStats::bump(&self.stats.skb_remote_node_allocs);
        }
        let recycled = if self.config.percore_skb_pools {
            NetStats::bump(&self.stats.skb_percore_allocs);
            pk_lockdep::check_percore_mutation("net.skb.pool_percore", core.index());
            self.percore.get(core).lock().pop()
        } else {
            NetStats::bump(&self.stats.skb_global_allocs);
            self.global.lock().pop()
        };
        match recycled {
            Some(mut skb) => {
                skb.data = data;
                // Recycled buffers keep their original node; the policy
                // only governs fresh allocations.
                skb
            }
            None => Skb { data, node },
        }
    }

    /// Returns a buffer to the free list of `core`.
    pub fn free(&self, core: CoreId, mut skb: Skb) {
        skb.data = Bytes::new();
        if self.config.percore_skb_pools {
            pk_lockdep::check_percore_mutation("net.skb.pool_percore", core.index());
            self.percore.get(core).lock().push(skb);
        } else {
            self.global.lock().push(skb);
        }
    }

    /// Number of buffers currently on free lists.
    pub fn free_count(&self) -> usize {
        self.global.lock().len() + self.percore.fold(0, |a, l| a + l.lock().len())
    }

    /// The global free-list lock's contention statistics.
    pub fn global_lock_stats(&self) -> &pk_sync::LockStats {
        self.global.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stock_allocates_node0() {
        let stats = Arc::new(NetStats::new());
        let pool = SkbPool::new(NetConfig::stock(48), Arc::clone(&stats));
        let skb = pool.alloc(CoreId(40), Bytes::from_static(b"x"));
        assert_eq!(skb.node, 0);
        assert_eq!(
            stats
                .skb_remote_node_allocs
                .load(std::sync::atomic::Ordering::Relaxed),
            1,
            "core 40 is not on node 0"
        );
    }

    #[test]
    fn pk_allocates_local_node() {
        let stats = Arc::new(NetStats::new());
        let pool = SkbPool::new(NetConfig::pk(48), Arc::clone(&stats));
        let skb = pool.alloc(CoreId(40), Bytes::from_static(b"x"));
        assert_eq!(skb.node, 6);
        assert_eq!(
            stats
                .skb_remote_node_allocs
                .load(std::sync::atomic::Ordering::Relaxed),
            0
        );
    }

    #[test]
    fn free_then_alloc_recycles() {
        let stats = Arc::new(NetStats::new());
        let pool = SkbPool::new(NetConfig::pk(4), Arc::clone(&stats));
        let skb = pool.alloc(CoreId(1), Bytes::from_static(b"abc"));
        pool.free(CoreId(1), skb);
        assert_eq!(pool.free_count(), 1);
        let skb2 = pool.alloc(CoreId(1), Bytes::from_static(b"de"));
        assert_eq!(skb2.data.as_ref(), b"de");
        assert_eq!(pool.free_count(), 0);
    }

    #[test]
    fn pools_are_split_per_core() {
        let stats = Arc::new(NetStats::new());
        let pool = SkbPool::new(NetConfig::pk(4), Arc::clone(&stats));
        let skb = pool.alloc(CoreId(0), Bytes::new());
        pool.free(CoreId(0), skb);
        // Core 1's pool is empty; it gets a fresh buffer, and core 0's
        // stays populated.
        let _ = pool.alloc(CoreId(1), Bytes::new());
        assert_eq!(pool.free_count(), 1);
    }

    #[test]
    fn stock_uses_the_global_list() {
        let stats = Arc::new(NetStats::new());
        let pool = SkbPool::new(NetConfig::stock(4), Arc::clone(&stats));
        let skb = pool.alloc(CoreId(0), Bytes::new());
        pool.free(CoreId(0), skb);
        let _ = pool.alloc(CoreId(3), Bytes::new());
        assert_eq!(pool.free_count(), 0, "core 3 recycled core 0's buffer");
        assert_eq!(
            stats
                .skb_global_allocs
                .load(std::sync::atomic::Ordering::Relaxed),
            2
        );
    }
}
