//! Typed errors for the network stack.

use crate::skb::Skb;
use std::fmt;

/// Why the NIC refused a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The destination RX FIFO was full (§5.4's internal-FIFO overflow).
    QueueOverflow,
    /// A `net.rx_drop` fault fired (simulated wire loss).
    FaultInjected,
    /// The link was down: a `net.link_flap` fault fired recently and the
    /// card is still renegotiating.
    LinkDown,
}

impl fmt::Display for DropReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::QueueOverflow => "rx queue overflow",
            Self::FaultInjected => "injected rx drop",
            Self::LinkDown => "link down",
        })
    }
}

/// A packet the NIC could not enqueue.
///
/// Carries the buffer back to the caller so it can release the skb and
/// its protocol charge instead of leaking them — the silent-loss bug this
/// type exists to prevent.
#[derive(Debug)]
pub struct RxDrop {
    /// Why the packet was refused.
    pub reason: DropReason,
    /// The undelivered buffer, returned for release.
    pub skb: Skb,
}

impl fmt::Display for RxDrop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "packet dropped: {}", self.reason)
    }
}

impl std::error::Error for RxDrop {}

/// A send the stack could not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetError {
    /// The receive path is full; the caller should back off and retry.
    Backpressure,
    /// The packet was lost for the given reason; retrying immediately is
    /// allowed (loss, unlike backpressure, carries no congestion signal).
    Dropped(DropReason),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Backpressure => f.write_str("receive path full, back off"),
            Self::Dropped(r) => write!(f, "packet lost: {r}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<&RxDrop> for NetError {
    fn from(drop: &RxDrop) -> Self {
        match drop.reason {
            DropReason::QueueOverflow => Self::Backpressure,
            reason => Self::Dropped(reason),
        }
    }
}

impl From<RxDrop> for NetError {
    fn from(drop: RxDrop) -> Self {
        Self::from(&drop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn displays_are_distinct() {
        let all = [
            NetError::Backpressure,
            NetError::Dropped(DropReason::QueueOverflow),
            NetError::Dropped(DropReason::FaultInjected),
            NetError::Dropped(DropReason::LinkDown),
        ];
        let texts: Vec<String> = all.iter().map(ToString::to_string).collect();
        for (i, a) in texts.iter().enumerate() {
            for b in &texts[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn errors_render_through_std_error() {
        let drop = RxDrop {
            reason: DropReason::LinkDown,
            skb: Skb {
                data: Bytes::from_static(b"x"),
                node: 0,
            },
        };
        let e: &dyn std::error::Error = &drop;
        assert_eq!(e.to_string(), "packet dropped: link down");
        assert_eq!(
            NetError::from(drop),
            NetError::Dropped(DropReason::LinkDown)
        );
    }

    #[test]
    fn overflow_maps_to_backpressure() {
        let drop = RxDrop {
            reason: DropReason::QueueOverflow,
            skb: Skb {
                data: Bytes::from_static(b"x"),
                node: 0,
            },
        };
        assert_eq!(NetError::from(drop), NetError::Backpressure);
    }
}
