//! The assembled network stack.

use crate::config::NetConfig;
use crate::dst::DstCache;
use crate::error::NetError;
use crate::listener::{Connection, Listener};
use crate::nic::{FlowHash, Nic};
use crate::proto::{ProtoAccounting, Protocol};
use crate::skb::{Skb, SkbPool};
use crate::socket::UdpSocket;
use crate::stats::NetStats;
use bytes::Bytes;
use pk_fault::FaultPlane;
use pk_percpu::CoreId;
use pk_sync::rcu::{self, RcuCell};
use std::collections::HashMap;
use std::sync::Arc;

/// An IPv4 socket address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SockAddr {
    /// IPv4 address.
    pub ip: u32,
    /// Port.
    pub port: u16,
}

impl SockAddr {
    /// Creates an address.
    pub const fn new(ip: u32, port: u16) -> Self {
        Self { ip, port }
    }
}

/// The network stack facade: NIC + buffers + routing + accounting +
/// sockets, all per one [`NetConfig`].
///
/// Packets sent to a locally bound port loop back through the NIC's
/// receive path, which is how the workloads drive the same code the
/// paper's client machines drove over 10 GbE.
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use pk_net::{NetConfig, NetStack, SockAddr};
/// use pk_percpu::CoreId;
///
/// let stack = NetStack::new(NetConfig::pk(4));
/// let server = stack.udp_bind(11211, CoreId(1)).unwrap();
/// let from = SockAddr::new(0x0a000001, 4000);
/// let to = SockAddr::new(0x0a000002, 11211);
/// stack.udp_send(CoreId(0), from, to, Bytes::from_static(b"get k")).unwrap();
/// // The core owning the steered NIC queue polls it and the datagram
/// // lands in the per-socket queue.
/// for core in 0..4 {
///     stack.process_rx(CoreId(core), 16);
/// }
/// assert_eq!(server.recv().unwrap().skb.data.as_ref(), b"get k");
/// ```
#[derive(Debug)]
pub struct NetStack {
    config: NetConfig,
    stats: Arc<NetStats>,
    nic: Nic,
    pool: SkbPool,
    dst: DstCache,
    proto: ProtoAccounting,
    /// RCU-published socket tables: every RX/accept path reads a snapshot
    /// under a read-side section without writing shared lock state;
    /// binds/listens copy, update, publish, and retire the old snapshot
    /// per the configured reclamation discipline.
    udp_ports: RcuCell<HashMap<u16, (Arc<UdpSocket>, CoreId)>>,
    listeners: RcuCell<HashMap<u16, Arc<Listener>>>,
}

impl NetStack {
    /// Creates a stack under `config`.
    pub fn new(config: NetConfig) -> Self {
        Self::with_faults(config, &FaultPlane::disabled())
    }

    /// Like [`NetStack::new`], with receive loss injectable through
    /// `faults` (`net.rx_drop`, `net.link_flap`).
    pub fn with_faults(config: NetConfig, faults: &FaultPlane) -> Self {
        let stats = Arc::new(NetStats::new());
        Self {
            config,
            nic: Nic::with_faults(config, Arc::clone(&stats), faults),
            pool: SkbPool::new(config, Arc::clone(&stats)),
            dst: DstCache::new(config, Arc::clone(&stats)),
            proto: ProtoAccounting::new(config, Arc::clone(&stats)),
            udp_ports: RcuCell::new(HashMap::new()),
            listeners: RcuCell::new(HashMap::new()),
            stats,
        }
    }

    /// Returns the stack's diagnostics.
    pub fn stats(&self) -> &Arc<NetStats> {
        &self.stats
    }

    /// Returns the configuration.
    pub fn config(&self) -> NetConfig {
        self.config
    }

    /// Returns the NIC model.
    pub fn nic(&self) -> &Nic {
        &self.nic
    }

    /// Returns the destination cache.
    pub fn dst_cache(&self) -> &DstCache {
        &self.dst
    }

    /// Returns the protocol accounting.
    pub fn proto(&self) -> &ProtoAccounting {
        &self.proto
    }

    /// Publishes a rewritten UDP port table, retiring the old snapshot
    /// per the configured reclamation discipline.
    fn replace_udp_ports(
        &self,
        f: impl FnOnce(
            &HashMap<u16, (Arc<UdpSocket>, CoreId)>,
        ) -> HashMap<u16, (Arc<UdpSocket>, CoreId)>,
    ) {
        if self.config.deferred_reclamation {
            self.udp_ports.update_with_deferred(f);
        } else {
            self.udp_ports.update_with(f);
        }
    }

    /// Binds a UDP socket to `port`, owned (processed) by `owner`.
    pub fn udp_bind(&self, port: u16, owner: CoreId) -> Option<Arc<UdpSocket>> {
        {
            let g = rcu::read_lock();
            if self.udp_ports.read(&g).contains_key(&port) {
                return None;
            }
        }
        let s = UdpSocket::new(port);
        // Writers are serialized by the cell; re-check under that lock by
        // keeping the bind race benign: last publish wins, and both
        // publishes carry the same port→socket shape. Concurrent binds of
        // the *same* port are resolved by the insert below being a no-op
        // overwrite of an identical owner (the paper's workloads bind
        // each port once, at startup).
        self.replace_udp_ports(|ports| {
            let mut ports = ports.clone();
            ports.insert(port, (Arc::clone(&s), owner));
            ports
        });
        // Dedicate a hardware queue to this socket's core (§5.3).
        self.nic.pin_port(port, owner.index());
        Some(s)
    }

    /// Returns the core that owns the socket bound to `port`.
    pub fn owner_of(&self, port: u16) -> Option<CoreId> {
        let g = rcu::read_lock();
        self.udp_ports.read(&g).get(&port).map(|(_, c)| *c)
    }

    /// Sends a UDP datagram from `core`. If the destination port is bound
    /// on this stack, the packet loops back through the NIC RX path.
    ///
    /// Exercises, in order: the destination cache refcount, protocol
    /// memory accounting, the skb pool, the TX queue, and (on loopback)
    /// flow steering into an RX queue.
    ///
    /// A refused packet releases its buffer and protocol charge before
    /// the error is returned, so the books stay balanced whether or not
    /// the caller retries. [`NetError::Backpressure`] means the receive
    /// path is full (back off before retrying); [`NetError::Dropped`]
    /// means the packet was lost in flight.
    pub fn udp_send(
        &self,
        core: CoreId,
        from: SockAddr,
        to: SockAddr,
        payload: Bytes,
    ) -> Result<(), NetError> {
        let route = self.dst.route(to.ip, core);
        let len = payload.len();
        self.proto.charge(Protocol::Udp, len, core);
        let skb = self.pool.alloc(core, payload);
        let flow = FlowHash {
            src_ip: from.ip,
            src_port: from.port,
            dst_ip: to.ip,
            dst_port: to.port,
        };
        self.nic.tx(core, flow);
        route.put(core);
        let owner = self.owner_of(to.port);
        match owner {
            Some(owner) => self.nic.rx(flow, skb, owner).map_err(|drop| {
                // The NIC hands the buffer back on refusal; release it
                // and the charge (this used to leak both).
                let err = NetError::from(&drop);
                self.proto.uncharge(Protocol::Udp, len, core);
                self.pool.free(core, drop.skb);
                err
            }),
            None => {
                // Left the machine: the buffer is freed and the charge
                // released immediately (the wire owns it now).
                self.proto.uncharge(Protocol::Udp, len, core);
                self.pool.free(core, skb);
                Ok(())
            }
        }
    }

    /// Processes up to `budget` packets from `core`'s NIC queue,
    /// delivering them to bound sockets. Returns the number processed.
    ///
    /// With [`NetConfig::software_rfs`], packets whose socket lives on a
    /// different core are re-steered there in software (Receive Flow
    /// Steering, \[25\]) instead of being delivered cross-core.
    pub fn process_rx(&self, core: CoreId, budget: usize) -> usize {
        let mut n = 0;
        while n < budget {
            let Some(pkt) = self.nic.poll(core) else {
                break;
            };
            let dst_port = pkt.flow.dst_port;
            let hit = {
                let g = rcu::read_lock();
                self.udp_ports.read(&g).get(&dst_port).cloned()
            };
            if let Some((sock, owner)) = hit {
                if self.config.software_rfs && owner != core {
                    // Hop to the owning core's backlog; it will deliver
                    // on its own poll.
                    self.nic.requeue(pkt, owner);
                    n += 1;
                    continue;
                }
                sock.deliver(pkt.flow, pkt.skb);
            } else {
                // No receiver: drop and release the charge.
                self.proto.uncharge(Protocol::Udp, pkt.skb.len(), core);
                self.pool.free(core, pkt.skb);
            }
            n += 1;
        }
        n
    }

    /// Releases a received datagram's buffer and accounting (the
    /// application is done with it).
    pub fn release(&self, core: CoreId, skb: Skb) {
        self.proto.uncharge(Protocol::Udp, skb.len(), core);
        self.pool.free(core, skb);
    }

    /// Starts listening on TCP `port`.
    pub fn listen(&self, port: u16) -> Arc<Listener> {
        let l = Arc::new(Listener::new(port, self.config, Arc::clone(&self.stats)));
        let inserted = Arc::clone(&l);
        if self.config.deferred_reclamation {
            self.listeners.update_with_deferred(move |m| {
                let mut m = m.clone();
                m.insert(port, Arc::clone(&inserted));
                m
            });
        } else {
            self.listeners.update_with(move |m| {
                let mut m = m.clone();
                m.insert(port, Arc::clone(&inserted));
                m
            });
        }
        l
    }

    /// A client handshake arriving for `port`: the NIC steers it to a
    /// queue/core, and the connection request joins that core's backlog
    /// (or the shared one, in stock mode).
    ///
    /// Returns `false` when no listener is bound to `port` *or* when
    /// the listener's bounded backlog (`accept_backlog_cap`) refused
    /// admission — the latter is distinguishable by the
    /// `accept_overflows` counter, and callers that own the listener
    /// (the serving drivers) surface it as `Overloaded`.
    pub fn incoming_connection(&self, port: u16, flow: FlowHash) -> bool {
        let l = {
            let g = rcu::read_lock();
            self.listeners.read(&g).get(&port).cloned()
        };
        let Some(l) = l else {
            return false;
        };
        let core = CoreId(self.nic.steer(&flow));
        l.enqueue(flow, core)
    }

    /// Accepts a pending connection on `port` from `core`.
    pub fn accept(&self, port: u16, core: CoreId) -> Option<Connection> {
        let l = {
            let g = rcu::read_lock();
            self.listeners.read(&g).get(&port).cloned()
        };
        l?.accept(core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn udp_round_trip() {
        let stack = NetStack::new(NetConfig::pk(4));
        let server = stack.udp_bind(11211, CoreId(2)).unwrap();
        assert!(stack.udp_bind(11211, CoreId(0)).is_none(), "port taken");
        stack
            .udp_send(
                CoreId(0),
                SockAddr::new(1, 999),
                SockAddr::new(2, 11211),
                Bytes::from_static(b"hello"),
            )
            .unwrap();
        assert_eq!(stack.proto().usage(Protocol::Udp), 5);
        // Drain whichever queue the NIC steered to.
        let mut processed = 0;
        for c in 0..4 {
            processed += stack.process_rx(CoreId(c), 16);
        }
        assert_eq!(processed, 1);
        let dgram = server.recv().unwrap();
        assert_eq!(dgram.skb.data.as_ref(), b"hello");
        stack.release(CoreId(2), dgram.skb);
        assert_eq!(stack.proto().usage(Protocol::Udp), 0);
    }

    #[test]
    fn send_to_unbound_port_leaves_machine() {
        let stack = NetStack::new(NetConfig::pk(2));
        assert!(stack
            .udp_send(
                CoreId(0),
                SockAddr::new(1, 1),
                SockAddr::new(9, 9),
                Bytes::from_static(b"x"),
            )
            .is_ok());
        assert_eq!(stack.nic().pending(), 0);
        assert_eq!(stack.proto().usage(Protocol::Udp), 0);
    }

    #[test]
    fn tcp_accept_through_steering() {
        let stack = NetStack::new(NetConfig::pk(4));
        stack.listen(80);
        let flow = FlowHash {
            src_ip: 7,
            src_port: 1234,
            dst_ip: 8,
            dst_port: 80,
        };
        assert!(stack.incoming_connection(80, flow));
        let steered = CoreId(stack.nic().steer(&flow));
        let conn = stack.accept(80, steered).unwrap();
        assert!(conn.local, "accepted on the steered core");
        assert!(stack.accept(80, steered).is_none());
        assert!(!stack.incoming_connection(81, flow), "no listener");
    }

    #[test]
    fn bounded_backlog_refuses_incoming_connections() {
        let mut cfg = NetConfig::pk(4);
        cfg.accept_backlog_cap = 3;
        let stack = NetStack::new(cfg);
        stack.listen(80);
        let mk = |p: u16| FlowHash {
            src_ip: 7,
            src_port: p,
            dst_ip: 8,
            dst_port: 80,
        };
        for p in 0..3 {
            assert!(stack.incoming_connection(80, mk(p)));
        }
        assert!(!stack.incoming_connection(80, mk(3)), "cap must refuse");
        assert_eq!(
            stack
                .stats()
                .accept_overflows
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
        // Accepting a connection frees a slot.
        let steered = CoreId(stack.nic().steer(&mk(0)));
        stack.accept(80, steered).unwrap();
        assert!(stack.incoming_connection(80, mk(4)));
    }

    #[test]
    fn software_rfs_resteers_to_owner() {
        let mut cfg = NetConfig::stock(4);
        cfg.software_rfs = true;
        let stack = NetStack::new(cfg);
        let server = stack.udp_bind(5000, CoreId(3)).unwrap();
        // Defeat port pinning to force a hardware misdelivery, then let
        // software RFS fix it up.
        stack.nic().pin_port(5000, 1);
        stack
            .udp_send(
                CoreId(0),
                SockAddr::new(1, 7777),
                SockAddr::new(2, 5000),
                Bytes::from_static(b"hop"),
            )
            .unwrap();
        // The wrong core polls: the packet must hop, not deliver.
        assert_eq!(stack.process_rx(CoreId(1), 16), 1);
        assert!(server.recv().is_none(), "not delivered cross-core");
        // The owning core polls and gets it.
        assert_eq!(stack.process_rx(CoreId(3), 16), 1);
        let d = server.recv().expect("delivered after the RFS hop");
        assert_eq!(d.skb.data.as_ref(), b"hop");
        stack.release(CoreId(3), d.skb);
    }

    #[test]
    fn hot_destination_refcount_is_exercised() {
        let stack = NetStack::new(NetConfig::pk(2));
        stack.udp_bind(1000, CoreId(0)).unwrap();
        for i in 0..50 {
            stack
                .udp_send(
                    CoreId((i % 2) as usize),
                    SockAddr::new(1, 2000 + i),
                    SockAddr::new(2, 1000),
                    Bytes::from_static(b"q"),
                )
                .unwrap();
        }
        assert_eq!(stack.dst_cache().len(), 1, "one hot destination");
    }

    #[test]
    fn dropped_send_releases_buffer_and_charge() {
        // Regression: an rx-path drop used to leak the protocol charge
        // and the skb because only the unbound-port path released them.
        let faults = pk_fault::FaultPlane::with_seed(11);
        faults.set("net.rx_drop", pk_fault::FaultSchedule::EveryNth(1));
        faults.enable();
        let stack = NetStack::with_faults(NetConfig::pk(2), &faults);
        stack.udp_bind(7000, CoreId(0)).unwrap();
        let err = stack
            .udp_send(
                CoreId(0),
                SockAddr::new(1, 1),
                SockAddr::new(2, 7000),
                Bytes::from_static(b"lost"),
            )
            .unwrap_err();
        assert_eq!(
            err,
            NetError::Dropped(crate::error::DropReason::FaultInjected)
        );
        assert_eq!(stack.proto().usage(Protocol::Udp), 0, "charge released");
        assert_eq!(stack.nic().pending(), 0, "nothing queued");
    }
}
