//! Network stack substrate for the MOSBENCH userspace kernel.
//!
//! Models the parts of the Linux 2.6.35 network stack that the paper's
//! memcached and Apache workloads bottleneck on (§4.2, §4.3, §4.5,
//! Figure 1):
//!
//! * [`SkbPool`] — packet-buffer free lists: one NUMA-node-0 list (stock)
//!   or per-core free lists (PK), plus the DMA-buffer allocation policy.
//! * [`DstEntry`]/[`DstCache`] — the routing destination cache whose
//!   reference count serializes packet transmission (fixed with sloppy
//!   counters).
//! * [`ProtoAccounting`] — per-protocol memory usage counters (TCP/UDP),
//!   also moved to sloppy counters in PK.
//! * [`Nic`] — a multi-queue IXGBE-like card with a flow director:
//!   either hash-based steering of all of a connection's packets to one
//!   core (PK's configuration) or the stock sample-every-20th-TX-packet
//!   policy that misdirects short connections.
//! * [`Listener`] — a listening socket with a single shared backlog
//!   (stock) or per-core accept queues with stealing (PK §4.2).
//! * [`NetStack`] — the facade tying it together with UDP sockets and a
//!   minimal TCP-like connection lifecycle.

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

mod config;
mod dst;
mod error;
mod listener;
mod nic;
mod proto;
mod skb;
mod socket;
mod stack;
mod stats;

pub use config::NetConfig;
pub use dst::{DstCache, DstEntry};
pub use error::{DropReason, NetError, RxDrop};
pub use listener::{ConnRequest, Connection, Listener};
pub use nic::{FlowHash, Nic, RxPacket};
pub use proto::{ProtoAccounting, Protocol};
pub use skb::{Skb, SkbPool};
pub use socket::UdpSocket;
pub use stack::{NetStack, SockAddr};
pub use stats::NetStats;
