//! Property tests for the network stack.

use bytes::Bytes;
use pk_net::{FlowHash, Listener, NetConfig, NetStack, NetStats, SockAddr};
use pk_percpu::CoreId;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    /// Every enqueued connection is accepted exactly once, in any
    /// configuration and under any arrival pattern.
    #[test]
    fn listeners_conserve_connections(
        arrivals in proptest::collection::vec(0..8usize, 1..200),
        percore in prop::bool::ANY,
    ) {
        let mut cfg = NetConfig::pk(8);
        cfg.percore_accept_queues = percore;
        let l = Listener::new(80, cfg, Arc::new(NetStats::new()));
        for (i, &core) in arrivals.iter().enumerate() {
            l.enqueue(
                FlowHash { src_ip: i as u32, src_port: 1, dst_ip: 2, dst_port: 80 },
                CoreId(core),
            );
        }
        let mut seen = std::collections::HashSet::new();
        let mut accepted = 0;
        loop {
            let mut progress = false;
            for c in 0..8 {
                if let Some(conn) = l.accept(CoreId(c)) {
                    progress = true;
                    accepted += 1;
                    prop_assert!(seen.insert(conn.flow.src_ip), "double accept");
                }
            }
            if !progress {
                break;
            }
        }
        prop_assert_eq!(accepted, arrivals.len());
        prop_assert_eq!(l.backlog(), 0);
    }

    /// Flow-hash steering is deterministic and total: every flow maps to
    /// a valid queue, identical across calls.
    #[test]
    fn steering_is_a_pure_function(
        src_ip in any::<u32>(),
        src_port in any::<u16>(),
        dst_ip in any::<u32>(),
        dst_port in any::<u16>(),
    ) {
        let nic = pk_net::Nic::new(NetConfig::pk(48), Arc::new(NetStats::new()));
        let f = FlowHash { src_ip, src_port, dst_ip, dst_port };
        let q = nic.steer(&f);
        prop_assert!(q < 48);
        prop_assert_eq!(nic.steer(&f), q);
    }

    /// Protocol accounting balances for any send/receive/release
    /// interleaving: after draining, usage returns to zero.
    #[test]
    fn accounting_balances(
        sends in proptest::collection::vec((0..4usize, 1..64usize), 1..60),
        stock in prop::bool::ANY,
    ) {
        let cfg = if stock { NetConfig::stock(4) } else { NetConfig::pk(4) };
        let stack = NetStack::new(cfg);
        let socks: Vec<_> = (0..4)
            .map(|c| stack.udp_bind(4000 + c as u16, CoreId(c)).unwrap())
            .collect();
        for (i, &(target, len)) in sends.iter().enumerate() {
            stack.udp_send(
                CoreId(i % 4),
                SockAddr::new(i as u32, 999),
                SockAddr::new(1, 4000 + target as u16),
                Bytes::from(vec![0u8; len]),
            ).unwrap();
        }
        for c in 0..4 {
            stack.process_rx(CoreId(c), usize::MAX);
        }
        let mut received = 0;
        for (c, s) in socks.iter().enumerate() {
            while let Some(d) = s.recv() {
                stack.release(CoreId(c), d.skb);
                received += 1;
            }
        }
        prop_assert_eq!(received, sends.len());
        prop_assert_eq!(stack.proto().usage(pk_net::Protocol::Udp), 0);
        prop_assert_eq!(stack.nic().pending(), 0);
    }

    /// The skb pool never loses buffers: free count equals frees minus
    /// recycled allocations.
    #[test]
    fn skb_pool_conserves_buffers(ops in proptest::collection::vec((0..4usize, prop::bool::ANY), 1..100)) {
        let stats = Arc::new(NetStats::new());
        let pool = pk_net::SkbPool::new(NetConfig::pk(4), stats);
        let mut held: Vec<(usize, pk_net::Skb)> = Vec::new();
        for &(core, alloc) in &ops {
            if alloc || held.is_empty() {
                let skb = pool.alloc(CoreId(core), Bytes::from_static(b"b"));
                held.push((core, skb));
            } else {
                let (c, skb) = held.pop().unwrap();
                pool.free(CoreId(c), skb);
            }
        }
        let freed_now = held.len();
        for (c, skb) in held {
            pool.free(CoreId(c), skb);
        }
        prop_assert!(pool.free_count() >= freed_now);
    }
}

/// The stock sampling director eventually converges for a long-lived
/// connection: after the sampling period, packets follow the TX core.
#[test]
fn sampling_converges_for_long_flows() {
    let stats = Arc::new(NetStats::new());
    let nic = pk_net::Nic::new(NetConfig::stock(8), Arc::clone(&stats));
    let flow = FlowHash {
        src_ip: 42,
        src_port: 4242,
        dst_ip: 1,
        dst_port: 80,
    };
    let serving = CoreId(5);
    let mut local_after_convergence = true;
    for pkt in 0..100 {
        let steered = nic.steer(&flow);
        if pkt > 25 && steered != serving.index() {
            local_after_convergence = false;
        }
        nic.tx(serving, flow);
    }
    assert!(
        local_after_convergence,
        "after 20+ TX samples the flow must follow core 5"
    );
}
