//! The assembled kernel.

use crate::config::KernelConfig;
use crate::cputime::CpuAccounting;
use crate::error::KernelError;
use pk_fault::FaultPlane;
use pk_mm::{AddressSpace, MmStats, NumaAllocator};
use pk_net::NetStack;
use pk_percpu::CoreId;
use pk_proc::{Pid, ProcessTable, Scheduler};
use pk_vfs::Vfs;
use std::sync::Arc;

/// A running kernel instance: all substrates under one configuration.
///
/// The workloads drive this the way MOSBENCH drives Linux: through
/// syscall-shaped operations that touch the same data structures the
/// paper profiles. Every subsystem keeps its own contention statistics;
/// [`Kernel::cpu`] aggregates user/system time the way the figures
/// report it.
///
/// # Examples
///
/// ```
/// use pk_kernel::{Kernel, KernelConfig};
/// use pk_percpu::CoreId;
///
/// let k = Kernel::new(KernelConfig::pk(4));
/// let core = CoreId(0);
/// k.vfs().mkdir_p("/var/mail", core).unwrap();
/// let child = k.fork(pk_proc::Pid(1), core).unwrap();
/// k.vfs().write_file("/var/mail/u1", b"hello", core).unwrap();
/// k.exit(child, core).unwrap();
/// ```
#[derive(Debug)]
pub struct Kernel {
    config: KernelConfig,
    vfs: Vfs,
    net: NetStack,
    mm_stats: Arc<MmStats>,
    allocator: Arc<NumaAllocator>,
    procs: ProcessTable,
    sched: Scheduler,
    cpu: CpuAccounting,
    proc_stats: crate::procfs::ProcStats,
    faults: Arc<FaultPlane>,
}

impl Kernel {
    /// Boots a kernel under `config` with fault injection disabled.
    pub fn new(config: KernelConfig) -> Self {
        Self::with_faults(config, Arc::new(FaultPlane::disabled()))
    }

    /// Boots a kernel under `config` with every substrate wired to the
    /// given fault plane.
    ///
    /// The plane starts however the caller left it — typically disabled,
    /// so setup traffic runs fault-free; arm schedules and call
    /// [`FaultPlane::enable`] once the workload's steady state begins.
    pub fn with_faults(config: KernelConfig, faults: Arc<FaultPlane>) -> Self {
        let mm_stats = Arc::new(MmStats::new());
        let allocator = Arc::new(NumaAllocator::with_faults(
            config.mm(),
            Arc::clone(&mm_stats),
            &faults,
        ));
        Self {
            vfs: Vfs::with_faults(config.vfs(), &faults),
            net: NetStack::with_faults(config.net(), &faults),
            allocator,
            mm_stats,
            procs: ProcessTable::with_faults(&faults),
            sched: Scheduler::new(config.cores),
            cpu: CpuAccounting::new(config.cores),
            proc_stats: crate::procfs::ProcStats::default(),
            faults,
            config,
        }
    }

    /// The fault-injection plane this kernel was booted with.
    pub fn faults(&self) -> &Arc<FaultPlane> {
        &self.faults
    }

    /// Returns the configuration.
    pub fn config(&self) -> KernelConfig {
        self.config
    }

    /// The virtual file system.
    pub fn vfs(&self) -> &Vfs {
        &self.vfs
    }

    /// The network stack.
    pub fn net(&self) -> &NetStack {
        &self.net
    }

    /// The physical page allocator.
    pub fn allocator(&self) -> &Arc<NumaAllocator> {
        &self.allocator
    }

    /// Memory-management diagnostics.
    pub fn mm_stats(&self) -> &Arc<MmStats> {
        &self.mm_stats
    }

    /// The process table.
    pub fn procs(&self) -> &ProcessTable {
        &self.procs
    }

    /// The scheduler.
    pub fn sched(&self) -> &Scheduler {
        &self.sched
    }

    /// CPU-time accounting.
    pub fn cpu(&self) -> &CpuAccounting {
        &self.cpu
    }

    /// procfs read counters.
    pub fn proc_stats(&self) -> &crate::procfs::ProcStats {
        &self.proc_stats
    }

    /// Reads a synthesized `/proc` file (see [`crate::procfs`]).
    pub fn proc_read(&self, path: &str) -> Result<Vec<u8>, KernelError> {
        let _span = pk_trace::trace_span!("kernel.proc_read");
        crate::procfs::read(self, path)
    }

    /// Creates a fresh address space drawing from the kernel's allocator
    /// (one per process in the workloads that need memory modelling).
    pub fn new_address_space(&self) -> Arc<AddressSpace> {
        let _span = pk_trace::trace_span!("kernel.new_address_space");
        Arc::new(AddressSpace::new(
            self.config.mm(),
            Arc::clone(&self.allocator),
            Arc::clone(&self.mm_stats),
        ))
    }

    /// `fork(2)`: creates a child of `parent` on `core` and makes it
    /// runnable there.
    ///
    /// Fails with a transient [`KernelError::Proc`] (`EAGAIN`) when the
    /// `proc.fork_fail` fault fires; callers are expected to back off
    /// and retry.
    pub fn fork(&self, parent: Pid, core: CoreId) -> Result<Pid, KernelError> {
        let _span = pk_trace::trace_span!("kernel.fork");
        let child = self.procs.fork(parent, core)?;
        self.sched.enqueue(core, child.pid);
        Ok(child.pid)
    }

    /// `exit(2)` + immediate reap by the parent (the common Exim
    /// pattern).
    pub fn exit(&self, pid: Pid, _core: CoreId) -> Result<(), KernelError> {
        let _span = pk_trace::trace_span!("kernel.exit");
        let parent = self
            .procs
            .get(pid)
            .ok_or(pk_proc::ProcError::NoSuchProcess)?
            .parent;
        self.procs.exit(pid)?;
        self.procs.reap(parent, pid)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boots_stock_and_pk() {
        for cfg in [KernelConfig::stock(4), KernelConfig::pk(4)] {
            let k = Kernel::new(cfg);
            assert_eq!(k.config().cores, 4);
            assert_eq!(k.procs().len(), 1);
        }
    }

    #[test]
    fn fork_enqueues_child() {
        let k = Kernel::new(KernelConfig::pk(4));
        let pid = k.fork(Pid(1), CoreId(2)).unwrap();
        assert_eq!(k.sched().load(CoreId(2)), 1);
        assert_eq!(k.sched().pick_next(CoreId(2)), Some(pid));
        k.exit(pid, CoreId(2)).unwrap();
        assert_eq!(k.procs().len(), 1);
    }

    #[test]
    fn vfs_and_net_share_the_kernel() {
        let k = Kernel::new(KernelConfig::pk(4));
        k.vfs().mkdir_p("/srv", CoreId(0)).unwrap();
        k.vfs().write_file("/srv/f", b"x", CoreId(0)).unwrap();
        assert_eq!(k.vfs().read_file("/srv/f", CoreId(0)).unwrap(), b"x");
        assert!(k.net().udp_bind(53, CoreId(1)).is_some());
    }

    #[test]
    fn address_spaces_draw_from_shared_allocator() {
        let k = Kernel::new(KernelConfig::pk(4));
        let asp = k.new_address_space();
        let r = asp.mmap(8 << 10, pk_mm::PageSize::Base4K).unwrap();
        asp.touch_all(r, 0).unwrap();
        assert_eq!(
            k.mm_stats()
                .faults_4k
                .load(std::sync::atomic::Ordering::Relaxed),
            2
        );
    }

    #[test]
    fn faulted_kernel_surfaces_transient_errors() {
        let faults = Arc::new(FaultPlane::with_seed(42));
        faults.set("proc.fork_fail", pk_fault::FaultSchedule::EveryNth(1));
        let k = Kernel::with_faults(KernelConfig::pk(2), Arc::clone(&faults));

        // Fault-free until armed: setup traffic must not trip the plane.
        let child = k.fork(Pid(1), CoreId(0)).unwrap();
        k.exit(child, CoreId(0)).unwrap();

        faults.enable();
        let err = k.fork(Pid(1), CoreId(0)).unwrap_err();
        assert_eq!(
            err,
            KernelError::Proc(pk_proc::ProcError::ResourceExhausted)
        );
        assert!(err.is_transient());
        faults.disable();

        // The snapshot reports the injection.
        let snap = k.obs_snapshot();
        match &snap.find("fault.proc.fork_fail.injected").unwrap().value {
            pk_obs::MetricValue::Counter(n) => assert_eq!(*n, 1),
            v => panic!("wrong value kind: {v:?}"),
        }
    }

    #[test]
    fn cpu_accounting_is_reachable() {
        let k = Kernel::new(KernelConfig::pk(2));
        k.cpu().charge_system(CoreId(0), 10);
        assert_eq!(k.cpu().totals(), (0, 10));
    }
}
