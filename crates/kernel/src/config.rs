//! Kernel-wide configuration: which of the registered fixes are
//! applied (the 16 Figure-1 rows plus the generation-2 set).

use crate::fixes::{FixId, NUM_FIXES};
use pk_mm::MmConfig;
use pk_net::NetConfig;
use pk_sim::OverloadPolicy;
use pk_vfs::VfsConfig;

/// Which kind of kernel this configuration describes.
///
/// `Stock` and `Pk` are the paper's two endpoints. `Adaptive` is the
/// third personality (ROADMAP item 5): it *boots* with the same fix
/// set as stock — zero hand-placed fixes — but carries the machinery
/// for `pk-adapt` to enable fixes at runtime from observed contention,
/// and its functional substrates keep sloppy counters present but
/// degraded-to-central so the controller can promote them in place.
/// `Coarse` is the fourth personality (the coarse-grained-locking
/// point from the microkernel literature): the named fine-grained lock
/// classes are clustered into one coarse lock per subsystem, which
/// beats stock at low core counts (fewer acquisitions) and collapses
/// harder at scale (one merged queue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Personality {
    /// Stock Linux 2.6.35-rc5 semantics; the fix set is frozen.
    Stock,
    /// Stock with its lock classes clustered into a handful of coarse
    /// subsystem locks; the fix set is frozen at zero.
    Coarse,
    /// The hand-patched PK kernel; the fix set is frozen.
    Pk,
    /// Fixes start off and are flipped at runtime by `pk-adapt`.
    Adaptive,
}

/// A kernel build: core count plus the enabled fix set.
///
/// [`KernelConfig::stock`] is Linux 2.6.35-rc5; [`KernelConfig::pk`]
/// enables all 16 Figure-1 fixes; [`KernelConfig::adaptive`] starts
/// from zero fixes and lets the `pk-adapt` controller enable them;
/// [`KernelConfig::with_fix`] toggles individual fixes for ablation
/// studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelConfig {
    /// Number of cores the kernel serves.
    pub cores: usize,
    /// Sockets the cores are spread over. Per-socket sharding fixes
    /// (flow tables, page freelists) key their shard counts off this;
    /// defaults to the paper machine's 8 and is overridden via
    /// [`KernelConfig::with_sockets`] when lowering for a swept
    /// topology.
    sockets: usize,
    /// Which fixes are enabled (Figure-1 order, then generation 2).
    fixes: [bool; NUM_FIXES],
    /// Which personality this build is (stock / coarse / PK / adaptive).
    personality: Personality,
    /// Reclamation discipline for RCU-protected structures in every
    /// substrate: deferred `call_rcu` (true, the default) or blocking
    /// `synchronize()` on each writer. Orthogonal to the 16 fixes.
    deferred_reclamation: bool,
    /// Overload-survival posture for the serving layer: admission
    /// queue bound, shedding policy, SLO budget, deadline propagation
    /// and degradation hooks. [`OverloadPolicy::NONE`] (the default in
    /// both presets) reproduces the historical accept-everything
    /// behaviour, so this axis sweeps orthogonally to the 16 fixes.
    overload: OverloadPolicy,
}

impl KernelConfig {
    /// Stock Linux 2.6.35-rc5: no fixes.
    pub fn stock(cores: usize) -> Self {
        Self {
            cores,
            sockets: 8,
            fixes: [false; NUM_FIXES],
            personality: Personality::Stock,
            deferred_reclamation: true,
            overload: OverloadPolicy::NONE,
        }
    }

    /// The PK kernel: every registered fix (the 16 Figure-1 rows plus
    /// the generation-2 set).
    pub fn pk(cores: usize) -> Self {
        Self {
            cores,
            sockets: 8,
            fixes: [true; NUM_FIXES],
            personality: Personality::Pk,
            deferred_reclamation: true,
            overload: OverloadPolicy::NONE,
        }
    }

    /// The coarse kernel: stock's fix set (none), but tagged
    /// [`Personality::Coarse`] so the model layer clusters the named
    /// lock classes into one coarse lock per subsystem
    /// (`Network::coarsen`). The functional substrates boot
    /// stock-shaped — coarse clustering is a locking-spectrum point the
    /// reports sweep, not a separately implemented kernel.
    pub fn coarse(cores: usize) -> Self {
        Self {
            cores,
            sockets: 8,
            fixes: [false; NUM_FIXES],
            personality: Personality::Coarse,
            deferred_reclamation: true,
            overload: OverloadPolicy::NONE,
        }
    }

    /// The adaptive kernel: boots with zero fixes enabled, like stock,
    /// but tagged [`Personality::Adaptive`] so the substrates keep the
    /// runtime levers in place (sloppy counters allocated but degraded
    /// to central mode) for `pk-adapt` to promote once contention is
    /// observed. Fix flips happen via [`KernelConfig::with_fix`], driven
    /// by the controller, never by hand.
    pub fn adaptive(cores: usize) -> Self {
        Self {
            cores,
            sockets: 8,
            fixes: [false; NUM_FIXES],
            personality: Personality::Adaptive,
            deferred_reclamation: true,
            overload: OverloadPolicy::NONE,
        }
    }

    /// Returns a copy lowered for a machine with `sockets` sockets.
    /// Shard counts of the per-socket fixes follow this value.
    ///
    /// # Panics
    ///
    /// Panics if `sockets == 0`.
    pub fn with_sockets(mut self, sockets: usize) -> Self {
        assert!(sockets > 0, "a machine has at least one socket");
        self.sockets = sockets;
        self
    }

    /// Sockets this build is lowered for.
    pub fn sockets(&self) -> usize {
        self.sockets
    }

    /// Which personality this build is.
    pub fn personality(&self) -> Personality {
        self.personality
    }

    /// Returns a copy with the RCU reclamation discipline set: deferred
    /// `call_rcu` queues (`true`) or blocking `synchronize()` writers
    /// (`false`). Observable behaviour must be identical either way —
    /// `tests/config_equivalence.rs` holds the substrates to that.
    pub fn with_deferred_reclamation(mut self, deferred: bool) -> Self {
        self.deferred_reclamation = deferred;
        self
    }

    /// The configured RCU reclamation discipline.
    pub fn deferred_reclamation(&self) -> bool {
        self.deferred_reclamation
    }

    /// Returns a copy with the overload-survival posture set. Sweeps
    /// like any other axis: `KernelConfig::stock(48)` vs
    /// `KernelConfig::pk(48).with_overload(OverloadPolicy::shedding(..))`.
    pub fn with_overload(mut self, overload: OverloadPolicy) -> Self {
        self.overload = overload;
        self
    }

    /// The configured overload-survival posture.
    pub fn overload(&self) -> OverloadPolicy {
        self.overload
    }

    fn index(fix: FixId) -> usize {
        crate::fixes::FIXES
            .iter()
            .chain(crate::fixes::GEN2_FIXES.iter())
            .position(|f| f.id == fix)
            .expect("every FixId appears in FIXES or GEN2_FIXES")
    }

    /// Returns whether `fix` is enabled.
    pub fn has(&self, fix: FixId) -> bool {
        self.fixes[Self::index(fix)]
    }

    /// Returns a copy with `fix` set to `enabled`.
    pub fn with_fix(mut self, fix: FixId, enabled: bool) -> Self {
        self.fixes[Self::index(fix)] = enabled;
        self
    }

    /// Number of enabled fixes.
    pub fn enabled_count(&self) -> usize {
        self.fixes.iter().filter(|&&b| b).count()
    }

    /// Lowers the fix set onto the VFS substrate's configuration.
    ///
    /// The adaptive personality allocates sloppy refcounts even while
    /// their fixes are off, but boots them degraded to central mode:
    /// semantically identical to stock's atomic counters, yet leaving
    /// `restore_per_core` as a lever the controller can pull without a
    /// structure swap.
    pub fn vfs(&self) -> VfsConfig {
        let adaptive = self.personality == Personality::Adaptive;
        VfsConfig {
            cores: self.cores,
            sloppy_dentry_refs: adaptive || self.has(FixId::SloppyDentryRefs),
            sloppy_vfsmount_refs: adaptive || self.has(FixId::SloppyVfsmountRefs),
            refs_start_degraded: adaptive
                && !self.has(FixId::SloppyDentryRefs)
                && !self.has(FixId::SloppyVfsmountRefs),
            lockfree_dlookup: self.has(FixId::LockFreeDlookup),
            percore_mount_cache: self.has(FixId::PerCoreMountCache),
            percore_open_lists: self.has(FixId::PerCoreOpenLists),
            atomic_lseek: self.has(FixId::AtomicLseek),
            avoid_inode_list_locks: self.has(FixId::AvoidInodeListLocks),
            avoid_dcache_list_locks: self.has(FixId::AvoidDcacheListLocks),
            rcu_path_walk: self.has(FixId::RcuPathWalk),
            snzi_refs: self.has(FixId::SnziVfsRefs),
            sockets: self.sockets,
            deferred_reclamation: self.deferred_reclamation,
        }
    }

    /// Lowers the fix set onto the network substrate's configuration.
    pub fn net(&self) -> NetConfig {
        NetConfig {
            cores: self.cores,
            numa_nodes: self.sockets,
            flow_table_shards: if self.has(FixId::PerSocketFlowTables) {
                self.sockets
            } else {
                1
            },
            snzi_dst_refs: self.has(FixId::SnziNetRefs),
            sloppy_dst_refs: self.has(FixId::SloppyDstRefs),
            sloppy_proto_accounting: self.has(FixId::SloppyProtoAccounting),
            percore_skb_pools: self.has(FixId::LocalDmaBuffers),
            local_dma_alloc: self.has(FixId::LocalDmaBuffers),
            percore_accept_queues: self.has(FixId::ParallelAccept),
            hash_flow_steering: self.has(FixId::ParallelAccept),
            isolate_false_sharing: self.has(FixId::NetDeviceFalseSharing),
            // RFS is a software alternative the paper cites but PK does
            // not enable (it relies on hardware steering instead).
            software_rfs: false,
            deferred_reclamation: self.deferred_reclamation,
            accept_backlog_cap: self.overload.admission_cap as usize,
        }
    }

    /// Lowers the fix set onto the memory substrate's configuration.
    ///
    /// The page-freelist shard count is the NUMA node count: stock
    /// keeps the historical fixed 8 whatever the topology (the
    /// generation-2 problem), while [`FixId::PerSocketPageFreelists`]
    /// keys it off the actual socket count so every socket owns a
    /// freelist.
    pub fn mm(&self) -> MmConfig {
        let base = MmConfig::stock(self.cores);
        MmConfig {
            numa_nodes: if self.has(FixId::PerSocketPageFreelists) {
                self.sockets
            } else {
                base.numa_nodes
            },
            per_mapping_superpage_mutex: self.has(FixId::SuperPageFineLocking),
            nocache_superpage_zeroing: self.has(FixId::NoCacheSuperPageZeroing),
            split_page_layout: self.has(FixId::PageFalseSharing),
            deferred_reclamation: self.deferred_reclamation,
            ..base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stock_and_pk_extremes() {
        assert_eq!(KernelConfig::stock(48).enabled_count(), 0);
        assert_eq!(KernelConfig::pk(48).enabled_count(), NUM_FIXES);
        assert_eq!(KernelConfig::coarse(48).enabled_count(), 0);
        assert_eq!(
            KernelConfig::coarse(48).personality(),
            Personality::Coarse,
            "coarse differs from stock only by personality"
        );
    }

    #[test]
    fn sockets_key_the_per_socket_shards() {
        let pk = KernelConfig::pk(1024).with_sockets(64);
        assert_eq!(pk.sockets(), 64);
        assert_eq!(pk.net().flow_table_shards, 64);
        assert_eq!(pk.net().numa_nodes, 64);
        assert_eq!(pk.mm().numa_nodes, 64);
        // Stock ignores the topology: fixed shard counts are the
        // generation-2 problem being modeled.
        let stock = KernelConfig::stock(1024).with_sockets(64);
        assert_eq!(stock.net().flow_table_shards, 1);
        assert_eq!(stock.mm().numa_nodes, 8);
    }

    #[test]
    fn with_fix_toggles_one() {
        let c = KernelConfig::stock(8).with_fix(FixId::AtomicLseek, true);
        assert!(c.has(FixId::AtomicLseek));
        assert_eq!(c.enabled_count(), 1);
        assert!(c.vfs().atomic_lseek);
        assert!(!c.vfs().lockfree_dlookup);
    }

    #[test]
    fn lowering_is_consistent() {
        let pk = KernelConfig::pk(48);
        assert_eq!(pk.vfs(), VfsConfig::pk(48));
        assert_eq!(pk.net(), NetConfig::pk(48));
        let stock = KernelConfig::stock(48);
        assert_eq!(stock.vfs(), VfsConfig::stock(48));
        assert_eq!(stock.net(), NetConfig::stock(48));
        assert_eq!(stock.mm(), MmConfig::stock(48));
        assert_eq!(pk.mm(), MmConfig::pk(48));
    }

    #[test]
    fn adaptive_boots_like_stock_with_levers_armed() {
        let a = KernelConfig::adaptive(48);
        assert_eq!(a.enabled_count(), 0, "zero hand-placed fixes at boot");
        assert_eq!(a.personality(), Personality::Adaptive);
        let v = a.vfs();
        assert!(v.sloppy_dentry_refs && v.sloppy_vfsmount_refs);
        assert!(v.refs_start_degraded, "counters boot degraded to central");
        // Once the controller promotes the sloppy-counter fixes, fresh
        // objects boot with per-core banks live.
        let promoted = a
            .with_fix(FixId::SloppyDentryRefs, true)
            .with_fix(FixId::SloppyVfsmountRefs, true);
        assert!(!promoted.vfs().refs_start_degraded);
        assert_eq!(promoted.personality(), Personality::Adaptive);
        // The net/mm substrates boot exactly like stock.
        assert_eq!(a.net(), KernelConfig::stock(48).net());
        assert_eq!(a.mm(), KernelConfig::stock(48).mm());
    }

    #[test]
    fn overload_policy_lowers_onto_the_accept_backlog() {
        use pk_sim::ShedPolicy;
        let base = KernelConfig::pk(48);
        assert_eq!(base.overload(), OverloadPolicy::NONE);
        assert_eq!(base.net().accept_backlog_cap, 0);
        let shedding = base.with_overload(OverloadPolicy::shedding(
            96,
            ShedPolicy::DropNewest,
            1_000_000,
        ));
        assert_eq!(shedding.net().accept_backlog_cap, 96);
        // The overload axis is part of config identity, like the fixes.
        assert_ne!(base, shedding);
    }
}
