//! The kernel-wide error type.
//!
//! Syscall-shaped entry points on [`crate::Kernel`] return
//! [`KernelError`] rather than per-substrate error enums, so callers
//! (the MOSBENCH drivers) handle every failure through one type — and
//! can ask the one question that matters for graceful degradation:
//! [`KernelError::is_transient`]. Transient errors are the ones fault
//! injection produces (ENOMEM, EAGAIN, dropped packets); a bounded
//! retry is the right response. Permanent errors (ENOENT, EEXIST, …)
//! must surface immediately.

use pk_mm::{FaultError, MmapError, OutOfMemory};
use pk_net::NetError;
use pk_proc::ProcError;
use pk_vfs::VfsError;
use std::fmt;

/// Any error a [`crate::Kernel`] syscall surface can return.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelError {
    /// A file-system operation failed.
    Vfs(VfsError),
    /// A process-table operation failed.
    Proc(ProcError),
    /// A page allocation failed.
    Mm(OutOfMemory),
    /// An mmap/munmap call was malformed (empty mapping, unknown
    /// region). Usage errors, never transient.
    Mmap(MmapError),
    /// A page fault could not be served: transient when physical
    /// memory ran out, permanent for a wild access.
    Fault(FaultError),
    /// A network operation failed.
    Net(NetError),
    /// A procfs read named a file that does not exist.
    NoSuchProcFile,
    /// On-disk data failed to parse (a corrupt index or database file).
    ///
    /// Carries a static description of what was malformed. Corruption
    /// is never transient: retrying re-reads the same bytes.
    Corrupt(&'static str),
    /// The kernel refused the request at admission: the bounded
    /// backlog configured by [`crate::OverloadPolicy`] was full, or a
    /// load-shedding policy sacrificed this request. Transient by
    /// definition — shedding exists precisely so clients back off and
    /// retry into a queue that still has headroom.
    Overloaded,
    /// The request exhausted its deadline/SLO budget before the work
    /// finished. *Not* transient: the budget is gone, so retrying the
    /// same request inside the same deadline only deepens overload
    /// (retry amplification); the caller must fail upward or issue a
    /// fresh request with a fresh budget.
    Timeout,
}

impl KernelError {
    /// Reports whether retrying the failed operation later may succeed.
    ///
    /// This is the contract the workload retry loops are built on:
    /// resource exhaustion (`ENOMEM`, `EAGAIN`) and packet loss are
    /// transient — the very failures the fault plane injects — while
    /// name-space errors (`ENOENT`, `EEXIST`, `ENOTDIR`, …) are
    /// permanent and retrying them only hides bugs.
    pub fn is_transient(self) -> bool {
        match self {
            Self::Vfs(e) => matches!(e, VfsError::OutOfMemory | VfsError::Busy),
            Self::Proc(e) => matches!(e, ProcError::ResourceExhausted),
            Self::Mm(_) => true,
            Self::Mmap(_) => false,
            Self::Fault(e) => matches!(e, FaultError::Oom(_)),
            Self::Net(_) => true,
            Self::NoSuchProcFile => false,
            Self::Corrupt(_) => false,
            Self::Overloaded => true,
            Self::Timeout => false,
        }
    }
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Vfs(e) => write!(f, "vfs: {e}"),
            Self::Proc(e) => write!(f, "proc: {e}"),
            Self::Mm(e) => write!(f, "mm: {e}"),
            Self::Mmap(e) => write!(f, "mmap: {e}"),
            Self::Fault(e) => write!(f, "fault: {e}"),
            Self::Net(e) => write!(f, "net: {e}"),
            Self::NoSuchProcFile => f.write_str("no such /proc file"),
            Self::Corrupt(what) => write!(f, "corrupt data: {what}"),
            Self::Overloaded => f.write_str("overloaded: admission refused"),
            Self::Timeout => f.write_str("deadline exhausted"),
        }
    }
}

impl std::error::Error for KernelError {}

impl From<VfsError> for KernelError {
    fn from(e: VfsError) -> Self {
        Self::Vfs(e)
    }
}

impl From<ProcError> for KernelError {
    fn from(e: ProcError) -> Self {
        Self::Proc(e)
    }
}

impl From<OutOfMemory> for KernelError {
    fn from(e: OutOfMemory) -> Self {
        Self::Mm(e)
    }
}

impl From<MmapError> for KernelError {
    fn from(e: MmapError) -> Self {
        Self::Mmap(e)
    }
}

impl From<FaultError> for KernelError {
    fn from(e: FaultError) -> Self {
        Self::Fault(e)
    }
}

impl From<NetError> for KernelError {
    fn from(e: NetError) -> Self {
        Self::Net(e)
    }
}

impl From<crate::procfs::NoSuchProcFile> for KernelError {
    fn from(_: crate::procfs::NoSuchProcFile) -> Self {
        Self::NoSuchProcFile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pk_net::DropReason;

    #[test]
    fn transience_matches_the_retry_contract() {
        assert!(KernelError::from(VfsError::OutOfMemory).is_transient());
        assert!(KernelError::from(ProcError::ResourceExhausted).is_transient());
        assert!(KernelError::from(OutOfMemory).is_transient());
        assert!(KernelError::from(FaultError::Oom(OutOfMemory)).is_transient());
        assert!(!KernelError::from(FaultError::Segfault).is_transient());
        assert!(!KernelError::from(MmapError::NoSuchRegion).is_transient());
        assert!(KernelError::from(NetError::Backpressure).is_transient());
        assert!(KernelError::from(NetError::Dropped(DropReason::LinkDown)).is_transient());

        // Overload is transient (back off, retry into a drained
        // queue); a missed deadline is not (the budget is spent).
        assert!(KernelError::Overloaded.is_transient());
        assert!(!KernelError::Timeout.is_transient());

        assert!(!KernelError::from(VfsError::NotFound).is_transient());
        assert!(!KernelError::from(ProcError::NoSuchProcess).is_transient());
        assert!(!KernelError::NoSuchProcFile.is_transient());
        assert!(!KernelError::Corrupt("bad index line").is_transient());
    }

    #[test]
    fn displays_name_the_substrate() {
        assert_eq!(
            KernelError::from(VfsError::NotFound).to_string(),
            "vfs: no such file or directory"
        );
        assert_eq!(
            KernelError::from(ProcError::ResourceExhausted).to_string(),
            "proc: resource temporarily unavailable"
        );
        assert_eq!(
            KernelError::NoSuchProcFile.to_string(),
            "no such /proc file"
        );
        assert_eq!(
            KernelError::Corrupt("missing tab").to_string(),
            "corrupt data: missing tab"
        );
        assert_eq!(
            KernelError::Overloaded.to_string(),
            "overloaded: admission refused"
        );
        assert_eq!(KernelError::Timeout.to_string(), "deadline exhausted");
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn std::error::Error> = Box::new(KernelError::NoSuchProcFile);
        assert!(e.source().is_none());
    }
}
