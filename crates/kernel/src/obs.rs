//! Kernel-wide observability: one call gathers every subsystem's
//! contention counters into a [`pk_obs::Snapshot`].
//!
//! This is the functional-kernel counterpart of the simulator's
//! per-station snapshot: the same names the queueing models use for
//! their stations (e.g. `vfsmount-table lock`) appear here with
//! *measured* acquisition and contention counts, so a report can put
//! model and measurement side by side.

use crate::kernel::Kernel;
use pk_obs::{LockSample, Sample, Snapshot};
use std::sync::atomic::{AtomicU64, Ordering};

fn load(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed)
}

impl Kernel {
    /// Samples every subsystem's contention counters.
    ///
    /// The snapshot contains lock samples for the shared locks the
    /// paper singles out, central-vs-local operation mixes for every
    /// substrate that keeps them, and plain counters for CPU time and
    /// fault totals.
    pub fn obs_snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::new();

        // The vfsmount-table lock: the stock kernel's Exim bottleneck
        // (Figure 4), sampled from the real SpinLock's stats.
        snap.push(
            self.vfs()
                .mounts()
                .central_lock_stats()
                .sample("vfsmount-table lock"),
        );

        // NUMA page-allocator node locks, aggregated across nodes.
        let nodes = self.config().mm().numa_nodes;
        let mut agg = LockSample {
            acquisitions: 0,
            contended: 0,
            spin_cycles: 0,
        };
        for node in 0..nodes {
            let s = self.allocator().node_lock_stats(node);
            agg.acquisitions += s.acquisitions();
            agg.contended += s.contended();
            agg.spin_cycles += s.spin_cycles();
        }
        snap.push(Sample::lock("numa-node free-list locks", agg));

        // Central-vs-local operation mixes: the quantity every PK fix
        // drives toward "local".
        let v = self.vfs().stats();
        snap.push(Sample::op_mix(
            "vfs.mount-lookup",
            load(&v.mount_central_lookups),
            load(&v.mount_percore_hits),
        ));
        snap.push(Sample::op_mix(
            "vfs.dentry-lookup",
            load(&v.dentry_lock_acquisitions),
            load(&v.lockfree_lookups),
        ));
        snap.push(Sample::op_mix(
            "vfs.open-file-list",
            load(&v.open_list_global_ops),
            load(&v.open_list_percore_ops),
        ));
        snap.push(Sample::op_mix(
            "vfs.lseek",
            load(&v.lseek_mutex_acquisitions),
            load(&v.lseek_atomic_reads),
        ));
        snap.push(Sample::op_mix(
            "vfs.events",
            v.shared_events(),
            v.local_events(),
        ));

        let n = self.net().stats();
        snap.push(Sample::op_mix(
            "net.skb-alloc",
            load(&n.skb_global_allocs),
            load(&n.skb_percore_allocs),
        ));
        snap.push(Sample::op_mix(
            "net.dst-cache",
            load(&n.dst_shared_ops),
            load(&n.dst_local_ops),
        ));
        snap.push(Sample::op_mix(
            "net.accept-queue",
            load(&n.accept_shared_queue),
            load(&n.accept_local_queue),
        ));

        let m = self.mm_stats();
        snap.push(Sample::op_mix(
            "mm.superpage-mutex",
            load(&m.superpage_global_mutex),
            load(&m.superpage_local_mutex),
        ));
        snap.push(Sample::op_mix(
            "mm.page-alloc-node",
            load(&m.remote_node_allocs),
            load(&m.local_node_allocs),
        ));

        // Plain totals.
        snap.push(Sample::counter("mm.faults", self.mm_stats().faults()));
        snap.push(Sample::counter(
            "proc.stat-reads",
            load(&self.proc_stats().stat_reads),
        ));
        let (user, system) = self.cpu().totals();
        snap.push(Sample::counter("cpu.user-cycles", user));
        snap.push(Sample::counter("cpu.system-cycles", system));

        // Fault-injection counters: `fault.<point>.checked` and
        // `fault.<point>.injected` for every registered point, so chaos
        // runs report injected failures next to the contention they cause.
        pk_obs::Collect::collect(self.faults().as_ref(), &mut snap);

        // RCU reclamation counters (`rcu.*`): process-global, since the
        // epoch machinery is shared by every kernel in the process. They
        // let chaos runs assert no deferred callback leaked or ran twice
        // (`rcu.call_rcu == rcu.deferred_freed + rcu.deferred_pending`).
        pk_obs::Collect::collect(&pk_sync::rcu::RcuObs, &mut snap);

        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KernelConfig;
    use pk_obs::MetricValue;
    use pk_percpu::CoreId;

    #[test]
    fn snapshot_names_the_mount_lock() {
        let k = Kernel::new(KernelConfig::stock(4));
        // Drive some VFS traffic through the kernel so the counters move.
        let core = CoreId(0);
        k.vfs().mkdir_p("/var/spool/exim", core).unwrap();
        k.vfs()
            .write_file("/var/spool/exim/input", b"hello", core)
            .unwrap();
        for _ in 0..10 {
            k.vfs().read_file("/var/spool/exim/input", core).unwrap();
        }
        let snap = k.obs_snapshot();
        let lock = snap
            .find("vfsmount-table lock")
            .expect("mount lock sampled");
        match &lock.value {
            MetricValue::Lock(l) => {
                assert!(l.acquisitions > 0, "path resolution takes the mount lock")
            }
            v => panic!("wrong value kind: {v:?}"),
        }
        assert!(snap.find("vfs.events").is_some());
        assert!(snap.find("cpu.user-cycles").is_some());
        assert!(
            snap.find("rcu.call_rcu").is_some(),
            "RCU reclamation counters are part of the kernel snapshot"
        );
    }

    #[test]
    fn pk_kernel_keeps_mount_lookups_local() {
        let stock = Kernel::new(KernelConfig::stock(4));
        let pk = Kernel::new(KernelConfig::pk(4));
        for k in [&stock, &pk] {
            k.vfs().mkdir_p("/tmp/a", CoreId(1)).unwrap();
            for _ in 0..50 {
                let _ = k.vfs().stat("/tmp/a", CoreId(1));
            }
        }
        let mix = |k: &Kernel| match &k.obs_snapshot().find("vfs.mount-lookup").unwrap().value {
            MetricValue::OpMix { central, local } => (*central, *local),
            v => panic!("wrong value kind: {v:?}"),
        };
        let (stock_central, _) = mix(&stock);
        let (pk_central, pk_local) = mix(&pk);
        assert!(
            pk_central < stock_central,
            "PK per-core mount caches shed central lookups: stock={stock_central}, pk={pk_central}"
        );
        assert!(pk_local > 0, "PK serves lookups from per-core caches");
    }
}
