//! The 16 Figure-1 fixes as data.

use std::fmt;

/// A MOSBENCH application named in Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum App {
    /// The Exim mail server.
    Exim,
    /// memcached.
    Memcached,
    /// Apache serving static files.
    Apache,
    /// PostgreSQL.
    PostgreSql,
    /// Parallel gmake.
    Gmake,
    /// Psearchy's pedsort indexer.
    Pedsort,
    /// The Metis MapReduce library.
    Metis,
}

impl fmt::Display for App {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::Exim => "Exim",
            Self::Memcached => "memcached",
            Self::Apache => "Apache",
            Self::PostgreSql => "PostgreSQL",
            Self::Gmake => "gmake",
            Self::Pedsort => "pedsort",
            Self::Metis => "Metis",
        };
        f.write_str(s)
    }
}

/// Identifies one of the paper's 16 kernel scalability fixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FixId {
    /// Per-core backlog queues for listening sockets (§4.2).
    ParallelAccept,
    /// Sloppy counters for dentry reference counting.
    SloppyDentryRefs,
    /// Sloppy counters for vfsmount reference counting.
    SloppyVfsmountRefs,
    /// Sloppy counters for dst_entry reference counting.
    SloppyDstRefs,
    /// Sloppy counters for protocol memory usage tracking.
    SloppyProtoAccounting,
    /// Lock-free dlookup comparison protocol (§4.4).
    LockFreeDlookup,
    /// Per-core mount-table caches (§4.5).
    PerCoreMountCache,
    /// Per-core open-file lists (§4.5).
    PerCoreOpenLists,
    /// Local-node DMA buffer allocation (§4.5).
    LocalDmaBuffers,
    /// net_device/device false-sharing fix (§4.6).
    NetDeviceFalseSharing,
    /// struct page false-sharing fix (§4.6).
    PageFalseSharing,
    /// Avoid unnecessary inode-list lock acquisitions (§4.7).
    AvoidInodeListLocks,
    /// Avoid unnecessary dcache-list lock acquisitions (§4.7).
    AvoidDcacheListLocks,
    /// Atomic-read lseek, no per-inode mutex (§4.7, §5.5).
    AtomicLseek,
    /// Per-mapping super-page mutexes (§4.7, §5.8).
    SuperPageFineLocking,
    /// Non-caching super-page zeroing (§5.8).
    NoCacheSuperPageZeroing,
    // ---- Generation-2 fixes (the §7 "past 48 cores" extension). ----
    // These are not Figure-1 rows: they relieve the structures that
    // become the bottleneck only after the paper's 16 fixes are in and
    // the core count keeps growing. They live in a separate table
    // (`GEN2_FIXES`) so the Figure-1 registry stays exactly 16 rows.
    /// End-to-end RCU-walk path resolution: the whole path walk is
    /// lock-free and reference-free, validated by dentry seqcounts,
    /// falling back to the locked walk on a torn generation.
    RcuPathWalk,
    /// SNZI-tree refcounts for VFS objects (dentry/vfsmount): a
    /// per-socket counter tree whose surplus propagation keeps the
    /// root line quiet where flat sloppy counters saturate.
    SnziVfsRefs,
    /// SNZI-tree refcounts for network objects (dst entries).
    SnziNetRefs,
    /// Per-socket sharding of the NIC flow-steering tables.
    PerSocketFlowTables,
    /// Per-socket sharding of the mm page freelists, keyed off the
    /// machine topology instead of a fixed node count.
    PerSocketPageFreelists,
}

/// Figure-1 metadata for one fix.
#[derive(Debug, Clone, Copy)]
pub struct Fix {
    /// Which fix.
    pub id: FixId,
    /// Figure-1 row title.
    pub name: &'static str,
    /// The problem sentence.
    pub problem: &'static str,
    /// The solution sentence ("⇒" column).
    pub solution: &'static str,
    /// Applications the row names.
    pub apps: &'static [App],
    /// The kernel structure the fix relieves, as a stable class name.
    ///
    /// Workload models tag the [`pk_sim::Station`] that models a
    /// structure's contention with the same string (`Station::with_class`),
    /// which is what lets `pk-adapt` go from an *observed* hot structure
    /// to the lever that relieves it without any per-workload table: the
    /// mapping lives here, with the fix, not in the controller.
    pub class: &'static str,
}

/// Looks up the fix registered for a kernel-structure class name.
///
/// This is the kernel-global observation→lever map the adaptive
/// personality uses: a contended station tagged `"vfs.mount_table"`
/// resolves to [`FixId::PerCoreMountCache`] no matter which workload
/// exposed the contention. Returns `None` for classes with no
/// registered lever (app-level structures).
pub fn fix_for_class(class: &str) -> Option<FixId> {
    FIXES
        .iter()
        .chain(GEN2_FIXES.iter())
        .find(|f| f.class == class)
        .map(|f| f.id)
}

/// Total number of registered fixes (Figure-1 plus generation 2) — the
/// width of [`crate::KernelConfig`]'s fix vector.
pub const NUM_FIXES: usize = FIXES.len() + GEN2_FIXES.len();

/// All 16 fixes in Figure-1 order.
pub const FIXES: [Fix; 16] = [
    Fix {
        id: FixId::ParallelAccept,
        class: "net.accept_queue",
        name: "Parallel accept",
        problem: "Concurrent accept system calls contend on shared socket fields.",
        solution: "User per-core backlog queues for listening sockets.",
        apps: &[App::Apache],
    },
    Fix {
        id: FixId::SloppyDentryRefs,
        class: "vfs.dentry_ref",
        name: "dentry reference counting",
        problem: "File name resolution contends on directory entry reference counts.",
        solution: "Use sloppy counters to reference count directory entry objects.",
        apps: &[App::Apache, App::Exim],
    },
    Fix {
        id: FixId::SloppyVfsmountRefs,
        class: "vfs.vfsmount_ref",
        name: "Mount point (vfsmount) reference counting",
        problem: "Walking file name paths contends on mount point reference counts.",
        solution: "Use sloppy counters for mount point objects.",
        apps: &[App::Apache, App::Exim],
    },
    Fix {
        id: FixId::SloppyDstRefs,
        class: "net.dst_ref",
        name: "IP packet destination (dst entry) reference counting",
        problem: "IP packet transmission contends on routing table entries.",
        solution: "Use sloppy counters for IP routing table entries.",
        apps: &[App::Memcached, App::Apache],
    },
    Fix {
        id: FixId::SloppyProtoAccounting,
        class: "net.proto_accounting",
        name: "Protocol memory usage tracking",
        problem: "Cores contend on counters for tracking protocol memory consumption.",
        solution: "Use sloppy counters for protocol usage counting.",
        apps: &[App::Memcached, App::Apache],
    },
    Fix {
        id: FixId::LockFreeDlookup,
        class: "vfs.dentry_lock",
        name: "Acquiring directory entry (dentry) spin locks",
        problem: "Walking file name paths contends on per-directory entry spin locks.",
        solution: "Use a lock-free protocol in dlookup for checking filename matches.",
        apps: &[App::Apache, App::Exim],
    },
    Fix {
        id: FixId::PerCoreMountCache,
        class: "vfs.mount_table",
        name: "Mount point table spin lock",
        problem: "Resolving path names to mount points contends on a global spin lock.",
        solution: "Use per-core mount table caches.",
        apps: &[App::Apache, App::Exim],
    },
    Fix {
        id: FixId::PerCoreOpenLists,
        class: "vfs.open_list",
        name: "Adding files to the open list",
        problem: "Cores contend on a per-super block list that tracks open files.",
        solution: "Use per-core open file lists for each super block that has open files.",
        apps: &[App::Apache, App::Exim],
    },
    Fix {
        id: FixId::LocalDmaBuffers,
        class: "net.dma_node0",
        name: "Allocating DMA buffers",
        problem: "DMA memory allocations contend on the memory node 0 spin lock.",
        solution: "Allocate Ethernet device DMA buffers from the local memory node.",
        apps: &[App::Memcached, App::Apache],
    },
    Fix {
        id: FixId::NetDeviceFalseSharing,
        class: "net.device_line",
        name: "False sharing in net device and device",
        problem: "False sharing causes contention for read-only structure fields.",
        solution: "Place read-only fields on their own cache lines.",
        apps: &[App::Memcached, App::Apache, App::PostgreSql],
    },
    Fix {
        id: FixId::PageFalseSharing,
        class: "mm.page_line",
        name: "False sharing in page",
        problem: "False sharing causes contention for read-mostly structure fields.",
        solution: "Place read-only fields on their own cache lines.",
        apps: &[App::Exim],
    },
    Fix {
        id: FixId::AvoidInodeListLocks,
        class: "vfs.inode_list",
        name: "inode lists",
        problem: "Cores contend on global locks protecting lists used to track inodes.",
        solution: "Avoid acquiring the locks when not necessary.",
        apps: &[App::Memcached, App::Apache],
    },
    Fix {
        id: FixId::AvoidDcacheListLocks,
        class: "vfs.dcache_list",
        name: "Dcache lists",
        problem: "Cores contend on global locks protecting lists used to track dentrys.",
        solution: "Avoid acquiring the locks when not necessary.",
        apps: &[App::Memcached, App::Apache],
    },
    Fix {
        id: FixId::AtomicLseek,
        class: "vfs.inode_lseek_mutex",
        name: "Per-inode mutex",
        problem: "Cores contend on a per-inode mutex in lseek.",
        solution: "Use atomic reads to eliminate the need to acquire the mutex.",
        apps: &[App::PostgreSql],
    },
    Fix {
        id: FixId::SuperPageFineLocking,
        class: "mm.super_page_mutex",
        name: "Super-page fine grained locking",
        problem: "Super-page soft page faults contend on a per-process mutex.",
        solution: "Protect each super-page memory mapping with its own mutex.",
        apps: &[App::Metis],
    },
    Fix {
        id: FixId::NoCacheSuperPageZeroing,
        class: "mm.super_page_zeroing",
        name: "Zeroing super-pages",
        problem: "Zeroing super-pages flushes the contents of on-chip caches.",
        solution: "Use non-caching instructions to zero the contents of super-pages.",
        apps: &[App::Metis],
    },
];

/// The generation-2 fixes: what the roster's post-48-core profiles
/// attribute the *next* collapse to once the Figure-1 set is applied
/// and the topology grows past the paper's machine (§7's open
/// question). Same shape as [`FIXES`] so the adaptive controller's
/// class→lever map extends to them without new plumbing, but kept in a
/// separate table: the Figure-1 registry is historical record and must
/// stay exactly 16 rows.
pub const GEN2_FIXES: [Fix; 5] = [
    Fix {
        id: FixId::RcuPathWalk,
        class: "vfs.path_walk",
        name: "End-to-end RCU path walk",
        problem: "Per-component dentry get/put traffic grows with core count until the \
                  walk itself is the bottleneck.",
        solution: "Resolve whole paths lock-free under seqcount validation, falling back \
                   to the locked walk on rename/unlink races.",
        apps: &[App::Exim, App::Apache, App::PostgreSql],
    },
    Fix {
        id: FixId::SnziVfsRefs,
        class: "vfs.dentry_ref_scale",
        name: "SNZI-tree VFS reference counts",
        problem: "Flat per-core refcount banks still funnel misses into one central line, \
                  which saturates past 48 cores.",
        solution: "Use an SNZI tree of per-socket counters with surplus propagation for \
                   dentry and vfsmount references.",
        apps: &[App::Exim, App::Apache],
    },
    Fix {
        id: FixId::SnziNetRefs,
        class: "net.dst_ref_scale",
        name: "SNZI-tree network reference counts",
        problem: "dst-entry refcount misses contend on the central counter line at high \
                  core counts.",
        solution: "Use an SNZI tree of per-socket counters for dst entries.",
        apps: &[App::Memcached, App::Apache],
    },
    Fix {
        id: FixId::PerSocketFlowTables,
        class: "net.flow_table",
        name: "Per-socket flow-steering tables",
        problem: "Flow-director updates from every transmitting core serialize on one \
                  flow-table lock.",
        solution: "Shard the flow-steering table per socket, keyed off the machine \
                   topology.",
        apps: &[App::Memcached, App::Apache],
    },
    Fix {
        id: FixId::PerSocketPageFreelists,
        class: "mm.page_freelist",
        name: "Per-socket page freelists",
        problem: "A fixed number of page freelists is shared by ever more sockets as the \
                  topology grows.",
        solution: "Key the freelist shard count off the machine topology so every socket \
                   owns a freelist.",
        apps: &[App::Gmake, App::Pedsort, App::Metis],
    },
];

/// Lines of kernel change the paper reports for the whole fix set.
pub const LINES_ADDED: u32 = 2617;
/// Lines removed by the fix set.
pub const LINES_REMOVED: u32 = 385;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_sixteen_fixes() {
        assert_eq!(FIXES.len(), 16);
        let mut ids: Vec<FixId> = FIXES.iter().map(|f| f.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 16, "fix ids are unique");
    }

    #[test]
    fn gen2_registry_is_disjoint_and_classed() {
        assert_eq!(NUM_FIXES, 21);
        let mut ids: Vec<FixId> = FIXES
            .iter()
            .chain(GEN2_FIXES.iter())
            .map(|f| f.id)
            .collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), NUM_FIXES, "no id appears in both tables");
        let mut classes: Vec<&str> = FIXES
            .iter()
            .chain(GEN2_FIXES.iter())
            .map(|f| f.class)
            .collect();
        classes.sort();
        classes.dedup();
        assert_eq!(classes.len(), NUM_FIXES, "class names stay unique");
    }

    #[test]
    fn fix_for_class_resolves_both_generations() {
        assert_eq!(
            fix_for_class("vfs.mount_table"),
            Some(FixId::PerCoreMountCache)
        );
        assert_eq!(fix_for_class("vfs.path_walk"), Some(FixId::RcuPathWalk));
        assert_eq!(
            fix_for_class("mm.page_freelist"),
            Some(FixId::PerSocketPageFreelists)
        );
        assert_eq!(fix_for_class("app.lock_manager"), None);
    }

    #[test]
    fn every_fix_names_at_least_one_app() {
        for f in FIXES {
            assert!(!f.apps.is_empty(), "{} names no app", f.name);
            assert!(!f.problem.is_empty());
            assert!(!f.solution.is_empty());
        }
    }

    #[test]
    fn loc_totals_match_paper() {
        assert_eq!(LINES_ADDED as i64 - LINES_REMOVED as i64, 2232);
        // "Modifying the kernel required in total 3002 lines of code
        // changes" = added + removed.
        assert_eq!(LINES_ADDED + LINES_REMOVED, 3002);
    }

    #[test]
    fn sloppy_counter_fixes_cover_four_objects() {
        let sloppy = FIXES
            .iter()
            .filter(|f| f.solution.contains("sloppy counter") || f.solution.contains("sloppy"))
            .count();
        assert_eq!(sloppy, 4, "dentry, vfsmount, dst_entry, proto accounting");
    }
}
