//! A synthesized `/proc` (procfs).
//!
//! §5.2's first Exim fix is an *application* change: "Berkeley DB v4.6
//! reads `/proc/stat` to find the number of cores. This consumed about
//! 20% of the total runtime, so we modified Berkeley DB to aggressively
//! cache this information." To reproduce that, the kernel must actually
//! serve `/proc/stat` — this module synthesizes it (and a few friends)
//! on demand from live kernel state, like the real procfs.

use crate::kernel::Kernel;
use pk_percpu::CoreId;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts reads of each synthesized file (the §5.2 diagnostic).
#[derive(Debug, Default)]
pub struct ProcStats {
    /// Reads of `/proc/stat`.
    pub stat_reads: AtomicU64,
    /// Reads of any other procfs path.
    pub other_reads: AtomicU64,
}

/// Errors from procfs reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoSuchProcFile;

impl std::fmt::Display for NoSuchProcFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("no such /proc file")
    }
}

impl std::error::Error for NoSuchProcFile {}

/// Synthesizes the contents of a procfs `path` from `kernel` state.
///
/// Supported paths: `/proc/stat`, `/proc/cpuinfo`, `/proc/loadavg`,
/// `/proc/meminfo`. Unknown paths fail with
/// [`KernelError::NoSuchProcFile`].
pub fn read(kernel: &Kernel, path: &str) -> Result<Vec<u8>, crate::KernelError> {
    let stats = kernel.proc_stats();
    match path {
        "/proc/stat" => {
            stats.stat_reads.fetch_add(1, Ordering::Relaxed);
            let mut out = String::new();
            let (user, system) = kernel.cpu().totals();
            // Writes into a String are infallible; ignore the Result
            // rather than panicking on a syscall-facing path.
            let _ = writeln!(out, "cpu  {user} 0 {system} 0 0 0 0 0 0 0");
            for core in 0..kernel.config().cores {
                let (u, s) = kernel.cpu().of(CoreId(core));
                let _ = writeln!(out, "cpu{core} {u} 0 {s} 0 0 0 0 0 0 0");
            }
            let _ = writeln!(out, "processes {}", kernel.procs().fork_count());
            Ok(out.into_bytes())
        }
        "/proc/cpuinfo" => {
            stats.other_reads.fetch_add(1, Ordering::Relaxed);
            let mut out = String::new();
            for core in 0..kernel.config().cores {
                let _ = writeln!(out, "processor\t: {core}");
                let _ = writeln!(out, "model name\t: AMD Opteron(tm) Processor 8431");
                let _ = writeln!(out);
            }
            Ok(out.into_bytes())
        }
        "/proc/loadavg" => {
            stats.other_reads.fetch_add(1, Ordering::Relaxed);
            let load = kernel.sched().total_load();
            Ok(format!(
                "{load}.00 {load}.00 {load}.00 1/{} 1\n",
                kernel.procs().len()
            )
            .into_bytes())
        }
        "/proc/meminfo" => {
            stats.other_reads.fetch_add(1, Ordering::Relaxed);
            let free: u64 = (0..8).map(|n| kernel.allocator().free_pages(n)).sum();
            Ok(format!("MemFree: {} kB\n", free * 4).into_bytes())
        }
        _ => Err(NoSuchProcFile.into()),
    }
}

/// Parses the core count out of `/proc/stat` content, the way Berkeley
/// DB does.
pub fn parse_cpu_count(stat: &[u8]) -> usize {
    let text = String::from_utf8_lossy(stat);
    text.lines()
        .filter(|l| l.starts_with("cpu") && !l.starts_with("cpu "))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KernelConfig;

    #[test]
    fn proc_stat_reports_all_cores() {
        let k = Kernel::new(KernelConfig::pk(6));
        k.cpu().charge_user(CoreId(2), 100);
        let stat = read(&k, "/proc/stat").unwrap();
        assert_eq!(parse_cpu_count(&stat), 6);
        let text = String::from_utf8(stat).unwrap();
        assert!(text.contains("cpu2 100 0 0"));
        assert_eq!(k.proc_stats().stat_reads.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn other_files_exist() {
        let k = Kernel::new(KernelConfig::stock(2));
        assert!(read(&k, "/proc/cpuinfo").is_ok());
        assert!(read(&k, "/proc/loadavg").is_ok());
        assert!(read(&k, "/proc/meminfo").is_ok());
        assert_eq!(
            read(&k, "/proc/nope").unwrap_err(),
            crate::KernelError::NoSuchProcFile
        );
        assert_eq!(k.proc_stats().other_reads.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn cpuinfo_matches_config() {
        let k = Kernel::new(KernelConfig::pk(4));
        let info = String::from_utf8(read(&k, "/proc/cpuinfo").unwrap()).unwrap();
        assert_eq!(info.matches("processor").count(), 4);
        assert!(info.contains("Opteron"));
    }
}
