//! Per-core CPU time accounting (user vs system).

use pk_percpu::{CoreId, PerCore};
use std::sync::atomic::{AtomicU64, Ordering};

/// User/system cycle counts for one core.
#[derive(Debug, Default)]
pub struct CpuTime {
    user: AtomicU64,
    system: AtomicU64,
}

impl CpuTime {
    /// Cycles spent in user mode.
    pub fn user(&self) -> u64 {
        self.user.load(Ordering::Relaxed)
    }

    /// Cycles spent in the kernel.
    pub fn system(&self) -> u64 {
        self.system.load(Ordering::Relaxed)
    }
}

/// Per-core CPU-time accounting.
///
/// Every figure in the paper's evaluation reports a user/system CPU-time
/// breakdown per unit of work; workloads charge cycles here as they run,
/// and the harness divides by completed operations.
#[derive(Debug)]
pub struct CpuAccounting {
    cores: PerCore<CpuTime>,
}

impl CpuAccounting {
    /// Creates zeroed accounting for `cores` cores.
    pub fn new(cores: usize) -> Self {
        Self {
            cores: PerCore::new_with(cores, |_| CpuTime::default()),
        }
    }

    /// Charges `cycles` of user time to `core`.
    pub fn charge_user(&self, core: CoreId, cycles: u64) {
        self.cores
            .get(core)
            .user
            .fetch_add(cycles, Ordering::Relaxed);
    }

    /// Charges `cycles` of system time to `core`.
    pub fn charge_system(&self, core: CoreId, cycles: u64) {
        self.cores
            .get(core)
            .system
            .fetch_add(cycles, Ordering::Relaxed);
    }

    /// Returns `(user, system)` totals across all cores.
    pub fn totals(&self) -> (u64, u64) {
        self.cores
            .fold((0, 0), |(u, s), t| (u + t.user(), s + t.system()))
    }

    /// Returns `(user, system)` for one core.
    pub fn of(&self, core: CoreId) -> (u64, u64) {
        let t = self.cores.get(core);
        (t.user(), t.system())
    }

    /// Fraction of total CPU time spent in the kernel.
    pub fn system_fraction(&self) -> f64 {
        let (u, s) = self.totals();
        if u + s == 0 {
            0.0
        } else {
            s as f64 / (u + s) as f64
        }
    }

    /// Resets all counters.
    pub fn reset(&self) {
        for t in self.cores.iter() {
            t.user.store(0, Ordering::Relaxed);
            t.system.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_per_core() {
        let acc = CpuAccounting::new(4);
        acc.charge_user(CoreId(0), 100);
        acc.charge_system(CoreId(0), 50);
        acc.charge_system(CoreId(3), 25);
        assert_eq!(acc.of(CoreId(0)), (100, 50));
        assert_eq!(acc.of(CoreId(3)), (0, 25));
        assert_eq!(acc.totals(), (100, 75));
        assert!((acc.system_fraction() - 75.0 / 175.0).abs() < 1e-12);
    }

    #[test]
    fn reset_zeroes() {
        let acc = CpuAccounting::new(2);
        acc.charge_user(CoreId(1), 7);
        acc.reset();
        assert_eq!(acc.totals(), (0, 0));
        assert_eq!(acc.system_fraction(), 0.0);
    }
}
