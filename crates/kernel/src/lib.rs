//! The kernel facade: one object tying the VFS, network, memory, and
//! process substrates together under a single per-fix configuration.
//!
//! The paper's "patched kernel, PK" is stock Linux 2.6.35-rc5 plus "a set
//! of 16 scalability improvements" (§1, Figure 1). [`KernelConfig`]
//! exposes each of the 16 as an independent toggle — [`FixId`] enumerates
//! them, [`FIXES`] carries the Figure-1 metadata (problem, solution,
//! affected applications) — and lowers them onto the substrate configs.
//! [`Kernel`] assembles the substrates and offers a syscall-shaped
//! surface plus per-core CPU-time accounting, which is how the workloads
//! report the paper's user/system breakdowns.

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

mod config;
mod cputime;
mod error;
mod fixes;
mod kernel;
mod obs;
pub mod procfs;

pub use config::{KernelConfig, Personality};
pub use cputime::{CpuAccounting, CpuTime};
pub use error::KernelError;
pub use fixes::{
    fix_for_class, App, Fix, FixId, FIXES, GEN2_FIXES, LINES_ADDED, LINES_REMOVED, NUM_FIXES,
};
pub use kernel::Kernel;
// The overload-policy types live in pk-sim (the open-loop engine
// consumes them directly); re-exported here because `KernelConfig`
// carries them as a first-class knob.
pub use pk_sim::{OverloadPolicy, ShedPolicy};
