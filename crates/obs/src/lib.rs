//! Contention observability for the MOSBENCH reproduction.
//!
//! The paper found its 16 bottlenecks by *measuring*: per-lock wait
//! times, cache-line transfer counts, and per-subsystem CPU-time
//! attribution on the 48-core machine (§3, §5). This crate is the
//! reproduction's version of that toolchain:
//!
//! * [`metrics`] — cache-aligned metric primitives ([`Counter`],
//!   [`Gauge`], [`Histogram`]). Every cell lives in its own
//!   128-byte-aligned per-core slot, so the instrumentation never
//!   creates the false sharing it is trying to measure.
//! * [`Registry`] — a process-wide, name-keyed home for metrics plus
//!   pull-based [`Collect`] sources, so subsystems that already own
//!   their counters (lock stats, VFS stats, sloppy-counter op mixes)
//!   can be snapshotted through one interface.
//! * [`Sample`]/[`Snapshot`] — the wire format between instrumented
//!   crates and reports. A sample is one named measurement; the value
//!   kinds mirror what the paper measured (lock contention, central
//!   vs. local operation mixes, per-station queueing).
//! * [`ContentionReport`] — the Figure-1 "bottleneck" column re-derived
//!   from a snapshot: the top-N contended resources ranked by their
//!   share of total cycles per operation.
//!
//! `pk-obs` sits at the bottom of the dependency stack (it depends only
//! on `pk-percpu`), so every other crate can use it for hooks without
//! cycles: `pk-sync` reports per-lock acquisition/contention/spin
//! counts, `pk-sloppy` reports central-vs-local op rates, `pk-sim`
//! reports per-station queueing delay and cache-line transfers, and
//! `pk-bench --bin contention_report` turns any of those snapshots into
//! the ranked table.

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod buckets;
pub mod metrics;
mod registry;
mod report;
mod sample;

pub use metrics::{Counter, Gauge, Histogram};
pub use registry::Registry;
pub use report::{ContentionReport, Resource};
pub use sample::{
    Collect, HistogramSnapshot, LockSample, MetricValue, Sample, Snapshot, StationSample,
};
