//! The wire format between instrumented crates and reports.

use std::fmt;

/// Per-lock contention measurements, as recorded by `pk-sync`'s
/// `LockStats` (the paper's per-lock wait-time attribution, §4.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockSample {
    /// Total successful acquisitions.
    pub acquisitions: u64,
    /// Acquisitions that had to wait.
    pub contended: u64,
    /// Estimated cycles burned spinning across all contended acquires.
    pub spin_cycles: u64,
}

impl LockSample {
    /// Fraction of acquisitions that were contended, in `[0, 1]`.
    pub fn contention_ratio(&self) -> f64 {
        if self.acquisitions == 0 {
            0.0
        } else {
            self.contended as f64 / self.acquisitions as f64
        }
    }
}

/// Per-station queueing measurements from the simulator (MVA solve or
/// discrete-event run): where each operation's cycles go.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StationSample {
    /// Service demand per operation, cycles.
    pub demand_cycles: f64,
    /// Mean residence (service + waiting) per operation, cycles.
    pub residence_cycles: f64,
    /// Mean waiting per operation, cycles — the queueing delay the
    /// paper attributes to contended locks and cache lines.
    pub wait_cycles: f64,
    /// Mean queue length seen at the station.
    pub queue_len: f64,
    /// Server utilization in `[0, 1]`.
    pub utilization: f64,
    /// Cache-line transfers per operation charged to this station by
    /// the MESI cost model (0 when the solver does not track them).
    pub line_transfers: f64,
    /// Whether residence here is system (kernel) time.
    pub is_system: bool,
}

/// A merged, immutable view of a [`crate::Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Bucket counts with the boundaries of [`crate::buckets`]: bucket
    /// 0 holds zeros, log2 buckets below the tail split, 8 sub-buckets
    /// per octave above it.
    pub buckets: Vec<u64>,
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of recorded samples.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Upper bound on the `q`-quantile; see [`crate::Histogram::quantile`].
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= target.max(1) {
                return crate::buckets::bucket_upper_edge(i);
            }
        }
        u64::MAX
    }

    /// Mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// One measurement value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotone event count.
    Counter(u64),
    /// A counter broken out per core.
    PerCoreCounter(Vec<u64>),
    /// A signed instantaneous value.
    Gauge(i64),
    /// A latency/size distribution.
    Histogram(HistogramSnapshot),
    /// Per-lock contention counters.
    Lock(LockSample),
    /// How many operations hit a shared cache line versus stayed
    /// core-local — the sloppy-counter trade-off made visible (§4.3).
    OpMix {
        /// Operations that touched the shared central state.
        central: u64,
        /// Operations satisfied from per-core state.
        local: u64,
    },
    /// Per-station queueing detail from the simulator.
    Station(StationSample),
}

/// One named measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Dotted metric name (e.g. `vfs.mount_central_lookups`) or the
    /// resource label (e.g. `vfsmount-table lock`).
    pub name: String,
    /// The measured value.
    pub value: MetricValue,
}

impl Sample {
    /// A plain counter sample.
    pub fn counter(name: impl Into<String>, value: u64) -> Self {
        Self {
            name: name.into(),
            value: MetricValue::Counter(value),
        }
    }

    /// A gauge sample.
    pub fn gauge(name: impl Into<String>, value: i64) -> Self {
        Self {
            name: name.into(),
            value: MetricValue::Gauge(value),
        }
    }

    /// A lock-contention sample.
    pub fn lock(name: impl Into<String>, lock: LockSample) -> Self {
        Self {
            name: name.into(),
            value: MetricValue::Lock(lock),
        }
    }

    /// A central-vs-local operation mix sample.
    pub fn op_mix(name: impl Into<String>, central: u64, local: u64) -> Self {
        Self {
            name: name.into(),
            value: MetricValue::OpMix { central, local },
        }
    }

    /// A simulator station sample.
    pub fn station(name: impl Into<String>, station: StationSample) -> Self {
        Self {
            name: name.into(),
            value: MetricValue::Station(station),
        }
    }
}

impl fmt::Display for Sample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.value {
            MetricValue::Counter(v) => write!(f, "{} = {v}", self.name),
            MetricValue::PerCoreCounter(cells) => {
                let total: u64 = cells.iter().sum();
                write!(f, "{} = {total} across {} cores", self.name, cells.len())
            }
            MetricValue::Gauge(v) => write!(f, "{} = {v}", self.name),
            MetricValue::Histogram(h) => write!(
                f,
                "{}: n={} mean={:.1} p99<={}",
                self.name,
                h.count,
                h.mean(),
                h.quantile(0.99)
            ),
            MetricValue::Lock(l) => write!(
                f,
                "{}: {} acquires, {} contended ({:.1}%), {} spin cycles",
                self.name,
                l.acquisitions,
                l.contended,
                l.contention_ratio() * 100.0,
                l.spin_cycles
            ),
            MetricValue::OpMix { central, local } => {
                let total = central + local;
                let pct = if total == 0 {
                    0.0
                } else {
                    *central as f64 / total as f64 * 100.0
                };
                write!(
                    f,
                    "{}: {central} central / {local} local ops ({pct:.2}% shared)",
                    self.name
                )
            }
            MetricValue::Station(s) => write!(
                f,
                "{}: {:.0} cycles/op ({:.0} waiting), queue {:.2}, util {:.2}",
                self.name, s.residence_cycles, s.wait_cycles, s.queue_len, s.utilization
            ),
        }
    }
}

/// An ordered collection of samples taken at one instant.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    samples: Vec<Sample>,
}

impl Snapshot {
    /// Creates an empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one sample.
    pub fn push(&mut self, sample: Sample) {
        self.samples.push(sample);
    }

    /// Appends every sample from `other`.
    pub fn extend(&mut self, other: Snapshot) {
        self.samples.extend(other.samples);
    }

    /// Returns the first sample with the given name, if any.
    pub fn find(&self, name: &str) -> Option<&Sample> {
        self.samples.iter().find(|s| s.name == name)
    }

    /// Iterates over the samples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Sample> {
        self.samples.iter()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the snapshot holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

impl IntoIterator for Snapshot {
    type Item = Sample;
    type IntoIter = std::vec::IntoIter<Sample>;

    fn into_iter(self) -> Self::IntoIter {
        self.samples.into_iter()
    }
}

impl fmt::Display for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.samples {
            writeln!(f, "{s}")?;
        }
        Ok(())
    }
}

/// A pull-based metric source: subsystems that already own their
/// counters (lock stats, VFS stats, op mixes) implement this so one
/// [`crate::Registry::snapshot`] call reaches everything.
pub trait Collect: Send + Sync {
    /// Appends this source's current samples to `out`.
    fn collect(&self, out: &mut Snapshot);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_find_and_order() {
        let mut snap = Snapshot::new();
        snap.push(Sample::counter("a", 1));
        snap.push(Sample::gauge("b", -2));
        assert_eq!(snap.len(), 2);
        assert!(snap.find("b").is_some());
        assert!(snap.find("c").is_none());
        let names: Vec<_> = snap.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn lock_sample_ratio() {
        let l = LockSample {
            acquisitions: 10,
            contended: 4,
            spin_cycles: 100,
        };
        assert!((l.contention_ratio() - 0.4).abs() < 1e-12);
        let empty = LockSample {
            acquisitions: 0,
            contended: 0,
            spin_cycles: 0,
        };
        assert_eq!(empty.contention_ratio(), 0.0);
    }

    #[test]
    fn display_is_humane() {
        let s = Sample::op_mix("dentry-refcount", 2, 98);
        let text = s.to_string();
        assert!(text.contains("2 central"), "{text}");
        assert!(text.contains("2.00% shared"), "{text}");
    }
}
