//! Cache-aligned metric primitives.
//!
//! All three primitives shard their state per core through
//! [`PerCore`], whose slots are 128-byte aligned: an instrumented hot
//! path touches only its own core's cache line, so adding a metric to
//! a scalable path cannot itself become the bottleneck the paper warns
//! about. Reads traverse all cores (the same "significantly more work
//! to find the true value" trade-off as the counters in `pk-sloppy`).

use pk_percpu::{CoreId, PerCore};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

use crate::sample::HistogramSnapshot;

/// A monotonically increasing event count, sharded per core.
#[derive(Debug)]
pub struct Counter {
    cells: PerCore<AtomicU64>,
}

impl Counter {
    /// Creates a counter with one cell per core.
    pub fn new(cores: usize) -> Self {
        Self {
            cells: PerCore::new_with(cores, |_| AtomicU64::new(0)),
        }
    }

    /// Adds one event on behalf of `core`.
    pub fn inc(&self, core: CoreId) {
        self.add(core, 1);
    }

    /// Adds `n` events on behalf of `core`.
    pub fn add(&self, core: CoreId, n: u64) {
        self.cells.get(core).fetch_add(n, Ordering::Relaxed);
    }

    /// Sums every core's cell.
    pub fn total(&self) -> u64 {
        self.cells.fold(0, |a, c| a + c.load(Ordering::Relaxed))
    }

    /// Returns each core's count, indexed by core id.
    pub fn per_core(&self) -> Vec<u64> {
        self.cells
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Zeroes every cell.
    pub fn reset(&self) {
        for c in self.cells.iter() {
            c.store(0, Ordering::Relaxed);
        }
    }
}

/// A signed instantaneous value (queue depth, in-flight ops), sharded
/// per core; the logical value is the sum of the per-core cells.
#[derive(Debug)]
pub struct Gauge {
    cells: PerCore<AtomicI64>,
}

impl Gauge {
    /// Creates a gauge with one cell per core.
    pub fn new(cores: usize) -> Self {
        Self {
            cells: PerCore::new_with(cores, |_| AtomicI64::new(0)),
        }
    }

    /// Adds `delta` (may be negative) to `core`'s cell.
    pub fn add(&self, core: CoreId, delta: i64) {
        self.cells.get(core).fetch_add(delta, Ordering::Relaxed);
    }

    /// Overwrites `core`'s cell.
    pub fn set(&self, core: CoreId, value: i64) {
        self.cells.get(core).store(value, Ordering::Relaxed);
    }

    /// Reads `core`'s cell.
    pub fn read(&self, core: CoreId) -> i64 {
        self.cells.get(core).load(Ordering::Relaxed)
    }

    /// Sums every core's cell (the logical gauge value).
    pub fn sum(&self) -> i64 {
        self.cells.fold(0, |a, c| a + c.load(Ordering::Relaxed))
    }

    /// Zeroes every cell.
    pub fn reset(&self) {
        for c in self.cells.iter() {
            c.store(0, Ordering::Relaxed);
        }
    }
}

use crate::buckets::{bucket_of, BUCKETS};

/// One core's histogram shard.
#[derive(Debug)]
struct HistShard {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistShard {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A bucketed histogram of u64 samples (latencies in cycles, queue
/// lengths), sharded per core like [`Counter`].
///
/// Buckets are log2 below `2^TAIL_SPLIT` and 8-per-octave above it
/// (see [`crate::buckets`]): a fixed footprint and a branch-free
/// record path, like the kernel's own latency histograms, but
/// [`Histogram::quantile`] answers "what value do q of the samples
/// fall below" to within 1/8 everywhere a latency tail can live.
#[derive(Debug)]
pub struct Histogram {
    shards: PerCore<HistShard>,
}

impl Histogram {
    /// Creates a histogram with one shard per core.
    pub fn new(cores: usize) -> Self {
        Self {
            shards: PerCore::new_with(cores, |_| HistShard::new()),
        }
    }

    /// Records one sample on behalf of `core`.
    pub fn record(&self, core: CoreId, value: u64) {
        let shard = self.shards.get(core);
        shard.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        shard.count.fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.shards
            .fold(0, |a, s| a + s.count.load(Ordering::Relaxed))
    }

    /// Sum of all recorded samples. Wraps on overflow, matching the
    /// per-shard atomic record path (which wraps silently), so the
    /// merged sum is the same pure function of the sample multiset in
    /// debug and release builds.
    pub fn sum(&self) -> u64 {
        self.shards
            .fold(0u64, |a, s| a.wrapping_add(s.sum.load(Ordering::Relaxed)))
    }

    /// Mean of all recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// An upper bound on the `q`-quantile (e.g. `0.99`): the inclusive
    /// upper edge of the first bucket whose cumulative count reaches
    /// `q * count`. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let snap = self.snapshot();
        snap.quantile(q)
    }

    /// Merges every shard into one immutable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = vec![0u64; BUCKETS];
        for shard in self.shards.iter() {
            for (b, cell) in buckets.iter_mut().zip(shard.buckets.iter()) {
                *b += cell.load(Ordering::Relaxed);
            }
        }
        HistogramSnapshot {
            buckets,
            count: self.count(),
            sum: self.sum(),
        }
    }

    /// Zeroes every shard.
    pub fn reset(&self) {
        for shard in self.shards.iter() {
            for b in shard.buckets.iter() {
                b.store(0, Ordering::Relaxed);
            }
            shard.count.store(0, Ordering::Relaxed);
            shard.sum.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_cores() {
        let c = Counter::new(4);
        c.inc(CoreId(0));
        c.add(CoreId(3), 9);
        assert_eq!(c.total(), 10);
        assert_eq!(c.per_core(), vec![1, 0, 0, 9]);
        c.reset();
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn gauge_sums_signed_cells() {
        let g = Gauge::new(2);
        g.add(CoreId(0), 5);
        g.add(CoreId(1), -2);
        assert_eq!(g.sum(), 3);
        g.set(CoreId(0), 0);
        assert_eq!(g.sum(), -2);
        assert_eq!(g.read(CoreId(1)), -2);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn histogram_mean_and_count() {
        let h = Histogram::new(2);
        h.record(CoreId(0), 10);
        h.record(CoreId(1), 30);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 40);
        assert!((h.mean() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantile_brackets_samples() {
        let h = Histogram::new(1);
        for v in [1u64, 2, 4, 100, 1000] {
            h.record(CoreId(0), v);
        }
        // Median of {1,2,4,100,1000} is 4; the log2 bound is < 8.
        let q50 = h.quantile(0.5);
        assert!((4..8).contains(&q50), "q50={q50}");
        // The max sample is bracketed by its bucket's upper edge.
        assert!(h.quantile(1.0) >= 1000);
    }

    #[test]
    fn histogram_empty_is_zero() {
        let h = Histogram::new(1);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn concurrent_counter_is_exact() {
        let c = std::sync::Arc::new(Counter::new(8));
        let handles: Vec<_> = (0..8)
            .map(|core| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc(CoreId(core));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.total(), 80_000);
    }
}
