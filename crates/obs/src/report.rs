//! Bottleneck attribution: the paper's Figure-1 "bottleneck" column
//! re-derived from measurement.

use crate::sample::{MetricValue, Snapshot};
use std::fmt;

/// One contended resource and its share of an operation's cycles.
#[derive(Debug, Clone, PartialEq)]
pub struct Resource {
    /// Resource label (station or lock name).
    pub name: String,
    /// Mean cycles per operation spent at this resource (service +
    /// waiting).
    pub cycles_per_op: f64,
    /// The waiting portion — what contention costs, over and above the
    /// work itself.
    pub wait_cycles_per_op: f64,
    /// This resource's share of total cycles per operation, in `[0, 1]`.
    pub share: f64,
    /// Mean queue length observed at the resource.
    pub queue_len: f64,
    /// Cache-line transfers per operation charged to the resource.
    pub line_transfers: f64,
    /// Whether the cycles count as system (kernel) time.
    pub is_system: bool,
}

/// The top-N contended resources for one workload × kernel config ×
/// core count, ranked by share of total cycles.
///
/// This is the reproduction of the diagnostic the paper ran on the
/// real 48-core machine (§3): instead of reading the bottleneck off a
/// hardcoded table, the report derives it from a [`Snapshot`] of
/// per-station measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentionReport {
    /// Workload name (e.g. `Exim`).
    pub workload: String,
    /// Kernel configuration label (e.g. `stock`, `PK`).
    pub config: String,
    /// Active cores.
    pub cores: usize,
    /// Mean end-to-end cycles per operation (sum over resources).
    pub total_cycles_per_op: f64,
    /// Resources sorted by descending cycles share.
    pub resources: Vec<Resource>,
}

impl ContentionReport {
    /// Builds a report from every [`MetricValue::Station`] sample in
    /// `snapshot`. Non-station samples are ignored (they carry raw
    /// counts, not cycle attribution).
    pub fn from_snapshot(
        workload: impl Into<String>,
        config: impl Into<String>,
        cores: usize,
        snapshot: &Snapshot,
    ) -> Self {
        let mut resources: Vec<Resource> = snapshot
            .iter()
            .filter_map(|s| match &s.value {
                MetricValue::Station(st) => Some(Resource {
                    name: s.name.clone(),
                    cycles_per_op: st.residence_cycles,
                    wait_cycles_per_op: st.wait_cycles,
                    share: 0.0,
                    queue_len: st.queue_len,
                    line_transfers: st.line_transfers,
                    is_system: st.is_system,
                }),
                _ => None,
            })
            .collect();
        let total: f64 = resources.iter().map(|r| r.cycles_per_op).sum();
        if total > 0.0 {
            for r in &mut resources {
                r.share = r.cycles_per_op / total;
            }
        }
        resources.sort_by(|a, b| b.cycles_per_op.total_cmp(&a.cycles_per_op));
        Self {
            workload: workload.into(),
            config: config.into(),
            cores,
            total_cycles_per_op: total,
            resources,
        }
    }

    /// The single most expensive resource, if any.
    pub fn top(&self) -> Option<&Resource> {
        self.resources.first()
    }

    /// The `n` most expensive resources.
    pub fn top_n(&self, n: usize) -> &[Resource] {
        &self.resources[..n.min(self.resources.len())]
    }

    /// Cycles share spent in system (kernel) resources, in `[0, 1]`.
    pub fn system_share(&self) -> f64 {
        self.resources
            .iter()
            .filter(|r| r.is_system)
            .map(|r| r.share)
            .sum()
    }

    /// Renders the top-`n` table.
    pub fn render(&self, n: usize) -> String {
        let mut out = String::new();
        use fmt::Write;
        writeln!(
            out,
            "contention report — {} on {}, {} cores",
            self.workload, self.config, self.cores
        )
        .unwrap();
        writeln!(
            out,
            "total {:.0} cycles/op, {:.1}% in the kernel",
            self.total_cycles_per_op,
            self.system_share() * 100.0
        )
        .unwrap();
        writeln!(
            out,
            "{:>4}  {:<32} {:>6}  {:>12}  {:>10}  {:>7}",
            "rank", "resource", "share", "cycles/op", "wait/op", "queue"
        )
        .unwrap();
        for (i, r) in self.top_n(n).iter().enumerate() {
            writeln!(
                out,
                "{:>4}  {:<32} {:>5.1}%  {:>12.1}  {:>10.1}  {:>7.2}",
                i + 1,
                r.name,
                r.share * 100.0,
                r.cycles_per_op,
                r.wait_cycles_per_op,
                r.queue_len
            )
            .unwrap();
        }
        out
    }
}

impl fmt::Display for ContentionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(10))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::{Sample, StationSample};

    fn station(residence: f64, demand: f64, system: bool) -> StationSample {
        StationSample {
            demand_cycles: demand,
            residence_cycles: residence,
            wait_cycles: residence - demand,
            queue_len: 1.0,
            utilization: 0.5,
            line_transfers: 0.0,
            is_system: system,
        }
    }

    fn snapshot() -> Snapshot {
        let mut snap = Snapshot::new();
        snap.push(Sample::station("user", station(4000.0, 4000.0, false)));
        snap.push(Sample::station("hot lock", station(5000.0, 500.0, true)));
        snap.push(Sample::station("cold lock", station(1000.0, 900.0, true)));
        snap.push(Sample::counter("ignored", 7));
        snap
    }

    #[test]
    fn ranks_by_cycles_and_normalizes_shares() {
        let r = ContentionReport::from_snapshot("toy", "stock", 48, &snapshot());
        assert_eq!(r.top().unwrap().name, "hot lock");
        assert_eq!(r.resources.len(), 3, "non-station samples ignored");
        let total_share: f64 = r.resources.iter().map(|x| x.share).sum();
        assert!((total_share - 1.0).abs() < 1e-12);
        assert!((r.total_cycles_per_op - 10_000.0).abs() < 1e-9);
        assert!((r.system_share() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn top_n_clamps() {
        let r = ContentionReport::from_snapshot("toy", "stock", 1, &snapshot());
        assert_eq!(r.top_n(99).len(), 3);
        assert_eq!(r.top_n(1)[0].name, "hot lock");
    }

    #[test]
    fn render_names_the_bottleneck_first() {
        let r = ContentionReport::from_snapshot("toy", "PK", 48, &snapshot());
        let text = r.render(2);
        let hot = text.find("hot lock").unwrap();
        let user = text.find("user").unwrap();
        assert!(hot < user, "bottleneck renders first:\n{text}");
        assert!(!text.contains("cold lock"), "n=2 truncates:\n{text}");
    }

    #[test]
    fn empty_snapshot_is_harmless() {
        let r = ContentionReport::from_snapshot("toy", "stock", 4, &Snapshot::new());
        assert!(r.top().is_none());
        assert_eq!(r.total_cycles_per_op, 0.0);
        let _ = r.render(5);
    }
}
