//! The process-wide metrics registry.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::metrics::{Counter, Gauge, Histogram};
use crate::sample::{Collect, MetricValue, Sample, Snapshot};

/// Core count used by [`Registry::global`] — the paper's 48-core
/// machine.
const DEFAULT_CORES: usize = 48;

/// A name-keyed home for metrics plus pull-based [`Collect`] sources.
///
/// Two registration styles cover the two kinds of instrumentation in
/// the tree:
///
/// * **Owned metrics** ([`Registry::counter`] / [`gauge`] /
///   [`histogram`]): get-or-create by name, returning a shared handle
///   the hot path updates directly. Handles to the same name alias the
///   same cells.
/// * **Sources** ([`Registry::register_source`]): subsystems that
///   already keep their own atomics (a lock's `LockStats`, a sloppy
///   counter's op mix) register a [`Collect`] and are polled at
///   snapshot time, so existing counters join the registry without
///   being rewritten.
///
/// [`gauge`]: Registry::gauge
/// [`histogram`]: Registry::histogram
#[derive(Default)]
pub struct Registry {
    cores: usize,
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    sources: Mutex<Vec<Arc<dyn Collect>>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("cores", &self.cores)
            .field("counters", &self.counters.lock().unwrap().len())
            .field("gauges", &self.gauges.lock().unwrap().len())
            .field("histograms", &self.histograms.lock().unwrap().len())
            .field("sources", &self.sources.lock().unwrap().len())
            .finish()
    }
}

impl Registry {
    /// Creates a registry whose metrics are sharded across `cores`.
    pub fn new(cores: usize) -> Self {
        Self {
            cores,
            ..Self::default()
        }
    }

    /// The shared process-wide registry (sized for the paper's 48-core
    /// machine).
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(|| Registry::new(DEFAULT_CORES))
    }

    /// Number of per-core shards in owned metrics.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Gets or creates the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new(self.cores))),
        )
    }

    /// Gets or creates the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::new(self.cores))),
        )
    }

    /// Gets or creates the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new(self.cores))),
        )
    }

    /// Registers a pull-based source, polled by every future
    /// [`Registry::snapshot`].
    pub fn register_source(&self, source: Arc<dyn Collect>) {
        self.sources.lock().unwrap().push(source);
    }

    /// Samples every owned metric and polls every source.
    ///
    /// Owned metrics come out name-sorted (counters, then gauges, then
    /// histograms), followed by source samples in registration order.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::new();
        for (name, c) in self.counters.lock().unwrap().iter() {
            snap.push(Sample {
                name: name.clone(),
                value: MetricValue::PerCoreCounter(c.per_core()),
            });
        }
        for (name, g) in self.gauges.lock().unwrap().iter() {
            snap.push(Sample::gauge(name, g.sum()));
        }
        for (name, h) in self.histograms.lock().unwrap().iter() {
            snap.push(Sample {
                name: name.clone(),
                value: MetricValue::Histogram(h.snapshot()),
            });
        }
        for source in self.sources.lock().unwrap().iter() {
            source.collect(&mut snap);
        }
        snap
    }

    /// Zeroes every owned metric. Sources keep their own state and are
    /// unaffected.
    pub fn reset(&self) {
        for c in self.counters.lock().unwrap().values() {
            c.reset();
        }
        for g in self.gauges.lock().unwrap().values() {
            g.reset();
        }
        for h in self.histograms.lock().unwrap().values() {
            h.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pk_percpu::CoreId;

    #[test]
    fn same_name_aliases_same_cells() {
        let r = Registry::new(4);
        r.counter("ops").inc(CoreId(0));
        r.counter("ops").inc(CoreId(1));
        assert_eq!(r.counter("ops").total(), 2);
        assert_eq!(r.counter("other").total(), 0);
    }

    #[test]
    fn snapshot_covers_owned_metrics_and_sources() {
        struct Src;
        impl Collect for Src {
            fn collect(&self, out: &mut Snapshot) {
                out.push(Sample::counter("from-source", 7));
            }
        }
        let r = Registry::new(2);
        r.counter("c").add(CoreId(0), 3);
        r.gauge("g").add(CoreId(1), -1);
        r.histogram("h").record(CoreId(0), 42);
        r.register_source(Arc::new(Src));
        let snap = r.snapshot();
        assert_eq!(snap.len(), 4);
        assert!(snap.find("from-source").is_some());
        match &snap.find("c").unwrap().value {
            MetricValue::PerCoreCounter(cells) => assert_eq!(cells.iter().sum::<u64>(), 3),
            v => panic!("wrong value kind: {v:?}"),
        }
    }

    #[test]
    fn reset_zeroes_owned_metrics_only() {
        let r = Registry::new(2);
        r.counter("c").inc(CoreId(0));
        r.reset();
        assert_eq!(r.counter("c").total(), 0);
    }

    #[test]
    fn global_is_shared() {
        let a = Registry::global();
        let b = Registry::global();
        assert!(std::ptr::eq(a, b));
        assert_eq!(a.cores(), 48);
    }
}
