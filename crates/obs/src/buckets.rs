//! The one definition of the histogram's bucket boundaries.
//!
//! The record path ([`crate::Histogram::record`] in `metrics.rs`) and
//! the report path ([`crate::HistogramSnapshot::quantile`] in
//! `sample.rs`) must agree on where buckets begin and end, or quantile
//! bounds silently drift off the recorded samples. Both sides import
//! these helpers instead of re-deriving the arithmetic; the tests below
//! pin the two directions against each other.
//!
//! Two segments (DESIGN.md §15): plain log2 buckets below `2^TAIL_SPLIT`
//! — fine enough at small values, where a power-of-two bucket is only a
//! handful of cycles wide — and 8 sub-buckets per octave above it
//! (3 extra mantissa bits). Latency tails live far above the split, and
//! a pure log2 bucket there answers "p999 ≤ 2·p999_true", useless for
//! attribution; the tail segment bounds the quantile's relative error
//! at `1/8` everywhere above the split.

/// Octave below which buckets stay plain log2. `2^12 = 4096` cycles is
/// well under every serving SLO bound, so the tail segment covers the
/// entire region p99/p999 attribution cares about.
pub const TAIL_SPLIT: usize = 12;

/// Sub-buckets per octave above the split (3 mantissa bits), giving a
/// worst-case relative quantile error of `1/SUBDIV` in the tail.
pub const SUBDIV: usize = 8;

/// Total bucket count: bucket `0` holds zeros; buckets `1..=TAIL_SPLIT`
/// hold `floor(log2(v)) == i − 1` (values below `2^TAIL_SPLIT`); above
/// the split each of the remaining `64 − TAIL_SPLIT` octaves gets
/// `SUBDIV` buckets.
pub const BUCKETS: usize = TAIL_SPLIT + 1 + (64 - TAIL_SPLIT) * SUBDIV;

/// Bucket index a value records into.
#[inline]
pub const fn bucket_of(value: u64) -> usize {
    if value < (1u64 << TAIL_SPLIT) {
        (64 - value.leading_zeros()) as usize
    } else {
        let e = 63 - value.leading_zeros() as usize;
        let sub = ((value >> (e - 3)) & (SUBDIV as u64 - 1)) as usize;
        TAIL_SPLIT + 1 + (e - TAIL_SPLIT) * SUBDIV + sub
    }
}

/// Inclusive upper edge of bucket `i`: the largest value that records
/// into it (0 for the zero bucket, saturating at `u64::MAX` for the top
/// bucket). Quantile answers quote this edge.
#[inline]
pub const fn bucket_upper_edge(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= BUCKETS - 1 {
        u64::MAX
    } else if i <= TAIL_SPLIT {
        (1u64 << i) - 1
    } else {
        let k = i - TAIL_SPLIT - 1;
        let e = TAIL_SPLIT + k / SUBDIV;
        let sub = (k % SUBDIV) as u64;
        (1u64 << e) + ((sub + 1) << (e - 3)) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The drift test: for every bucket, the record path must place the
    /// bucket's own upper edge in that bucket, and the next value in
    /// the next one — i.e. `bucket_of` and `bucket_upper_edge` describe
    /// the same boundaries.
    #[test]
    fn record_and_report_boundaries_match() {
        for i in 0..BUCKETS {
            let edge = bucket_upper_edge(i);
            assert_eq!(bucket_of(edge), i, "upper edge of bucket {i}");
            if let Some(next) = edge.checked_add(1) {
                assert_eq!(bucket_of(next), i + 1, "first value past bucket {i}");
            }
        }
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn coarse_segment_edges_are_the_documented_powers_of_two() {
        assert_eq!(bucket_upper_edge(0), 0);
        assert_eq!(bucket_upper_edge(1), 1);
        assert_eq!(bucket_upper_edge(2), 3);
        assert_eq!(bucket_upper_edge(10), 1023);
        assert_eq!(bucket_upper_edge(TAIL_SPLIT), 4095);
        assert_eq!(bucket_upper_edge(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn tail_segment_subdivides_each_octave() {
        // First tail octave [4096, 8192) splits into 8 equal buckets
        // of width 512.
        for s in 0..SUBDIV {
            assert_eq!(
                bucket_upper_edge(TAIL_SPLIT + 1 + s),
                4096 + 512 * (s as u64 + 1) - 1
            );
        }
        // Every value's reported edge overshoots by less than 1/SUBDIV.
        for v in [5000u64, 70_000, 1 << 30, (1 << 52) + 12345] {
            let edge = bucket_upper_edge(bucket_of(v));
            assert!(edge >= v);
            assert!(
                (edge - v) as f64 / v as f64 <= 1.0 / SUBDIV as f64,
                "v={v} edge={edge}"
            );
        }
    }
}
