//! The one definition of the histogram's log2 bucket boundaries.
//!
//! The record path ([`crate::Histogram::record`] in `metrics.rs`) and
//! the report path ([`crate::HistogramSnapshot::quantile`] in
//! `sample.rs`) must agree on where buckets begin and end, or quantile
//! bounds silently drift off the recorded samples. Both sides import
//! these helpers instead of re-deriving the arithmetic; the tests below
//! pin the two directions against each other.

/// Number of log2 buckets: bucket `0` holds zeros, bucket `i` holds
/// values with `floor(log2(v)) == i - 1`, so bucket 64 holds values
/// with the top bit set.
pub const BUCKETS: usize = 65;

/// Bucket index a value records into.
#[inline]
pub const fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Inclusive upper edge of bucket `i`: the largest value that records
/// into it (0 for the zero bucket, `2^i − 1` otherwise, saturating at
/// `u64::MAX` for the top bucket). Quantile answers quote this edge.
#[inline]
pub const fn bucket_upper_edge(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The drift test: for every bucket, the record path must place the
    /// bucket's own upper edge in that bucket, and the next value in
    /// the next one — i.e. `bucket_of` and `bucket_upper_edge` describe
    /// the same boundaries.
    #[test]
    fn record_and_report_boundaries_match() {
        for i in 0..BUCKETS {
            let edge = bucket_upper_edge(i);
            assert_eq!(bucket_of(edge), i, "upper edge of bucket {i}");
            if let Some(next) = edge.checked_add(1) {
                assert_eq!(bucket_of(next), i + 1, "first value past bucket {i}");
            }
        }
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn edges_are_the_documented_powers_of_two() {
        assert_eq!(bucket_upper_edge(0), 0);
        assert_eq!(bucket_upper_edge(1), 1);
        assert_eq!(bucket_upper_edge(2), 3);
        assert_eq!(bucket_upper_edge(10), 1023);
        assert_eq!(bucket_upper_edge(BUCKETS - 1), u64::MAX);
    }
}
