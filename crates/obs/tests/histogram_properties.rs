//! Property tests for the latency histogram: the quantile contract the
//! serving layer's SLO accounting is built on.
//!
//! Three laws, for arbitrary sample sets and arbitrary distributions of
//! those samples across cores:
//!
//! 1. **Exact at bucket edges** — the reported quantile is always the
//!    upper edge of the bucket holding the rank-selected sample, so
//!    samples that sit exactly on bucket edges are reported verbatim.
//! 2. **Monotone in rank** — a higher quantile can never report a
//!    smaller value.
//! 3. **Merge-deterministic** — the snapshot is a pure function of the
//!    recorded multiset: how samples are spread across cores (or how
//!    many cores the histogram has) must not change a single bucket.

use pk_obs::{buckets, Histogram, HistogramSnapshot};
use pk_percpu::CoreId;
use proptest::prelude::*;

/// Records `samples` on a `cores`-wide histogram, assigning sample `i`
/// to core `assign(i) % cores`, and snapshots it.
fn hist_from(samples: &[u64], cores: usize, assign: impl Fn(usize) -> usize) -> HistogramSnapshot {
    let h = Histogram::new(cores);
    for (i, &v) in samples.iter().enumerate() {
        h.record(CoreId(assign(i) % cores), v);
    }
    h.snapshot()
}

/// The rank the quantile implementation selects: the `ceil(q·n)`-th
/// smallest sample (1-based), at least the 1st.
fn rank_of(q: f64, n: usize) -> usize {
    let target = (q.clamp(0.0, 1.0) * n as f64).ceil() as usize;
    target.max(1)
}

proptest! {
    /// The quantile is exactly the upper edge of the bucket holding
    /// the rank-selected sample — no drift between the record and
    /// report paths. In particular, samples recorded *on* bucket edges
    /// are reported back verbatim.
    #[test]
    fn quantile_is_exact_at_bucket_edges(
        idx in proptest::collection::vec(0..buckets::BUCKETS, 1..200),
        q in 0.0f64..1.05,
    ) {
        let samples: Vec<u64> = idx.iter().map(|&i| buckets::bucket_upper_edge(i)).collect();
        let snap = hist_from(&samples, 4, |i| i);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let expect = sorted[rank_of(q, sorted.len()) - 1];
        prop_assert_eq!(
            snap.quantile(q), expect,
            "edge samples must round-trip exactly"
        );
    }

    /// For arbitrary samples the quantile reports the upper edge of
    /// the rank-selected sample's bucket: an upper bound on the true
    /// order statistic, tight to its bucket.
    #[test]
    fn quantile_brackets_the_rank_sample(
        samples in proptest::collection::vec(any::<u64>(), 1..200),
        q in 0.0f64..1.05,
    ) {
        let snap = hist_from(&samples, 4, |i| i);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let v = sorted[rank_of(q, sorted.len()) - 1];
        let got = snap.quantile(q);
        prop_assert_eq!(got, buckets::bucket_upper_edge(buckets::bucket_of(v)));
        prop_assert!(got >= v, "quantile {got} undercuts the rank sample {v}");
    }

    /// q1 <= q2 implies quantile(q1) <= quantile(q2): tail percentiles
    /// can never be reported below the median.
    #[test]
    fn quantile_is_monotone_in_rank(
        samples in proptest::collection::vec(any::<u64>(), 1..200),
        q1 in 0.0f64..1.05,
        q2 in 0.0f64..1.05,
    ) {
        let snap = hist_from(&samples, 4, |i| i);
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(
            snap.quantile(lo) <= snap.quantile(hi),
            "quantile({lo}) > quantile({hi})"
        );
    }

    /// Tail fidelity (DESIGN.md §15): on a sparse tail — a body of
    /// small samples plus a handful of large outliers, the shape a
    /// p999 sees — the reported p999 overshoots the true order
    /// statistic by at most `1/SUBDIV` relative error. This is the
    /// bound the tail-attribution tables depend on; pure log2 buckets
    /// fail it (their error approaches 100%).
    #[test]
    fn p999_error_is_bounded_on_sparse_tails(
        body in proptest::collection::vec(1u64..4096, 50..400),
        outliers in proptest::collection::vec(4096u64..(1 << 40), 1..8),
        scale in 1u64..1_000_000,
    ) {
        let mut samples: Vec<u64> = body.clone();
        samples.extend(outliers.iter().map(|&o| o.saturating_mul(scale.min(1 << 20))));
        let snap = hist_from(&samples, 4, |i| i);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let truth = sorted[rank_of(0.999, sorted.len()) - 1];
        let got = snap.quantile(0.999);
        prop_assert!(got >= truth);
        if truth >= 4096 {
            let rel = (got - truth) as f64 / truth as f64;
            prop_assert!(
                rel <= 1.0 / buckets::SUBDIV as f64,
                "p999 rel error {rel} exceeds 1/{} (truth {truth}, got {got})",
                buckets::SUBDIV
            );
        }
    }

    /// The snapshot is a pure function of the sample multiset: the
    /// same samples spread across cores differently — even on a
    /// histogram with a different core count — merge to identical
    /// buckets, count, sum, and therefore identical quantiles.
    #[test]
    fn merge_is_deterministic_across_core_distributions(
        samples in proptest::collection::vec(any::<u64>(), 1..200),
        cores_a in 1..9usize,
        cores_b in 1..9usize,
        stride in 1..17usize,
    ) {
        let a = hist_from(&samples, cores_a, |i| i);
        let b = hist_from(&samples, cores_b, |i| i * stride);
        prop_assert_eq!(&a.buckets, &b.buckets);
        prop_assert_eq!(a.count, b.count);
        prop_assert_eq!(a.sum, b.sum);
        for q in [0.5, 0.99, 0.999] {
            prop_assert_eq!(a.quantile(q), b.quantile(q));
        }
    }
}
