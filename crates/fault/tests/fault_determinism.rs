//! Property-based tests for fault-injection determinism.
//!
//! The central property: the set of injected faults is a pure function of
//! `(seed, schedules, per-point arrival counts)` — never of thread timing.
//! Two planes with the same seed produce identical injection traces even
//! when the arrivals are delivered by racing threads in different
//! interleavings (pattern from `crates/core/tests/counter_properties.rs`).

use std::sync::Arc;
use std::thread;

use pk_fault::{FaultEvent, FaultPlane, FaultSchedule};
use proptest::prelude::*;

const POINTS: [&str; 3] = ["mm.alloc_enomem", "net.rx_drop", "vfs.dentry_alloc"];

fn schedule_strategy() -> impl Strategy<Value = FaultSchedule> {
    prop_oneof![
        Just(FaultSchedule::Never),
        (0.0..1.0f64).prop_map(FaultSchedule::Probability),
        (1..8u64).prop_map(FaultSchedule::EveryNth),
        (0..64u64).prop_map(FaultSchedule::OneShot),
    ]
}

/// Run `arrivals[i]` checks against point `i` from `threads` racing
/// threads, dealing arrivals round-robin, and return the sorted trace.
fn race_plane(
    seed: u64,
    schedules: &[FaultSchedule],
    arrivals: &[u64],
    threads: usize,
) -> Vec<FaultEvent> {
    let plane = Arc::new(FaultPlane::with_seed(seed));
    for (name, &s) in POINTS.iter().zip(schedules) {
        plane.set(name, s);
    }
    plane.enable();
    thread::scope(|scope| {
        for t in 0..threads {
            let plane = Arc::clone(&plane);
            let arrivals = arrivals.to_vec();
            scope.spawn(move || {
                for (i, name) in POINTS.iter().enumerate() {
                    let point = plane.point(name);
                    // This thread's share of point i's arrivals.
                    let n = arrivals[i];
                    let share = n / threads as u64 + u64::from((t as u64) < n % threads as u64);
                    for _ in 0..share {
                        point.should_inject();
                    }
                }
            });
        }
    });
    let mut trace = plane.trace();
    trace.sort();
    trace
}

proptest! {
    /// Same seed + same schedules + same arrival counts => identical
    /// injection set, regardless of how many threads race the arrivals.
    #[test]
    fn same_seed_identical_trace_across_interleavings(
        seed in any::<u64>(),
        schedules in proptest::collection::vec(schedule_strategy(), 3..4),
        arrivals in proptest::collection::vec(0..200u64, 3..4),
    ) {
        let sequential = race_plane(seed, &schedules, &arrivals, 1);
        let racing_2 = race_plane(seed, &schedules, &arrivals, 2);
        let racing_4 = race_plane(seed, &schedules, &arrivals, 4);
        prop_assert_eq!(&sequential, &racing_2);
        prop_assert_eq!(&sequential, &racing_4);
    }

    /// Sequential replay is byte-for-byte: order included, not just the set.
    #[test]
    fn sequential_replay_is_exact(
        seed in any::<u64>(),
        schedules in proptest::collection::vec(schedule_strategy(), 3..4),
        arrivals in proptest::collection::vec(0..200u64, 3..4),
    ) {
        let run = || {
            let plane = FaultPlane::with_seed(seed);
            for (name, &s) in POINTS.iter().zip(&schedules) {
                plane.set(name, s);
            }
            plane.enable();
            // Interleave the points round-robin, as a real driver would.
            let max = arrivals.iter().copied().max().unwrap_or(0);
            for k in 0..max {
                for (i, name) in POINTS.iter().enumerate() {
                    if k < arrivals[i] {
                        plane.point(name).should_inject();
                    }
                }
            }
            plane.trace()
        };
        prop_assert_eq!(run(), run());
    }
}
