//! The fault plane: a registry of named injection points.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use pk_obs::{Collect, Sample, Snapshot};

use crate::schedule::FaultSchedule;

/// Cap on the replay trace so a long soak cannot grow without bound.
const TRACE_CAP: usize = 65_536;

/// One recorded injection: which point fired and at which arrival index.
///
/// A run's ordered trace (or, under concurrency, its trace *set*) is a
/// pure function of the plane's seed and the armed schedules, which is
/// what makes failure runs replayable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FaultEvent {
    /// Name of the injection point that fired.
    pub point: &'static str,
    /// 0-indexed arrival count at that point when it fired.
    pub op: u64,
}

/// Counters for one injection point, as reported by [`FaultPlane::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointStats {
    /// Name of the injection point.
    pub name: &'static str,
    /// Arrivals checked while the plane was enabled.
    pub checked: u64,
    /// Arrivals on which a fault was injected.
    pub injected: u64,
}

/// State shared by the plane and every point handle it has issued.
struct PlaneShared {
    enabled: AtomicBool,
    seed: u64,
    trace: Mutex<Vec<FaultEvent>>,
    dropped_events: AtomicU64,
}

/// Per-point state behind the cheap [`FaultPoint`] handle.
struct PointState {
    name: &'static str,
    /// FNV-1a of `name`: the point's identity in schedule decisions, so
    /// two points with the same schedule still fire on different arrivals.
    id: u64,
    schedule: Mutex<FaultSchedule>,
    ops: AtomicU64,
    injected: AtomicU64,
}

fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A handle to one named injection point.
///
/// Subsystems resolve a handle once at construction
/// (`plane.point("mm.alloc_enomem")`) and call [`FaultPoint::should_inject`]
/// on the hot path. The handle is cheap to clone and keeps the plane alive.
#[derive(Clone)]
pub struct FaultPoint {
    shared: Arc<PlaneShared>,
    state: Arc<PointState>,
}

impl std::fmt::Debug for FaultPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPoint")
            .field("name", &self.state.name)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl FaultPoint {
    /// Name this point was registered under.
    pub fn name(&self) -> &'static str {
        self.state.name
    }

    /// Whether to inject a fault at this arrival.
    ///
    /// Disabled plane: one relaxed load, no counter advance — arrivals
    /// before `enable()` do not shift the schedule, so a driver can warm
    /// up fault-free and then arm the plane.
    pub fn should_inject(&self) -> bool {
        if !self.shared.enabled.load(Ordering::Relaxed) {
            return false;
        }
        let n = self.state.ops.fetch_add(1, Ordering::Relaxed);
        let schedule = *self.state.schedule.lock().unwrap();
        if !schedule.fires(self.shared.seed, self.state.id, n) {
            return false;
        }
        self.state.injected.fetch_add(1, Ordering::Relaxed);
        // Injections are rare by construction, so the per-fire intern
        // lookup inside `instant_named` stays off every hot path.
        pk_trace::instant_named(self.state.name);
        let mut trace = self.shared.trace.lock().unwrap();
        if trace.len() < TRACE_CAP {
            trace.push(FaultEvent {
                point: self.state.name,
                op: n,
            });
        } else {
            self.shared.dropped_events.fetch_add(1, Ordering::Relaxed);
        }
        true
    }

    /// Counters for this point.
    pub fn stats(&self) -> PointStats {
        PointStats {
            name: self.state.name,
            checked: self.state.ops.load(Ordering::Relaxed),
            injected: self.state.injected.load(Ordering::Relaxed),
        }
    }
}

/// A process-wide registry of injection points, gated by one seed.
///
/// ```
/// use pk_fault::{FaultPlane, FaultSchedule};
///
/// let plane = FaultPlane::with_seed(42);
/// let point = plane.point("mm.alloc_enomem");
/// plane.set("mm.alloc_enomem", FaultSchedule::EveryNth(2));
/// plane.enable();
/// assert!(!point.should_inject()); // arrival 0
/// assert!(point.should_inject()); // arrival 1: every 2nd fires
/// assert_eq!(plane.trace().len(), 1);
/// ```
pub struct FaultPlane {
    shared: Arc<PlaneShared>,
    points: Mutex<BTreeMap<&'static str, FaultPoint>>,
}

impl std::fmt::Debug for FaultPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlane")
            .field("seed", &self.shared.seed)
            .field("enabled", &self.is_enabled())
            .field("points", &self.stats())
            .finish_non_exhaustive()
    }
}

impl FaultPlane {
    /// A plane that never injects; checks cost one relaxed load.
    ///
    /// This is what `X::new(..)` constructors hand to subsystems when the
    /// caller did not ask for faults.
    pub fn disabled() -> Self {
        Self::with_seed(0)
    }

    /// A plane seeded for replay. Starts disabled with every point on
    /// [`FaultSchedule::Never`]; arm schedules with [`FaultPlane::set`]
    /// and then [`FaultPlane::enable`] it.
    pub fn with_seed(seed: u64) -> Self {
        Self {
            shared: Arc::new(PlaneShared {
                enabled: AtomicBool::new(false),
                seed,
                trace: Mutex::new(Vec::new()),
                dropped_events: AtomicU64::new(0),
            }),
            points: Mutex::new(BTreeMap::new()),
        }
    }

    /// Resolve (registering on first use) the point named `name`.
    pub fn point(&self, name: &'static str) -> FaultPoint {
        let mut points = self.points.lock().unwrap();
        points
            .entry(name)
            .or_insert_with(|| FaultPoint {
                shared: Arc::clone(&self.shared),
                state: Arc::new(PointState {
                    name,
                    id: fnv1a(name),
                    schedule: Mutex::new(FaultSchedule::Never),
                    ops: AtomicU64::new(0),
                    injected: AtomicU64::new(0),
                }),
            })
            .clone()
    }

    /// Arm (or re-arm) the schedule for `name`, registering it if needed.
    pub fn set(&self, name: &'static str, schedule: FaultSchedule) {
        let point = self.point(name);
        *point.state.schedule.lock().unwrap() = schedule;
    }

    /// Start injecting. Arrival counters only advance while enabled.
    pub fn enable(&self) {
        self.shared.enabled.store(true, Ordering::Relaxed);
    }

    /// Stop injecting (checks return to the one-load fast path).
    pub fn disable(&self) {
        self.shared.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether the plane is currently injecting.
    pub fn is_enabled(&self) -> bool {
        self.shared.enabled.load(Ordering::Relaxed)
    }

    /// The replay seed.
    pub fn seed(&self) -> u64 {
        self.shared.seed
    }

    /// The injections recorded so far, in the order they were committed.
    ///
    /// Single-threaded runs replay this byte-for-byte from the seed;
    /// concurrent runs replay it as a set (see the determinism proptests).
    pub fn trace(&self) -> Vec<FaultEvent> {
        self.shared.trace.lock().unwrap().clone()
    }

    /// Events not recorded because the trace hit its cap.
    pub fn dropped_events(&self) -> u64 {
        self.shared.dropped_events.load(Ordering::Relaxed)
    }

    /// Per-point counters, ordered by point name.
    pub fn stats(&self) -> Vec<PointStats> {
        self.points
            .lock()
            .unwrap()
            .values()
            .map(FaultPoint::stats)
            .collect()
    }

    /// Total faults injected across all points.
    pub fn injected_total(&self) -> u64 {
        self.stats().iter().map(|s| s.injected).sum()
    }
}

impl Collect for FaultPlane {
    fn collect(&self, out: &mut Snapshot) {
        for s in self.stats() {
            out.push(Sample::counter(
                format!("fault.{}.checked", s.name),
                s.checked,
            ));
            out.push(Sample::counter(
                format!("fault.{}.injected", s.name),
                s.injected,
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plane_never_injects_or_counts() {
        let plane = FaultPlane::with_seed(1);
        plane.set("t.always", FaultSchedule::Probability(1.0));
        let p = plane.point("t.always");
        for _ in 0..100 {
            assert!(!p.should_inject());
        }
        assert_eq!(p.stats().checked, 0, "disabled checks must not count");
        assert!(plane.trace().is_empty());
    }

    #[test]
    fn arrivals_only_advance_while_enabled() {
        let plane = FaultPlane::with_seed(7);
        plane.set("t.oneshot", FaultSchedule::OneShot(0));
        let p = plane.point("t.oneshot");
        assert!(!p.should_inject(), "warmup while disabled");
        plane.enable();
        assert!(p.should_inject(), "arrival 0 happens after enable");
    }

    #[test]
    fn trace_records_point_and_arrival() {
        let plane = FaultPlane::with_seed(3);
        plane.set("t.nth", FaultSchedule::EveryNth(2));
        plane.enable();
        let p = plane.point("t.nth");
        for _ in 0..6 {
            p.should_inject();
        }
        assert_eq!(
            plane.trace(),
            vec![
                FaultEvent {
                    point: "t.nth",
                    op: 1
                },
                FaultEvent {
                    point: "t.nth",
                    op: 3
                },
                FaultEvent {
                    point: "t.nth",
                    op: 5
                },
            ]
        );
        let stats = p.stats();
        assert_eq!((stats.checked, stats.injected), (6, 3));
    }

    #[test]
    fn same_seed_replays_identical_trace() {
        let run = |seed| {
            let plane = FaultPlane::with_seed(seed);
            plane.set("t.p", FaultSchedule::Probability(0.3));
            plane.enable();
            let p = plane.point("t.p");
            for _ in 0..200 {
                p.should_inject();
            }
            plane.trace()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seed, different trace");
    }

    #[test]
    fn point_handles_share_state() {
        let plane = FaultPlane::with_seed(5);
        plane.set("t.shared", FaultSchedule::EveryNth(1));
        plane.enable();
        let a = plane.point("t.shared");
        let b = plane.point("t.shared");
        assert!(a.should_inject());
        assert!(b.should_inject());
        assert_eq!(a.stats().checked, 2, "handles observe one shared counter");
    }

    #[test]
    fn collect_exports_fault_counters() {
        let plane = FaultPlane::with_seed(9);
        plane.set("t.obs", FaultSchedule::EveryNth(1));
        plane.enable();
        plane.point("t.obs").should_inject();
        let mut snap = Snapshot::new();
        plane.collect(&mut snap);
        assert!(snap.find("fault.t.obs.checked").is_some());
        assert!(snap.find("fault.t.obs.injected").is_some());
    }
}
