//! Deterministic fault injection for the PK kernel stack.
//!
//! The paper's method is measure → attribute → fix; `pk-obs` is the
//! measurement half. This crate is its robustness twin: a seed-driven
//! fault-injection plane that lets every failure run replay byte-for-byte,
//! so the error paths the fixes introduce (the fault classes Palix et al.
//! found dominating real kernel bugs) can be exercised and regression
//! tested instead of discovered in production.
//!
//! * [`FaultPlane`] — a process-wide registry of named injection points.
//!   Like `pk-obs`, it is cheap enough to compile in always: a disabled
//!   plane costs one relaxed atomic load per check.
//! * [`FaultPoint`] — a handle a subsystem resolves once at construction
//!   and checks on its hot path (`mm.alloc_enomem`, `net.rx_drop`,
//!   `vfs.dentry_alloc`, `proc.fork_fail`, ...).
//! * [`FaultSchedule`] — when a point fires: never, with a probability,
//!   every Nth arrival, or one-shot at a given arrival count. Decisions
//!   depend only on `(seed, point, arrival index)` — never on thread
//!   timing — so the set of injected faults is identical across thread
//!   interleavings and replays exactly from the seed.
//! * [`RetryPolicy`] — the handling side: bounded retries with
//!   exponential backoff and deterministic jitter drawn from the same
//!   seed, so a workload's recovery schedule replays too.
//!
//! The plane implements [`pk_obs::Collect`], exporting per-point
//! `fault.<point>.checked` / `fault.<point>.injected` counters into the
//! same snapshots the contention reports read.

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

mod backoff;
mod plane;
mod schedule;

pub use backoff::{DeadlineOutcome, RetryOutcome, RetryPolicy};
pub use plane::{FaultEvent, FaultPlane, FaultPoint, PointStats};
pub use schedule::{mix64, FaultSchedule};
