//! Fault schedules: when a registered point fires.

/// A splitmix64-style avalanche over one 64-bit word.
///
/// Used to derive an independent, uniformly distributed decision word
/// from `(seed, point id, arrival index)`. The construction is the same
/// finalizer the NIC's RSS hash and the vendored `rand` seeding use, so
/// consecutive arrival indices decorrelate fully.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Derives the decision word for the `n`th arrival at point `point_id`
/// under `seed`.
fn decision_word(seed: u64, point_id: u64, n: u64) -> u64 {
    mix64(seed ^ point_id.rotate_left(17) ^ mix64(n))
}

/// When an injection point fires.
///
/// Every variant is a pure function of `(seed, point, arrival index)`:
/// two runs with the same seed inject the same faults at the same
/// arrivals no matter how threads interleave.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultSchedule {
    /// Never fires (the default for every registered point).
    Never,
    /// Fires each arrival independently with this probability in `[0, 1]`.
    Probability(f64),
    /// Fires on every `N`th arrival (the `N-1`th, `2N-1`th, ... 0-indexed).
    EveryNth(u64),
    /// Fires exactly once, at the given 0-indexed arrival count.
    OneShot(u64),
}

impl FaultSchedule {
    /// Whether the `n`th arrival (0-indexed) at `point_id` fires under
    /// `seed`.
    pub fn fires(self, seed: u64, point_id: u64, n: u64) -> bool {
        match self {
            Self::Never => false,
            Self::Probability(p) => {
                if p <= 0.0 {
                    return false;
                }
                if p >= 1.0 {
                    return true;
                }
                // 53 uniform bits, the same construction the vendored
                // rand uses for `gen::<f64>()`.
                let u =
                    (decision_word(seed, point_id, n) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                u < p
            }
            Self::EveryNth(k) => k > 0 && (n + 1).is_multiple_of(k),
            Self::OneShot(at) => n == at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_never_fires() {
        for n in 0..1000 {
            assert!(!FaultSchedule::Never.fires(42, 7, n));
        }
    }

    #[test]
    fn every_nth_fires_on_schedule() {
        let s = FaultSchedule::EveryNth(3);
        let fired: Vec<u64> = (0..10).filter(|&n| s.fires(0, 0, n)).collect();
        assert_eq!(fired, [2, 5, 8]);
        assert!(!FaultSchedule::EveryNth(0).fires(0, 0, 0), "0 is never");
    }

    #[test]
    fn one_shot_fires_once() {
        let s = FaultSchedule::OneShot(4);
        let fired: Vec<u64> = (0..10).filter(|&n| s.fires(9, 9, n)).collect();
        assert_eq!(fired, [4]);
    }

    #[test]
    fn probability_edge_cases() {
        assert!(!FaultSchedule::Probability(0.0).fires(1, 1, 1));
        assert!(FaultSchedule::Probability(1.0).fires(1, 1, 1));
    }

    #[test]
    fn probability_hits_close_to_rate() {
        let s = FaultSchedule::Probability(0.01);
        let hits = (0..100_000).filter(|&n| s.fires(42, 3, n)).count();
        assert!(
            (700..1300).contains(&hits),
            "1% of 100k should be ~1000, got {hits}"
        );
    }

    #[test]
    fn decisions_depend_only_on_inputs() {
        let s = FaultSchedule::Probability(0.1);
        for n in 0..500 {
            assert_eq!(s.fires(7, 1, n), s.fires(7, 1, n));
        }
        // Different seeds and different points give different traces.
        let trace =
            |seed, point| -> Vec<u64> { (0..500).filter(|&n| s.fires(seed, point, n)).collect() };
        assert_ne!(trace(7, 1), trace(8, 1), "seed matters");
        assert_ne!(trace(7, 1), trace(7, 2), "point identity matters");
    }

    #[test]
    fn mix64_avalanches() {
        // Adjacent inputs must not give adjacent outputs.
        let a = mix64(1);
        let b = mix64(2);
        assert!((a ^ b).count_ones() > 10);
    }
}
