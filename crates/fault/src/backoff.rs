//! Bounded retry with deterministic exponential backoff.

use crate::schedule::mix64;

/// What a [`RetryPolicy::run`] call produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryOutcome<T, E> {
    /// The final `Ok` value, or the last error once attempts ran out.
    pub result: Result<T, E>,
    /// Attempts made (1 when the first try succeeded).
    pub attempts: u32,
    /// Total simulated backoff, in cycles. Never slept — the simulation
    /// charges these cycles to the workload's books instead.
    pub backoff_cycles: u64,
}

/// Bounded exponential backoff with deterministic jitter.
///
/// The delay before retry `a` is drawn from `[exp/2, exp]` where
/// `exp = min(base << a, max)`, with the jitter fraction derived from
/// `(seed, token, a)` — so a chaos run's recovery schedule replays from
/// the same seed as its faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts before giving up (at least 1).
    pub max_attempts: u32,
    /// Backoff before the first retry, in cycles.
    pub base_delay_cycles: u64,
    /// Cap on any single backoff, in cycles.
    pub max_delay_cycles: u64,
}

impl RetryPolicy {
    /// A small default suited to the workload drivers: up to 4 attempts,
    /// 1k-cycle base, 64k-cycle cap.
    pub const DEFAULT: Self = Self {
        max_attempts: 4,
        base_delay_cycles: 1_000,
        max_delay_cycles: 64_000,
    };

    /// The backoff charged before retry attempt `attempt` (0-indexed:
    /// the delay between attempt `attempt` failing and the next try).
    pub fn delay_cycles(&self, seed: u64, token: u64, attempt: u32) -> u64 {
        let exp = self
            .base_delay_cycles
            .saturating_shl(attempt)
            .min(self.max_delay_cycles)
            .max(1);
        // Jitter in [exp/2, exp]: full jitter halves the thundering herd
        // without ever collapsing the delay to zero.
        let jitter = mix64(seed ^ token.rotate_left(23) ^ u64::from(attempt));
        exp / 2 + jitter % (exp / 2 + 1)
    }

    /// Run `op` until it succeeds or attempts run out, charging
    /// deterministic backoff between failures.
    ///
    /// `op` receives the 0-indexed attempt number. `token` distinguishes
    /// concurrent retry loops sharing one seed (e.g. a message id), so
    /// their jitter decorrelates.
    pub fn run<T, E>(
        &self,
        seed: u64,
        token: u64,
        mut op: impl FnMut(u32) -> Result<T, E>,
    ) -> RetryOutcome<T, E> {
        let max = self.max_attempts.max(1);
        let mut backoff_cycles = 0;
        let mut attempt = 0;
        loop {
            match op(attempt) {
                Ok(v) => {
                    return RetryOutcome {
                        result: Ok(v),
                        attempts: attempt + 1,
                        backoff_cycles,
                    }
                }
                Err(e) if attempt + 1 >= max => {
                    return RetryOutcome {
                        result: Err(e),
                        attempts: attempt + 1,
                        backoff_cycles,
                    }
                }
                Err(_) => {
                    backoff_cycles += self.delay_cycles(seed, token, attempt);
                    attempt += 1;
                }
            }
        }
    }
}

/// What a [`RetryPolicy::run_within`] call produced: a [`RetryOutcome`]
/// plus whether the deadline budget, not the attempt bound, ended it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlineOutcome<T, E> {
    /// The underlying retry outcome. When the deadline expired, `result`
    /// still carries the *last transient error* — the caller decides
    /// how to surface the exhaustion (the kernel maps it to `Timeout`).
    pub outcome: RetryOutcome<T, E>,
    /// True when retrying stopped because the accumulated backoff
    /// would cross `budget_cycles`, with attempts still remaining.
    pub deadline_exhausted: bool,
}

impl RetryPolicy {
    /// [`RetryPolicy::run`] under a deadline: gives up early when the
    /// *next* backoff would push total charged cycles past
    /// `budget_cycles` — a request past its SLO budget must not keep a
    /// worker busy producing a reply nobody is waiting for.
    ///
    /// A `budget_cycles` of 0 means no deadline (plain `run`).
    pub fn run_within<T, E>(
        &self,
        seed: u64,
        token: u64,
        budget_cycles: u64,
        mut op: impl FnMut(u32) -> Result<T, E>,
    ) -> DeadlineOutcome<T, E> {
        let max = self.max_attempts.max(1);
        let mut backoff_cycles = 0;
        let mut attempt = 0;
        loop {
            match op(attempt) {
                Ok(v) => {
                    return DeadlineOutcome {
                        outcome: RetryOutcome {
                            result: Ok(v),
                            attempts: attempt + 1,
                            backoff_cycles,
                        },
                        deadline_exhausted: false,
                    }
                }
                Err(e) if attempt + 1 >= max => {
                    return DeadlineOutcome {
                        outcome: RetryOutcome {
                            result: Err(e),
                            attempts: attempt + 1,
                            backoff_cycles,
                        },
                        deadline_exhausted: false,
                    }
                }
                Err(e) => {
                    let delay = self.delay_cycles(seed, token, attempt);
                    if budget_cycles > 0 && backoff_cycles + delay > budget_cycles {
                        return DeadlineOutcome {
                            outcome: RetryOutcome {
                                result: Err(e),
                                attempts: attempt + 1,
                                backoff_cycles,
                            },
                            deadline_exhausted: true,
                        };
                    }
                    backoff_cycles += delay;
                    attempt += 1;
                }
            }
        }
    }
}

/// `u64::checked_shl` that saturates instead of wrapping, so huge attempt
/// counts cannot shift the base back down to a tiny delay.
trait SaturatingShl {
    fn saturating_shl(self, rhs: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, rhs: u32) -> Self {
        self.checked_shl(rhs).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_success_costs_nothing() {
        let out = RetryPolicy::DEFAULT.run(1, 1, |_| Ok::<_, ()>(7));
        assert_eq!(out.result, Ok(7));
        assert_eq!(out.attempts, 1);
        assert_eq!(out.backoff_cycles, 0);
    }

    #[test]
    fn retries_until_success() {
        let out = RetryPolicy::DEFAULT.run(1, 1, |a| if a < 2 { Err(()) } else { Ok(a) });
        assert_eq!(out.result, Ok(2));
        assert_eq!(out.attempts, 3);
        assert!(out.backoff_cycles > 0);
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let mut calls = 0;
        let out = RetryPolicy::DEFAULT.run(1, 1, |_| {
            calls += 1;
            Err::<(), _>("enomem")
        });
        assert_eq!(out.result, Err("enomem"));
        assert_eq!(out.attempts, 4);
        assert_eq!(calls, 4);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            max_attempts: 16,
            base_delay_cycles: 100,
            max_delay_cycles: 1_000,
        };
        for attempt in 0..16 {
            let d = p.delay_cycles(9, 9, attempt);
            let exp = (100u64 << attempt.min(10)).min(1_000);
            assert!(
                d >= exp / 2 && d <= exp,
                "attempt {attempt}: {d} vs cap {exp}"
            );
        }
        // Huge attempt numbers must not wrap the shift back down.
        assert!(p.delay_cycles(9, 9, 200) >= 500);
    }

    #[test]
    fn deadline_stops_retrying_before_the_attempt_bound() {
        // Budget smaller than the first backoff: one attempt, flagged.
        let out = RetryPolicy::DEFAULT.run_within(1, 1, 10, |_| Err::<(), _>("eagain"));
        assert!(out.deadline_exhausted);
        assert_eq!(out.outcome.attempts, 1);
        assert_eq!(out.outcome.result, Err("eagain"));
        assert!(
            out.outcome.backoff_cycles <= 10,
            "never charges past the budget"
        );

        // A huge budget degenerates to plain `run`.
        let plain = RetryPolicy::DEFAULT.run(1, 1, |_| Err::<(), _>("eagain"));
        let within = RetryPolicy::DEFAULT.run_within(1, 1, u64::MAX, |_| Err::<(), _>("eagain"));
        assert!(!within.deadline_exhausted);
        assert_eq!(within.outcome.attempts, plain.attempts);
        assert_eq!(within.outcome.backoff_cycles, plain.backoff_cycles);

        // Zero budget means no deadline at all.
        let unbounded = RetryPolicy::DEFAULT.run_within(1, 1, 0, |_| Err::<(), _>("eagain"));
        assert!(!unbounded.deadline_exhausted);
        assert_eq!(unbounded.outcome.attempts, 4);
    }

    #[test]
    fn deadline_success_inside_budget_is_unflagged() {
        let out =
            RetryPolicy::DEFAULT.run_within(
                1,
                1,
                u64::MAX,
                |a| if a < 1 { Err(()) } else { Ok(a) },
            );
        assert!(!out.deadline_exhausted);
        assert_eq!(out.outcome.result, Ok(1));
        assert_eq!(out.outcome.attempts, 2);
    }

    #[test]
    fn jitter_is_deterministic_but_token_dependent() {
        let p = RetryPolicy::DEFAULT;
        assert_eq!(p.delay_cycles(42, 7, 1), p.delay_cycles(42, 7, 1));
        let same_token: Vec<u64> = (0..4).map(|a| p.delay_cycles(42, 7, a)).collect();
        let other_token: Vec<u64> = (0..4).map(|a| p.delay_cycles(42, 8, a)).collect();
        assert_ne!(same_token, other_token, "token decorrelates jitter");
    }
}
