//! Property tests for trace determinism (the tentpole contract): the
//! drained, encoded event stream is a pure function of the per-track
//! record sequences — never of which OS thread delivered them or how
//! the scheduler interleaved the tracks.
//!
//! Thread migration is modelled the way it happens in the functional
//! drivers: a logical track's events arrive in program order, but the
//! thread doing the recording changes between stages. Stages are
//! separated by a barrier (the happens-before a real driver gets from
//! handing a connection to another worker), while *different* tracks
//! race freely within a stage.

use pk_trace::{encode_stream, Event, EventKind, Tracer, ENCODED_EVENT_BYTES};
use proptest::prelude::*;
use std::sync::Barrier;
use std::thread;

/// Splitmix64: deterministic event content from (seed, track, stage, i).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn kind_of(x: u64) -> EventKind {
    match x % 4 {
        0 => EventKind::SpanBegin,
        1 => EventKind::SpanEnd,
        2 => EventKind::Instant,
        _ => EventKind::Counter,
    }
}

/// Replays the same logical plan: `stages × per_stage` events per
/// track, with track `k`'s stage `s` recorded by thread
/// `(k + s) % threads` — so every track migrates across every thread —
/// and returns the canonical encoded stream plus the drop count.
fn run_plan(
    tracks: usize,
    threads: usize,
    stages: usize,
    per_stage: u64,
    seed: u64,
    capacity: usize,
) -> (Vec<u8>, u64) {
    let tracer = Tracer::new(tracks, capacity);
    let barrier = Barrier::new(threads);
    thread::scope(|s| {
        for t in 0..threads {
            let tracer = &tracer;
            let barrier = &barrier;
            s.spawn(move || {
                for stage in 0..stages {
                    barrier.wait();
                    for k in 0..tracks {
                        if (k + stage) % threads != t {
                            continue;
                        }
                        for i in 0..per_stage {
                            let x = mix(seed ^ ((k as u64) << 40) ^ ((stage as u64) << 20) ^ i);
                            tracer.record(k, kind_of(x), (x >> 8) as u32 % 64, 0, x >> 32);
                        }
                    }
                }
            });
        }
    });
    let dropped = tracer.dropped(); // drain() resets the drop counter
    let events: Vec<Event> = tracer.drain();
    (encode_stream(&events), dropped)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Two runs of the same plan from racing, migrating threads drain
    /// byte-identical streams with identical drop accounting.
    #[test]
    fn same_seed_drains_byte_identical_streams(
        tracks in 1..5usize,
        threads in 1..4usize,
        stages in 1..4usize,
        per_stage in 0..60u64,
        seed in any::<u64>(),
    ) {
        let capacity = (stages as u64 * per_stage).max(1) as usize;
        let a = run_plan(tracks, threads, stages, per_stage, seed, capacity);
        let b = run_plan(tracks, threads, stages, per_stage, seed, capacity);
        prop_assert_eq!(&a.0, &b.0, "streams diverged");
        prop_assert_eq!(a.1, b.1, "drop counts diverged");
        prop_assert_eq!(a.1, 0, "capacity covers the plan");
        prop_assert_eq!(
            a.0.len(),
            tracks * stages * per_stage as usize * ENCODED_EVENT_BYTES
        );
    }

    /// Overflow is deterministic too: the same undersized ring drops
    /// the same events, and the drop count equals the excess.
    #[test]
    fn overflow_is_counted_and_reproducible(
        per_stage in 1..80u64,
        capacity in 1..32usize,
        seed in any::<u64>(),
    ) {
        let a = run_plan(2, 2, 2, per_stage, seed, capacity);
        let b = run_plan(2, 2, 2, per_stage, seed, capacity);
        prop_assert_eq!(&a.0, &b.0);
        prop_assert_eq!(a.1, b.1);
        let per_track = 2 * per_stage;
        let expect_dropped = 2 * per_track.saturating_sub(capacity as u64);
        prop_assert_eq!(a.1, expect_dropped);
        let kept = (per_track.min(capacity as u64) * 2) as usize;
        prop_assert_eq!(a.0.len(), kept * ENCODED_EVENT_BYTES);
    }
}

/// `trace-off` contract: the macros and hooks compile to nothing — no
/// events reach an installed, enabled tracer, and the RAII guard has
/// no size (so a span in a hot struct costs zero bytes).
#[cfg(feature = "trace-off")]
mod trace_off {
    #[test]
    fn macros_record_nothing_and_guard_is_zero_sized() {
        assert_eq!(
            std::mem::size_of::<pk_trace::SpanGuard>(),
            0,
            "SpanGuard must be a ZST under trace-off"
        );
        let t = pk_trace::install_global(pk_trace::DEFAULT_RING_CAPACITY);
        t.enable();
        {
            let _g = pk_trace::trace_span!("off.outer");
            pk_trace::trace_instant!("off.tick");
            pk_trace::trace_counter!("off.bytes", 9);
        }
        let cell = pk_lockdep::ClassCell::new();
        cell.set_class(pk_lockdep::register_class(
            "off.lock",
            "pk-trace",
            pk_lockdep::LockKind::Spin,
        ));
        pk_trace::lock_acquired(&cell, pk_lockdep::LockKind::Spin, 1);
        pk_trace::lock_released(&cell, pk_lockdep::LockKind::Spin);
        assert_eq!(t.recorded(), 0, "hooks must not record");
        assert_eq!(t.dropped(), 0);
        assert!(t.drain().is_empty(), "no events under trace-off");
    }
}
