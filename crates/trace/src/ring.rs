//! The per-track lock-free event ring.
//!
//! Fixed capacity, append-only between drains: a writer claims a slot
//! with one `fetch_add`, writes the event into four atomic words, and
//! publishes with a release store of the tagged word. When the ring is
//! full further events are **counted and dropped** — a hot path never
//! blocks on the tracer (ISSUE 5 overflow semantics; `pk-obs` exports
//! the drop counter so a truncated trace is always visible).
//!
//! Draining is the pull model: a quiescent reader (the `TraceSink`, a
//! test, the profiler) walks the claimed prefix in slot order and then
//! resets the ring. Slot order *is* program order per track because
//! every track has one logical writer at a time (a core, or a DES
//! customer processed by the deterministic event loop).

use crate::event::{Event, EventKind};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Bit set in the tag word when the slot's payload words are visible.
const PUBLISHED: u64 = 1 << 63;

#[derive(Default)]
struct Slot {
    ts: AtomicU64,
    arg: AtomicU64,
    ids: AtomicU64, // class | site << 32
    tag: AtomicU64, // track | kind << 32 | PUBLISHED
}

pub(crate) struct Ring {
    next: AtomicUsize,
    dropped: AtomicU64,
    slots: Box<[Slot]>,
}

impl Ring {
    pub(crate) fn new(capacity: usize) -> Self {
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, Slot::default);
        Self {
            next: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            slots: slots.into_boxed_slice(),
        }
    }

    /// Records one event; returns `false` (and counts it) on overflow.
    pub(crate) fn push(&self, e: Event) -> bool {
        let idx = self.next.fetch_add(1, Ordering::Relaxed);
        let Some(slot) = self.slots.get(idx) else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        };
        slot.ts.store(e.ts, Ordering::Relaxed);
        slot.arg.store(e.arg, Ordering::Relaxed);
        slot.ids.store(
            u64::from(e.class) | u64::from(e.site) << 32,
            Ordering::Relaxed,
        );
        let tag = u64::from(e.track) | (e.kind as u64) << 32 | PUBLISHED;
        slot.tag.store(tag, Ordering::Release);
        true
    }

    /// Number of events recorded (claimed and published) so far.
    pub(crate) fn len(&self) -> usize {
        self.next.load(Ordering::Acquire).min(self.slots.len())
    }

    /// Events lost to overflow since the last [`reset`](Self::reset).
    pub(crate) fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Appends the recorded prefix, in slot (= program) order, to `out`.
    /// Call only at a quiescent point: slots claimed but not yet
    /// published by a racing writer are skipped and counted as dropped.
    pub(crate) fn drain_into(&self, out: &mut Vec<Event>) {
        let n = self.len();
        for slot in &self.slots[..n] {
            let tag = slot.tag.load(Ordering::Acquire);
            if tag & PUBLISHED == 0 {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let ids = slot.ids.load(Ordering::Relaxed);
            let kind = (tag >> 32 & 0xff) as u8;
            out.push(Event {
                ts: slot.ts.load(Ordering::Relaxed),
                arg: slot.arg.load(Ordering::Relaxed),
                class: ids as u32,
                site: (ids >> 32) as u32,
                track: tag as u32,
                // A published tag always carries a tag we wrote.
                kind: EventKind::from_u8(kind).unwrap_or(EventKind::Instant),
            });
        }
    }

    /// Rewinds the ring for the next capture window.
    pub(crate) fn reset(&self) {
        let n = self.len();
        for slot in &self.slots[..n] {
            slot.tag.store(0, Ordering::Relaxed);
        }
        self.dropped.store(0, Ordering::Relaxed);
        self.next.store(0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64) -> Event {
        Event {
            ts,
            arg: ts * 10,
            class: 7,
            site: 9,
            track: 3,
            kind: EventKind::Instant,
        }
    }

    #[test]
    fn push_drain_round_trips_in_order() {
        let r = Ring::new(8);
        for i in 0..5 {
            assert!(r.push(ev(i)));
        }
        let mut out = Vec::new();
        r.drain_into(&mut out);
        assert_eq!(out.len(), 5);
        assert_eq!(
            out.iter().map(|e| e.ts).collect::<Vec<_>>(),
            [0, 1, 2, 3, 4]
        );
        assert_eq!(out[0], ev(0));
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn overflow_is_counted_and_dropped_never_wrapping() {
        let r = Ring::new(4);
        for i in 0..10 {
            r.push(ev(i));
        }
        let mut out = Vec::new();
        r.drain_into(&mut out);
        // The first `capacity` events survive; the rest are counted.
        assert_eq!(out.iter().map(|e| e.ts).collect::<Vec<_>>(), [0, 1, 2, 3]);
        assert_eq!(r.dropped(), 6);
    }

    #[test]
    fn reset_reopens_a_full_ring() {
        let r = Ring::new(2);
        for i in 0..5 {
            r.push(ev(i));
        }
        r.reset();
        assert_eq!(r.dropped(), 0);
        assert!(r.push(ev(99)));
        let mut out = Vec::new();
        r.drain_into(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].ts, 99);
    }

    #[test]
    fn concurrent_writers_lose_nothing_under_capacity() {
        let r = std::sync::Arc::new(Ring::new(4096));
        std::thread::scope(|s| {
            for t in 0..4 {
                let r = r.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        assert!(r.push(ev((t * 1000 + i) as u64)));
                    }
                });
            }
        });
        let mut out = Vec::new();
        r.drain_into(&mut out);
        assert_eq!(out.len(), 4000);
        assert_eq!(r.dropped(), 0);
        let mut ts: Vec<u64> = out.iter().map(|e| e.ts).collect();
        ts.sort_unstable();
        assert_eq!(ts, (0..4000).collect::<Vec<u64>>());
    }
}
