//! Post-hoc cycle attribution: folds a drained event stream into an
//! inclusive/exclusive cycle tree and flat per-class totals — the
//! paper's "X% of cycles in function Y at 48 cores" tables (§4).
//!
//! * **Inclusive** cycles of a span = end − begin.
//! * **Exclusive** cycles = inclusive − Σ inclusive of direct children,
//!   i.e. cycles attributable to the class itself. Exclusive totals are
//!   what the top-functions table ranks, exactly like a sampling
//!   profiler's self time.
//!
//! Lock events (`LockBegin`/`LockEnd`) resolve their names through the
//! always-compiled `pk-lockdep` class registry; span events through the
//! pk-trace intern table. Resolution happens here, never on a hot path.

use crate::event::{Event, EventKind};
use crate::intern;
use std::collections::BTreeMap;

/// Class key carrying its namespace (trace intern vs lockdep registry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum Key {
    Span(u32),
    Lock(u32),
}

impl Key {
    fn of(e: &Event) -> Key {
        if e.kind.is_lock() {
            Key::Lock(e.class)
        } else {
            Key::Span(e.class)
        }
    }

    fn name(self) -> String {
        match self {
            Key::Span(id) => intern::span_name(id),
            Key::Lock(id) => pk_lockdep::class_name(pk_lockdep::ClassId::from_raw(id)),
        }
    }
}

/// Flat per-class roll-up across all tracks.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassTotals {
    /// Resolved class name.
    pub name: String,
    /// Spans of this class that closed.
    pub count: u64,
    /// Σ (end − begin).
    pub inclusive: u64,
    /// Σ (end − begin − children), the "self time".
    pub exclusive: u64,
}

/// One node of the attribution tree (children sorted by name).
#[derive(Debug, Clone)]
pub struct ProfileNode {
    /// Resolved class name (`<root>` for the synthetic root).
    pub name: String,
    /// Spans that closed at this tree position.
    pub count: u64,
    /// Inclusive cycles at this position.
    pub inclusive: u64,
    /// Exclusive cycles at this position.
    pub exclusive: u64,
    /// Callees, sorted by name.
    pub children: Vec<ProfileNode>,
}

#[derive(Default)]
struct Node {
    count: u64,
    inclusive: u64,
    exclusive: u64,
    children: BTreeMap<Key, Node>,
}

impl Node {
    fn at_path(&mut self, path: &[Key]) -> &mut Node {
        let mut cur = self;
        for k in path {
            cur = cur.children.entry(*k).or_default();
        }
        cur
    }

    fn resolve(&self, name: String) -> ProfileNode {
        ProfileNode {
            name,
            count: self.count,
            inclusive: self.inclusive,
            exclusive: self.exclusive,
            children: self
                .children
                .iter()
                .map(|(k, n)| n.resolve(k.name()))
                .collect(),
        }
    }
}

/// Saturating accumulate. The fold consumes *external* event streams
/// (possibly ragged — see the robustness rules on [`Profile::build`]),
/// and a 1024-track soak can push cycle sums toward `u64::MAX`, so
/// unlike the simulator's internal accumulators a wrap here must not
/// panic even in debug builds: totals pin at the ceiling and every
/// derived percentage stays finite.
#[inline]
fn sat(acc: &mut u64, delta: u64) {
    *acc = acc.saturating_add(delta);
}

struct Frame {
    key: Key,
    begin: u64,
    children: u64,
}

#[derive(Default)]
struct TrackState {
    stack: Vec<Frame>,
    last_ts: u64,
}

/// The folded profile of one capture window.
#[derive(Debug, Clone)]
pub struct Profile {
    totals: Vec<ClassTotals>,
    /// Σ inclusive cycles of top-of-stack (root) spans: the denominator
    /// for "% of cycles".
    pub total_cycles: u64,
    /// Per-class counter sums (`trace_counter!` deltas).
    pub counters: Vec<(String, i64)>,
    /// Per-class instant-event counts.
    pub instants: Vec<(String, u64)>,
    root: ProfileNode,
}

impl Profile {
    /// Folds a drained event stream (any track interleaving; per-track
    /// order is what matters) into a profile.
    ///
    /// Robustness rules for imperfect streams: an `End` with no
    /// matching open frame is ignored; an `End` matching a non-top
    /// frame closes the frames above it at the same timestamp; frames
    /// still open when the stream ends are closed at the track's last
    /// seen timestamp.
    pub fn build(events: &[Event]) -> Profile {
        let mut tracks: BTreeMap<u32, TrackState> = BTreeMap::new();
        let mut flat: BTreeMap<Key, (u64, u64, u64)> = BTreeMap::new();
        let mut counters: BTreeMap<Key, i64> = BTreeMap::new();
        let mut instants: BTreeMap<Key, u64> = BTreeMap::new();
        let mut tree = Node::default();
        let mut total_cycles = 0u64;

        let mut close = |state: &mut TrackState,
                         tree: &mut Node,
                         flat: &mut BTreeMap<Key, (u64, u64, u64)>,
                         ts: u64| {
            let frame = state.stack.pop().expect("caller checked non-empty");
            let inclusive = ts.saturating_sub(frame.begin);
            let exclusive = inclusive.saturating_sub(frame.children);
            let entry = flat.entry(frame.key).or_default();
            sat(&mut entry.0, 1);
            sat(&mut entry.1, inclusive);
            sat(&mut entry.2, exclusive);
            let path: Vec<Key> = state
                .stack
                .iter()
                .map(|f| f.key)
                .chain(std::iter::once(frame.key))
                .collect();
            let node = tree.at_path(&path);
            sat(&mut node.count, 1);
            sat(&mut node.inclusive, inclusive);
            sat(&mut node.exclusive, exclusive);
            match state.stack.last_mut() {
                Some(parent) => sat(&mut parent.children, inclusive),
                None => sat(&mut total_cycles, inclusive),
            }
        };

        for e in events {
            let state = tracks.entry(e.track).or_default();
            state.last_ts = state.last_ts.max(e.ts);
            let key = Key::of(e);
            match e.kind {
                // Request contexts fold exactly like spans: the ctx
                // becomes the root frame of its request's subtree.
                EventKind::SpanBegin | EventKind::LockBegin | EventKind::CtxBegin => {
                    state.stack.push(Frame {
                        key,
                        begin: e.ts,
                        children: 0,
                    })
                }
                EventKind::SpanEnd | EventKind::LockEnd | EventKind::CtxEnd => {
                    if state.stack.iter().any(|f| f.key == key) {
                        while state.stack.last().map(|f| f.key) != Some(key) {
                            close(state, &mut tree, &mut flat, e.ts);
                        }
                        close(state, &mut tree, &mut flat, e.ts);
                    }
                }
                EventKind::Instant => *instants.entry(key).or_default() += 1,
                EventKind::Counter => *counters.entry(key).or_default() += e.arg as i64,
            }
        }
        for state in tracks.values_mut() {
            let ts = state.last_ts;
            while !state.stack.is_empty() {
                close(state, &mut tree, &mut flat, ts);
            }
        }

        let mut totals: Vec<ClassTotals> = flat
            .into_iter()
            .map(|(k, (count, inclusive, exclusive))| ClassTotals {
                name: k.name(),
                count,
                inclusive,
                exclusive,
            })
            .collect();
        totals.sort_by(|a, b| b.exclusive.cmp(&a.exclusive).then(a.name.cmp(&b.name)));

        Profile {
            totals,
            total_cycles,
            counters: counters.into_iter().map(|(k, v)| (k.name(), v)).collect(),
            instants: instants.into_iter().map(|(k, v)| (k.name(), v)).collect(),
            root: tree.resolve("<root>".to_string()),
        }
    }

    /// Per-class totals, ranked by exclusive cycles (descending).
    pub fn totals(&self) -> &[ClassTotals] {
        &self.totals
    }

    /// The top `n` classes by exclusive cycles.
    pub fn top_exclusive(&self, n: usize) -> &[ClassTotals] {
        &self.totals[..n.min(self.totals.len())]
    }

    /// The attribution tree under a synthetic `<root>`.
    pub fn tree(&self) -> &ProfileNode {
        &self.root
    }

    /// Fraction of total cycles spent *exclusively* in classes whose
    /// name satisfies `pred`. This is the paper's "X% of cycles in Y".
    pub fn share_where(&self, pred: impl Fn(&str) -> bool) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        let hit: u64 = self
            .totals
            .iter()
            .filter(|t| pred(&t.name))
            .map(|t| t.exclusive)
            .sum();
        hit as f64 / self.total_cycles as f64
    }

    /// Paper-style top-functions table: `% cycles, exclusive,
    /// inclusive, count, class`.
    pub fn table(&self, n: usize) -> String {
        let mut out = String::from("  %cycl  exclusive   inclusive     count  class\n");
        for t in self.top_exclusive(n) {
            let pct = if self.total_cycles == 0 {
                0.0
            } else {
                100.0 * t.exclusive as f64 / self.total_cycles as f64
            };
            out.push_str(&format!(
                "  {pct:5.1}  {:>9}  {:>10}  {:>8}  {}\n",
                t.exclusive, t.inclusive, t.count, t.name
            ));
        }
        out
    }

    /// Indented rendering of the attribution tree to `max_depth`.
    pub fn render_tree(&self, max_depth: usize) -> String {
        fn walk(n: &ProfileNode, depth: usize, max_depth: usize, out: &mut String) {
            if depth > max_depth {
                return;
            }
            out.push_str(&format!(
                "{}{} incl={} excl={} n={}\n",
                "  ".repeat(depth),
                n.name,
                n.inclusive,
                n.exclusive,
                n.count
            ));
            for c in &n.children {
                walk(c, depth + 1, max_depth, out);
            }
        }
        let mut out = String::new();
        walk(&self.root, 0, max_depth, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(track: u32, ts: u64, kind: EventKind, class: u32) -> Event {
        Event {
            ts,
            arg: 0,
            class,
            site: 0,
            track,
            kind,
        }
    }

    #[test]
    fn inclusive_exclusive_fold_is_correct() {
        let outer = intern::intern_span("test.profile.outer");
        let inner = intern::intern_span("test.profile.inner");
        let events = vec![
            span(0, 0, EventKind::SpanBegin, outer),
            span(0, 10, EventKind::SpanBegin, inner),
            span(0, 30, EventKind::SpanEnd, inner),
            span(0, 50, EventKind::SpanEnd, outer),
        ];
        let p = Profile::build(&events);
        assert_eq!(p.total_cycles, 50);
        let get = |n: &str| {
            p.totals()
                .iter()
                .find(|t| t.name == n)
                .cloned()
                .unwrap_or_else(|| panic!("missing {n}"))
        };
        let o = get("test.profile.outer");
        assert_eq!((o.inclusive, o.exclusive, o.count), (50, 30, 1));
        let i = get("test.profile.inner");
        assert_eq!((i.inclusive, i.exclusive, i.count), (20, 20, 1));
        // Tree: root -> outer -> inner.
        assert_eq!(p.tree().children.len(), 1);
        assert_eq!(p.tree().children[0].name, "test.profile.outer");
        assert_eq!(p.tree().children[0].children[0].name, "test.profile.inner");
        assert!((p.share_where(|n| n.contains("inner")) - 0.4).abs() < 1e-9);
    }

    #[test]
    fn tracks_fold_independently_and_sum() {
        let c = intern::intern_span("test.profile.pertrack");
        let events = vec![
            span(0, 0, EventKind::SpanBegin, c),
            span(1, 5, EventKind::SpanBegin, c),
            span(0, 10, EventKind::SpanEnd, c),
            span(1, 25, EventKind::SpanEnd, c),
        ];
        let p = Profile::build(&events);
        assert_eq!(p.total_cycles, 30);
        let t = &p.totals()[0];
        assert_eq!((t.count, t.inclusive), (2, 30));
    }

    #[test]
    fn imperfect_streams_do_not_panic() {
        let a = intern::intern_span("test.profile.ragged.a");
        let b = intern::intern_span("test.profile.ragged.b");
        let events = vec![
            span(0, 0, EventKind::SpanEnd, b), // unmatched end: ignored
            span(0, 1, EventKind::SpanBegin, a),
            span(0, 3, EventKind::SpanBegin, b),
            span(0, 9, EventKind::SpanEnd, a), // closes b at 9, then a
            span(0, 12, EventKind::SpanBegin, b), // left open: closed at 12
        ];
        let p = Profile::build(&events);
        assert_eq!(p.total_cycles, 8);
        let names: Vec<&str> = p.totals().iter().map(|t| t.name.as_str()).collect();
        assert!(names.contains(&"test.profile.ragged.a"));
        assert!(names.contains(&"test.profile.ragged.b"));
    }

    #[test]
    fn counters_and_instants_accumulate() {
        let c = intern::intern_span("test.profile.counter");
        let i = intern::intern_span("test.profile.instant");
        let mut ev = vec![
            span(0, 0, EventKind::Counter, c),
            span(0, 1, EventKind::Counter, c),
            span(0, 2, EventKind::Instant, i),
        ];
        ev[0].arg = 5;
        ev[1].arg = (-2i64) as u64;
        let p = Profile::build(&ev);
        assert!(p
            .counters
            .iter()
            .any(|(n, v)| n == "test.profile.counter" && *v == 3));
        assert!(p
            .instants
            .iter()
            .any(|(n, v)| n == "test.profile.instant" && *v == 1));
    }

    #[test]
    fn huge_cycle_totals_saturate_instead_of_wrapping() {
        // Two back-to-back spans whose inclusive cycles sum past
        // u64::MAX. A wrapping fold would report a tiny total (2 +
        // wrap) and every percentage in `table()` would be garbage;
        // the saturating fold pins class totals and the denominator
        // at the ceiling.
        let c = intern::intern_span("test.profile.saturate");
        let events = vec![
            span(0, 0, EventKind::SpanBegin, c),
            span(0, u64::MAX - 1, EventKind::SpanEnd, c),
            span(0, 0, EventKind::SpanBegin, c),
            span(0, u64::MAX - 1, EventKind::SpanEnd, c),
        ];
        let p = Profile::build(&events);
        assert_eq!(p.total_cycles, u64::MAX);
        let t = &p.totals()[0];
        assert_eq!((t.count, t.inclusive, t.exclusive), (2, u64::MAX, u64::MAX));
        // share_where stays a sane fraction, not >1 or NaN.
        let share = p.share_where(|n| n.contains("saturate"));
        assert!((share - 1.0).abs() < 1e-9, "share {share}");
    }

    #[test]
    fn lock_events_resolve_through_lockdep_registry() {
        let id = pk_lockdep::register_class(
            "test.profile.lockname",
            "pk-trace",
            pk_lockdep::LockKind::Spin,
        );
        let events = vec![
            span(0, 0, EventKind::LockBegin, id.raw()),
            span(0, 7, EventKind::LockEnd, id.raw()),
        ];
        let p = Profile::build(&events);
        assert_eq!(p.totals()[0].name, "test.profile.lockname");
        assert_eq!(p.totals()[0].inclusive, 7);
        let table = p.table(5);
        assert!(table.contains("test.profile.lockname"), "{table}");
    }
}
