//! The compact trace event record.
//!
//! One `Event` is 32 bytes: a virtual timestamp, a payload word, two
//! interned-name ids, the track (core / DES customer) it was recorded
//! on, and the kind tag. Everything wider (class names, call sites)
//! lives in the intern tables and is resolved post-hoc, never on the
//! hot path.

/// What an [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum EventKind {
    /// A span opened. `class` is a span-class id from the pk-trace
    /// intern table; `site` (0 = unknown) is an interned call site.
    SpanBegin = 0,
    /// The matching close of the innermost open span of `class`.
    SpanEnd = 1,
    /// A point event (fault fired, signal, …). `arg` is free-form.
    Instant = 2,
    /// A counter delta: `arg` is the delta as an `i64` in disguise.
    Counter = 3,
    /// A lock hold span opened. `class` is a **pk-lockdep** `ClassId`
    /// (the shared naming registry); `arg` is the spins paid waiting.
    LockBegin = 4,
    /// The matching close of a lock hold span.
    LockEnd = 5,
    /// A request context opened: everything on this track until the
    /// matching [`CtxEnd`](Self::CtxEnd) belongs to request `arg`
    /// (the deterministic `RequestCtx` id). `class` is an interned
    /// span-class id naming the request kind (`serve.request`).
    CtxBegin = 6,
    /// The matching close of a request context; `arg` repeats the id.
    CtxEnd = 7,
}

impl EventKind {
    /// Decodes the wire tag; `None` for values never produced.
    pub fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0 => Self::SpanBegin,
            1 => Self::SpanEnd,
            2 => Self::Instant,
            3 => Self::Counter,
            4 => Self::LockBegin,
            5 => Self::LockEnd,
            6 => Self::CtxBegin,
            7 => Self::CtxEnd,
            _ => return None,
        })
    }

    /// Whether `class` refers to the lockdep registry rather than the
    /// pk-trace span intern table.
    pub fn is_lock(self) -> bool {
        matches!(self, Self::LockBegin | Self::LockEnd)
    }

    /// Whether this kind opens a span.
    pub fn is_begin(self) -> bool {
        matches!(self, Self::SpanBegin | Self::LockBegin | Self::CtxBegin)
    }

    /// Whether this kind closes a span.
    pub fn is_end(self) -> bool {
        matches!(self, Self::SpanEnd | Self::LockEnd | Self::CtxEnd)
    }

    /// Whether this kind delimits a request context.
    pub fn is_ctx(self) -> bool {
        matches!(self, Self::CtxBegin | Self::CtxEnd)
    }
}

/// One trace record. See [`EventKind`] for field semantics per kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Virtual timestamp: DES simulation cycles under `pk-sim`, the
    /// per-core monotone op counter in the functional drivers.
    pub ts: u64,
    /// Kind-specific payload (spins waited, counter delta, …).
    pub arg: u64,
    /// Interned class id; namespace selected by `kind.is_lock()`.
    pub class: u32,
    /// Interned call-site id (0 = not recorded).
    pub site: u32,
    /// Track the event belongs to: core id in the functional domain,
    /// customer id in the DES domain.
    pub track: u32,
    /// Discriminant.
    pub kind: EventKind,
}

/// Wire size of one encoded event (`ts, arg, class, site, track, kind`).
pub const ENCODED_EVENT_BYTES: usize = 8 + 8 + 4 + 4 + 4 + 1;

impl Event {
    /// Appends the canonical little-endian encoding to `out`. Used by
    /// the determinism tests: two drains are *the same trace* iff their
    /// encodings are byte-identical.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.ts.to_le_bytes());
        out.extend_from_slice(&self.arg.to_le_bytes());
        out.extend_from_slice(&self.class.to_le_bytes());
        out.extend_from_slice(&self.site.to_le_bytes());
        out.extend_from_slice(&self.track.to_le_bytes());
        out.push(self.kind as u8);
    }
}

/// Encodes a drained event stream to its canonical byte form.
pub fn encode_stream(events: &[Event]) -> Vec<u8> {
    let mut out = Vec::with_capacity(events.len() * ENCODED_EVENT_BYTES);
    for e in events {
        e.encode_into(&mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_stays_compact() {
        // The ring stores events as four u64 words; the struct itself
        // must never grow past that budget.
        assert!(std::mem::size_of::<Event>() <= 32);
    }

    #[test]
    fn kind_round_trips() {
        for raw in 0..=7u8 {
            let k = EventKind::from_u8(raw).unwrap();
            assert_eq!(k as u8, raw);
        }
        assert_eq!(EventKind::from_u8(8), None);
    }

    #[test]
    fn ctx_kinds_balance_like_spans() {
        assert!(EventKind::CtxBegin.is_begin());
        assert!(EventKind::CtxEnd.is_end());
        assert!(EventKind::CtxBegin.is_ctx() && EventKind::CtxEnd.is_ctx());
        assert!(!EventKind::CtxBegin.is_lock());
        assert!(!EventKind::SpanBegin.is_ctx());
    }

    #[test]
    fn encoding_is_injective_on_fields() {
        let a = Event {
            ts: 1,
            arg: 2,
            class: 3,
            site: 4,
            track: 5,
            kind: EventKind::SpanBegin,
        };
        let mut b = a;
        b.kind = EventKind::SpanEnd;
        assert_ne!(encode_stream(&[a]), encode_stream(&[b]));
        assert_eq!(encode_stream(&[a]).len(), ENCODED_EVENT_BYTES);
    }
}
