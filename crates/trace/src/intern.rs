//! Global intern tables for span-class names and call sites.
//!
//! Hot paths record `u32` ids; the string forms are resolved post-hoc
//! by the profiler and exporters. Interning is idempotent (same string,
//! same id), so ids are stable within a process and — because every
//! deterministic harness interns in program order — across runs at a
//! fixed seed.
//!
//! Span classes use dotted names in the same style as the lockdep lock
//! classes (`kernel.fork`, `rcu.read`, `des.op`); the two namespaces
//! stay distinct because lock events carry a `pk-lockdep` `ClassId`
//! instead (see `EventKind::is_lock`).

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

#[derive(Default)]
struct Table {
    names: Vec<String>,
    by_name: HashMap<String, u32>,
}

impl Table {
    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        self.names.push(name.to_string());
        let id = self.names.len() as u32; // ids start at 1; 0 = unknown
        self.by_name.insert(name.to_string(), id);
        id
    }

    fn name_of(&self, id: u32, what: &str) -> String {
        self.names
            .get(id.wrapping_sub(1) as usize)
            .cloned()
            .unwrap_or_else(|| format!("{what}#{id}"))
    }
}

fn spans() -> &'static Mutex<Table> {
    static T: OnceLock<Mutex<Table>> = OnceLock::new();
    T.get_or_init(|| Mutex::new(Table::default()))
}

fn sites() -> &'static Mutex<Table> {
    static T: OnceLock<Mutex<Table>> = OnceLock::new();
    T.get_or_init(|| Mutex::new(Table::default()))
}

/// Interns a span-class name, returning its stable id (≥ 1).
pub fn intern_span(name: &str) -> u32 {
    spans()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .intern(name)
}

/// Resolves a span-class id back to its name.
pub fn span_name(id: u32) -> String {
    spans()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .name_of(id, "span")
}

/// Interns a call site (`file:line`), returning its stable id (≥ 1).
pub fn intern_site(site: &str) -> u32 {
    sites()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .intern(site)
}

/// Resolves a site id back to its `file:line` form.
pub fn site_name(id: u32) -> String {
    if id == 0 {
        return String::new();
    }
    sites()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .name_of(id, "site")
}

/// Number of span classes interned so far (for the `TraceSink`).
pub fn span_class_count() -> usize {
    spans()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .names
        .len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_resolves() {
        let a = intern_span("test.intern.alpha");
        let b = intern_span("test.intern.alpha");
        let c = intern_span("test.intern.beta");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(span_name(a), "test.intern.alpha");
        assert_eq!(span_name(c), "test.intern.beta");
    }

    #[test]
    fn unknown_ids_get_placeholders_not_panics() {
        assert!(span_name(u32::MAX).starts_with("span#"));
        assert_eq!(site_name(0), "");
    }

    #[test]
    fn sites_are_a_separate_namespace() {
        let s = intern_site("file.rs:10");
        assert_eq!(site_name(s), "file.rs:10");
    }
}
