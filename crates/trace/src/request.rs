//! Request-scoped causal context (DESIGN.md §15).
//!
//! A `RequestCtx` is a deterministic 64-bit id minted at arrival
//! ([`request_id`]) and carried through everything done on behalf of
//! that request: admission queueing, kernel syscalls, lock waits, RCU
//! fallbacks. In the functional drivers the carrier is [`RequestScope`],
//! an RAII guard that brackets the thread's work with `CtxBegin`/
//! `CtxEnd` events and pins the id in a thread-local so hooks could
//! attribute to it; the DES domain instead stamps ctx events directly
//! (`pk_sim::flow`).
//!
//! Propagation rule: **one active context per thread, never nested,
//! never leaked across requests.** A scope entered while another is
//! still active means a driver reused a worker slot without closing
//! the previous request — a bug the per-request fold would silently
//! misattribute, so it is counted ([`ctx_leaks`]) and surfaced as a
//! `trace.ctx_leak` instant in the stream.

use crate::span::LazySpanClass;

#[cfg(not(feature = "trace-off"))]
use crate::event::EventKind;
#[cfg(not(feature = "trace-off"))]
use crate::with_live_tracer;
#[cfg(not(feature = "trace-off"))]
use std::cell::Cell;
#[cfg(not(feature = "trace-off"))]
use std::sync::atomic::{AtomicU64, Ordering};

/// The span class every request context opens under. Public so the DES
/// domain and the fold agree on the name without re-interning strings.
pub static REQUEST_CLASS: LazySpanClass = LazySpanClass::new("serve.request");

/// The instant class recorded when a scope catches a leaked context.
pub static CTX_LEAK_CLASS: LazySpanClass = LazySpanClass::new("trace.ctx_leak");

/// Mints the deterministic request id for the `arrival_seq`-th arrival
/// of `user` under `seed` (splitmix64 finalizer chain). Never returns
/// zero — zero is the "no active request" sentinel.
pub fn request_id(seed: u64, user: u64, arrival_seq: u64) -> u64 {
    fn mix(mut x: u64) -> u64 {
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }
    let h = mix(seed ^ mix(user ^ mix(arrival_seq ^ 0x9e37_79b9_7f4a_7c15)));
    if h == 0 {
        1
    } else {
        h
    }
}

#[cfg(not(feature = "trace-off"))]
thread_local! {
    static ACTIVE_CTX: Cell<u64> = const { Cell::new(0) };
}

#[cfg(not(feature = "trace-off"))]
static CTX_LEAKS: AtomicU64 = AtomicU64::new(0);

/// The request id active on this thread, zero when none.
#[inline]
pub fn current_request() -> u64 {
    #[cfg(not(feature = "trace-off"))]
    {
        ACTIVE_CTX.with(Cell::get)
    }
    #[cfg(feature = "trace-off")]
    {
        0
    }
}

/// Contexts entered while a previous one was still active on the same
/// thread, process-wide. Non-zero means some driver leaks request state
/// across worker-slot reuse; `tail_report` treats it as a hard failure.
pub fn ctx_leaks() -> u64 {
    #[cfg(not(feature = "trace-off"))]
    {
        CTX_LEAKS.load(Ordering::Relaxed)
    }
    #[cfg(feature = "trace-off")]
    {
        0
    }
}

/// RAII request context for the driver domain: records `CtxBegin` on
/// entry and `CtxEnd` on drop, both on the track that entered, and pins
/// the id thread-locally for [`current_request`].
#[must_use = "a request scope records its end when dropped"]
#[cfg(not(feature = "trace-off"))]
pub struct RequestScope {
    ctx: u64,
}

#[cfg(not(feature = "trace-off"))]
impl RequestScope {
    /// Enters the context of request `ctx` (from [`request_id`]). If a
    /// previous context is still active on this thread the leak is
    /// counted and recorded, and the stale context is force-closed so
    /// the stream stays foldable.
    pub fn enter(ctx: u64) -> Self {
        let stale = ACTIVE_CTX.with(|c| c.replace(ctx));
        if stale != 0 {
            CTX_LEAKS.fetch_add(1, Ordering::Relaxed);
            with_live_tracer(|t, track| {
                t.record(
                    track,
                    EventKind::Instant,
                    CTX_LEAK_CLASS.class_id(),
                    0,
                    stale,
                );
                t.record(track, EventKind::CtxEnd, REQUEST_CLASS.class_id(), 0, stale);
            });
        }
        with_live_tracer(|t, track| {
            t.record(track, EventKind::CtxBegin, REQUEST_CLASS.class_id(), 0, ctx);
        });
        Self { ctx }
    }

    /// The id this scope carries.
    pub fn ctx(&self) -> u64 {
        self.ctx
    }
}

#[cfg(not(feature = "trace-off"))]
impl Drop for RequestScope {
    fn drop(&mut self) {
        with_live_tracer(|t, track| {
            t.record(
                track,
                EventKind::CtxEnd,
                REQUEST_CLASS.class_id(),
                0,
                self.ctx,
            );
        });
        ACTIVE_CTX.with(|c| {
            // Only clear if still ours: a nested (leaked-over) scope
            // dropping out of order must not erase the newer context.
            if c.get() == self.ctx {
                c.set(0);
            }
        });
    }
}

/// RAII request context, `trace-off` build: a ZST that records nothing.
#[must_use = "a request scope records its end when dropped"]
#[cfg(feature = "trace-off")]
pub struct RequestScope;

#[cfg(feature = "trace-off")]
impl RequestScope {
    /// No-op context entry (`trace-off`).
    #[inline]
    pub fn enter(_ctx: u64) -> Self {
        Self
    }

    /// Always zero under `trace-off`.
    pub fn ctx(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_ids_are_deterministic_distinct_and_nonzero() {
        let a = request_id(42, 7, 0);
        assert_eq!(a, request_id(42, 7, 0));
        assert_ne!(a, request_id(42, 7, 1));
        assert_ne!(a, request_id(42, 8, 0));
        assert_ne!(a, request_id(43, 7, 0));
        for seq in 0..1000 {
            assert_ne!(request_id(42, 0, seq), 0);
        }
    }

    #[cfg(not(feature = "trace-off"))]
    #[test]
    fn scope_pins_and_clears_the_thread_local() {
        assert_eq!(current_request(), 0);
        let ctx = request_id(1, 2, 3);
        {
            let s = RequestScope::enter(ctx);
            assert_eq!(s.ctx(), ctx);
            assert_eq!(current_request(), ctx);
        }
        assert_eq!(current_request(), 0);
    }

    #[cfg(not(feature = "trace-off"))]
    #[test]
    fn leaked_context_is_counted_and_superseded() {
        // Simulate a driver that reuses a worker slot without dropping
        // the previous request's scope: the leak must be counted and
        // the *new* context must win the thread-local.
        let before = ctx_leaks();
        let first = RequestScope::enter(request_id(9, 0, 0));
        let second = RequestScope::enter(request_id(9, 0, 1));
        assert_eq!(ctx_leaks(), before + 1);
        assert_eq!(current_request(), second.ctx());
        // Out-of-order drop of the stale scope must not erase the
        // newer context.
        drop(first);
        assert_eq!(current_request(), second.ctx());
        drop(second);
        assert_eq!(current_request(), 0);
    }
}
