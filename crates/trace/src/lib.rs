//! `pk-trace`: per-core event tracing and cycle-attribution profiling.
//!
//! Every bottleneck in the paper was found by attributing cycles to
//! kernel functions and reading the locking story off the hot symbols
//! (§4). `pk-obs` answers *how much* contention exists; this crate
//! answers *where the cycles went along a request's path*:
//!
//! * **Recording** — per-track fixed-capacity lock-free rings of 32-byte
//!   [`Event`]s ([`ring`]), stamped by a deterministic virtual clock
//!   ([`Tracer`]): DES simulation cycles under `pk-sim`, a monotone
//!   per-core op counter in the functional drivers. Overflow is
//!   counted-and-dropped; a hot path never blocks on the tracer.
//! * **Spans** — [`trace_span!`] RAII guards (`#[track_caller]` call
//!   sites) wired through the `pk-kernel` syscalls, every `pk-sync`
//!   lock guard (named via the always-compiled `pk-lockdep` class
//!   registry), RCU read sections and grace periods, `pk-fault`
//!   injection points, and the DES station service/wait edges.
//! * **Attribution** — [`Profile`] folds a drained stream into an
//!   inclusive/exclusive cycle tree plus the paper-style top-functions
//!   table; [`chrome_trace_json`] exports a perfetto-loadable timeline.
//! * **Export** — drains are pull-model: [`collector`] registers a
//!   `TraceSink` with the `pk-obs` [`Registry`](pk_obs::Registry)
//!   exposing buffered/dropped counts; harnesses call
//!   [`Tracer::drain`] at quiescent points.
//!
//! The `trace-off` cargo feature compiles the macros and hooks to
//! no-ops ([`SpanGuard`] becomes a ZST) while keeping the aggregation
//! side available, so tools build in both states.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod event;
pub mod intern;
mod profile;
mod request;
mod ring;
mod span;
mod tracer;

pub use chrome::chrome_trace_json;
pub use event::{encode_stream, Event, EventKind, ENCODED_EVENT_BYTES};
pub use profile::{ClassTotals, Profile, ProfileNode};
pub use request::{
    ctx_leaks, current_request, request_id, RequestScope, CTX_LEAK_CLASS, REQUEST_CLASS,
};
pub use span::{LazySpanClass, SpanGuard};
pub use tracer::{global, install_global, Tracer, DEFAULT_RING_CAPACITY};

/// Opens a span of the named class on the current core's track,
/// returning an RAII guard that closes it when dropped.
///
/// ```
/// let _g = pk_trace::trace_span!("kernel.fork");
/// ```
#[macro_export]
macro_rules! trace_span {
    ($name:expr) => {{
        static __PK_TRACE_CLASS: $crate::LazySpanClass = $crate::LazySpanClass::new($name);
        $crate::SpanGuard::enter(&__PK_TRACE_CLASS)
    }};
}

/// Records a point event of the named class.
#[macro_export]
macro_rules! trace_instant {
    ($name:expr) => {{
        static __PK_TRACE_CLASS: $crate::LazySpanClass = $crate::LazySpanClass::new($name);
        $crate::instant(&__PK_TRACE_CLASS, 0)
    }};
    ($name:expr, $arg:expr) => {{
        static __PK_TRACE_CLASS: $crate::LazySpanClass = $crate::LazySpanClass::new($name);
        $crate::instant(&__PK_TRACE_CLASS, $arg)
    }};
}

/// Records a counter delta of the named class.
#[macro_export]
macro_rules! trace_counter {
    ($name:expr, $delta:expr) => {{
        static __PK_TRACE_CLASS: $crate::LazySpanClass = $crate::LazySpanClass::new($name);
        $crate::counter(&__PK_TRACE_CLASS, $delta)
    }};
}

#[cfg(not(feature = "trace-off"))]
#[inline]
fn with_live_tracer(f: impl FnOnce(&'static Tracer, usize)) {
    if let Some(t) = tracer::global() {
        if t.is_enabled() {
            let track = pk_percpu::registry::current_or_register().index();
            f(t, track);
        }
    }
}

/// Opens a span of `cls` on the current core's track without a guard.
/// For code whose span lifetime lives inside an existing object (the
/// RCU read guard): pair with [`span_end`].
#[inline]
pub fn span_begin(cls: &LazySpanClass) {
    #[cfg(not(feature = "trace-off"))]
    with_live_tracer(|t, track| {
        t.record(track, EventKind::SpanBegin, cls.class_id(), 0, 0);
    });
    #[cfg(feature = "trace-off")]
    let _ = cls;
}

/// Closes the innermost open span of `cls` on the current core's track.
#[inline]
pub fn span_end(cls: &LazySpanClass) {
    #[cfg(not(feature = "trace-off"))]
    with_live_tracer(|t, track| {
        t.record(track, EventKind::SpanEnd, cls.class_id(), 0, 0);
    });
    #[cfg(feature = "trace-off")]
    let _ = cls;
}

/// Records a point event of `cls` (prefer [`trace_instant!`]).
#[inline]
pub fn instant(cls: &LazySpanClass, arg: u64) {
    #[cfg(not(feature = "trace-off"))]
    with_live_tracer(|t, track| {
        t.record(track, EventKind::Instant, cls.class_id(), 0, arg);
    });
    #[cfg(feature = "trace-off")]
    let _ = (cls, arg);
}

/// Records a point event with a dynamically-built name. Interns on
/// every call — for cold paths only (fault injections firing).
#[inline]
pub fn instant_named(name: &str) {
    #[cfg(not(feature = "trace-off"))]
    with_live_tracer(|t, track| {
        t.record(track, EventKind::Instant, intern::intern_span(name), 0, 0);
    });
    #[cfg(feature = "trace-off")]
    let _ = name;
}

/// Records a counter delta of `cls` (prefer [`trace_counter!`]).
#[inline]
pub fn counter(cls: &LazySpanClass, delta: i64) {
    #[cfg(not(feature = "trace-off"))]
    with_live_tracer(|t, track| {
        t.record(track, EventKind::Counter, cls.class_id(), 0, delta as u64);
    });
    #[cfg(feature = "trace-off")]
    let _ = (cls, delta);
}

/// Opens a lock hold span: called by every `pk-sync` guard constructor
/// after the lock is won. `wait_spins` is the spin count paid waiting
/// (the wait cost rides on the hold span's begin event). The class id
/// comes from the shared `pk-lockdep` registry, so trace names and
/// lockdep reports agree.
#[inline]
pub fn lock_acquired(cell: &pk_lockdep::ClassCell, kind: pk_lockdep::LockKind, wait_spins: u64) {
    #[cfg(not(feature = "trace-off"))]
    with_live_tracer(|t, track| {
        let class = pk_lockdep::classify(cell, kind).raw();
        t.record(track, EventKind::LockBegin, class, 0, wait_spins);
    });
    #[cfg(feature = "trace-off")]
    let _ = (cell, kind, wait_spins);
}

/// Closes the lock hold span: called by every `pk-sync` guard drop.
#[inline]
pub fn lock_released(cell: &pk_lockdep::ClassCell, kind: pk_lockdep::LockKind) {
    #[cfg(not(feature = "trace-off"))]
    with_live_tracer(|t, track| {
        let class = pk_lockdep::classify(cell, kind).raw();
        t.record(track, EventKind::LockEnd, class, 0, 0);
    });
    #[cfg(feature = "trace-off")]
    let _ = (cell, kind);
}

/// The pull-model trace sink: exports ring occupancy and drop counts
/// through `pk-obs` so a truncated capture is always visible.
struct TraceSink;

impl pk_obs::Collect for TraceSink {
    fn collect(&self, out: &mut pk_obs::Snapshot) {
        let installed = tracer::global();
        out.push(pk_obs::Sample::gauge(
            "trace.installed",
            installed.is_some() as i64,
        ));
        out.push(pk_obs::Sample::gauge(
            "trace.enabled",
            installed.map(|t| t.is_enabled()).unwrap_or(false) as i64,
        ));
        out.push(pk_obs::Sample::counter(
            "trace.buffered_events",
            installed.map(Tracer::recorded).unwrap_or(0),
        ));
        out.push(pk_obs::Sample::counter(
            "trace.dropped_events",
            installed.map(Tracer::dropped).unwrap_or(0),
        ));
        out.push(pk_obs::Sample::gauge(
            "trace.span_classes",
            intern::span_class_count() as i64,
        ));
    }
}

/// Returns the tracer's `pk-obs` metric source. Register it with a
/// [`Registry`](pk_obs::Registry) to drain occupancy/drop counts.
pub fn collector() -> std::sync::Arc<dyn pk_obs::Collect> {
    std::sync::Arc::new(TraceSink)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_reports_even_without_a_global_tracer() {
        // Must not install a tracer as a side effect.
        let mut snap = pk_obs::Snapshot::new();
        collector().collect(&mut snap);
        assert!(snap.find("trace.installed").is_some());
        assert!(snap.find("trace.dropped_events").is_some());
    }

    #[cfg(not(feature = "trace-off"))]
    #[test]
    fn macros_and_hooks_record_through_the_global_tracer() {
        let t = install_global(DEFAULT_RING_CAPACITY);
        t.enable();
        {
            let _g = trace_span!("test.lib.outer");
            trace_instant!("test.lib.tick");
            trace_counter!("test.lib.bytes", 17);
        }
        let cell = pk_lockdep::ClassCell::new();
        cell.set_class(pk_lockdep::register_class(
            "test.lib.lock",
            "pk-trace",
            pk_lockdep::LockKind::Spin,
        ));
        lock_acquired(&cell, pk_lockdep::LockKind::Spin, 3);
        lock_released(&cell, pk_lockdep::LockKind::Spin);
        let events = t.drain();
        let names: Vec<String> = events
            .iter()
            .map(|e| {
                if e.kind.is_lock() {
                    pk_lockdep::class_name(pk_lockdep::ClassId::from_raw(e.class))
                } else {
                    intern::span_name(e.class)
                }
            })
            .collect();
        assert!(names.iter().any(|n| n == "test.lib.outer"));
        assert!(names.iter().any(|n| n == "test.lib.tick"));
        assert!(names.iter().any(|n| n == "test.lib.bytes"));
        assert!(names.iter().any(|n| n == "test.lib.lock"));
        let begins = events.iter().filter(|e| e.kind.is_begin()).count();
        let ends = events.iter().filter(|e| e.kind.is_end()).count();
        assert_eq!(begins, ends, "spans must balance: {names:?}");
    }
}
