//! The span API: lazily-interned class statics and the RAII guard.
//!
//! `trace_span!("kernel.fork")` expands to a private [`LazySpanClass`]
//! static plus [`SpanGuard::enter`]. The static caches both the class
//! id and the call-site id after first use, so steady-state recording
//! is: one `OnceLock::get`, one enabled load, two cached relaxed loads,
//! one ring push. With the `trace-off` feature the guard is a ZST and
//! `enter` is an empty inline function.

#[cfg(not(feature = "trace-off"))]
use crate::event::EventKind;
use crate::intern;
#[cfg(not(feature = "trace-off"))]
use crate::tracer;
use std::panic::Location;
use std::sync::atomic::{AtomicU32, Ordering};

/// A span class declared at a macro call site: a dotted name (same
/// convention as the lockdep lock classes) plus cached intern ids.
pub struct LazySpanClass {
    name: &'static str,
    class: AtomicU32,
    site: AtomicU32,
}

impl LazySpanClass {
    /// Declares a class. `const` so it can live in a `static`.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            class: AtomicU32::new(0),
            site: AtomicU32::new(0),
        }
    }

    /// The declared name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The class id, interning on first use. Idempotent interning makes
    /// the benign store race harmless: every winner writes the same id.
    #[inline]
    pub fn class_id(&self) -> u32 {
        let id = self.class.load(Ordering::Relaxed);
        if id != 0 {
            return id;
        }
        let fresh = intern::intern_span(self.name);
        self.class.store(fresh, Ordering::Relaxed);
        fresh
    }

    /// The call-site id for `loc`, cached after first use. A static is
    /// tied to one macro expansion, so one location suffices.
    #[inline]
    pub fn site_id(&self, loc: &Location<'_>) -> u32 {
        let id = self.site.load(Ordering::Relaxed);
        if id != 0 {
            return id;
        }
        let fresh = intern::intern_site(&format!("{}:{}", loc.file(), loc.line()));
        self.site.store(fresh, Ordering::Relaxed);
        fresh
    }
}

/// RAII span: records `SpanBegin` on construction and the matching
/// `SpanEnd` on drop, both on the track (core) that opened it — a
/// guard carried across a migration still closes its own span.
#[must_use = "a span guard records its end when dropped"]
#[cfg(not(feature = "trace-off"))]
pub struct SpanGuard {
    /// `(track, class)` when the span is live; `None` when tracing was
    /// off at entry (the drop is then free).
    state: Option<(usize, u32)>,
}

#[cfg(not(feature = "trace-off"))]
impl SpanGuard {
    /// Opens a span of class `cls` on the current core's track, if the
    /// global tracer is installed and enabled.
    #[track_caller]
    #[inline]
    pub fn enter(cls: &LazySpanClass) -> Self {
        let Some(t) = tracer::global() else {
            return Self { state: None };
        };
        if !t.is_enabled() {
            return Self { state: None };
        }
        let track = pk_percpu::registry::current_or_register().index();
        let class = cls.class_id();
        let site = cls.site_id(Location::caller());
        t.record(track, EventKind::SpanBegin, class, site, 0);
        Self {
            state: Some((track, class)),
        }
    }

    /// Whether this guard will record an end event.
    pub fn is_live(&self) -> bool {
        self.state.is_some()
    }
}

#[cfg(not(feature = "trace-off"))]
impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if let (Some((track, class)), Some(t)) = (self.state, tracer::global()) {
            t.record(track, EventKind::SpanEnd, class, 0, 0);
        }
    }
}

/// RAII span, `trace-off` build: a ZST that records nothing.
#[must_use = "a span guard records its end when dropped"]
#[cfg(feature = "trace-off")]
pub struct SpanGuard;

#[cfg(feature = "trace-off")]
impl SpanGuard {
    /// No-op span entry (`trace-off`).
    #[inline]
    pub fn enter(_cls: &LazySpanClass) -> Self {
        Self
    }

    /// Always `false` under `trace-off`.
    pub fn is_live(&self) -> bool {
        false
    }
}
