//! Chrome `trace_event` JSON export (perfetto/`chrome://tracing`).
//!
//! Emits the stable subset of the trace-event format: duration events
//! (`ph: "B"`/`"E"`), instants (`"i"`) and counters (`"C"`), one `tid`
//! per track, timestamps in virtual cycles (the format nominally wants
//! microseconds; cycles render fine and keep the export deterministic).

use crate::event::{Event, EventKind};
use crate::intern;

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn event_name(e: &Event) -> String {
    if e.kind.is_lock() {
        pk_lockdep::class_name(pk_lockdep::ClassId::from_raw(e.class))
    } else {
        intern::span_name(e.class)
    }
}

/// Renders a drained event stream as a complete Chrome `trace_event`
/// JSON document. Deterministic: same events, same bytes.
pub fn chrome_trace_json(events: &[Event]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for e in events {
        let name = escape_json(&event_name(e));
        let cat = if e.kind.is_lock() {
            "lock"
        } else if e.kind.is_ctx() {
            "request"
        } else {
            "span"
        };
        let common = format!(
            "\"name\":\"{name}\",\"cat\":\"{cat}\",\"ts\":{},\"pid\":1,\"tid\":{}",
            e.ts, e.track
        );
        let body = match e.kind {
            EventKind::SpanBegin => format!("{{{common},\"ph\":\"B\"}}"),
            EventKind::LockBegin => {
                format!(
                    "{{{common},\"ph\":\"B\",\"args\":{{\"wait_spins\":{}}}}}",
                    e.arg
                )
            }
            EventKind::SpanEnd | EventKind::LockEnd => format!("{{{common},\"ph\":\"E\"}}"),
            // Request contexts render as async events keyed by the
            // request id, so perfetto groups one request's spans across
            // whichever tracks it touched.
            EventKind::CtxBegin => {
                format!("{{{common},\"ph\":\"b\",\"id\":\"{:#x}\"}}", e.arg)
            }
            EventKind::CtxEnd => {
                format!("{{{common},\"ph\":\"e\",\"id\":\"{:#x}\"}}", e.arg)
            }
            EventKind::Instant => format!("{{{common},\"ph\":\"i\",\"s\":\"t\"}}"),
            EventKind::Counter => {
                format!(
                    "{{{common},\"ph\":\"C\",\"args\":{{\"value\":{}}}}}",
                    e.arg as i64
                )
            }
        };
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&body);
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, kind: EventKind, class: u32, arg: u64) -> Event {
        Event {
            ts,
            arg,
            class,
            site: 0,
            track: 2,
            kind,
        }
    }

    #[test]
    fn emits_balanced_duration_events() {
        let c = intern::intern_span("test.chrome.span");
        let json = chrome_trace_json(&[
            ev(1, EventKind::SpanBegin, c, 0),
            ev(5, EventKind::SpanEnd, c, 0),
        ]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"name\":\"test.chrome.span\""));
        assert!(json.contains("\"tid\":2"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn counter_arg_round_trips_negative_deltas() {
        let c = intern::intern_span("test.chrome.counter");
        let json = chrome_trace_json(&[ev(0, EventKind::Counter, c, (-4i64) as u64)]);
        assert!(json.contains("\"value\":-4"), "{json}");
    }

    #[test]
    fn names_are_escaped() {
        let c = intern::intern_span("test.chrome.\"quoted\"");
        let json = chrome_trace_json(&[ev(0, EventKind::Instant, c, 0)]);
        assert!(json.contains("test.chrome.\\\"quoted\\\""));
    }

    #[test]
    fn ctx_events_become_async_pairs_keyed_by_request_id() {
        let c = intern::intern_span("test.chrome.request");
        let json = chrome_trace_json(&[
            ev(0, EventKind::CtxBegin, c, 0xbeef),
            ev(9, EventKind::CtxEnd, c, 0xbeef),
        ]);
        assert!(json.contains("\"ph\":\"b\""), "{json}");
        assert!(json.contains("\"ph\":\"e\""), "{json}");
        assert!(json.contains("\"id\":\"0xbeef\""), "{json}");
        assert!(json.contains("\"cat\":\"request\""), "{json}");
    }

    #[test]
    fn empty_stream_is_still_a_valid_document() {
        assert_eq!(
            chrome_trace_json(&[]),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}"
        );
    }
}
