//! The tracer: per-track rings plus the deterministic virtual clock.
//!
//! Two clock domains (DESIGN.md §10):
//!
//! * **Driver domain** — each track owns a monotone op counter; every
//!   recorded event advances it by one, so a span's width is "events
//!   that happened inside it". Deterministic for the single-threaded
//!   functional drivers because each thread records only on its own
//!   registered core's track.
//! * **Sim domain** — `pk-sim` stamps events with explicit DES cycles
//!   via [`Tracer::record_at`]; the tick clock is bypassed entirely.
//!
//! A `Tracer` can be a local instance (the DES harness makes one per
//! simulation) or the process-wide default used by the macros and the
//! lock/RCU/syscall hooks ([`install_global`]). The global default does
//! not exist until installed, so untraced programs pay one atomic load
//! per hook.

use crate::event::{Event, EventKind};
use crate::ring::Ring;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

/// Default slots per track for the global tracer.
pub const DEFAULT_RING_CAPACITY: usize = 8192;

/// A set of per-track event rings sharing one enabled switch.
pub struct Tracer {
    rings: Box<[Ring]>,
    ticks: Box<[pk_percpu::CacheAligned<AtomicU64>]>,
    out_of_range: AtomicU64,
    enabled: AtomicBool,
}

impl Tracer {
    /// Creates a tracer with `tracks` rings of `capacity` slots each,
    /// initially enabled.
    pub fn new(tracks: usize, capacity: usize) -> Self {
        let mut rings = Vec::with_capacity(tracks);
        rings.resize_with(tracks, || Ring::new(capacity));
        let mut ticks = Vec::with_capacity(tracks);
        ticks.resize_with(tracks, || pk_percpu::CacheAligned::new(AtomicU64::new(0)));
        Self {
            rings: rings.into_boxed_slice(),
            ticks: ticks.into_boxed_slice(),
            out_of_range: AtomicU64::new(0),
            enabled: AtomicBool::new(true),
        }
    }

    /// Number of tracks this tracer records.
    pub fn tracks(&self) -> usize {
        self.rings.len()
    }

    /// Whether recording is live. Checked (one relaxed load) by every
    /// hook before doing any other work.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Turns recording off. In-flight events may still land.
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Records an event in the **driver domain**: the timestamp is the
    /// track's next tick. Overflow is counted-and-dropped.
    #[inline]
    pub fn record(&self, track: usize, kind: EventKind, class: u32, site: u32, arg: u64) {
        let Some(tick) = self.ticks.get(track) else {
            self.out_of_range.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let ts = tick.fetch_add(1, Ordering::Relaxed);
        self.record_at(track, ts, kind, class, site, arg);
    }

    /// Records an event with an explicit timestamp (**sim domain**).
    #[inline]
    pub fn record_at(
        &self,
        track: usize,
        ts: u64,
        kind: EventKind,
        class: u32,
        site: u32,
        arg: u64,
    ) {
        let Some(ring) = self.rings.get(track) else {
            self.out_of_range.fetch_add(1, Ordering::Relaxed);
            return;
        };
        ring.push(Event {
            ts,
            arg,
            class,
            site,
            track: track as u32,
            kind,
        });
    }

    /// Events currently buffered across all tracks.
    pub fn recorded(&self) -> u64 {
        self.rings.iter().map(|r| r.len() as u64).sum()
    }

    /// Events lost to ring overflow (plus out-of-range tracks) since
    /// the last drain.
    pub fn dropped(&self) -> u64 {
        self.rings.iter().map(Ring::dropped).sum::<u64>()
            + self.out_of_range.load(Ordering::Relaxed)
    }

    /// Per-track drop counts since the last drain, indexed by track id.
    /// Out-of-range records have no track to charge and are excluded;
    /// see [`Tracer::dropped`] for the total. A non-zero entry means
    /// that track's span trees in this capture window are incomplete.
    pub fn dropped_by_track(&self) -> Vec<u64> {
        self.rings.iter().map(Ring::dropped).collect()
    }

    /// Drains every ring at a quiescent point, returning the events in
    /// canonical order — by track, then per-track program order — and
    /// resetting the rings and tick clocks for the next capture window.
    ///
    /// The canonical order makes a drain deterministic regardless of
    /// how OS threads interleaved *across* tracks: only per-track order
    /// matters, and each track has a single logical writer.
    pub fn drain(&self) -> Vec<Event> {
        let mut out = Vec::new();
        for ring in self.rings.iter() {
            ring.drain_into(&mut out);
            ring.reset();
        }
        for tick in self.ticks.iter() {
            tick.store(0, Ordering::Relaxed);
        }
        self.out_of_range.store(0, Ordering::Relaxed);
        out
    }
}

static GLOBAL: OnceLock<Tracer> = OnceLock::new();

/// Installs (or returns) the process-wide default tracer used by the
/// span macros and the lock/RCU/syscall/fault hooks. One track per
/// possible core ([`pk_percpu::MAX_CORES`]); rings are `capacity`
/// slots. Idempotent — the first caller's capacity wins.
pub fn install_global(capacity: usize) -> &'static Tracer {
    GLOBAL.get_or_init(|| Tracer::new(pk_percpu::MAX_CORES, capacity))
}

/// The global tracer, if some harness installed one. Hooks call this
/// first; `None` (an untraced process) costs one atomic load.
#[inline]
pub fn global() -> Option<&'static Tracer> {
    GLOBAL.get()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn driver_domain_ticks_are_per_track() {
        let t = Tracer::new(2, 16);
        t.record(0, EventKind::Instant, 1, 0, 0);
        t.record(0, EventKind::Instant, 1, 0, 0);
        t.record(1, EventKind::Instant, 1, 0, 0);
        let events = t.drain();
        assert_eq!(
            events.iter().map(|e| (e.track, e.ts)).collect::<Vec<_>>(),
            [(0, 0), (0, 1), (1, 0)]
        );
    }

    #[test]
    fn drain_resets_clocks_and_rings() {
        let t = Tracer::new(1, 2);
        t.record(0, EventKind::Instant, 1, 0, 0);
        t.record(0, EventKind::Instant, 1, 0, 0);
        t.record(0, EventKind::Instant, 1, 0, 0); // overflow
        assert_eq!(t.dropped(), 1);
        assert_eq!(t.dropped_by_track(), vec![1]);
        assert_eq!(t.drain().len(), 2);
        assert_eq!(t.dropped(), 0);
        t.record(0, EventKind::Instant, 1, 0, 0);
        let again = t.drain();
        assert_eq!(again.len(), 1);
        assert_eq!(again[0].ts, 0, "tick clock must rewind on drain");
    }

    #[test]
    fn out_of_range_track_is_counted_not_panicking() {
        let t = Tracer::new(1, 4);
        t.record(9, EventKind::Instant, 1, 0, 0);
        t.record_at(9, 5, EventKind::Instant, 1, 0, 0);
        assert_eq!(t.dropped(), 2);
        assert!(t.drain().is_empty());
    }

    #[test]
    fn disable_is_advisory_recording_still_works() {
        // The enabled flag is checked by the *hooks*; Tracer::record
        // itself stays unconditional so local harnesses can't lose
        // events to a stale flag.
        let t = Tracer::new(1, 4);
        t.disable();
        assert!(!t.is_enabled());
        t.record(0, EventKind::Instant, 1, 0, 0);
        assert_eq!(t.drain().len(), 1);
    }
}
