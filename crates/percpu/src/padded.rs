//! Cache-line padding to prevent false sharing.

use core::fmt;
use core::ops::{Deref, DerefMut};

/// The cache-line size assumed throughout the workspace, in bytes.
///
/// The paper's evaluation machine (AMD Opteron 8431) uses 64-byte lines.
/// We align to 128 bytes, like `crossbeam_utils::CachePadded`, to also
/// defeat adjacent-line prefetchers on modern Intel parts.
pub const CACHE_LINE_BYTES: usize = 128;

/// Pads and aligns a value to the cache line size.
///
/// Placing two frequently-written values in separate `CacheAligned`
/// wrappers guarantees they never share a cache line, which is the fix the
/// paper applies to `struct page`, `net_device`, and `device` false
/// sharing (§4.6): "placing the heavily modified data on a separate cache
/// line improved scalability."
///
/// # Examples
///
/// ```
/// use pk_percpu::CacheAligned;
///
/// let a = CacheAligned::new(0u8);
/// let b = CacheAligned::new(0u8);
/// assert!(core::mem::size_of_val(&a) >= 128);
/// assert_eq!(*a, *b);
/// ```
#[derive(Default, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(align(128))]
pub struct CacheAligned<T> {
    value: T,
}

impl<T> CacheAligned<T> {
    /// Wraps `value` in a cache-line-aligned container.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Consumes the wrapper, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CacheAligned<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CacheAligned<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CacheAligned<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for CacheAligned<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CacheAligned").field(&self.value).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_is_at_least_a_cache_line() {
        assert!(core::mem::align_of::<CacheAligned<u8>>() >= CACHE_LINE_BYTES);
        assert!(core::mem::size_of::<CacheAligned<u8>>() >= CACHE_LINE_BYTES);
    }

    #[test]
    fn adjacent_array_elements_do_not_share_lines() {
        let arr = [CacheAligned::new(0u8), CacheAligned::new(0u8)];
        let a = &arr[0] as *const _ as usize;
        let b = &arr[1] as *const _ as usize;
        assert!(b - a >= CACHE_LINE_BYTES);
    }

    #[test]
    fn deref_round_trips() {
        let mut c = CacheAligned::new(41u32);
        *c += 1;
        assert_eq!(*c, 42);
        assert_eq!(c.into_inner(), 42);
    }

    #[test]
    fn large_types_are_preserved() {
        let c = CacheAligned::new([7u64; 64]);
        assert!(c.iter().all(|&x| x == 7));
        assert!(core::mem::size_of_val(&c) >= 64 * 8);
    }

    #[test]
    fn debug_formats_inner() {
        let c = CacheAligned::new(3);
        assert_eq!(format!("{c:?}"), "CacheAligned(3)");
    }
}
