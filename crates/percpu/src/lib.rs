//! Per-CPU infrastructure for a userspace kernel.
//!
//! The scalability fixes in *An Analysis of Linux Scalability to Many Cores*
//! (Boyd-Wickizer et al., OSDI 2010) repeatedly apply one structural idea:
//! give each core its own copy of a piece of mutable state so that, in the
//! common case, a core touches only cache lines it owns. This crate provides
//! the building blocks the rest of the workspace uses to express that idea:
//!
//! * [`CacheAligned`] — a wrapper that pads and aligns its contents to a
//!   cache line, eliminating false sharing (paper §4.6).
//! * [`CoreId`] / [`CoreToken`] / [`registry`] — a registry that binds each
//!   thread to a logical core slot, standing in for `smp_processor_id()`.
//! * [`PerCore`] — a fixed array of cache-aligned slots indexed by
//!   [`CoreId`], standing in for the kernel's `DEFINE_PER_CPU` machinery
//!   (paper §4.5).
//!
//! # Examples
//!
//! ```
//! use pk_percpu::{registry, PerCore};
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let counters: PerCore<AtomicU64> = PerCore::new_with(8, |_| AtomicU64::new(0));
//! let token = registry::register().unwrap();
//! counters.get(token.core_id()).fetch_add(1, Ordering::Relaxed);
//! assert_eq!(counters.iter().map(|c| c.load(Ordering::Relaxed)).sum::<u64>(), 1);
//! ```

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

mod padded;
mod percore;
pub mod registry;

pub use padded::{CacheAligned, CACHE_LINE_BYTES};
pub use percore::PerCore;
pub use registry::{CoreId, CoreToken, RegistryError, MAX_CORES};
