//! Fixed arrays of cache-aligned per-core slots.

use crate::padded::CacheAligned;
use crate::registry::CoreId;

/// A fixed array of cache-line-isolated slots, one per logical core.
///
/// This is the userspace analogue of the Linux kernel's per-CPU variables,
/// which the paper's fixes use for open-file lists, vfsmount caches, and
/// packet-buffer free lists (§4.5). Each slot lives on its own cache line
/// so cores never contend, and cross-core visitors (e.g. the remount check
/// that must scan every core's open-file list) use [`PerCore::iter`].
///
/// `PerCore` hands out only shared references; slots that need mutation
/// should contain interior-mutable types (atomics, locks), matching how
/// kernel per-CPU data is used from multiple contexts.
///
/// # Examples
///
/// ```
/// use pk_percpu::{CoreId, PerCore};
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let hits: PerCore<AtomicUsize> = PerCore::new_with(4, |_| AtomicUsize::new(0));
/// hits.get(CoreId(2)).store(7, Ordering::Relaxed);
/// assert_eq!(hits.fold(0, |acc, c| acc + c.load(Ordering::Relaxed)), 7);
/// ```
#[derive(Debug)]
pub struct PerCore<T> {
    slots: Box<[CacheAligned<T>]>,
}

impl<T> PerCore<T> {
    /// Creates `cores` slots, initializing slot `i` with `init(CoreId(i))`.
    pub fn new_with(cores: usize, mut init: impl FnMut(CoreId) -> T) -> Self {
        assert!(cores > 0, "PerCore requires at least one core");
        let slots = (0..cores)
            .map(|i| CacheAligned::new(init(CoreId(i))))
            .collect();
        Self { slots }
    }

    /// Returns the number of per-core slots.
    pub fn cores(&self) -> usize {
        self.slots.len()
    }

    /// Returns the slot for `core`.
    ///
    /// Core ids larger than the slot count wrap around, so a `PerCore`
    /// sized for the simulated machine still works when the host registry
    /// hands out higher ids.
    pub fn get(&self, core: CoreId) -> &T {
        &self.slots[core.index() % self.slots.len()]
    }

    /// Returns the slot for the current thread's registered core.
    ///
    /// Registers the thread if it has no core yet (see
    /// [`crate::registry::current_or_register`]).
    pub fn get_local(&self) -> &T {
        self.get(crate::registry::current_or_register())
    }

    /// Iterates over all slots in core-id order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &T> {
        self.slots.iter().map(|s| &**s)
    }

    /// Iterates over `(CoreId, &T)` pairs in core-id order.
    pub fn iter_with_id(&self) -> impl ExactSizeIterator<Item = (CoreId, &T)> {
        self.slots
            .iter()
            .enumerate()
            .map(|(i, s)| (CoreId(i), &**s))
    }

    /// Folds all slots, visiting them in core-id order.
    pub fn fold<A>(&self, init: A, f: impl FnMut(A, &T) -> A) -> A {
        self.iter().fold(init, f)
    }

    /// Returns mutable access to every slot; requires exclusive ownership.
    pub fn iter_mut(&mut self) -> impl ExactSizeIterator<Item = &mut T> {
        self.slots.iter_mut().map(|s| &mut **s)
    }
}

impl<T: Default> PerCore<T> {
    /// Creates `cores` default-initialized slots.
    pub fn new(cores: usize) -> Self {
        Self::new_with(cores, |_| T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn slots_are_initialized_per_core() {
        let pc: PerCore<usize> = PerCore::new_with(6, |c| c.index() * 10);
        for i in 0..6 {
            assert_eq!(*pc.get(CoreId(i)), i * 10);
        }
        assert_eq!(pc.cores(), 6);
    }

    #[test]
    fn out_of_range_ids_wrap() {
        let pc: PerCore<usize> = PerCore::new_with(4, |c| c.index());
        assert_eq!(*pc.get(CoreId(9)), 1);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        let _ = PerCore::<u8>::new(0);
    }

    #[test]
    fn fold_sums_all_slots() {
        let pc: PerCore<AtomicUsize> = PerCore::new(8);
        for (i, slot) in pc.iter().enumerate() {
            slot.store(i, Ordering::Relaxed);
        }
        assert_eq!(pc.fold(0, |a, s| a + s.load(Ordering::Relaxed)), 28);
    }

    #[test]
    fn iter_with_id_matches_get() {
        let pc: PerCore<usize> = PerCore::new_with(5, |c| c.index() + 100);
        for (id, v) in pc.iter_with_id() {
            assert_eq!(pc.get(id), v);
        }
    }

    #[test]
    fn concurrent_updates_do_not_interfere() {
        let pc = Arc::new(PerCore::<AtomicUsize>::new(8));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let pc = Arc::clone(&pc);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        pc.get(CoreId(i)).fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(pc.fold(0, |a, s| a + s.load(Ordering::Relaxed)), 4000);
    }

    #[test]
    fn get_local_uses_registered_core() {
        std::thread::spawn(|| {
            let pc: PerCore<AtomicUsize> = PerCore::new(crate::registry::MAX_CORES);
            pc.get_local().store(5, Ordering::Relaxed);
            let me = crate::registry::current().unwrap();
            assert_eq!(pc.get(me).load(Ordering::Relaxed), 5);
        })
        .join()
        .unwrap();
    }
}
