//! A registry that binds threads to logical core slots.
//!
//! Kernel code can ask which CPU it is running on (`smp_processor_id()`);
//! userspace threads cannot, portably. This module assigns each
//! participating thread a stable logical [`CoreId`] for as long as it holds
//! a [`CoreToken`], which is how the rest of the workspace indexes per-core
//! state. Logical ids are dense and reused, so a `PerCore<T>` sized for
//! `n` cores works with any number of short-lived worker threads as long as
//! at most `n` are registered at once.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

/// Maximum number of logical cores supported by the global registry.
///
/// Sized for the paper's 48-core evaluation machine with headroom.
pub const MAX_CORES: usize = 256;

/// A dense logical core identifier in `0..MAX_CORES`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub usize);

impl CoreId {
    /// Returns the zero-based index of this core.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// Errors returned by the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegistryError {
    /// All `MAX_CORES` slots are taken.
    Exhausted,
    /// The current thread already holds a registration.
    AlreadyRegistered,
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Exhausted => write!(f, "all {MAX_CORES} core slots are registered"),
            Self::AlreadyRegistered => write!(f, "thread already holds a core registration"),
        }
    }
}

impl std::error::Error for RegistryError {}

static SLOTS: [AtomicBool; MAX_CORES] = {
    // The const is only an array-initialization helper; each array slot
    // is its own atomic.
    #[allow(clippy::declare_interior_mutable_const)]
    const FREE: AtomicBool = AtomicBool::new(false);
    [FREE; MAX_CORES]
};

thread_local! {
    static CURRENT: Cell<Option<usize>> = const { Cell::new(None) };
    /// Token held for threads registered implicitly via
    /// `current_or_register`; dropped (releasing the slot) when the
    /// thread exits.
    static IMPLICIT: RefCell<Option<CoreToken>> = const { RefCell::new(None) };
}

/// An RAII registration of the current thread as a logical core.
///
/// Dropping the token releases the slot for reuse by other threads.
#[derive(Debug)]
pub struct CoreToken {
    id: CoreId,
    // Tokens are tied to the registering thread: the thread-local current
    // id must be cleared on the same thread that set it.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl CoreToken {
    /// Returns the logical core id assigned to this thread.
    pub fn core_id(&self) -> CoreId {
        self.id
    }
}

impl Drop for CoreToken {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(None));
        SLOTS[self.id.0].store(false, Ordering::Release);
    }
}

/// Registers the current thread, assigning it the lowest free [`CoreId`].
///
/// Returns an error if the thread is already registered or all slots are
/// in use. The registration lasts until the returned token is dropped.
///
/// # Examples
///
/// ```
/// let token = pk_percpu::registry::register().unwrap();
/// assert_eq!(Some(token.core_id()), pk_percpu::registry::current());
/// ```
pub fn register() -> Result<CoreToken, RegistryError> {
    if CURRENT.with(|c| c.get()).is_some() {
        return Err(RegistryError::AlreadyRegistered);
    }
    for (i, slot) in SLOTS.iter().enumerate() {
        if slot
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            CURRENT.with(|c| c.set(Some(i)));
            return Ok(CoreToken {
                id: CoreId(i),
                _not_send: std::marker::PhantomData,
            });
        }
    }
    Err(RegistryError::Exhausted)
}

/// Returns the logical core id of the current thread, if registered.
pub fn current() -> Option<CoreId> {
    CURRENT.with(|c| c.get()).map(CoreId)
}

/// Returns the current core id, registering the thread first if needed.
///
/// The implicit registration lasts for the lifetime of the thread: the
/// token is parked in a thread-local and dropped (releasing the slot for
/// reuse) when the thread exits, so pools of short-lived worker threads
/// never exhaust the registry.
///
/// # Panics
///
/// Panics if the registry is exhausted (more than [`MAX_CORES`] threads
/// registered simultaneously).
pub fn current_or_register() -> CoreId {
    if let Some(id) = current() {
        return id;
    }
    let token = register().expect("core registry exhausted");
    let id = token.core_id();
    IMPLICIT.with(|t| *t.borrow_mut() = Some(token));
    id
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_assigns_and_releases() {
        let token = register().unwrap();
        let id = token.core_id();
        assert_eq!(current(), Some(id));
        drop(token);
        assert_eq!(current(), None);
        // The slot pool is reusable (other parallel tests may race for the
        // exact slot, so only re-registration itself is asserted).
        let token2 = register().unwrap();
        assert!(token2.core_id().index() < MAX_CORES);
        let _ = id;
    }

    #[test]
    fn double_register_fails() {
        let _token = register().unwrap();
        assert_eq!(register().unwrap_err(), RegistryError::AlreadyRegistered);
    }

    #[test]
    fn distinct_threads_get_distinct_ids() {
        let _token = register().unwrap();
        let mine = current().unwrap();
        let other = std::thread::spawn(|| {
            let token = register().unwrap();
            token.core_id()
        })
        .join()
        .unwrap();
        assert_ne!(mine, other);
    }

    #[test]
    fn current_or_register_is_stable() {
        let a = std::thread::spawn(|| (current_or_register(), current_or_register()))
            .join()
            .unwrap();
        assert_eq!(a.0, a.1);
    }

    #[test]
    fn implicit_registrations_release_on_thread_exit() {
        // Far more short-lived threads than slots: each must release its
        // implicit registration when it dies.
        for _ in 0..(MAX_CORES * 2) {
            std::thread::spawn(|| {
                let _ = current_or_register();
            })
            .join()
            .unwrap();
        }
        // Still possible to register afterwards.
        std::thread::spawn(|| {
            let _ = current_or_register();
        })
        .join()
        .unwrap();
    }
}
