//! Memory-management configuration.

/// Page size for a mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageSize {
    /// 4 KB base pages.
    Base4K,
    /// 2 MB super-pages (`hugetlbfs`).
    Super2M,
}

impl PageSize {
    /// Size in bytes.
    pub const fn bytes(self) -> u64 {
        match self {
            Self::Base4K => 4 << 10,
            Self::Super2M => 2 << 20,
        }
    }
}

/// Stock/PK switches for the memory-management substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MmConfig {
    /// Number of cores.
    pub cores: usize,
    /// Number of NUMA nodes.
    pub numa_nodes: usize,
    /// Pages of physical memory per node (for the allocator model).
    pub pages_per_node: u64,
    /// "Protect each super-page memory mapping with its own mutex"
    /// instead of one per-process mutex (Figure 1).
    pub per_mapping_superpage_mutex: bool,
    /// "Use non-caching instructions to zero the contents of super-pages"
    /// so zeroing does not flush the on-chip caches (Figure 1).
    pub nocache_superpage_zeroing: bool,
    /// Place `struct page`'s read-mostly fields on their own cache line
    /// (§4.6, the Exim false-sharing fix).
    pub split_page_layout: bool,
    /// Retire replaced region-list snapshots through `call_rcu` per-core
    /// deferred-free queues instead of blocking `mmap`/`munmap` on a
    /// `synchronize()` grace period. Not a Figure-1 fix; on in both
    /// presets, off for the blocking-writer baseline.
    pub deferred_reclamation: bool,
}

impl MmConfig {
    /// Stock Linux 2.6.35-rc5 behaviour.
    pub fn stock(cores: usize) -> Self {
        Self {
            cores,
            numa_nodes: 8,
            pages_per_node: 8 << 20 >> 2, // 8 GB/node of 4 KB pages
            per_mapping_superpage_mutex: false,
            nocache_superpage_zeroing: false,
            split_page_layout: false,
            deferred_reclamation: true,
        }
    }

    /// The PK kernel.
    pub fn pk(cores: usize) -> Self {
        Self {
            per_mapping_superpage_mutex: true,
            nocache_superpage_zeroing: true,
            split_page_layout: true,
            ..Self::stock(cores)
        }
    }

    /// Maps a core to its NUMA node.
    pub fn node_of_core(&self, core: usize) -> usize {
        let per_node = self.cores.div_ceil(self.numa_nodes).max(1);
        (core / per_node).min(self.numa_nodes - 1)
    }
}

impl Default for MmConfig {
    fn default() -> Self {
        Self::pk(48)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_sizes() {
        assert_eq!(PageSize::Base4K.bytes(), 4096);
        assert_eq!(PageSize::Super2M.bytes(), 2 * 1024 * 1024);
    }

    #[test]
    fn presets() {
        assert!(MmConfig::pk(8).per_mapping_superpage_mutex);
        assert!(!MmConfig::stock(8).per_mapping_superpage_mutex);
        assert_eq!(MmConfig::pk(48).node_of_core(47), 7);
    }
}
