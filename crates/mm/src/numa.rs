//! The per-node physical page allocator.

use crate::config::MmConfig;
use crate::stats::MmStats;
use pk_fault::{FaultPlane, FaultPoint};
use pk_sync::SpinLock;
use std::fmt;
use std::sync::Arc;

/// Error: every node is out of pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfMemory;

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("out of physical pages on all nodes")
    }
}

impl std::error::Error for OutOfMemory {}

/// Per-node free-page pools under per-node locks.
///
/// "Linux associates a separate allocator with each socket to allocate
/// memory from that chip's attached DRAM" (§5.3). Allocation prefers the
/// requested node and falls back round-robin, counting remote
/// allocations — the stock DMA-buffer policy forced everything onto node
/// 0 and contended its lock.
#[derive(Debug)]
pub struct NumaAllocator {
    nodes: Vec<SpinLock<u64>>,
    capacity: u64,
    config: MmConfig,
    stats: Arc<MmStats>,
    /// `mm.alloc_enomem`: forces an allocation to fail as if every node
    /// were empty, exercising callers' ENOMEM paths.
    fault_enomem: FaultPoint,
    /// `mm.freelist_exhausted`: forces an allocation off its preferred
    /// node, as if the local free list had run dry.
    fault_freelist: FaultPoint,
}

impl NumaAllocator {
    /// Creates pools holding `config.pages_per_node` pages each.
    pub fn new(config: MmConfig, stats: Arc<MmStats>) -> Self {
        Self::with_faults(config, stats, &FaultPlane::disabled())
    }

    /// Like [`NumaAllocator::new`], with allocation failures injectable
    /// through `faults` (`mm.alloc_enomem`, `mm.freelist_exhausted`).
    pub fn with_faults(config: MmConfig, stats: Arc<MmStats>, faults: &FaultPlane) -> Self {
        let node_class =
            pk_lockdep::register_class("mm.numa.freelist", "pk-mm", pk_lockdep::LockKind::Spin);
        Self {
            nodes: (0..config.numa_nodes)
                .map(|_| {
                    let l = SpinLock::new(config.pages_per_node);
                    l.set_class(node_class);
                    l
                })
                .collect(),
            capacity: config.pages_per_node,
            config,
            stats,
            fault_enomem: faults.point("mm.alloc_enomem"),
            fault_freelist: faults.point("mm.freelist_exhausted"),
        }
    }

    /// Allocates `pages` pages, preferring `node`; returns the node the
    /// pages came from.
    pub fn alloc_on(&self, node: usize, pages: u64) -> Result<usize, OutOfMemory> {
        if self.fault_enomem.should_inject() {
            return Err(OutOfMemory);
        }
        let start = if self.fault_freelist.should_inject() {
            // Preferred node's free list "ran dry": start the fallback
            // scan one node over, forcing a remote allocation.
            (node + 1) % self.nodes.len()
        } else {
            node
        };
        let n = self.nodes.len();
        for i in 0..n {
            let candidate = (start + i) % n;
            let mut free = self.nodes[candidate].lock();
            if *free >= pages {
                *free -= pages;
                if candidate == node {
                    MmStats::bump(&self.stats.local_node_allocs);
                } else {
                    MmStats::bump(&self.stats.remote_node_allocs);
                }
                return Ok(candidate);
            }
        }
        Err(OutOfMemory)
    }

    /// Allocates preferring the node local to `core`.
    pub fn alloc_local(&self, core: usize, pages: u64) -> Result<usize, OutOfMemory> {
        self.alloc_on(self.config.node_of_core(core), pages)
    }

    /// Frees `pages` pages back to `node`.
    pub fn free_on(&self, node: usize, pages: u64) {
        let mut free = self.nodes[node % self.nodes.len()].lock();
        *free = (*free + pages).min(self.capacity);
    }

    /// Free pages remaining on `node`.
    pub fn free_pages(&self, node: usize) -> u64 {
        *self.nodes[node % self.nodes.len()].lock()
    }

    /// Lock-contention stats of `node`'s pool.
    pub fn node_lock_stats(&self, node: usize) -> &pk_sync::LockStats {
        self.nodes[node % self.nodes.len()].stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc() -> (NumaAllocator, Arc<MmStats>) {
        let stats = Arc::new(MmStats::new());
        let mut cfg = MmConfig::pk(8);
        cfg.numa_nodes = 4;
        cfg.pages_per_node = 100;
        (NumaAllocator::new(cfg, Arc::clone(&stats)), stats)
    }

    #[test]
    fn local_allocation_preferred() {
        let (a, stats) = alloc();
        assert_eq!(a.alloc_on(2, 10).unwrap(), 2);
        assert_eq!(a.free_pages(2), 90);
        assert_eq!(
            stats
                .local_node_allocs
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
    }

    #[test]
    fn falls_back_to_remote_nodes() {
        let (a, stats) = alloc();
        assert_eq!(a.alloc_on(1, 100).unwrap(), 1);
        assert_eq!(a.alloc_on(1, 50).unwrap(), 2, "node 1 empty → node 2");
        assert_eq!(
            stats
                .remote_node_allocs
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
    }

    #[test]
    fn exhaustion_is_oom() {
        let (a, _) = alloc();
        for n in 0..4 {
            a.alloc_on(n, 100).unwrap();
        }
        assert_eq!(a.alloc_on(0, 1).unwrap_err(), OutOfMemory);
        a.free_on(3, 1);
        assert_eq!(a.alloc_on(0, 1).unwrap(), 3);
    }

    #[test]
    fn free_caps_at_capacity() {
        let (a, _) = alloc();
        a.free_on(0, 1_000);
        assert_eq!(a.free_pages(0), 100);
    }

    #[test]
    fn injected_enomem_fails_without_touching_pools() {
        let stats = Arc::new(MmStats::new());
        let mut cfg = MmConfig::pk(8);
        cfg.numa_nodes = 4;
        cfg.pages_per_node = 100;
        let faults = FaultPlane::with_seed(42);
        faults.set("mm.alloc_enomem", pk_fault::FaultSchedule::EveryNth(2));
        faults.enable();
        let a = NumaAllocator::with_faults(cfg, stats, &faults);
        assert_eq!(a.alloc_on(0, 1).unwrap(), 0, "arrival 0 passes");
        assert_eq!(
            a.alloc_on(0, 1).unwrap_err(),
            OutOfMemory,
            "arrival 1 injected"
        );
        assert_eq!(a.free_pages(0), 99, "failed alloc consumed no pages");
        assert_eq!(faults.injected_total(), 1);
    }

    #[test]
    fn injected_freelist_exhaustion_forces_remote_node() {
        let stats = Arc::new(MmStats::new());
        let mut cfg = MmConfig::pk(8);
        cfg.numa_nodes = 4;
        cfg.pages_per_node = 100;
        let faults = FaultPlane::with_seed(42);
        faults.set(
            "mm.freelist_exhausted",
            pk_fault::FaultSchedule::EveryNth(1),
        );
        faults.enable();
        let a = NumaAllocator::with_faults(cfg, stats.clone(), &faults);
        assert_eq!(a.alloc_on(0, 1).unwrap(), 1, "preferred node skipped");
        assert_eq!(
            stats
                .remote_node_allocs
                .load(std::sync::atomic::Ordering::Relaxed),
            1,
            "the forced spill is reported as remote, not hidden"
        );
    }

    #[test]
    fn core_to_node_mapping() {
        let stats = Arc::new(MmStats::new());
        let mut cfg = MmConfig::pk(8);
        cfg.numa_nodes = 4;
        cfg.pages_per_node = 10;
        let a = NumaAllocator::new(cfg, stats);
        // 8 cores / 4 nodes → 2 cores per node.
        assert_eq!(a.alloc_local(5, 1).unwrap(), 2);
    }
}
