//! `struct page` layouts: the false-sharing demonstration (§4.6).
//!
//! "Exim per-core performance degraded because of false sharing of
//! physical page reference counts and flags, which the kernel located on
//! the same cache line of a `page` variable." The fix: "placing the
//! heavily modified data on a separate cache line."
//!
//! [`PackedPage`] reproduces the stock layout — the hot refcount shares a
//! line with read-mostly flags — and [`SplitPage`] the PK layout. The
//! `false_sharing_demo` integration test and the `falseshare` bench
//! hammer both from multiple threads to expose the difference.

use pk_percpu::{CacheAligned, CACHE_LINE_BYTES};
use std::sync::atomic::{AtomicU64, Ordering};

/// Stock layout: flags (read-mostly) and the reference count (written
/// constantly) share a cache line.
#[derive(Debug, Default)]
#[repr(C)]
pub struct PackedPage {
    /// Read-mostly page flags.
    pub flags: AtomicU64,
    /// Frequently modified reference count — same line as `flags`.
    pub refcount: AtomicU64,
    /// Mapping/offset words, also read-mostly.
    pub mapping: AtomicU64,
    /// Page index within the mapping.
    pub index: AtomicU64,
}

/// PK layout: the hot refcount lives on its own cache line; readers of
/// `flags` never see their line invalidated by refcount writers.
#[derive(Debug, Default)]
#[repr(C)]
pub struct SplitPage {
    /// Read-mostly page flags, isolated from the hot counter.
    pub flags: CacheAligned<AtomicU64>,
    /// Frequently modified reference count on its own line.
    pub refcount: CacheAligned<AtomicU64>,
    /// Mapping word, grouped with the other read-mostly fields.
    pub mapping: AtomicU64,
    /// Page index within the mapping.
    pub index: AtomicU64,
}

/// A uniform view over both layouts so workloads can be generic.
pub trait PageLayout: Send + Sync + Default {
    /// Reads the flags word (the reader side of the false-sharing pair).
    fn read_flags(&self) -> u64;

    /// Bumps the reference count (the writer side).
    fn bump_refcount(&self) -> u64;

    /// Layout name for reports.
    fn name() -> &'static str;
}

impl PageLayout for PackedPage {
    fn read_flags(&self) -> u64 {
        self.flags.load(Ordering::Acquire)
    }

    fn bump_refcount(&self) -> u64 {
        self.refcount.fetch_add(1, Ordering::AcqRel)
    }

    fn name() -> &'static str {
        "packed (stock)"
    }
}

impl PageLayout for SplitPage {
    fn read_flags(&self) -> u64 {
        self.flags.load(Ordering::Acquire)
    }

    fn bump_refcount(&self) -> u64 {
        self.refcount.fetch_add(1, Ordering::AcqRel)
    }

    fn name() -> &'static str {
        "split (PK)"
    }
}

/// Returns whether the hot and cold fields share a cache line, by
/// address arithmetic on a sample value.
pub fn fields_share_line<P: PageLayout>(probe: impl Fn(&P) -> (usize, usize)) -> bool {
    let page = P::default();
    let (a, b) = probe(&page);
    a / CACHE_LINE_BYTES == b / CACHE_LINE_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_layout_shares_a_line() {
        assert!(fields_share_line::<PackedPage>(|p| {
            (
                &p.flags as *const _ as usize,
                &p.refcount as *const _ as usize,
            )
        }));
    }

    #[test]
    fn split_layout_does_not_share() {
        assert!(!fields_share_line::<SplitPage>(|p| {
            (
                &*p.flags as *const _ as usize,
                &*p.refcount as *const _ as usize,
            )
        }));
    }

    #[test]
    fn both_layouts_behave_identically() {
        let packed = PackedPage::default();
        let split = SplitPage::default();
        for _ in 0..10 {
            packed.bump_refcount();
            split.bump_refcount();
        }
        assert_eq!(packed.refcount.load(Ordering::Relaxed), 10);
        assert_eq!(split.refcount.load(Ordering::Relaxed), 10);
        assert_eq!(packed.read_flags(), 0);
        assert_eq!(split.read_flags(), 0);
    }

    #[test]
    fn names_differ() {
        assert_ne!(PackedPage::name(), SplitPage::name());
    }
}
