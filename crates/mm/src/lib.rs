//! Memory-management substrate for the MOSBENCH userspace kernel.
//!
//! Models the paper's memory-side bottlenecks:
//!
//! * [`NumaAllocator`] — per-node physical page pools (the paper found the
//!   allocator itself fine at 48 cores, §2, but DMA placement matters).
//! * [`AddressSpace`] — mmap regions under a shared `mmap_sem`: "a
//!   per-process kernel mutex serializes calls to `mmap` and `munmap`,"
//!   which ruins threaded pedsort (§5.7); and "when a fault occurs on a
//!   new mapping, the kernel locks the entire region list with a read
//!   lock," whose shared lock word bottlenecks Metis (§5.8).
//! * Super-pages — 2 MB mappings with either one global super-page mutex
//!   (stock) or one mutex per mapping (PK, Figure 1), plus the
//!   cache-flushing vs non-caching zeroing model.
//! * [`page`] — the `struct page` false-sharing demonstration (§4.6).

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

mod config;
mod mmap;
mod numa;
pub mod page;
mod stats;

pub use config::{MmConfig, PageSize};
pub use mmap::{AddressSpace, FaultError, MmapError, RegionId};
pub use numa::{NumaAllocator, OutOfMemory};
pub use stats::MmStats;
