//! Address spaces: mmap regions, the region-list lock, and soft faults.

use crate::config::{MmConfig, PageSize};
use crate::numa::{NumaAllocator, OutOfMemory};
use crate::stats::MmStats;
use pk_sync::rcu::{self, RcuCell};
use pk_sync::AdaptiveMutex;
use std::collections::HashSet;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Identifies a mapping within an address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegionId(pub u64);

/// Errors from `mmap`/`munmap`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmapError {
    /// Zero-length mapping requested.
    EmptyMapping,
    /// Unknown region.
    NoSuchRegion,
}

impl fmt::Display for MmapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyMapping => f.write_str("zero-length mapping"),
            Self::NoSuchRegion => f.write_str("no such region"),
        }
    }
}

impl std::error::Error for MmapError {}

/// Errors from page faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultError {
    /// The faulting address is not inside any mapping (SIGSEGV).
    Segfault,
    /// Physical memory exhausted.
    Oom(OutOfMemory),
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Segfault => f.write_str("segmentation fault"),
            Self::Oom(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FaultError {}

/// One mmap'd region.
#[derive(Debug)]
struct Region {
    id: RegionId,
    pages: u64,
    page_size: PageSize,
    /// Which pages have been faulted in.
    present: Mutex<HashSet<u64>>,
    /// 4 KB pages allocated per NUMA node (so munmap can return each
    /// page to the node it came from).
    node_pages: Mutex<Vec<(usize, u64)>>,
    /// PK's per-mapping super-page mutex.
    mapping_mutex: AdaptiveMutex<()>,
}

/// A process address space (`mm_struct`).
///
/// Reproduces both mm-side bottlenecks from the paper:
///
/// * `mmap`/`munmap` take the region-list **write** lock — the
///   "per-process kernel mutex \[that\] serializes calls to mmap and
///   munmap," which is why threaded pedsort collapses (§5.7);
/// * every soft fault takes the region-list **read** lock, and "acquiring
///   it even in read mode involves modifying shared lock state," the
///   Metis bottleneck (§5.8). Super-page faults additionally serialize on
///   a mutex: one global per address space (stock) or one per mapping
///   (PK).
#[derive(Debug)]
pub struct AddressSpace {
    /// RCU-published region list: faults read a snapshot without writing
    /// shared lock state; `mmap`/`munmap` copy, update, publish, and
    /// retire the old snapshot (and with it any removed [`Region`])
    /// through the per-core deferred-free queues — or a blocking
    /// `synchronize()` when `deferred_reclamation` is off.
    regions: RcuCell<Vec<Arc<Region>>>,
    next_id: AtomicU64,
    /// Stock's single super-page mutex for the whole address space.
    superpage_mutex: AdaptiveMutex<()>,
    allocator: Arc<NumaAllocator>,
    config: MmConfig,
    stats: Arc<MmStats>,
}

impl AddressSpace {
    /// Creates an empty address space drawing pages from `allocator`.
    pub fn new(config: MmConfig, allocator: Arc<NumaAllocator>, stats: Arc<MmStats>) -> Self {
        let asp = Self {
            regions: RcuCell::new(Vec::new()),
            next_id: AtomicU64::new(1),
            superpage_mutex: AdaptiveMutex::new(()),
            allocator,
            config,
            stats,
        };
        asp.superpage_mutex.set_class(pk_lockdep::register_class(
            "mm.mmap.superpage_global",
            "pk-mm",
            pk_lockdep::LockKind::Blocking,
        ));
        asp
    }

    /// Maps `bytes` of anonymous memory with the given page size. Page
    /// tables are not populated — faults do that on first touch, exactly
    /// like Metis' allocation pattern ("Metis allocates memory with mmap,
    /// which adds the new memory to a region list but defers modifying
    /// page tables").
    pub fn mmap(&self, bytes: u64, page_size: PageSize) -> Result<RegionId, MmapError> {
        if bytes == 0 {
            return Err(MmapError::EmptyMapping);
        }
        let pages = bytes.div_ceil(page_size.bytes());
        let id = RegionId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let region = Arc::new(Region {
            id,
            pages,
            page_size,
            present: Mutex::new(HashSet::new()),
            node_pages: Mutex::new(Vec::new()),
            mapping_mutex: AdaptiveMutex::new(()),
        });
        region.mapping_mutex.set_class(pk_lockdep::register_class(
            "mm.mmap.mapping_mutex",
            "pk-mm",
            pk_lockdep::LockKind::Blocking,
        ));
        MmStats::bump(&self.stats.region_write_locks);
        self.replace_regions(|v| {
            let mut v = v.clone();
            v.push(Arc::clone(&region));
            v
        });
        Ok(id)
    }

    /// Publishes a rewritten region list, retiring the old snapshot per
    /// the configured reclamation discipline.
    fn replace_regions(&self, f: impl FnOnce(&Vec<Arc<Region>>) -> Vec<Arc<Region>>) {
        if self.config.deferred_reclamation {
            self.regions.update_with_deferred(f);
        } else {
            self.regions.update_with(f);
        }
    }

    /// Unmaps a region, returning its faulted pages to the allocator.
    pub fn munmap(&self, id: RegionId, core: usize) -> Result<(), MmapError> {
        MmStats::bump(&self.stats.region_write_locks);
        let region = {
            let g = rcu::read_lock();
            self.regions
                .read(&g)
                .iter()
                .find(|r| r.id == id)
                .cloned()
                .ok_or(MmapError::NoSuchRegion)?
        };
        // Unpublish the region; the replaced list snapshot (holding the
        // retired `Arc<Region>`) is freed past a grace period. The pages
        // themselves are returned to the allocator *now* — munmap's
        // observable effect is synchronous either way.
        self.replace_regions(|v| v.iter().filter(|r| r.id != id).cloned().collect());
        let _ = core;
        // Return every faulted page to the node it was allocated from.
        for (node, pages) in region
            .node_pages
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
        {
            self.allocator.free_on(node, pages);
        }
        Ok(())
    }

    /// Handles a soft page fault: `core` touched page `page_idx` of
    /// region `id` for the first time.
    ///
    /// Returns `true` if the fault populated the page, `false` if it was
    /// already present (a racing fault won).
    pub fn page_fault(&self, id: RegionId, page_idx: u64, core: usize) -> Result<bool, FaultError> {
        // Every fault takes the region-list read lock (shared-lock-state
        // modification is the §5.8 bottleneck).
        MmStats::bump(&self.stats.region_read_locks);
        let region = {
            let g = rcu::read_lock();
            self.regions
                .read(&g)
                .iter()
                .find(|r| r.id == id)
                .cloned()
                .ok_or(FaultError::Segfault)?
        };
        if page_idx >= region.pages {
            return Err(FaultError::Segfault);
        }
        match region.page_size {
            PageSize::Base4K => {
                MmStats::bump(&self.stats.faults_4k);
                self.populate(&region, page_idx, core)
            }
            PageSize::Super2M => {
                MmStats::bump(&self.stats.faults_2m);
                // Serialize super-page instantiation on the configured
                // mutex.
                if self.config.per_mapping_superpage_mutex {
                    MmStats::bump(&self.stats.superpage_local_mutex);
                    let _g = region.mapping_mutex.lock();
                    self.populate(&region, page_idx, core)
                } else {
                    MmStats::bump(&self.stats.superpage_global_mutex);
                    let _g = self.superpage_mutex.lock();
                    self.populate(&region, page_idx, core)
                }
            }
        }
    }

    fn populate(&self, region: &Region, page_idx: u64, core: usize) -> Result<bool, FaultError> {
        {
            let mut present = region.present.lock().unwrap_or_else(|e| e.into_inner());
            if !present.insert(page_idx) {
                return Ok(false);
            }
        }
        let pages_4k = region.page_size.bytes() / PageSize::Base4K.bytes();
        let node = match self.allocator.alloc_local(core, pages_4k) {
            Ok(node) => node,
            Err(e) => {
                // Roll back the presence bit so a later fault can retry
                // once memory frees up.
                region
                    .present
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .remove(&page_idx);
                return Err(FaultError::Oom(e));
            }
        };
        {
            let mut np = region.node_pages.lock().unwrap_or_else(|e| e.into_inner());
            match np.iter_mut().find(|(n, _)| *n == node) {
                Some((_, p)) => *p += pages_4k,
                None => np.push((node, pages_4k)),
            }
        }
        // Zeroing: super-pages flush the caches unless PK's non-caching
        // stores are enabled (Figure 1).
        let bytes = region.page_size.bytes();
        if region.page_size == PageSize::Super2M && !self.config.nocache_superpage_zeroing {
            MmStats::add(&self.stats.cached_zero_bytes, bytes);
        } else if region.page_size == PageSize::Super2M {
            MmStats::add(&self.stats.nocache_zero_bytes, bytes);
        } else {
            MmStats::add(&self.stats.cached_zero_bytes, bytes);
        }
        Ok(true)
    }

    /// Touches every page of `region` in order (a streaming write pass).
    pub fn touch_all(&self, id: RegionId, core: usize) -> Result<u64, FaultError> {
        let pages = {
            let g = rcu::read_lock();
            self.regions
                .read(&g)
                .iter()
                .find(|r| r.id == id)
                .ok_or(FaultError::Segfault)?
                .pages
        };
        let mut populated = 0;
        for p in 0..pages {
            if self.page_fault(id, p, core)? {
                populated += 1;
            }
        }
        Ok(populated)
    }

    /// Number of live regions.
    pub fn region_count(&self) -> usize {
        let g = rcu::read_lock();
        self.regions.read(&g).len()
    }

    /// The stock global super-page mutex (for starvation diagnostics).
    pub fn superpage_mutex(&self) -> &AdaptiveMutex<()> {
        &self.superpage_mutex
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asp(cfg: MmConfig) -> (AddressSpace, Arc<MmStats>) {
        let stats = Arc::new(MmStats::new());
        let mut cfg = cfg;
        cfg.numa_nodes = 2;
        cfg.pages_per_node = 100_000;
        let alloc = Arc::new(NumaAllocator::new(cfg, Arc::clone(&stats)));
        (AddressSpace::new(cfg, alloc, Arc::clone(&stats)), stats)
    }

    #[test]
    fn mmap_then_fault_populates_once() {
        let (a, stats) = asp(MmConfig::pk(4));
        let r = a.mmap(16 << 10, PageSize::Base4K).unwrap();
        assert!(a.page_fault(r, 0, 0).unwrap());
        assert!(!a.page_fault(r, 0, 1).unwrap(), "second fault is a no-op");
        assert_eq!(stats.faults_4k.load(Ordering::Relaxed), 2);
        assert_eq!(stats.region_read_locks.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn fault_outside_region_segfaults() {
        let (a, _) = asp(MmConfig::pk(4));
        let r = a.mmap(4 << 10, PageSize::Base4K).unwrap();
        assert_eq!(a.page_fault(r, 1, 0).unwrap_err(), FaultError::Segfault);
        assert_eq!(
            a.page_fault(RegionId(999), 0, 0).unwrap_err(),
            FaultError::Segfault
        );
    }

    #[test]
    fn superpage_mutex_selection() {
        let (a, stats) = asp(MmConfig::stock(4));
        let r = a.mmap(4 << 20, PageSize::Super2M).unwrap();
        a.touch_all(r, 0).unwrap();
        assert_eq!(stats.superpage_global_mutex.load(Ordering::Relaxed), 2);
        assert_eq!(stats.superpage_local_mutex.load(Ordering::Relaxed), 0);

        let (b, stats2) = asp(MmConfig::pk(4));
        let r2 = b.mmap(4 << 20, PageSize::Super2M).unwrap();
        b.touch_all(r2, 0).unwrap();
        assert_eq!(stats2.superpage_local_mutex.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn superpages_cut_fault_count() {
        let bytes = 64 << 20; // 64 MB
        let (a, stats_small) = asp(MmConfig::stock(4));
        let r = a.mmap(bytes, PageSize::Base4K).unwrap();
        a.touch_all(r, 0).unwrap();
        let (b, stats_big) = asp(MmConfig::pk(4));
        let r2 = b.mmap(bytes, PageSize::Super2M).unwrap();
        b.touch_all(r2, 0).unwrap();
        let small = stats_small.faults_4k.load(Ordering::Relaxed);
        let big = stats_big.faults_2m.load(Ordering::Relaxed);
        assert_eq!(small, 16_384);
        assert_eq!(big, 32);
        assert_eq!(small / big, 512, "512 fewer faults with 2 MB pages");
    }

    #[test]
    fn zeroing_policy_is_recorded() {
        let (a, stats) = asp(MmConfig::stock(4));
        let r = a.mmap(2 << 20, PageSize::Super2M).unwrap();
        a.touch_all(r, 0).unwrap();
        assert_eq!(stats.cached_zero_bytes.load(Ordering::Relaxed), 2 << 20);

        let (b, stats2) = asp(MmConfig::pk(4));
        let r2 = b.mmap(2 << 20, PageSize::Super2M).unwrap();
        b.touch_all(r2, 0).unwrap();
        assert_eq!(stats2.nocache_zero_bytes.load(Ordering::Relaxed), 2 << 20);
    }

    #[test]
    fn munmap_returns_pages() {
        let (a, _) = asp(MmConfig::pk(4));
        let before = a.allocator.free_pages(0);
        let r = a.mmap(40 << 10, PageSize::Base4K).unwrap();
        a.touch_all(r, 0).unwrap();
        assert_eq!(a.allocator.free_pages(0), before - 10);
        a.munmap(r, 0).unwrap();
        assert_eq!(a.allocator.free_pages(0), before);
        assert_eq!(a.munmap(r, 0).unwrap_err(), MmapError::NoSuchRegion);
        assert_eq!(a.region_count(), 0);
    }

    #[test]
    fn concurrent_faults_populate_each_page_once() {
        let (a, _) = asp(MmConfig::pk(8));
        let a = Arc::new(a);
        let r = a.mmap(1 << 20, PageSize::Base4K).unwrap(); // 256 pages
        let handles: Vec<_> = (0..4)
            .map(|core| {
                let a = Arc::clone(&a);
                std::thread::spawn(move || {
                    let mut populated = 0u64;
                    for p in 0..256 {
                        if a.page_fault(r, p, core).unwrap() {
                            populated += 1;
                        }
                    }
                    populated
                })
            })
            .collect();
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 256, "each page populated exactly once");
    }
}
