//! Memory-management diagnostics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters of shared events inside the memory-management substrate.
#[derive(Debug, Default)]
pub struct MmStats {
    /// Region-list read-lock acquisitions (every soft page fault).
    pub region_read_locks: AtomicU64,
    /// Region-list write-lock acquisitions (`mmap`/`munmap`).
    pub region_write_locks: AtomicU64,
    /// 4 KB page faults served.
    pub faults_4k: AtomicU64,
    /// 2 MB super-page faults served.
    pub faults_2m: AtomicU64,
    /// Super-page faults that serialized on the global mutex (stock).
    pub superpage_global_mutex: AtomicU64,
    /// Super-page faults using the per-mapping mutex (PK).
    pub superpage_local_mutex: AtomicU64,
    /// Pages allocated from the faulting core's local node.
    pub local_node_allocs: AtomicU64,
    /// Pages allocated from a remote node (local node exhausted).
    pub remote_node_allocs: AtomicU64,
    /// Bytes zeroed with cache-polluting stores.
    pub cached_zero_bytes: AtomicU64,
    /// Bytes zeroed with non-caching stores (PK).
    pub nocache_zero_bytes: AtomicU64,
}

impl MmStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Total faults of either size.
    pub fn faults(&self) -> u64 {
        self.faults_4k.load(Ordering::Relaxed) + self.faults_2m.load(Ordering::Relaxed)
    }

    /// Resets every counter.
    pub fn reset(&self) {
        for c in [
            &self.region_read_locks,
            &self.region_write_locks,
            &self.faults_4k,
            &self.faults_2m,
            &self.superpage_global_mutex,
            &self.superpage_local_mutex,
            &self.local_node_allocs,
            &self.remote_node_allocs,
            &self.cached_zero_bytes,
            &self.nocache_zero_bytes,
        ] {
            c.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_totals() {
        let s = MmStats::new();
        MmStats::bump(&s.faults_4k);
        MmStats::bump(&s.faults_2m);
        MmStats::add(&s.faults_2m, 2);
        assert_eq!(s.faults(), 4);
        s.reset();
        assert_eq!(s.faults(), 0);
    }
}
