//! Property tests for the VFS: a model-based check of the namespace and
//! file contents under random operations, in every configuration.

use pk_percpu::CoreId;
use pk_vfs::{Vfs, VfsConfig, VfsError, Whence};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Write { name: u8, data: Vec<u8> },
    Append { name: u8, data: Vec<u8> },
    Read { name: u8 },
    Unlink { name: u8 },
    Rename { from: u8, to: u8 },
    Truncate { name: u8, len: u8 },
}

fn op() -> impl Strategy<Value = Op> {
    let small_data = proptest::collection::vec(any::<u8>(), 0..24);
    prop_oneof![
        (0..6u8, small_data.clone()).prop_map(|(name, data)| Op::Write { name, data }),
        (0..6u8, small_data).prop_map(|(name, data)| Op::Append { name, data }),
        (0..6u8).prop_map(|name| Op::Read { name }),
        (0..6u8).prop_map(|name| Op::Unlink { name }),
        (0..6u8, 0..6u8).prop_map(|(from, to)| Op::Rename { from, to }),
        (0..6u8, 0..32u8).prop_map(|(name, len)| Op::Truncate { name, len }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The VFS agrees with an in-memory HashMap model under any
    /// sequence of operations, for both stock and PK configurations.
    #[test]
    fn vfs_matches_hashmap_model(ops in proptest::collection::vec(op(), 1..80)) {
        for cfg in [VfsConfig::stock(4), VfsConfig::pk(4)] {
            let vfs = Vfs::new(cfg);
            let core = CoreId(1);
            let mut model: HashMap<u8, Vec<u8>> = HashMap::new();
            for op in &ops {
                match op {
                    Op::Write { name, data } => {
                        vfs.write_file(&format!("/f{name}"), data, core).unwrap();
                        model.insert(*name, data.clone());
                    }
                    Op::Append { name, data } => {
                        match vfs.open(&format!("/f{name}"), core) {
                            Ok(f) => {
                                f.append(data).unwrap();
                                vfs.close(&f, core);
                                model.get_mut(name).unwrap().extend_from_slice(data);
                            }
                            Err(VfsError::NotFound) => {
                                prop_assert!(!model.contains_key(name));
                            }
                            Err(e) => panic!("unexpected: {e}"),
                        }
                    }
                    Op::Read { name } => {
                        match vfs.read_file(&format!("/f{name}"), core) {
                            Ok(data) => prop_assert_eq!(Some(&data), model.get(name)),
                            Err(VfsError::NotFound) => prop_assert!(!model.contains_key(name)),
                            Err(e) => panic!("unexpected: {e}"),
                        }
                    }
                    Op::Unlink { name } => {
                        match vfs.unlink(&format!("/f{name}"), core) {
                            Ok(()) => {
                                prop_assert!(model.remove(name).is_some());
                            }
                            Err(VfsError::NotFound) => prop_assert!(!model.contains_key(name)),
                            Err(e) => panic!("unexpected: {e}"),
                        }
                    }
                    Op::Rename { from, to } => {
                        match vfs.rename(&format!("/f{from}"), &format!("/f{to}"), core) {
                            Ok(()) => {
                                prop_assert!(from != to || !model.contains_key(from));
                                let data = model.remove(from).unwrap();
                                model.insert(*to, data);
                            }
                            Err(VfsError::NotFound) => prop_assert!(!model.contains_key(from)),
                            Err(VfsError::Exists) => {
                                prop_assert!(model.contains_key(to));
                            }
                            Err(e) => panic!("unexpected: {e}"),
                        }
                    }
                    Op::Truncate { name, len } => {
                        match vfs.open(&format!("/f{name}"), core) {
                            Ok(f) => {
                                f.inode.truncate(*len as u64);
                                vfs.close(&f, core);
                                let m = model.get_mut(name).unwrap();
                                m.truncate(*len as usize);
                            }
                            Err(VfsError::NotFound) => prop_assert!(!model.contains_key(name)),
                            Err(e) => panic!("unexpected: {e}"),
                        }
                    }
                }
            }
            // Final state agrees everywhere.
            for name in 0..6u8 {
                let got = vfs.read_file(&format!("/f{name}"), core);
                match model.get(&name) {
                    Some(data) => prop_assert_eq!(got.unwrap(), data.clone()),
                    None => prop_assert_eq!(got.unwrap_err(), VfsError::NotFound),
                }
            }
            // Size via stat always matches content length.
            for (name, data) in &model {
                let st = vfs.stat(&format!("/f{name}"), core).unwrap();
                prop_assert_eq!(st.size as usize, data.len());
            }
            prop_assert_eq!(vfs.superblock().open_files(), 0);
        }
    }

    /// lseek positions are consistent: SEEK_END + read never returns
    /// bytes, SEEK_SET round-trips.
    #[test]
    fn lseek_positions(len in 0..200usize, seek in 0..300i64) {
        let vfs = Vfs::new(VfsConfig::pk(2));
        let core = CoreId(0);
        vfs.write_file("/f", &vec![7u8; len], core).unwrap();
        let f = vfs.open("/f", core).unwrap();
        prop_assert_eq!(f.lseek(0, Whence::End).unwrap() as usize, len);
        prop_assert_eq!(f.read(16).unwrap(), Vec::<u8>::new());
        let pos = f.lseek(seek, Whence::Set).unwrap();
        prop_assert_eq!(pos, seek as u64);
        let got = f.read(usize::MAX).unwrap();
        prop_assert_eq!(got.len(), len.saturating_sub(seek as usize));
        vfs.close(&f, core);
    }

    /// dcache coherence: after any mix of lookups and removals, lookup
    /// results always agree with the backing tmpfs.
    #[test]
    fn dcache_always_agrees_with_tmpfs(
        names in proptest::collection::vec(0..10u8, 1..40),
        remove_each in proptest::collection::vec(prop::bool::ANY, 1..40),
    ) {
        let vfs = Vfs::new(VfsConfig::pk(4));
        let core = CoreId(2);
        for (name, remove) in names.iter().zip(remove_each.iter()) {
            let path = format!("/n{name}");
            let _ = vfs.write_file(&path, b"x", core);
            vfs.stat(&path, core).unwrap(); // warm dcache
            if *remove {
                vfs.unlink(&path, core).unwrap();
                prop_assert_eq!(vfs.stat(&path, core).unwrap_err(), VfsError::NotFound);
            } else {
                prop_assert_eq!(vfs.stat(&path, core).unwrap().size, 1);
            }
        }
    }
}
