//! Differential oracle for the RCU path walk (ISSUE 9 satellite).
//!
//! One seeded operation schedule — lookups interleaved with rename,
//! unlink/recreate, and mount churn — runs against all four kernel
//! personalities' VFS configs. The observable outcome log must be
//! byte-identical across personalities: the RCU walk is an
//! optimization, never a semantic change. On the RCU-enabled configs
//! the schedule additionally drives `resolve_rcu` and `resolve_ref`
//! side by side and requires agreement whenever the RCU leg answers,
//! and the refcount books must balance when the schedule ends.
//!
//! A separate negative test pins the documented fallback: a torn
//! seqcount (modification in flight) forces the RCU leg to decline.

use pk_kernel::KernelConfig;
use pk_percpu::CoreId;
use pk_vfs::{DentryKey, PathWalker, Vfs, VfsConfig, VfsError};
use std::sync::atomic::Ordering;

/// Schedule length: long enough that every op class fires on every
/// core, short enough to keep the battery under a second per config.
const STEPS: usize = 2_000;
const CORES: usize = 8;
const SEED: u64 = 42;

/// The four kernel personalities' VFS configurations, derived from the
/// kernel's own mapping so this oracle cannot drift from the boot path.
fn personalities() -> [(&'static str, VfsConfig); 4] {
    [
        ("stock", KernelConfig::stock(CORES).vfs()),
        ("coarse", KernelConfig::coarse(CORES).vfs()),
        ("pk", KernelConfig::pk(CORES).vfs()),
        ("adaptive", KernelConfig::adaptive(CORES).vfs()),
    ]
}

/// Deterministic xorshift64* — the schedule must not depend on the
/// `rand` crate's version-to-version stream stability.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn err_code(e: &VfsError) -> &'static str {
    match e {
        VfsError::NotFound => "ENOENT",
        VfsError::NotADirectory => "ENOTDIR",
        VfsError::IsADirectory => "EISDIR",
        VfsError::Exists => "EEXIST",
        VfsError::InvalidArgument => "EINVAL",
        _ => "EOTHER",
    }
}

/// Lays out the fixed tree the schedule mutates: five directories of
/// eight files each, plus `/mnt` as the mount-churn point.
fn populate(vfs: &Vfs) {
    let core = CoreId(0);
    for d in 0..5 {
        vfs.mkdir_p(&format!("/d{d}"), core).unwrap();
        for f in 0..8 {
            vfs.write_file(&format!("/d{d}/f{f}"), format!("{d}:{f}").as_bytes(), core)
                .unwrap();
        }
    }
    vfs.mkdir_p("/mnt", core).unwrap();
}

/// Runs the seeded schedule on one config and returns the outcome log.
/// Every step appends one line; errors are part of the contract, so
/// they are logged, never unwrapped.
fn run_schedule(vfs: &Vfs, check_rcu_leg: bool) -> Vec<String> {
    let walker = PathWalker::new(vfs.tmpfs(), vfs.dcache(), vfs.mounts());
    let mut rng = Rng(SEED);
    let mut log = Vec::with_capacity(STEPS);
    let mut mnt_mounted = false;
    for step in 0..STEPS {
        let core = CoreId(step % CORES);
        let roll = rng.pick(100);
        let d = rng.pick(5);
        let f = rng.pick(9); // 8 = a name that may not exist
        let path = format!("/d{d}/f{f}");
        if roll < 55 {
            // Lookup. On RCU-enabled configs, race the two legs against
            // each other first: when the lock-free leg answers it must
            // byte-match the locked walk.
            if check_rcu_leg {
                let rcu = walker.resolve_rcu(&path, core);
                let reference = walker.resolve_ref(&path, core);
                if let Some(rcu) = rcu {
                    match (&rcu, &reference) {
                        (Ok(a), Ok(b)) => assert_eq!(a.id, b.id, "legs disagree on {path}"),
                        (Err(a), Err(b)) => assert_eq!(a, b, "legs disagree on {path}"),
                        _ => panic!("legs disagree on {path}: {rcu:?} vs {reference:?}"),
                    }
                }
            }
            let entry = match walker.resolve(&path, core) {
                Ok(inode) => format!("resolve {path} -> inode {}", inode.id.0),
                Err(e) => format!("resolve {path} -> {}", err_code(&e)),
            };
            log.push(entry);
        } else if roll < 70 {
            let to = format!("/d{}/f{}", rng.pick(5), rng.pick(9));
            let entry = match vfs.rename(&path, &to, core) {
                Ok(()) => format!("rename {path} -> {to}"),
                Err(e) => format!("rename {path} -> {}", err_code(&e)),
            };
            log.push(entry);
        } else if roll < 82 {
            let entry = match vfs.unlink(&path, core) {
                Ok(()) => {
                    vfs.write_file(&path, b"reborn", core).unwrap();
                    format!("cycle {path}")
                }
                Err(e) => format!("unlink {path} -> {}", err_code(&e)),
            };
            log.push(entry);
        } else if roll < 92 {
            if mnt_mounted {
                let gone = vfs.mounts().umount("/mnt").is_some();
                log.push(format!("umount /mnt -> {gone}"));
            } else {
                vfs.mounts().mount("/mnt");
                log.push("mount /mnt".to_string());
            }
            mnt_mounted = !mnt_mounted;
        } else {
            // Open/close: refcount traffic through the full stack.
            let entry = match vfs.open(&path, core) {
                Ok(file) => {
                    vfs.close(&file, core);
                    format!("open {path} ok")
                }
                Err(e) => format!("open {path} -> {}", err_code(&e)),
            };
            log.push(entry);
        }
    }
    if mnt_mounted {
        assert!(vfs.mounts().umount("/mnt").is_some());
    }
    log
}

#[test]
fn one_schedule_four_personalities_identical_results() {
    let mut logs: Vec<(&'static str, Vec<String>)> = Vec::new();
    for (name, cfg) in personalities() {
        let vfs = Vfs::new(cfg);
        populate(&vfs);
        let log = run_schedule(&vfs, cfg.rcu_path_walk);
        // The RCU walk must actually engage where it is configured on —
        // a silently dead fast path would make this test vacuous.
        let walks = vfs.stats().rcu_walks.load(Ordering::Relaxed);
        if cfg.rcu_path_walk {
            assert!(walks > 0, "{name}: rcu_path_walk on but no RCU walks ran");
        } else {
            assert_eq!(walks, 0, "{name}: rcu_path_walk off but RCU walks ran");
        }
        logs.push((name, log));
    }
    let (baseline_name, baseline) = &logs[0];
    for (name, log) in &logs[1..] {
        assert_eq!(
            log.len(),
            baseline.len(),
            "{name} diverged from {baseline_name} in schedule length"
        );
        for (i, (a, b)) in baseline.iter().zip(log.iter()).enumerate() {
            assert_eq!(a, b, "step {i}: {baseline_name}={a:?} {name}={b:?}");
        }
    }
}

#[test]
fn refcounts_balance_when_the_schedule_ends() {
    for (name, cfg) in personalities() {
        let vfs = Vfs::new(cfg);
        populate(&vfs);
        run_schedule(&vfs, cfg.rcu_path_walk);
        // Every dentry the cache still holds must be idle: the walks
        // and opens took and released references in pairs, so after we
        // release our own lookup reference the exact count is back to
        // the cache's creation reference — exactly 1, on every
        // personality. (`refcount_ops` splits shared vs. per-core
        // banked ops — a counter-placement detail, useless as a balance
        // check — so the invariant is on `references()`, which drains
        // the banks.)
        let mut op_traffic = 0u64;
        for d in 0..5 {
            let dir = vfs.tmpfs().get(vfs.tmpfs().root()).unwrap();
            let dir = vfs
                .tmpfs()
                .lookup_child(&dir, &format!("d{d}"))
                .expect("schedule never removes directories");
            for f in 0..9 {
                let key = DentryKey::new(dir.id, format!("f{f}"));
                if let Some(dentry) = vfs.dcache().lookup(&key, CoreId(0)) {
                    dentry.put(CoreId(0));
                    assert_eq!(dentry.references(), 1, "{name}: {key:?} leaked a reference");
                    let (shared, local) = dentry.refcount_ops();
                    op_traffic += shared + local;
                }
            }
        }
        // The schedule must actually have exercised the refcounts, or
        // the balance assertions above prove nothing.
        assert!(op_traffic > 0, "{name}: schedule drove no refcount ops");
        // The mount-churn point is umounted; the root mount must be
        // reference-idle too: resolves put what they got, leaving only
        // the table's own creation reference.
        let root = vfs.mounts().resolve("/", CoreId(0)).expect("root mounted");
        root.put(CoreId(0));
        assert_eq!(
            root.references(),
            1,
            "{name}: root vfsmount leaked references"
        );
    }
}

#[test]
fn torn_seqcount_forces_the_documented_fallback() {
    let cfg = KernelConfig::pk(CORES).vfs();
    let vfs = Vfs::new(cfg);
    populate(&vfs);
    let walker = PathWalker::new(vfs.tmpfs(), vfs.dcache(), vfs.mounts());
    let core = CoreId(0);
    // Warm the path so only the torn seqcount can cause a fallback.
    walker.resolve("/d0/f0", core).unwrap();
    assert!(walker.resolve_rcu("/d0/f0", core).is_some(), "warm walk");

    let root = vfs.tmpfs().get(vfs.tmpfs().root()).unwrap();
    let d0 = vfs.tmpfs().lookup_child(&root, "d0").unwrap();
    let dentry = vfs
        .dcache()
        .lookup(&DentryKey::new(d0.id, "f0"), core)
        .expect("warmed above");
    let fallbacks_before = vfs.stats().rcu_walk_fallbacks.load(Ordering::Relaxed);
    std::thread::scope(|s| {
        let modify = dentry.begin_modify();
        // Modification in flight: the seqcount is odd, the lock-free
        // read tears, and the walk must decline rather than guess.
        assert!(
            walker.resolve_rcu("/d0/f0", core).is_none(),
            "torn seqcount must force the locked fallback"
        );
        // The full resolve has to run on another thread: its locked
        // fallback serializes on the very d_lock the modify guard
        // holds, so in-thread it would deadlock against ourselves —
        // exactly the writer-excludes-walker ordering the protocol
        // documents. The walker records the fallback *before* it
        // blocks on the lock, so the counter is observable while the
        // modification is still in flight.
        let resolver = s.spawn(|| {
            let walker = PathWalker::new(vfs.tmpfs(), vfs.dcache(), vfs.mounts());
            walker.resolve("/d0/f0", CoreId(1)).unwrap()
        });
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while vfs.stats().rcu_walk_fallbacks.load(Ordering::Relaxed) == fallbacks_before {
            assert!(
                std::time::Instant::now() < deadline,
                "fallback counter must record the declined walk"
            );
            std::thread::yield_now();
        }
        // Publish the (identity) modification; the blocked walker now
        // acquires the lock and completes the reference walk.
        drop(modify);
        let inode = resolver.join().expect("locked fallback completes");
        assert_eq!(inode.read_at(0, 3), b"0:0");
    });
}
