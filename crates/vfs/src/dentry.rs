//! Directory entries and the two comparison protocols.

use crate::inode::InodeId;
use pk_percpu::CoreId;
use pk_sloppy::{DeallocError, RefCount};
use pk_sync::{GenCounter, SpinLock};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Hash key of a dentry: parent directory inode + component name.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DentryKey {
    /// The parent directory's inode.
    pub parent: InodeId,
    /// The path component name.
    pub name: String,
}

impl DentryKey {
    /// Creates a key.
    pub fn new(parent: InodeId, name: impl Into<String>) -> Self {
        Self {
            parent,
            name: name.into(),
        }
    }
}

/// A cached directory entry mapping `(parent, name)` to an inode.
///
/// Carries the paper's full §4.4 machinery:
///
/// * a reference count that is atomic (stock) or sloppy (PK),
/// * the per-dentry spin lock the stock `dlookup` takes to compare
///   fields,
/// * the generation counter PK uses for lock-free comparison (0 while a
///   modification is in flight).
#[derive(Debug)]
pub struct Dentry {
    /// The lookup key.
    pub key: DentryKey,
    /// Target inode, stored atomically so the lock-free protocol can copy
    /// it without holding the spin lock.
    inode: AtomicU64,
    /// Unhashed flag: set when the entry is removed from the cache
    /// (unlink/rename); lookups must then miss.
    unhashed: AtomicBool,
    /// Reference count (atomic in stock, sloppy in PK).
    refcount: RefCount,
    /// The per-dentry spin lock (`d_lock`).
    lock: SpinLock<()>,
    /// Generation counter for the PK lock-free comparison.
    generation: GenCounter,
}

impl Dentry {
    /// Creates a live, hashed dentry with one reference (the cache's).
    pub fn new(key: DentryKey, inode: InodeId, sloppy_refs: bool, cores: usize) -> Arc<Self> {
        Self::with_refcount(key, inode, RefCount::new(sloppy_refs, cores))
    }

    /// [`Dentry::new`] with an explicit refcount backing — how the
    /// dcache selects the generation-2 SNZI tree when
    /// `VfsConfig::snzi_refs` is set.
    pub fn with_refcount(key: DentryKey, inode: InodeId, refcount: RefCount) -> Arc<Self> {
        let d = Arc::new(Self {
            key,
            inode: AtomicU64::new(inode.0),
            unhashed: AtomicBool::new(false),
            refcount,
            lock: SpinLock::new(()),
            generation: GenCounter::new(),
        });
        d.lock.set_class(pk_lockdep::register_class(
            "vfs.dentry.d_lock",
            "pk-vfs",
            pk_lockdep::LockKind::Spin,
        ));
        d
    }

    /// Returns the target inode id.
    pub fn inode(&self) -> InodeId {
        InodeId(self.inode.load(Ordering::Acquire))
    }

    /// Switches the refcount's per-core banking (`true` = live sloppy
    /// banks, `false` = central-only). A no-op on stock atomic
    /// refcounts; this is `pk-adapt`'s in-place promotion lever.
    pub fn set_ref_banking(&self, enabled: bool) {
        self.refcount.set_banking(enabled);
    }

    /// Whether get/put currently bounce a shared cache line (atomic
    /// refcount, or sloppy refcount in degraded mode).
    pub fn ref_is_central_only(&self) -> bool {
        self.refcount.is_central_only()
    }

    /// Returns whether the dentry has been unhashed.
    pub fn is_unhashed(&self) -> bool {
        self.unhashed.load(Ordering::Acquire)
    }

    /// The stock comparison protocol: take the per-dentry spin lock,
    /// compare fields, and take a reference on a match.
    ///
    /// Returns `true` on a successful match-and-reference.
    pub fn compare_locked(&self, key: &DentryKey, core: CoreId) -> bool {
        let _g = self.lock.lock();
        if self.is_unhashed() || self.key != *key {
            return false;
        }
        self.refcount.get(core).is_ok()
    }

    /// The PK lock-free comparison protocol (§4.4):
    ///
    /// 1. If the generation counter is 0, fall back to locking; otherwise
    ///    remember it.
    /// 2. Copy the fields to locals.
    /// 3. If the generation changed, fall back to locking.
    /// 4. Compare; on a match take a reference unless the count is 0 (then
    ///    fall back to locking).
    ///
    /// Returns `Some(matched)` if the protocol completed lock-free, or
    /// `None` if the caller must fall back to [`Dentry::compare_locked`].
    pub fn compare_lockfree(&self, key: &DentryKey, core: CoreId) -> Option<bool> {
        let snapshot = self.generation.begin_read()?;
        // Copy the mutable fields to locals.
        let inode = self.inode.load(Ordering::Acquire);
        let unhashed = self.unhashed.load(Ordering::Acquire);
        if !self.generation.validate(snapshot) {
            return None;
        }
        let _ = inode; // the caller reads it again via `inode()` on a hit
        if unhashed || self.key != *key {
            return Some(false);
        }
        match self.refcount.get(core) {
            Ok(()) => {
                // The reference was taken optimistically; make sure no
                // modification raced it (rename/unlink would have parked
                // the generation at 0 or advanced it).
                if self.generation.validate(snapshot) {
                    Some(true)
                } else {
                    self.refcount.put(core);
                    None
                }
            }
            // Refcount hit zero → the object is being torn down; the
            // paper's rule is to fall back to the locking protocol.
            Err(DeallocError::AlreadyDead | DeallocError::InUse { .. }) => None,
        }
    }

    /// The RCU-walk probe: reads the fields under the generation
    /// seqcount **without touching the refcount** — the step the
    /// generation-2 path walk repeats per component so a warm walk
    /// writes no shared memory at all.
    ///
    /// Returns `Some(Some(inode))` on a stable match, `Some(None)` on a
    /// stable non-match, or `None` when the seqcount tore (a
    /// rename/unlink is in flight) and the caller must fall back to the
    /// reference walk.
    pub fn peek(&self, key: &DentryKey) -> Option<Option<InodeId>> {
        let snapshot = self.generation.begin_read()?;
        let inode = self.inode.load(Ordering::Acquire);
        let unhashed = self.unhashed.load(Ordering::Acquire);
        if !self.generation.validate(snapshot) {
            return None;
        }
        if unhashed || self.key != *key {
            return Some(None);
        }
        Some(Some(InodeId(inode)))
    }

    /// Takes an additional reference (e.g. for the cache's own pointer).
    pub fn get(&self, core: CoreId) -> Result<(), DeallocError> {
        self.refcount.get(core)
    }

    /// Releases one reference.
    pub fn put(&self, core: CoreId) {
        self.refcount.put(core);
    }

    /// Exact reference count (expensive when sloppy).
    pub fn references(&self) -> i64 {
        self.refcount.references()
    }

    /// Returns `(shared_ops, local_ops)` of the refcount.
    pub fn refcount_ops(&self) -> (u64, u64) {
        self.refcount.op_counts()
    }

    /// Begins a modification: locks the dentry and parks the generation
    /// counter at 0 so lock-free readers fall back.
    ///
    /// The caller mutates via the returned guard, then the modification is
    /// published when the guard drops.
    pub fn begin_modify(&self) -> DentryModifyGuard<'_> {
        let _lock = self.lock.lock();
        self.generation.begin_write();
        DentryModifyGuard {
            dentry: self,
            _lock,
        }
    }

    /// Exposes the spin lock's contention stats.
    pub fn lock_stats(&self) -> &pk_sync::LockStats {
        self.lock.stats()
    }

    /// Attempts to free the dentry (reconciles a sloppy refcount).
    pub fn try_dealloc(&self) -> Result<(), DeallocError> {
        self.refcount.try_dealloc()
    }
}

/// Guard over an in-flight dentry modification (rename, unlink).
pub struct DentryModifyGuard<'a> {
    dentry: &'a Dentry,
    _lock: pk_sync::SpinGuard<'a, ()>,
}

impl DentryModifyGuard<'_> {
    /// Points the dentry at a different inode (rename target reuse).
    pub fn set_inode(&self, inode: InodeId) {
        self.dentry.inode.store(inode.0, Ordering::Release);
    }

    /// Unhashes the dentry so future lookups miss.
    pub fn unhash(&self) {
        self.dentry.unhashed.store(true, Ordering::Release);
    }
}

impl Drop for DentryModifyGuard<'_> {
    fn drop(&mut self) {
        self.dentry.generation.end_write();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dentry(sloppy: bool) -> Arc<Dentry> {
        Dentry::new(DentryKey::new(InodeId(1), "usr"), InodeId(2), sloppy, 4)
    }

    #[test]
    fn locked_compare_matches() {
        let d = dentry(false);
        assert!(d.compare_locked(&DentryKey::new(InodeId(1), "usr"), CoreId(0)));
        assert_eq!(d.references(), 2);
        assert!(!d.compare_locked(&DentryKey::new(InodeId(1), "var"), CoreId(0)));
        assert!(!d.compare_locked(&DentryKey::new(InodeId(9), "usr"), CoreId(0)));
    }

    #[test]
    fn lockfree_compare_matches() {
        for sloppy in [false, true] {
            let d = dentry(sloppy);
            assert_eq!(
                d.compare_lockfree(&DentryKey::new(InodeId(1), "usr"), CoreId(1)),
                Some(true)
            );
            assert_eq!(d.references(), 2);
            assert_eq!(
                d.compare_lockfree(&DentryKey::new(InodeId(1), "var"), CoreId(1)),
                Some(false)
            );
        }
    }

    #[test]
    fn lockfree_falls_back_during_modification() {
        let d = dentry(true);
        let guard = d.begin_modify();
        assert_eq!(
            d.compare_lockfree(&DentryKey::new(InodeId(1), "usr"), CoreId(0)),
            None,
            "generation parked at 0 → fallback"
        );
        drop(guard);
        assert_eq!(
            d.compare_lockfree(&DentryKey::new(InodeId(1), "usr"), CoreId(0)),
            Some(true)
        );
    }

    #[test]
    fn peek_never_touches_the_refcount() {
        let d = dentry(true);
        let (shared0, local0) = d.refcount_ops();
        assert_eq!(
            d.peek(&DentryKey::new(InodeId(1), "usr")),
            Some(Some(InodeId(2)))
        );
        assert_eq!(d.peek(&DentryKey::new(InodeId(1), "var")), Some(None));
        assert_eq!(d.refcount_ops(), (shared0, local0));
        assert_eq!(d.references(), 1, "no reference taken");
    }

    #[test]
    fn peek_tears_during_modification_then_recovers() {
        let d = dentry(false);
        let key = DentryKey::new(InodeId(1), "usr");
        let guard = d.begin_modify();
        assert_eq!(d.peek(&key), None, "seqcount parked → documented fallback");
        guard.set_inode(InodeId(7));
        drop(guard);
        assert_eq!(d.peek(&key), Some(Some(InodeId(7))));
    }

    #[test]
    fn unhash_makes_lookups_miss() {
        let d = dentry(false);
        d.begin_modify().unhash();
        assert!(d.is_unhashed());
        assert_eq!(
            d.compare_lockfree(&DentryKey::new(InodeId(1), "usr"), CoreId(0)),
            Some(false)
        );
        assert!(!d.compare_locked(&DentryKey::new(InodeId(1), "usr"), CoreId(0)));
    }

    #[test]
    fn modify_guard_retargets_inode() {
        let d = dentry(false);
        d.begin_modify().set_inode(InodeId(7));
        assert_eq!(d.inode(), InodeId(7));
    }

    #[test]
    fn dealloc_after_releasing_all_refs() {
        let d = dentry(true);
        assert!(d.try_dealloc().is_err(), "cache still holds a reference");
        d.put(CoreId(0));
        assert_eq!(d.try_dealloc(), Ok(()));
        assert_eq!(
            d.compare_lockfree(&DentryKey::new(InodeId(1), "usr"), CoreId(2)),
            None,
            "dead dentry forces fallback"
        );
    }
}
