//! In-memory VFS substrate for the MOSBENCH userspace kernel.
//!
//! The paper's file-system bottlenecks (Figure 1) all live here:
//!
//! * **dentry reference counting** — [`Dentry`] refcounts are atomic in
//!   the stock configuration and sloppy in PK (§4.3).
//! * **dentry spin locks during lookup** — [`Dcache::lookup`] uses either
//!   the locking compare or the lock-free generation-counter protocol
//!   (§4.4).
//! * **vfsmount reference counting and the mount-table spin lock** —
//!   [`MountTable`] has a central table (stock) with optional per-core
//!   caches (PK, §4.5).
//! * **per-super-block open-file lists** — [`SuperBlock`] keeps one
//!   global list (stock) or per-core lists (PK, §4.5).
//! * **the per-inode `lseek` mutex** — [`OpenFile::lseek`] either locks
//!   the inode mutex (stock) or reads the size atomically (PK, §5.5).
//! * **inode/dcache global list locks** — acquired on every operation in
//!   stock, skipped "when not necessary" in PK (Figure 1).
//!
//! Everything is real, thread-safe Rust backed by an in-memory
//! [`Tmpfs`], mirroring the paper's use of tmpfs "to avoid disk
//! bottlenecks." Behavioural switches live in [`VfsConfig`]; contention
//! diagnostics in [`VfsStats`].

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

mod config;
mod dcache;
mod dentry;
mod error;
mod file;
mod inode;
mod mount;
mod namei;
pub mod pagecache;
mod stats;
mod superblock;
mod tmpfs;
mod vfs;

pub use config::VfsConfig;
pub use dcache::Dcache;
pub use dentry::{Dentry, DentryKey};
pub use error::VfsError;
pub use file::{OpenFile, Whence};
pub use inode::{Inode, InodeId, InodeKind};
pub use mount::{MountTable, VfsMount};
pub use namei::PathWalker;
pub use stats::VfsStats;
pub use superblock::SuperBlock;
pub use tmpfs::Tmpfs;
pub use vfs::Vfs;
