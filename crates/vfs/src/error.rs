//! VFS error codes.

use std::fmt;

/// Errors returned by VFS operations, mirroring the relevant errnos.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VfsError {
    /// No such file or directory (`ENOENT`).
    NotFound,
    /// File exists (`EEXIST`).
    Exists,
    /// Not a directory (`ENOTDIR`).
    NotADirectory,
    /// Is a directory (`EISDIR`).
    IsADirectory,
    /// Directory not empty (`ENOTEMPTY`).
    NotEmpty,
    /// Device or resource busy (`EBUSY`), e.g. remounting with files open.
    Busy,
    /// Invalid argument (`EINVAL`).
    InvalidArgument,
    /// Read-only file system (`EROFS`).
    ReadOnly,
    /// Stale handle: the object was concurrently removed (`ESTALE`).
    Stale,
    /// Out of memory (`ENOMEM`), e.g. a dentry allocation failed.
    OutOfMemory,
}

impl fmt::Display for VfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::NotFound => "no such file or directory",
            Self::Exists => "file exists",
            Self::NotADirectory => "not a directory",
            Self::IsADirectory => "is a directory",
            Self::NotEmpty => "directory not empty",
            Self::Busy => "device or resource busy",
            Self::InvalidArgument => "invalid argument",
            Self::ReadOnly => "read-only file system",
            Self::Stale => "stale file handle",
            Self::OutOfMemory => "out of memory",
        };
        f.write_str(s)
    }
}

impl std::error::Error for VfsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_distinct() {
        let all = [
            VfsError::NotFound,
            VfsError::Exists,
            VfsError::NotADirectory,
            VfsError::IsADirectory,
            VfsError::NotEmpty,
            VfsError::Busy,
            VfsError::InvalidArgument,
            VfsError::ReadOnly,
            VfsError::Stale,
            VfsError::OutOfMemory,
        ];
        let mut seen = std::collections::HashSet::new();
        for e in all {
            assert!(seen.insert(e.to_string()), "duplicate message for {e:?}");
        }
    }
}
