//! Open file descriptions and `lseek`.

use crate::config::VfsConfig;
use crate::inode::{Inode, InodeKind};
use crate::stats::VfsStats;
use crate::superblock::OpenFileId;
use crate::VfsError;
use pk_percpu::CoreId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// `lseek` origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Whence {
    /// Absolute offset (`SEEK_SET`).
    Set,
    /// Relative to the current offset (`SEEK_CUR`).
    Cur,
    /// Relative to end of file (`SEEK_END`).
    End,
}

/// An open file description: an inode plus a file offset.
///
/// `lseek(SEEK_END)` must read the inode size. In the stock kernel that
/// "acquires a mutex on the corresponding inode," and because "Linux's
/// adaptive mutex implementation suffers from starvation under intense
/// contention," PostgreSQL collapses at 36+ cores (§5.5). "The mutex
/// acquisition turns out not to be necessary, and PK eliminates it" with
/// an atomic size read — [`VfsConfig::atomic_lseek`] selects the path.
#[derive(Debug)]
pub struct OpenFile {
    /// The open-file id registered with the super block.
    pub id: OpenFileId,
    /// The core whose open-file list holds this file.
    pub home_core: CoreId,
    /// The underlying inode.
    pub inode: Arc<Inode>,
    offset: AtomicU64,
    config: VfsConfig,
    stats: Arc<VfsStats>,
}

impl OpenFile {
    /// Creates an open file description at offset 0.
    pub fn new(
        id: OpenFileId,
        home_core: CoreId,
        inode: Arc<Inode>,
        config: VfsConfig,
        stats: Arc<VfsStats>,
    ) -> Self {
        Self {
            id,
            home_core,
            inode,
            offset: AtomicU64::new(0),
            config,
            stats,
        }
    }

    /// Returns the current file offset.
    pub fn offset(&self) -> u64 {
        self.offset.load(Ordering::Acquire)
    }

    /// Repositions the file offset, returning the new value.
    ///
    /// `SEEK_END` reads the inode size via the stock mutex path or the PK
    /// atomic path, depending on configuration.
    pub fn lseek(&self, offset: i64, whence: Whence) -> Result<u64, VfsError> {
        let base: i64 = match whence {
            Whence::Set => 0,
            Whence::Cur => self.offset() as i64,
            Whence::End => {
                if self.config.atomic_lseek {
                    VfsStats::bump(&self.stats.lseek_atomic_reads);
                    self.inode.size() as i64
                } else {
                    VfsStats::bump(&self.stats.lseek_mutex_acquisitions);
                    self.inode.size_locked() as i64
                }
            }
        };
        let target = base + offset;
        if target < 0 {
            return Err(VfsError::InvalidArgument);
        }
        self.offset.store(target as u64, Ordering::Release);
        Ok(target as u64)
    }

    /// Reads up to `len` bytes at the current offset, advancing it.
    pub fn read(&self, len: usize) -> Result<Vec<u8>, VfsError> {
        if self.inode.kind == InodeKind::Dir {
            return Err(VfsError::IsADirectory);
        }
        let off = self.offset();
        let data = self.inode.read_at(off, len);
        self.offset.fetch_add(data.len() as u64, Ordering::AcqRel);
        Ok(data)
    }

    /// Reads up to `len` bytes at an explicit offset (`pread`).
    pub fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>, VfsError> {
        if self.inode.kind == InodeKind::Dir {
            return Err(VfsError::IsADirectory);
        }
        Ok(self.inode.read_at(offset, len))
    }

    /// Writes `buf` at the current offset, advancing it.
    pub fn write(&self, buf: &[u8]) -> Result<usize, VfsError> {
        if self.inode.kind == InodeKind::Dir {
            return Err(VfsError::IsADirectory);
        }
        let off = self.offset();
        let n = self.inode.write_at(off, buf);
        self.offset.fetch_add(n as u64, Ordering::AcqRel);
        Ok(n)
    }

    /// Appends `buf` at end of file (`O_APPEND` semantics).
    pub fn append(&self, buf: &[u8]) -> Result<u64, VfsError> {
        if self.inode.kind == InodeKind::Dir {
            return Err(VfsError::IsADirectory);
        }
        let off = self.inode.append(buf);
        self.offset.store(off + buf.len() as u64, Ordering::Release);
        Ok(off)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inode::InodeId;

    fn file(atomic_lseek: bool) -> (OpenFile, Arc<VfsStats>) {
        let stats = Arc::new(VfsStats::new());
        let mut cfg = VfsConfig::pk(4);
        cfg.atomic_lseek = atomic_lseek;
        let inode = Arc::new(Inode::new(InodeId(1), InodeKind::File));
        inode.append(b"0123456789");
        (
            OpenFile::new(OpenFileId(1), CoreId(0), inode, cfg, Arc::clone(&stats)),
            stats,
        )
    }

    #[test]
    fn seek_set_cur_end() {
        let (f, _) = file(true);
        assert_eq!(f.lseek(4, Whence::Set).unwrap(), 4);
        assert_eq!(f.lseek(2, Whence::Cur).unwrap(), 6);
        assert_eq!(f.lseek(-1, Whence::End).unwrap(), 9);
        assert_eq!(f.lseek(-100, Whence::Set), Err(VfsError::InvalidArgument));
    }

    #[test]
    fn lseek_paths_are_instrumented() {
        let (f, stats) = file(true);
        f.lseek(0, Whence::End).unwrap();
        assert_eq!(stats.lseek_atomic_reads.load(Ordering::Relaxed), 1);
        assert_eq!(stats.lseek_mutex_acquisitions.load(Ordering::Relaxed), 0);

        let (f2, stats2) = file(false);
        f2.lseek(0, Whence::End).unwrap();
        assert_eq!(stats2.lseek_mutex_acquisitions.load(Ordering::Relaxed), 1);
        assert_eq!(f2.inode.i_mutex().stats().acquisitions(), 1);
    }

    #[test]
    fn sequential_reads_advance() {
        let (f, _) = file(true);
        assert_eq!(f.read(4).unwrap(), b"0123");
        assert_eq!(f.read(4).unwrap(), b"4567");
        assert_eq!(f.read(4).unwrap(), b"89");
        assert_eq!(f.read(4).unwrap(), b"");
    }

    #[test]
    fn writes_advance_offset() {
        let (f, _) = file(true);
        f.lseek(0, Whence::End).unwrap();
        f.write(b"ab").unwrap();
        assert_eq!(f.offset(), 12);
        assert_eq!(f.read_at(10, 2).unwrap(), b"ab");
    }

    #[test]
    fn append_lands_at_eof() {
        let (f, _) = file(true);
        assert_eq!(f.append(b"xy").unwrap(), 10);
        assert_eq!(f.inode.size(), 12);
    }
}
