//! Inodes: files and directories.

use parking_lot::RwLock;
use pk_sync::{AdaptiveMutex, SpinLock};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique inode number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InodeId(pub u64);

impl fmt::Display for InodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ino:{}", self.0)
    }
}

/// Whether an inode is a regular file or a directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InodeKind {
    /// Regular file with byte contents.
    File,
    /// Directory mapping names to child inodes.
    Dir,
}

/// An in-memory inode.
///
/// Two contention points from the paper live here:
///
/// * `i_mutex` — the per-inode mutex `lseek` acquires in the stock kernel
///   (§5.5). It is an [`AdaptiveMutex`] so the starvation diagnostic is
///   observable.
/// * the per-directory lock — directory modifications lock
///   the directory's child map, which is what makes Exim's spool directories an
///   *application-level* bottleneck even on PK (§5.2).
#[derive(Debug)]
pub struct Inode {
    /// The inode number.
    pub id: InodeId,
    /// File or directory.
    pub kind: InodeKind,
    /// File size in bytes, readable atomically (the PK lseek fix).
    size: AtomicU64,
    /// Link count.
    nlink: AtomicU64,
    /// File contents (empty for directories).
    data: RwLock<Vec<u8>>,
    /// Directory entries (empty for files); the lock is the per-directory
    /// lock serializing creation/removal in that directory.
    children: SpinLock<HashMap<String, InodeId>>,
    /// The per-inode mutex (`i_mutex`); stock `lseek` takes it.
    i_mutex: AdaptiveMutex<()>,
}

impl Inode {
    /// Creates a fresh inode of the given kind.
    pub fn new(id: InodeId, kind: InodeKind) -> Self {
        let inode = Self {
            id,
            kind,
            size: AtomicU64::new(0),
            nlink: AtomicU64::new(1),
            data: RwLock::new(Vec::new()),
            children: SpinLock::new(HashMap::new()),
            i_mutex: AdaptiveMutex::new(()),
        };
        inode.children.set_class(pk_lockdep::register_class(
            "vfs.inode.dir_children",
            "pk-vfs",
            pk_lockdep::LockKind::Spin,
        ));
        inode.i_mutex.set_class(pk_lockdep::register_class(
            "vfs.inode.i_mutex",
            "pk-vfs",
            pk_lockdep::LockKind::Blocking,
        ));
        inode
    }

    /// Returns the file size (atomic read — the PK fast path).
    pub fn size(&self) -> u64 {
        self.size.load(Ordering::Acquire)
    }

    /// Returns the file size while holding the per-inode mutex — the
    /// stock `lseek` path. The returned guard models the serialization.
    pub fn size_locked(&self) -> u64 {
        let _g = self.i_mutex.lock();
        self.size.load(Ordering::Acquire)
    }

    /// Exposes the per-inode mutex (for stats and direct locking).
    pub fn i_mutex(&self) -> &AdaptiveMutex<()> {
        &self.i_mutex
    }

    /// Returns the current link count.
    pub fn nlink(&self) -> u64 {
        self.nlink.load(Ordering::Acquire)
    }

    /// Increments the link count.
    pub fn inc_nlink(&self) {
        self.nlink.fetch_add(1, Ordering::AcqRel);
    }

    /// Decrements the link count, returning the new value.
    pub fn dec_nlink(&self) -> u64 {
        self.nlink.fetch_sub(1, Ordering::AcqRel) - 1
    }

    /// Reads up to `len` bytes at `offset` into a fresh buffer.
    pub fn read_at(&self, offset: u64, len: usize) -> Vec<u8> {
        let data = self.data.read();
        let start = (offset as usize).min(data.len());
        let end = start.saturating_add(len).min(data.len());
        data[start..end].to_vec()
    }

    /// Writes `buf` at `offset`, growing the file if needed. Returns the
    /// number of bytes written.
    pub fn write_at(&self, offset: u64, buf: &[u8]) -> usize {
        let mut data = self.data.write();
        let end = offset as usize + buf.len();
        if data.len() < end {
            data.resize(end, 0);
        }
        data[offset as usize..end].copy_from_slice(buf);
        self.size.store(data.len() as u64, Ordering::Release);
        buf.len()
    }

    /// Appends `buf`, returning the offset it was written at.
    pub fn append(&self, buf: &[u8]) -> u64 {
        let mut data = self.data.write();
        let off = data.len() as u64;
        data.extend_from_slice(buf);
        self.size.store(data.len() as u64, Ordering::Release);
        off
    }

    /// Truncates the file to `len` bytes.
    pub fn truncate(&self, len: u64) {
        let mut data = self.data.write();
        data.truncate(len as usize);
        data.shrink_to_fit();
        self.size.store(data.len() as u64, Ordering::Release);
    }

    /// Looks up a child by name (directories only).
    pub fn child(&self, name: &str) -> Option<InodeId> {
        self.children.lock().get(name).copied()
    }

    /// Inserts a child entry; returns `false` if the name already exists.
    pub fn insert_child(&self, name: &str, id: InodeId) -> bool {
        use std::collections::hash_map::Entry;
        match self.children.lock().entry(name.to_string()) {
            Entry::Occupied(_) => false,
            Entry::Vacant(v) => {
                v.insert(id);
                true
            }
        }
    }

    /// Removes a child entry, returning its inode id if present.
    pub fn remove_child(&self, name: &str) -> Option<InodeId> {
        self.children.lock().remove(name)
    }

    /// Returns the number of directory entries.
    pub fn child_count(&self) -> usize {
        self.children.lock().len()
    }

    /// Returns a snapshot of all child names (sorted, for determinism).
    pub fn child_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.children.lock().keys().cloned().collect();
        names.sort_unstable();
        names
    }

    /// Exposes the per-directory lock's contention stats.
    pub fn dir_lock_stats(&self) -> &pk_sync::LockStats {
        self.children.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let ino = Inode::new(InodeId(1), InodeKind::File);
        assert_eq!(ino.write_at(0, b"hello"), 5);
        assert_eq!(ino.size(), 5);
        assert_eq!(ino.read_at(1, 3), b"ell");
        assert_eq!(ino.read_at(10, 3), b"");
    }

    #[test]
    fn write_past_end_zero_fills() {
        let ino = Inode::new(InodeId(1), InodeKind::File);
        ino.write_at(3, b"x");
        assert_eq!(ino.size(), 4);
        assert_eq!(ino.read_at(0, 4), vec![0, 0, 0, b'x']);
    }

    #[test]
    fn append_returns_offsets() {
        let ino = Inode::new(InodeId(1), InodeKind::File);
        assert_eq!(ino.append(b"ab"), 0);
        assert_eq!(ino.append(b"cd"), 2);
        assert_eq!(ino.read_at(0, 4), b"abcd");
    }

    #[test]
    fn truncate_shrinks() {
        let ino = Inode::new(InodeId(1), InodeKind::File);
        ino.append(b"abcdef");
        ino.truncate(2);
        assert_eq!(ino.size(), 2);
        assert_eq!(ino.read_at(0, 10), b"ab");
    }

    #[test]
    fn directory_children() {
        let dir = Inode::new(InodeId(2), InodeKind::Dir);
        assert!(dir.insert_child("a", InodeId(3)));
        assert!(!dir.insert_child("a", InodeId(4)), "duplicate rejected");
        assert_eq!(dir.child("a"), Some(InodeId(3)));
        assert_eq!(dir.child_count(), 1);
        assert_eq!(dir.remove_child("a"), Some(InodeId(3)));
        assert_eq!(dir.child("a"), None);
    }

    #[test]
    fn nlink_counts() {
        let ino = Inode::new(InodeId(1), InodeKind::File);
        assert_eq!(ino.nlink(), 1);
        ino.inc_nlink();
        assert_eq!(ino.nlink(), 2);
        assert_eq!(ino.dec_nlink(), 1);
    }

    #[test]
    fn size_locked_matches_atomic() {
        let ino = Inode::new(InodeId(1), InodeKind::File);
        ino.append(b"12345678");
        assert_eq!(ino.size_locked(), ino.size());
        assert_eq!(ino.i_mutex().stats().acquisitions(), 1);
    }
}
