//! The VFS facade: syscall-shaped operations over all the pieces.

use crate::config::VfsConfig;
use crate::dcache::Dcache;
use crate::dentry::DentryKey;
use crate::file::OpenFile;
use crate::inode::{InodeId, InodeKind};
use crate::mount::MountTable;
use crate::namei::PathWalker;
use crate::pagecache::{PageCache, PAGE_BYTES};
use crate::stats::VfsStats;
use crate::superblock::SuperBlock;
use crate::tmpfs::Tmpfs;
use crate::VfsError;
use pk_percpu::CoreId;
use std::sync::Arc;

/// Metadata returned by [`Vfs::stat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stat {
    /// Inode number.
    pub ino: InodeId,
    /// File or directory.
    pub kind: InodeKind,
    /// Size in bytes.
    pub size: u64,
    /// Link count.
    pub nlink: u64,
}

/// The assembled virtual file system: tmpfs + dcache + mount table +
/// super block, all driven by one [`VfsConfig`].
///
/// Operations take an explicit [`CoreId`] — the acting CPU — because
/// every Figure-1 fix is about *which core's* data gets touched.
///
/// # Examples
///
/// ```
/// use pk_percpu::CoreId;
/// use pk_vfs::{Vfs, VfsConfig, Whence};
///
/// let vfs = Vfs::new(VfsConfig::pk(4));
/// let core = CoreId(0);
/// vfs.mkdir_p("/var/spool", core).unwrap();
/// let f = vfs.create("/var/spool/msg1", core).unwrap();
/// f.append(b"mail body").unwrap();
/// assert_eq!(f.lseek(0, Whence::End).unwrap(), 9);
/// vfs.close(&f, core);
/// vfs.unlink("/var/spool/msg1", core).unwrap();
/// ```
#[derive(Debug)]
pub struct Vfs {
    config: VfsConfig,
    stats: Arc<VfsStats>,
    fs: Tmpfs,
    dcache: Dcache,
    mounts: MountTable,
    sb: SuperBlock,
    pages: PageCache,
}

impl Vfs {
    /// Creates an empty file system under `config`.
    pub fn new(config: VfsConfig) -> Self {
        Self::with_faults(config, &pk_fault::FaultPlane::disabled())
    }

    /// Like [`Vfs::new`], with dentry-allocation failure and dcache
    /// pressure injectable through `faults` (`vfs.dentry_alloc`,
    /// `vfs.dcache_pressure`).
    pub fn with_faults(config: VfsConfig, faults: &pk_fault::FaultPlane) -> Self {
        let stats = Arc::new(VfsStats::new());
        Self {
            config,
            fs: Tmpfs::new(),
            dcache: Dcache::with_faults(4096, config, Arc::clone(&stats), faults),
            mounts: MountTable::new(config, Arc::clone(&stats)),
            sb: SuperBlock::new(config, Arc::clone(&stats)),
            pages: PageCache::new(1024),
            stats,
        }
    }

    fn walker(&self) -> PathWalker<'_> {
        PathWalker::new(&self.fs, &self.dcache, &self.mounts)
    }

    /// Returns the contention diagnostics.
    pub fn stats(&self) -> &Arc<VfsStats> {
        &self.stats
    }

    /// Returns the configuration.
    pub fn config(&self) -> VfsConfig {
        self.config
    }

    /// Returns the mount table (to add mounts for workloads).
    pub fn mounts(&self) -> &MountTable {
        &self.mounts
    }

    /// Returns the super block.
    pub fn superblock(&self) -> &SuperBlock {
        &self.sb
    }

    /// Returns the backing file system.
    pub fn tmpfs(&self) -> &Tmpfs {
        &self.fs
    }

    /// Returns the dentry cache.
    pub fn dcache(&self) -> &Dcache {
        &self.dcache
    }

    /// Returns the page (buffer) cache.
    pub fn page_cache(&self) -> &PageCache {
        &self.pages
    }

    /// Reads a whole file through the buffer cache: pages are filled
    /// from tmpfs on first access and served lock-free afterwards —
    /// the way Apache's static file "resides in the kernel buffer
    /// cache" (§5.4).
    pub fn read_cached(&self, path: &str, core: CoreId) -> Result<Vec<u8>, VfsError> {
        let inode = self.walker().resolve(path, core)?;
        if inode.kind == InodeKind::Dir {
            return Err(VfsError::IsADirectory);
        }
        let size = inode.size() as usize;
        let mut out = Vec::with_capacity(size);
        let pages = size.div_ceil(PAGE_BYTES).max(1);
        for idx in 0..pages as u64 {
            let page = match self.pages.lookup(inode.id, idx) {
                Some(p) => p,
                None => {
                    let data = inode.read_at(idx * PAGE_BYTES as u64, PAGE_BYTES);
                    self.pages.fill(inode.id, idx, data)
                }
            };
            out.extend_from_slice(&page.data);
            self.pages.put(&page);
        }
        out.truncate(size);
        Ok(out)
    }

    /// Creates all missing directories along `path`.
    pub fn mkdir_p(&self, path: &str, _core: CoreId) -> Result<(), VfsError> {
        let comps = PathWalker::components(path)?;
        let mut cur = self.fs.get(self.fs.root())?;
        for comp in comps {
            cur = match self.fs.lookup_child(&cur, comp) {
                Ok(next) => next,
                Err(VfsError::NotFound) => {
                    self.sb.inode_list_bookkeeping(true);
                    match self.fs.create_child(&cur, comp, InodeKind::Dir) {
                        Ok(d) => d,
                        // Lost a race with a concurrent mkdir.
                        Err(VfsError::Exists) => self.fs.lookup_child(&cur, comp)?,
                        Err(e) => return Err(e),
                    }
                }
                Err(e) => return Err(e),
            };
            if cur.kind != InodeKind::Dir {
                return Err(VfsError::NotADirectory);
            }
        }
        Ok(())
    }

    /// Creates a directory at `path` (parent must exist).
    pub fn mkdir(&self, path: &str, core: CoreId) -> Result<(), VfsError> {
        let pl = self.walker().resolve_parent(path, core)?;
        self.sb.inode_list_bookkeeping(true);
        self.fs.create_child(&pl.parent, &pl.name, InodeKind::Dir)?;
        Ok(())
    }

    /// Creates and opens a new file (`O_CREAT | O_EXCL`).
    pub fn create(&self, path: &str, core: CoreId) -> Result<Arc<OpenFile>, VfsError> {
        if self.sb.is_read_only() {
            return Err(VfsError::ReadOnly);
        }
        let pl = self.walker().resolve_parent(path, core)?;
        self.sb.inode_list_bookkeeping(true); // new inode joins the list
        let inode = self
            .fs
            .create_child(&pl.parent, &pl.name, InodeKind::File)?;
        match self.dcache.insert(
            DentryKey::new(pl.parent.id, pl.name.clone()),
            inode.id,
            core,
        ) {
            Ok(dentry) => dentry.put(core),
            Err(e) => {
                // Error-path resource release: undo the creation so the
                // failed syscall leaves no half-made file behind.
                let _ = self.fs.unlink_child(&pl.parent, &pl.name);
                return Err(e);
            }
        }
        let (id, home) = self.sb.add_open_file(core);
        Ok(Arc::new(OpenFile::new(
            id,
            home,
            inode,
            self.config,
            Arc::clone(&self.stats),
        )))
    }

    /// Opens an existing file.
    pub fn open(&self, path: &str, core: CoreId) -> Result<Arc<OpenFile>, VfsError> {
        let inode = self.walker().resolve(path, core)?;
        if inode.kind == InodeKind::Dir {
            return Err(VfsError::IsADirectory);
        }
        // Opening an existing file does not change inode-list membership;
        // PK skips the global list lock here (Figure 1: "avoid acquiring
        // the locks when not necessary").
        self.sb.inode_list_bookkeeping(false);
        let (id, home) = self.sb.add_open_file(core);
        Ok(Arc::new(OpenFile::new(
            id,
            home,
            inode,
            self.config,
            Arc::clone(&self.stats),
        )))
    }

    /// Closes an open file on `core` (which may differ from the core it
    /// was opened on — the expensive case for per-core open lists).
    pub fn close(&self, file: &OpenFile, core: CoreId) {
        self.sb.remove_open_file(file.id, file.home_core, core);
    }

    /// Removes the file at `path`.
    pub fn unlink(&self, path: &str, core: CoreId) -> Result<(), VfsError> {
        if self.sb.is_read_only() {
            return Err(VfsError::ReadOnly);
        }
        let pl = self.walker().resolve_parent(path, core)?;
        let key = DentryKey::new(pl.parent.id, pl.name.as_str());
        self.sb.dcache_list_bookkeeping(true); // dentry leaves the cache
        self.dcache.remove(&key, core);
        self.sb.inode_list_bookkeeping(true); // inode may be freed
        let ino = self.fs.lookup_child(&pl.parent, &pl.name)?.id;
        self.fs.unlink_child(&pl.parent, &pl.name)?;
        self.pages.invalidate(ino);
        Ok(())
    }

    /// Renames `old` to `new` (both absolute paths; `new` must not
    /// exist). This is the `mv foo bar` that parks dentry generations.
    pub fn rename(&self, old: &str, new: &str, core: CoreId) -> Result<(), VfsError> {
        let old_pl = self.walker().resolve_parent(old, core)?;
        let new_pl = self.walker().resolve_parent(new, core)?;
        let inode = self.fs.lookup_child(&old_pl.parent, &old_pl.name)?;
        if !new_pl.parent.insert_child(&new_pl.name, inode.id) {
            return Err(VfsError::Exists);
        }
        old_pl.parent.remove_child(&old_pl.name);
        // Invalidate the old name in the dcache; populate the new one
        // lazily on the next lookup.
        self.sb.dcache_list_bookkeeping(true);
        self.dcache
            .remove(&DentryKey::new(old_pl.parent.id, old_pl.name), core);
        Ok(())
    }

    /// Creates a hard link: `new` becomes another name for the inode at
    /// `existing` (`link(2)`). Directories cannot be linked.
    pub fn link(&self, existing: &str, new: &str, core: CoreId) -> Result<(), VfsError> {
        if self.sb.is_read_only() {
            return Err(VfsError::ReadOnly);
        }
        let inode = self.walker().resolve(existing, core)?;
        if inode.kind == InodeKind::Dir {
            return Err(VfsError::IsADirectory);
        }
        let pl = self.walker().resolve_parent(new, core)?;
        if !pl.parent.insert_child(&pl.name, inode.id) {
            return Err(VfsError::Exists);
        }
        inode.inc_nlink();
        match self.dcache.insert(
            DentryKey::new(pl.parent.id, pl.name.clone()),
            inode.id,
            core,
        ) {
            Ok(dentry) => {
                dentry.put(core);
                Ok(())
            }
            Err(e) => {
                // Roll the half-made link back: drop the directory entry
                // and the extra nlink taken above.
                pl.parent.remove_child(&pl.name);
                inode.dec_nlink();
                Err(e)
            }
        }
    }

    /// Lists the entries of the directory at `path`, sorted.
    pub fn readdir(&self, path: &str, core: CoreId) -> Result<Vec<String>, VfsError> {
        let inode = self.walker().resolve(path, core)?;
        if inode.kind != InodeKind::Dir {
            return Err(VfsError::NotADirectory);
        }
        Ok(inode.child_names())
    }

    /// Returns metadata for `path` — the `stat` every Apache request
    /// performs (§3.3).
    pub fn stat(&self, path: &str, core: CoreId) -> Result<Stat, VfsError> {
        let inode = self.walker().resolve(path, core)?;
        Ok(Stat {
            ino: inode.id,
            kind: inode.kind,
            size: inode.size(),
            nlink: inode.nlink(),
        })
    }

    /// Convenience: writes an entire file (creating it if missing).
    pub fn write_file(&self, path: &str, data: &[u8], core: CoreId) -> Result<(), VfsError> {
        let file = match self.create(path, core) {
            Ok(f) => f,
            Err(VfsError::Exists) => self.open(path, core)?,
            Err(e) => return Err(e),
        };
        file.inode.truncate(0);
        file.write(data)?;
        // Writes invalidate stale buffer-cache pages.
        self.pages.invalidate(file.inode.id);
        self.close(&file, core);
        Ok(())
    }

    /// Convenience: reads an entire file.
    pub fn read_file(&self, path: &str, core: CoreId) -> Result<Vec<u8>, VfsError> {
        let file = self.open(path, core)?;
        let data = file.read_at(0, file.inode.size() as usize)?;
        self.close(&file, core);
        Ok(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::Whence;

    fn pk() -> Vfs {
        Vfs::new(VfsConfig::pk(4))
    }

    #[test]
    fn create_write_read_cycle() {
        let vfs = pk();
        let core = CoreId(0);
        vfs.mkdir_p("/home/user", core).unwrap();
        vfs.write_file("/home/user/f.txt", b"content", core)
            .unwrap();
        assert_eq!(vfs.read_file("/home/user/f.txt", core).unwrap(), b"content");
        let st = vfs.stat("/home/user/f.txt", core).unwrap();
        assert_eq!(st.size, 7);
        assert_eq!(st.kind, InodeKind::File);
    }

    #[test]
    fn open_missing_is_enoent() {
        let vfs = pk();
        assert_eq!(
            vfs.open("/nope", CoreId(0)).unwrap_err(),
            VfsError::NotFound
        );
    }

    #[test]
    fn create_duplicate_is_eexist() {
        let vfs = pk();
        let core = CoreId(0);
        let f = vfs.create("/a", core).unwrap();
        vfs.close(&f, core);
        assert_eq!(vfs.create("/a", core).unwrap_err(), VfsError::Exists);
    }

    #[test]
    fn unlink_removes_and_invalidates_cache() {
        let vfs = pk();
        let core = CoreId(0);
        let f = vfs.create("/tmp1", core).unwrap();
        vfs.close(&f, core);
        vfs.stat("/tmp1", core).unwrap(); // warm the dcache
        vfs.unlink("/tmp1", core).unwrap();
        assert_eq!(vfs.stat("/tmp1", core).unwrap_err(), VfsError::NotFound);
    }

    #[test]
    fn rename_moves_the_file() {
        let vfs = pk();
        let core = CoreId(0);
        vfs.mkdir_p("/a/b", core).unwrap();
        vfs.write_file("/a/b/x", b"1", core).unwrap();
        vfs.stat("/a/b/x", core).unwrap();
        vfs.rename("/a/b/x", "/a/y", core).unwrap();
        assert_eq!(vfs.stat("/a/b/x", core).unwrap_err(), VfsError::NotFound);
        assert_eq!(vfs.stat("/a/y", core).unwrap().size, 1);
    }

    #[test]
    fn rename_to_existing_fails() {
        let vfs = pk();
        let core = CoreId(0);
        vfs.write_file("/p", b"1", core).unwrap();
        vfs.write_file("/q", b"2", core).unwrap();
        assert_eq!(vfs.rename("/p", "/q", core).unwrap_err(), VfsError::Exists);
    }

    #[test]
    fn remount_read_only_blocks_writes() {
        let vfs = pk();
        let core = CoreId(0);
        let f = vfs.create("/f", core).unwrap();
        assert_eq!(vfs.superblock().remount_read_only(), Err(VfsError::Busy));
        vfs.close(&f, core);
        vfs.superblock().remount_read_only().unwrap();
        assert_eq!(vfs.create("/g", core).unwrap_err(), VfsError::ReadOnly);
        assert_eq!(vfs.unlink("/f", core).unwrap_err(), VfsError::ReadOnly);
        vfs.superblock().remount_read_write();
        vfs.unlink("/f", core).unwrap();
    }

    #[test]
    fn lseek_end_works_through_facade() {
        for cfg in [VfsConfig::stock(4), VfsConfig::pk(4)] {
            let vfs = Vfs::new(cfg);
            let core = CoreId(1);
            vfs.write_file("/data", b"0123456789", core).unwrap();
            let f = vfs.open("/data", core).unwrap();
            assert_eq!(f.lseek(0, Whence::End).unwrap(), 10);
            vfs.close(&f, core);
        }
    }

    #[test]
    fn stock_and_pk_agree_functionally() {
        // The same operation sequence must produce identical results
        // under every config — the fixes change performance, not
        // semantics.
        for cfg in [VfsConfig::stock(4), VfsConfig::pk(4)] {
            let vfs = Vfs::new(cfg);
            let core = CoreId(2);
            vfs.mkdir_p("/var/spool/input", core).unwrap();
            for i in 0..10 {
                vfs.write_file(&format!("/var/spool/input/m{i}"), b"msg", core)
                    .unwrap();
            }
            for i in 0..10 {
                assert_eq!(
                    vfs.read_file(&format!("/var/spool/input/m{i}"), core)
                        .unwrap(),
                    b"msg"
                );
                vfs.unlink(&format!("/var/spool/input/m{i}"), core).unwrap();
            }
            assert_eq!(
                vfs.stat("/var/spool/input", core).unwrap().kind,
                InodeKind::Dir
            );
        }
    }

    #[test]
    fn read_cached_round_trips_and_hits() {
        let vfs = pk();
        let core = CoreId(0);
        let body: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        vfs.write_file("/big", &body, core).unwrap();
        assert_eq!(vfs.read_cached("/big", core).unwrap(), body);
        let misses = vfs
            .page_cache()
            .stats()
            .misses
            .load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(misses, 3, "10000 bytes = 3 pages filled");
        assert_eq!(vfs.read_cached("/big", core).unwrap(), body);
        assert_eq!(
            vfs.page_cache()
                .stats()
                .misses
                .load(std::sync::atomic::Ordering::Relaxed),
            misses,
            "second read is all hits"
        );
        // Rewrite invalidates.
        vfs.write_file("/big", b"short", core).unwrap();
        assert_eq!(vfs.read_cached("/big", core).unwrap(), b"short");
    }

    #[test]
    fn unlink_invalidates_pages() {
        let vfs = pk();
        let core = CoreId(0);
        vfs.write_file("/f", b"cache me", core).unwrap();
        vfs.read_cached("/f", core).unwrap();
        assert_eq!(vfs.page_cache().len(), 1);
        vfs.unlink("/f", core).unwrap();
        assert_eq!(vfs.page_cache().len(), 0);
    }

    #[test]
    fn hard_links_share_the_inode() {
        let vfs = pk();
        let core = CoreId(0);
        vfs.write_file("/a", b"shared", core).unwrap();
        vfs.link("/a", "/b", core).unwrap();
        assert_eq!(vfs.stat("/a", core).unwrap().nlink, 2);
        assert_eq!(
            vfs.stat("/a", core).unwrap().ino,
            vfs.stat("/b", core).unwrap().ino
        );
        // A write through one name is visible through the other.
        let f = vfs.open("/b", core).unwrap();
        f.append(b"!").unwrap();
        vfs.close(&f, core);
        assert_eq!(vfs.read_file("/a", core).unwrap(), b"shared!");
        // Unlinking one name keeps the data alive via the other.
        vfs.unlink("/a", core).unwrap();
        assert_eq!(vfs.stat("/a", core).unwrap_err(), VfsError::NotFound);
        assert_eq!(vfs.read_file("/b", core).unwrap(), b"shared!");
        assert_eq!(vfs.stat("/b", core).unwrap().nlink, 1);
        vfs.unlink("/b", core).unwrap();
        assert_eq!(vfs.tmpfs().inode_count(), 1, "inode freed with last link");
    }

    #[test]
    fn link_error_paths() {
        let vfs = pk();
        let core = CoreId(0);
        vfs.mkdir_p("/d", core).unwrap();
        vfs.write_file("/f", b"x", core).unwrap();
        assert_eq!(
            vfs.link("/d", "/d2", core).unwrap_err(),
            VfsError::IsADirectory
        );
        assert_eq!(
            vfs.link("/nope", "/n2", core).unwrap_err(),
            VfsError::NotFound
        );
        assert_eq!(vfs.link("/f", "/f", core).unwrap_err(), VfsError::Exists);
    }

    #[test]
    fn failed_create_rolls_back_the_inode() {
        let faults = pk_fault::FaultPlane::with_seed(3);
        faults.set("vfs.dentry_alloc", pk_fault::FaultSchedule::OneShot(0));
        faults.enable();
        let vfs = Vfs::with_faults(VfsConfig::pk(4), &faults);
        let core = CoreId(0);
        assert_eq!(
            vfs.create("/f", core).unwrap_err(),
            VfsError::OutOfMemory,
            "dentry allocation failure surfaces as ENOMEM"
        );
        // The rollback removed the half-created file: a later create of
        // the same name succeeds (no phantom EEXIST) and opens cleanly.
        let f = vfs.create("/f", core).unwrap();
        vfs.close(&f, core);
        assert_eq!(vfs.superblock().open_files(), 0);
    }

    #[test]
    fn failed_link_rolls_back_nlink() {
        let faults = pk_fault::FaultPlane::with_seed(3);
        faults.set("vfs.dentry_alloc", pk_fault::FaultSchedule::OneShot(0));
        let vfs = Vfs::with_faults(VfsConfig::pk(4), &faults);
        let core = CoreId(0);
        vfs.write_file("/a", b"x", core).unwrap();
        // Arm only after setup so the one-shot hits the link itself.
        faults.enable();
        assert_eq!(
            vfs.link("/a", "/b", core).unwrap_err(),
            VfsError::OutOfMemory
        );
        assert_eq!(vfs.stat("/a", core).unwrap().nlink, 1, "nlink rolled back");
        assert_eq!(vfs.stat("/b", core).unwrap_err(), VfsError::NotFound);
        // Retry succeeds once the pressure passes.
        vfs.link("/a", "/b", core).unwrap();
        assert_eq!(vfs.stat("/a", core).unwrap().nlink, 2);
    }

    #[test]
    fn dcache_pressure_degrades_to_uncached_resolution() {
        let faults = pk_fault::FaultPlane::with_seed(5);
        faults.set("vfs.dcache_pressure", pk_fault::FaultSchedule::EveryNth(1));
        faults.set("vfs.dentry_alloc", pk_fault::FaultSchedule::EveryNth(1));
        let vfs = Vfs::with_faults(VfsConfig::pk(4), &faults);
        let core = CoreId(0);
        vfs.mkdir_p("/deep/dir", core).unwrap();
        vfs.write_file("/deep/dir/f", b"still here", core).unwrap();
        // Arm only after the tree exists; now every lookup misses and
        // every re-populate fails.
        faults.enable();
        // Every lookup misses and every re-populate fails, but reads
        // still succeed via the backing fs — slower, never wrong.
        assert_eq!(vfs.read_file("/deep/dir/f", core).unwrap(), b"still here");
        let s = vfs.stats();
        assert!(
            s.dcache_pressure_misses
                .load(std::sync::atomic::Ordering::Relaxed)
                > 0
        );
        assert!(
            s.dentry_alloc_failures
                .load(std::sync::atomic::Ordering::Relaxed)
                > 0
        );
    }

    #[test]
    fn readdir_lists_sorted_entries() {
        let vfs = pk();
        let core = CoreId(0);
        vfs.mkdir_p("/dir", core).unwrap();
        for name in ["zeta", "alpha", "mid"] {
            vfs.write_file(&format!("/dir/{name}"), b"", core).unwrap();
        }
        assert_eq!(
            vfs.readdir("/dir", core).unwrap(),
            vec!["alpha", "mid", "zeta"]
        );
        assert_eq!(
            vfs.readdir("/dir/alpha", core).unwrap_err(),
            VfsError::NotADirectory
        );
    }

    #[test]
    fn concurrent_spool_traffic() {
        let vfs = Arc::new(pk());
        vfs.mkdir_p("/spool", CoreId(0)).unwrap();
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let vfs = Arc::clone(&vfs);
                std::thread::spawn(move || {
                    let core = CoreId(t);
                    for i in 0..50 {
                        let path = format!("/spool/t{t}-{i}");
                        vfs.write_file(&path, b"mail", core).unwrap();
                        assert_eq!(vfs.read_file(&path, core).unwrap(), b"mail");
                        vfs.unlink(&path, core).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(vfs.stat("/spool", CoreId(0)).unwrap().kind, InodeKind::Dir);
        assert_eq!(vfs.superblock().open_files(), 0);
    }
}
