//! Per-fix configuration switches for the VFS.

/// Selects, fix by fix, whether the VFS behaves like the stock kernel or
/// like PK. Each flag corresponds to a Figure-1 row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VfsConfig {
    /// Number of cores the VFS serves (sizes per-core structures).
    pub cores: usize,
    /// "Use sloppy counters to reference count directory entry objects."
    pub sloppy_dentry_refs: bool,
    /// "Use sloppy counters for mount point objects."
    pub sloppy_vfsmount_refs: bool,
    /// "Use a lock-free protocol in `dlookup` for checking filename
    /// matches" instead of taking the per-dentry spin lock.
    pub lockfree_dlookup: bool,
    /// "Use per-core mount table caches" instead of hitting the global
    /// mount-table spin lock on every path resolution.
    pub percore_mount_cache: bool,
    /// "Use per-core open file lists for each super block that has open
    /// files."
    pub percore_open_lists: bool,
    /// "Use atomic reads to eliminate the need to acquire the [per-inode]
    /// mutex" in `lseek`.
    pub atomic_lseek: bool,
    /// "Avoid acquiring the [inode list] locks when not necessary."
    pub avoid_inode_list_locks: bool,
    /// "Avoid acquiring the [dcache list] locks when not necessary."
    pub avoid_dcache_list_locks: bool,
    /// Boot sloppy reference counters degraded to central mode: the
    /// per-core banks are allocated but inactive, so behaviour matches
    /// stock's atomic counters until `restore_per_core` promotes them.
    /// Only the adaptive personality sets this — it is the lever
    /// `pk-adapt` pulls at runtime instead of a hand-placed fix.
    pub refs_start_degraded: bool,
    /// Retire replaced RCU snapshots (dcache buckets, umounted mounts)
    /// through `call_rcu` deferred-free queues instead of blocking each
    /// writer on a full `synchronize()` grace period. Not a Figure-1 fix:
    /// a reclamation-discipline switch, on in both presets; turn off to
    /// measure the blocking-writer baseline.
    pub deferred_reclamation: bool,
    /// End-to-end RCU-walk path resolution (generation-2, §7): resolve
    /// the whole path lock-free under a seqcount-validated snapshot,
    /// falling back to the locked walk when a concurrent rename/unlink
    /// tears the sequence. Off in stock, on in PK.
    pub rcu_path_walk: bool,
    /// Swap saturating sloppy counters for SNZI trees (generation-2,
    /// §7): per-socket intermediate nodes with surplus propagation so
    /// zero-detection scales past 48 cores. Off in stock, on in PK.
    pub snzi_refs: bool,
    /// Number of sockets in the machine topology; keys the SNZI tree
    /// fan-out (one intermediate node per socket).
    pub sockets: usize,
}

impl VfsConfig {
    /// The stock Linux 2.6.35-rc5 behaviour: every fix disabled.
    pub fn stock(cores: usize) -> Self {
        Self {
            cores,
            sloppy_dentry_refs: false,
            sloppy_vfsmount_refs: false,
            lockfree_dlookup: false,
            percore_mount_cache: false,
            percore_open_lists: false,
            atomic_lseek: false,
            avoid_inode_list_locks: false,
            avoid_dcache_list_locks: false,
            refs_start_degraded: false,
            deferred_reclamation: true,
            rcu_path_walk: false,
            snzi_refs: false,
            sockets: 8,
        }
    }

    /// The PK kernel: every fix enabled.
    pub fn pk(cores: usize) -> Self {
        Self {
            cores,
            sloppy_dentry_refs: true,
            sloppy_vfsmount_refs: true,
            lockfree_dlookup: true,
            percore_mount_cache: true,
            percore_open_lists: true,
            atomic_lseek: true,
            avoid_inode_list_locks: true,
            avoid_dcache_list_locks: true,
            refs_start_degraded: false,
            deferred_reclamation: true,
            rcu_path_walk: true,
            snzi_refs: true,
            sockets: 8,
        }
    }
}

impl Default for VfsConfig {
    fn default() -> Self {
        Self::pk(48)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stock_disables_everything() {
        let c = VfsConfig::stock(8);
        assert!(
            !(c.sloppy_dentry_refs
                || c.sloppy_vfsmount_refs
                || c.lockfree_dlookup
                || c.percore_mount_cache
                || c.percore_open_lists
                || c.atomic_lseek
                || c.avoid_inode_list_locks
                || c.avoid_dcache_list_locks)
        );
        assert_eq!(c.cores, 8);
    }

    #[test]
    fn pk_enables_everything() {
        let c = VfsConfig::pk(48);
        assert!(
            c.sloppy_dentry_refs
                && c.sloppy_vfsmount_refs
                && c.lockfree_dlookup
                && c.percore_mount_cache
                && c.percore_open_lists
                && c.atomic_lseek
                && c.avoid_inode_list_locks
                && c.avoid_dcache_list_locks
        );
    }
}
