//! Path resolution (`namei`): walking components through the dcache and
//! the mount table.

use crate::dcache::Dcache;
use crate::dentry::DentryKey;
use crate::inode::{Inode, InodeId, InodeKind};
use crate::mount::MountTable;
use crate::tmpfs::Tmpfs;
use crate::VfsError;
use pk_percpu::CoreId;
use std::sync::Arc;

/// Walks path names the way the kernel's `link_path_walk` does: one
/// vfsmount resolution per walk, then a dcache lookup per component —
/// taking and dropping a dentry reference each step.
///
/// This is the hot path of Exim and Apache: "file name resolution
/// contends on directory entry reference counts" and "walking file name
/// paths contends on mount point reference counts" (Figure 1).
#[derive(Debug)]
pub struct PathWalker<'a> {
    fs: &'a Tmpfs,
    dcache: &'a Dcache,
    mounts: &'a MountTable,
}

/// The result of resolving the parent of a path: the parent directory
/// inode plus the final component name.
#[derive(Debug)]
pub struct ParentAndLeaf {
    /// The parent directory.
    pub parent: Arc<Inode>,
    /// The final path component.
    pub name: String,
}

impl<'a> PathWalker<'a> {
    /// Creates a walker over the given structures.
    pub fn new(fs: &'a Tmpfs, dcache: &'a Dcache, mounts: &'a MountTable) -> Self {
        Self { fs, dcache, mounts }
    }

    /// Splits a path into normalized components.
    ///
    /// Only absolute paths are supported (the userspace kernel has no
    /// per-process CWD); `.` components are dropped and `..` is rejected.
    pub fn components(path: &str) -> Result<Vec<&str>, VfsError> {
        if !path.starts_with('/') {
            return Err(VfsError::InvalidArgument);
        }
        let mut out = Vec::new();
        for comp in path.split('/') {
            match comp {
                "" | "." => {}
                ".." => return Err(VfsError::InvalidArgument),
                c => out.push(c),
            }
        }
        Ok(out)
    }

    /// Resolves one component under `dir`, going through the dcache and
    /// demand-populating it from the backing file system on a miss.
    pub fn walk_component(
        &self,
        dir: &Inode,
        name: &str,
        core: CoreId,
    ) -> Result<Arc<Inode>, VfsError> {
        let key = DentryKey::new(dir.id, name);
        if let Some(dentry) = self.dcache.lookup(&key, core) {
            let ino = dentry.inode();
            // The walk holds the reference only while reading the target;
            // release it as `path_put` would.
            dentry.put(core);
            return self.fs.get(ino);
        }
        // Miss: consult the file system and populate the cache.
        let child = self.fs.lookup_child(dir, name)?;
        match self.dcache.insert(key, child.id, core) {
            Ok(dentry) => dentry.put(core),
            // Dentry allocation failed: degrade to uncached resolution.
            // The walk still succeeds — the next lookup just misses again
            // instead of the whole path walk failing with ENOMEM.
            Err(VfsError::OutOfMemory) => {}
            Err(e) => return Err(e),
        }
        Ok(child)
    }

    /// Resolves `path` to an inode, touching the mount table once and the
    /// dcache once per component.
    pub fn resolve(&self, path: &str, core: CoreId) -> Result<Arc<Inode>, VfsError> {
        let mount = self.mounts.resolve(path, core).ok_or(VfsError::NotFound)?;
        let result = self.resolve_from_root(path, core);
        mount.put(core);
        result
    }

    fn resolve_from_root(&self, path: &str, core: CoreId) -> Result<Arc<Inode>, VfsError> {
        let mut cur = self.fs.get(self.fs.root())?;
        for comp in Self::components(path)? {
            if cur.kind != InodeKind::Dir {
                return Err(VfsError::NotADirectory);
            }
            cur = self.walk_component(&cur, comp, core)?;
        }
        Ok(cur)
    }

    /// Resolves everything but the final component, returning the parent
    /// directory and the leaf name — the shape `open(O_CREAT)`, `unlink`,
    /// and `rename` need.
    pub fn resolve_parent(&self, path: &str, core: CoreId) -> Result<ParentAndLeaf, VfsError> {
        let mount = self.mounts.resolve(path, core).ok_or(VfsError::NotFound)?;
        let result = (|| {
            let comps = Self::components(path)?;
            let (leaf, dirs) = comps.split_last().ok_or(VfsError::InvalidArgument)?;
            let mut cur = self.fs.get(self.fs.root())?;
            for comp in dirs {
                if cur.kind != InodeKind::Dir {
                    return Err(VfsError::NotADirectory);
                }
                cur = self.walk_component(&cur, comp, core)?;
            }
            if cur.kind != InodeKind::Dir {
                return Err(VfsError::NotADirectory);
            }
            Ok(ParentAndLeaf {
                parent: cur,
                name: (*leaf).to_string(),
            })
        })();
        mount.put(core);
        result
    }

    /// Returns the inode id a path currently resolves to (diagnostic).
    pub fn resolve_id(&self, path: &str, core: CoreId) -> Result<InodeId, VfsError> {
        Ok(self.resolve(path, core)?.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VfsConfig;
    use crate::stats::VfsStats;

    struct Fixture {
        fs: Tmpfs,
        dcache: Dcache,
        mounts: MountTable,
        stats: Arc<VfsStats>,
    }

    fn fixture() -> Fixture {
        let cfg = VfsConfig::pk(4);
        let stats = Arc::new(VfsStats::new());
        let fs = Tmpfs::new();
        let root = fs.get(fs.root()).unwrap();
        let etc = fs.create_child(&root, "etc", InodeKind::Dir).unwrap();
        fs.create_child(&etc, "passwd", InodeKind::File)
            .unwrap()
            .append(b"root:x:0");
        Fixture {
            fs,
            dcache: Dcache::new(64, cfg, Arc::clone(&stats)),
            mounts: MountTable::new(cfg, Arc::clone(&stats)),
            stats,
        }
    }

    #[test]
    fn components_normalize() {
        assert_eq!(
            PathWalker::components("/a//b/./c").unwrap(),
            vec!["a", "b", "c"]
        );
        assert_eq!(PathWalker::components("/").unwrap(), Vec::<&str>::new());
        assert_eq!(
            PathWalker::components("rel/path").unwrap_err(),
            VfsError::InvalidArgument
        );
        assert_eq!(
            PathWalker::components("/a/../b").unwrap_err(),
            VfsError::InvalidArgument
        );
    }

    #[test]
    fn resolve_full_path() {
        let fx = fixture();
        let w = PathWalker::new(&fx.fs, &fx.dcache, &fx.mounts);
        let ino = w.resolve("/etc/passwd", CoreId(0)).unwrap();
        assert_eq!(ino.kind, InodeKind::File);
        assert_eq!(ino.read_at(0, 4), b"root");
    }

    #[test]
    fn resolve_miss_is_enoent() {
        let fx = fixture();
        let w = PathWalker::new(&fx.fs, &fx.dcache, &fx.mounts);
        assert_eq!(
            w.resolve("/etc/shadow", CoreId(0)).unwrap_err(),
            VfsError::NotFound
        );
        assert_eq!(
            w.resolve("/etc/passwd/x", CoreId(0)).unwrap_err(),
            VfsError::NotADirectory
        );
    }

    #[test]
    fn second_walk_hits_dcache() {
        let fx = fixture();
        let w = PathWalker::new(&fx.fs, &fx.dcache, &fx.mounts);
        w.resolve("/etc/passwd", CoreId(0)).unwrap();
        let misses_before = fx
            .stats
            .dcache_misses
            .load(std::sync::atomic::Ordering::Relaxed);
        w.resolve("/etc/passwd", CoreId(1)).unwrap();
        let misses_after = fx
            .stats
            .dcache_misses
            .load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(misses_before, misses_after, "warm walk must not miss");
        assert!(
            fx.stats
                .dcache_hits
                .load(std::sync::atomic::Ordering::Relaxed)
                >= 2
        );
    }

    #[test]
    fn resolve_parent_returns_leaf() {
        let fx = fixture();
        let w = PathWalker::new(&fx.fs, &fx.dcache, &fx.mounts);
        let pl = w.resolve_parent("/etc/newfile", CoreId(0)).unwrap();
        assert_eq!(pl.name, "newfile");
        assert_eq!(pl.parent.kind, InodeKind::Dir);
        assert_eq!(
            w.resolve_parent("/", CoreId(0)).unwrap_err(),
            VfsError::InvalidArgument
        );
    }

    #[test]
    fn dentry_references_balance_after_walks() {
        let fx = fixture();
        let w = PathWalker::new(&fx.fs, &fx.dcache, &fx.mounts);
        for core in 0..4 {
            w.resolve("/etc/passwd", CoreId(core)).unwrap();
        }
        // Only the cache's own reference remains on each dentry.
        let key = DentryKey::new(fx.fs.root(), "etc");
        let d = fx.dcache.lookup(&key, CoreId(0)).unwrap();
        assert_eq!(d.references(), 2); // cache + this lookup
        d.put(CoreId(0));
    }
}
