//! Path resolution (`namei`): walking components through the dcache and
//! the mount table.

use crate::dcache::Dcache;
use crate::dentry::DentryKey;
use crate::inode::{Inode, InodeId, InodeKind};
use crate::mount::MountTable;
use crate::tmpfs::Tmpfs;
use crate::VfsError;
use pk_percpu::CoreId;
use std::sync::Arc;

/// Walks path names the way the kernel's `link_path_walk` does: one
/// vfsmount resolution per walk, then a dcache lookup per component —
/// taking and dropping a dentry reference each step.
///
/// This is the hot path of Exim and Apache: "file name resolution
/// contends on directory entry reference counts" and "walking file name
/// paths contends on mount point reference counts" (Figure 1).
#[derive(Debug)]
pub struct PathWalker<'a> {
    fs: &'a Tmpfs,
    dcache: &'a Dcache,
    mounts: &'a MountTable,
}

/// The result of resolving the parent of a path: the parent directory
/// inode plus the final component name.
#[derive(Debug)]
pub struct ParentAndLeaf {
    /// The parent directory.
    pub parent: Arc<Inode>,
    /// The final path component.
    pub name: String,
}

impl<'a> PathWalker<'a> {
    /// Creates a walker over the given structures.
    pub fn new(fs: &'a Tmpfs, dcache: &'a Dcache, mounts: &'a MountTable) -> Self {
        Self { fs, dcache, mounts }
    }

    /// Splits a path into normalized components.
    ///
    /// Only absolute paths are supported (the userspace kernel has no
    /// per-process CWD); `.` components are dropped and `..` is rejected.
    pub fn components(path: &str) -> Result<Vec<&str>, VfsError> {
        if !path.starts_with('/') {
            return Err(VfsError::InvalidArgument);
        }
        let mut out = Vec::new();
        for comp in path.split('/') {
            match comp {
                "" | "." => {}
                ".." => return Err(VfsError::InvalidArgument),
                c => out.push(c),
            }
        }
        Ok(out)
    }

    /// Resolves one component under `dir`, going through the dcache and
    /// demand-populating it from the backing file system on a miss.
    pub fn walk_component(
        &self,
        dir: &Inode,
        name: &str,
        core: CoreId,
    ) -> Result<Arc<Inode>, VfsError> {
        let key = DentryKey::new(dir.id, name);
        if let Some(dentry) = self.dcache.lookup(&key, core) {
            let ino = dentry.inode();
            // The walk holds the reference only while reading the target;
            // release it as `path_put` would.
            dentry.put(core);
            return self.fs.get(ino);
        }
        // Miss: consult the file system and populate the cache.
        let child = self.fs.lookup_child(dir, name)?;
        match self.dcache.insert(key, child.id, core) {
            Ok(dentry) => dentry.put(core),
            // Dentry allocation failed: degrade to uncached resolution.
            // The walk still succeeds — the next lookup just misses again
            // instead of the whole path walk failing with ENOMEM.
            Err(VfsError::OutOfMemory) => {}
            Err(e) => return Err(e),
        }
        Ok(child)
    }

    /// Resolves `path` to an inode.
    ///
    /// With [`crate::config::VfsConfig::rcu_path_walk`] enabled, first
    /// attempts the whole-path RCU walk ([`PathWalker::resolve_rcu`]):
    /// every component resolved under seqcount validation with **no
    /// refcount op and no lock anywhere on the path** — the
    /// generation-2 fix for the per-component get/put that still
    /// saturates dentry and vfsmount refcounts past 48 cores. Any torn
    /// seqcount, cold cache entry, or cold mount snapshot drops the
    /// whole walk to the reference walk below.
    ///
    /// Otherwise (or on fallback): the reference walk — the mount table
    /// once and the dcache once per component, taking and dropping a
    /// reference each step.
    pub fn resolve(&self, path: &str, core: CoreId) -> Result<Arc<Inode>, VfsError> {
        if self.dcache.rcu_walk_enabled() {
            match self.resolve_rcu(path, core) {
                Some(result) => {
                    crate::stats::VfsStats::bump(&self.dcache.stats().rcu_walks);
                    return result;
                }
                None => {
                    crate::stats::VfsStats::bump(&self.dcache.stats().rcu_walk_fallbacks);
                    // Tag the fallback with the request that paid for it:
                    // the span tree then shows *whose* tail absorbed the
                    // reference walk, not just that one happened.
                    pk_trace::trace_instant!("vfs.rcu_walk_fallback", pk_trace::current_request());
                }
            }
        }
        self.resolve_ref(path, core)
    }

    /// The RCU-walk leg of [`PathWalker::resolve`]: resolves the whole
    /// path lock-free, or returns `None` when the walk cannot complete
    /// without references (the documented fallback).
    ///
    /// A `Some(Err(..))` is *definitive* — it reflects stable state
    /// (bad path shape, a non-directory component, no covering mount) —
    /// while `None` covers every transient reason: a component whose
    /// seqcount tore mid-read (rename/unlink in flight), a component not
    /// in the dcache, an inode racing teardown, or a cold per-core mount
    /// snapshot.
    pub fn resolve_rcu(&self, path: &str, core: CoreId) -> Option<Result<Arc<Inode>, VfsError>> {
        if !self.mounts.peek(path, core)? {
            return Some(Err(VfsError::NotFound));
        }
        let comps = match Self::components(path) {
            Ok(c) => c,
            Err(e) => return Some(Err(e)),
        };
        let mut cur = match self.fs.get(self.fs.root()) {
            Ok(i) => i,
            Err(e) => return Some(Err(e)),
        };
        for comp in comps {
            if cur.kind != InodeKind::Dir {
                return Some(Err(VfsError::NotADirectory));
            }
            let ino = self.dcache.peek(&DentryKey::new(cur.id, comp))??;
            // A peeked inode may be mid-teardown; only a live read is
            // trustworthy, anything else drops to the reference walk.
            cur = self.fs.get(ino).ok()?;
        }
        Some(Ok(cur))
    }

    /// The reference walk: touches the mount table once and the dcache
    /// once per component, taking and dropping a reference each step.
    pub fn resolve_ref(&self, path: &str, core: CoreId) -> Result<Arc<Inode>, VfsError> {
        let mount = self.mounts.resolve(path, core).ok_or(VfsError::NotFound)?;
        let result = self.resolve_from_root(path, core);
        mount.put(core);
        result
    }

    fn resolve_from_root(&self, path: &str, core: CoreId) -> Result<Arc<Inode>, VfsError> {
        let mut cur = self.fs.get(self.fs.root())?;
        for comp in Self::components(path)? {
            if cur.kind != InodeKind::Dir {
                return Err(VfsError::NotADirectory);
            }
            cur = self.walk_component(&cur, comp, core)?;
        }
        Ok(cur)
    }

    /// Resolves everything but the final component, returning the parent
    /// directory and the leaf name — the shape `open(O_CREAT)`, `unlink`,
    /// and `rename` need.
    pub fn resolve_parent(&self, path: &str, core: CoreId) -> Result<ParentAndLeaf, VfsError> {
        let mount = self.mounts.resolve(path, core).ok_or(VfsError::NotFound)?;
        let result = (|| {
            let comps = Self::components(path)?;
            let (leaf, dirs) = comps.split_last().ok_or(VfsError::InvalidArgument)?;
            let mut cur = self.fs.get(self.fs.root())?;
            for comp in dirs {
                if cur.kind != InodeKind::Dir {
                    return Err(VfsError::NotADirectory);
                }
                cur = self.walk_component(&cur, comp, core)?;
            }
            if cur.kind != InodeKind::Dir {
                return Err(VfsError::NotADirectory);
            }
            Ok(ParentAndLeaf {
                parent: cur,
                name: (*leaf).to_string(),
            })
        })();
        mount.put(core);
        result
    }

    /// Returns the inode id a path currently resolves to (diagnostic).
    pub fn resolve_id(&self, path: &str, core: CoreId) -> Result<InodeId, VfsError> {
        Ok(self.resolve(path, core)?.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VfsConfig;
    use crate::stats::VfsStats;

    struct Fixture {
        fs: Tmpfs,
        dcache: Dcache,
        mounts: MountTable,
        stats: Arc<VfsStats>,
    }

    fn fixture() -> Fixture {
        let cfg = VfsConfig::pk(4);
        let stats = Arc::new(VfsStats::new());
        let fs = Tmpfs::new();
        let root = fs.get(fs.root()).unwrap();
        let etc = fs.create_child(&root, "etc", InodeKind::Dir).unwrap();
        fs.create_child(&etc, "passwd", InodeKind::File)
            .unwrap()
            .append(b"root:x:0");
        Fixture {
            fs,
            dcache: Dcache::new(64, cfg, Arc::clone(&stats)),
            mounts: MountTable::new(cfg, Arc::clone(&stats)),
            stats,
        }
    }

    #[test]
    fn components_normalize() {
        assert_eq!(
            PathWalker::components("/a//b/./c").unwrap(),
            vec!["a", "b", "c"]
        );
        assert_eq!(PathWalker::components("/").unwrap(), Vec::<&str>::new());
        assert_eq!(
            PathWalker::components("rel/path").unwrap_err(),
            VfsError::InvalidArgument
        );
        assert_eq!(
            PathWalker::components("/a/../b").unwrap_err(),
            VfsError::InvalidArgument
        );
    }

    #[test]
    fn resolve_full_path() {
        let fx = fixture();
        let w = PathWalker::new(&fx.fs, &fx.dcache, &fx.mounts);
        let ino = w.resolve("/etc/passwd", CoreId(0)).unwrap();
        assert_eq!(ino.kind, InodeKind::File);
        assert_eq!(ino.read_at(0, 4), b"root");
    }

    #[test]
    fn resolve_miss_is_enoent() {
        let fx = fixture();
        let w = PathWalker::new(&fx.fs, &fx.dcache, &fx.mounts);
        assert_eq!(
            w.resolve("/etc/shadow", CoreId(0)).unwrap_err(),
            VfsError::NotFound
        );
        assert_eq!(
            w.resolve("/etc/passwd/x", CoreId(0)).unwrap_err(),
            VfsError::NotADirectory
        );
    }

    #[test]
    fn second_walk_hits_dcache() {
        let fx = fixture();
        let w = PathWalker::new(&fx.fs, &fx.dcache, &fx.mounts);
        w.resolve("/etc/passwd", CoreId(0)).unwrap();
        let misses_before = fx
            .stats
            .dcache_misses
            .load(std::sync::atomic::Ordering::Relaxed);
        w.resolve("/etc/passwd", CoreId(1)).unwrap();
        let misses_after = fx
            .stats
            .dcache_misses
            .load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(misses_before, misses_after, "warm walk must not miss");
        assert!(
            fx.stats
                .dcache_hits
                .load(std::sync::atomic::Ordering::Relaxed)
                >= 2
        );
    }

    #[test]
    fn resolve_parent_returns_leaf() {
        let fx = fixture();
        let w = PathWalker::new(&fx.fs, &fx.dcache, &fx.mounts);
        let pl = w.resolve_parent("/etc/newfile", CoreId(0)).unwrap();
        assert_eq!(pl.name, "newfile");
        assert_eq!(pl.parent.kind, InodeKind::Dir);
        assert_eq!(
            w.resolve_parent("/", CoreId(0)).unwrap_err(),
            VfsError::InvalidArgument
        );
    }

    #[test]
    fn warm_rcu_walk_takes_no_references_anywhere() {
        // The tentpole property: once the path is cached, a resolve
        // performs zero refcount ops — on dentries *and* the vfsmount.
        let fx = fixture();
        let w = PathWalker::new(&fx.fs, &fx.dcache, &fx.mounts);
        // Warm every core: the dcache entries plus each core's mount
        // snapshot (a cold snapshot legitimately falls back).
        for core in 0..4 {
            w.resolve("/etc/passwd", CoreId(core)).unwrap();
        }
        let d = fx
            .dcache
            .lookup(&DentryKey::new(fx.fs.root(), "etc"), CoreId(0))
            .unwrap();
        d.put(CoreId(0));
        let ops_before = d.refcount_ops();
        let mount = fx.mounts.resolve("/", CoreId(0)).unwrap();
        mount.put(CoreId(0));
        let mount_ops_before = mount.refcount_ops();
        let rcu_before = fx
            .stats
            .rcu_walks
            .load(std::sync::atomic::Ordering::Relaxed);
        for core in 0..4 {
            w.resolve("/etc/passwd", CoreId(core)).unwrap();
        }
        assert_eq!(d.refcount_ops(), ops_before, "dentry refcount untouched");
        assert_eq!(
            mount.refcount_ops(),
            mount_ops_before,
            "vfsmount refcount untouched"
        );
        assert_eq!(
            fx.stats
                .rcu_walks
                .load(std::sync::atomic::Ordering::Relaxed),
            rcu_before + 4,
            "all warm walks complete on the RCU leg"
        );
    }

    #[test]
    fn rcu_walk_falls_back_on_cold_cache_and_churn() {
        let fx = fixture();
        let w = PathWalker::new(&fx.fs, &fx.dcache, &fx.mounts);
        let fallbacks = |fx: &Fixture| {
            fx.stats
                .rcu_walk_fallbacks
                .load(std::sync::atomic::Ordering::Relaxed)
        };
        // Cold: both the mount snapshot and the dcache are empty.
        w.resolve("/etc/passwd", CoreId(0)).unwrap();
        assert_eq!(fallbacks(&fx), 1, "cold walk drops to the ref walk");
        // Warm: no new fallback.
        w.resolve("/etc/passwd", CoreId(0)).unwrap();
        assert_eq!(fallbacks(&fx), 1);
        // Unlink churn: the victim leaves the cache, so the next walk of
        // that path falls back (and correctly reports ENOENT).
        let root = fx.fs.get(fx.fs.root()).unwrap();
        let etc = fx.fs.lookup_child(&root, "etc").unwrap();
        fx.dcache
            .remove(&DentryKey::new(etc.id, "passwd"), CoreId(0));
        fx.fs.unlink_child(&etc, "passwd").unwrap();
        assert_eq!(
            w.resolve("/etc/passwd", CoreId(0)).unwrap_err(),
            VfsError::NotFound
        );
        assert_eq!(fallbacks(&fx), 2);
    }

    #[test]
    fn rcu_leg_reports_fallback_while_modification_in_flight() {
        // The negative shape of the seqcount protocol: with a rename
        // mid-flight (generation parked at 0) the RCU leg must refuse —
        // `None`, never a wrong answer.
        let fx = fixture();
        let w = PathWalker::new(&fx.fs, &fx.dcache, &fx.mounts);
        w.resolve("/etc/passwd", CoreId(0)).unwrap(); // warm
        let d = fx
            .dcache
            .lookup(&DentryKey::new(fx.fs.root(), "etc"), CoreId(0))
            .unwrap();
        d.put(CoreId(0));
        let guard = d.begin_modify();
        assert!(
            w.resolve_rcu("/etc/passwd", CoreId(0)).is_none(),
            "torn seqcount forces the documented fallback"
        );
        drop(guard);
        assert!(matches!(
            w.resolve_rcu("/etc/passwd", CoreId(0)),
            Some(Ok(_))
        ));
    }

    #[test]
    fn dentry_references_balance_after_walks() {
        let fx = fixture();
        let w = PathWalker::new(&fx.fs, &fx.dcache, &fx.mounts);
        for core in 0..4 {
            w.resolve("/etc/passwd", CoreId(core)).unwrap();
        }
        // Only the cache's own reference remains on each dentry.
        let key = DentryKey::new(fx.fs.root(), "etc");
        let d = fx.dcache.lookup(&key, CoreId(0)).unwrap();
        assert_eq!(d.references(), 2); // cache + this lookup
        d.put(CoreId(0));
    }
}
