//! The in-memory backing file system.

use crate::inode::{Inode, InodeId, InodeKind};
use crate::VfsError;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An in-memory file system, standing in for Linux's tmpfs.
///
/// The paper runs every application "on an in-memory tmpfs file system to
/// avoid disk bottlenecks" (§3, §5.1); all MOSBENCH file traffic lands
/// here. The inode table is a sharded read-mostly map; directories hold
/// their own children under per-directory locks (see [`Inode`]).
#[derive(Debug)]
pub struct Tmpfs {
    shards: Vec<RwLock<HashMap<u64, Arc<Inode>>>>,
    next: AtomicU64,
    root: InodeId,
}

const SHARDS: usize = 16;

impl Tmpfs {
    /// Creates a file system with an empty root directory.
    pub fn new() -> Self {
        let fs = Self {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            next: AtomicU64::new(1),
            root: InodeId(1),
        };
        let root = fs.alloc(InodeKind::Dir);
        debug_assert_eq!(root.id, fs.root);
        fs
    }

    fn shard(&self, id: InodeId) -> &RwLock<HashMap<u64, Arc<Inode>>> {
        &self.shards[(id.0 as usize) % SHARDS]
    }

    /// Returns the root directory inode id.
    pub fn root(&self) -> InodeId {
        self.root
    }

    /// Allocates a fresh inode of `kind`.
    pub fn alloc(&self, kind: InodeKind) -> Arc<Inode> {
        let id = InodeId(self.next.fetch_add(1, Ordering::Relaxed));
        let inode = Arc::new(Inode::new(id, kind));
        self.shard(id).write().insert(id.0, Arc::clone(&inode));
        inode
    }

    /// Fetches an inode by id.
    pub fn get(&self, id: InodeId) -> Result<Arc<Inode>, VfsError> {
        self.shard(id)
            .read()
            .get(&id.0)
            .cloned()
            .ok_or(VfsError::Stale)
    }

    /// Creates a child of `parent` named `name`.
    pub fn create_child(
        &self,
        parent: &Inode,
        name: &str,
        kind: InodeKind,
    ) -> Result<Arc<Inode>, VfsError> {
        if parent.kind != InodeKind::Dir {
            return Err(VfsError::NotADirectory);
        }
        if name.is_empty() || name.contains('/') {
            return Err(VfsError::InvalidArgument);
        }
        let inode = self.alloc(kind);
        if parent.insert_child(name, inode.id) {
            Ok(inode)
        } else {
            // Lost the race (or the name pre-existed): roll back.
            self.drop_inode(inode.id);
            Err(VfsError::Exists)
        }
    }

    /// Looks up `name` within `parent`.
    pub fn lookup_child(&self, parent: &Inode, name: &str) -> Result<Arc<Inode>, VfsError> {
        if parent.kind != InodeKind::Dir {
            return Err(VfsError::NotADirectory);
        }
        let id = parent.child(name).ok_or(VfsError::NotFound)?;
        self.get(id)
    }

    /// Unlinks `name` from `parent`. Directories must be empty. When the
    /// link count reaches zero the inode is freed.
    pub fn unlink_child(&self, parent: &Inode, name: &str) -> Result<InodeId, VfsError> {
        if parent.kind != InodeKind::Dir {
            return Err(VfsError::NotADirectory);
        }
        let id = parent.child(name).ok_or(VfsError::NotFound)?;
        let inode = self.get(id)?;
        if inode.kind == InodeKind::Dir && inode.child_count() > 0 {
            return Err(VfsError::NotEmpty);
        }
        parent.remove_child(name).ok_or(VfsError::NotFound)?;
        if inode.dec_nlink() == 0 {
            self.drop_inode(id);
        }
        Ok(id)
    }

    /// Removes an inode from the table.
    fn drop_inode(&self, id: InodeId) {
        self.shard(id).write().remove(&id.0);
    }

    /// Returns the number of live inodes.
    pub fn inode_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }
}

impl Default for Tmpfs {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_exists() {
        let fs = Tmpfs::new();
        let root = fs.get(fs.root()).unwrap();
        assert_eq!(root.kind, InodeKind::Dir);
        assert_eq!(fs.inode_count(), 1);
    }

    #[test]
    fn create_lookup_unlink() {
        let fs = Tmpfs::new();
        let root = fs.get(fs.root()).unwrap();
        let f = fs.create_child(&root, "a.txt", InodeKind::File).unwrap();
        f.append(b"hi");
        let found = fs.lookup_child(&root, "a.txt").unwrap();
        assert_eq!(found.id, f.id);
        fs.unlink_child(&root, "a.txt").unwrap();
        assert_eq!(
            fs.lookup_child(&root, "a.txt").unwrap_err(),
            VfsError::NotFound
        );
        assert_eq!(fs.inode_count(), 1, "file inode freed");
    }

    #[test]
    fn duplicate_create_fails_and_rolls_back() {
        let fs = Tmpfs::new();
        let root = fs.get(fs.root()).unwrap();
        fs.create_child(&root, "x", InodeKind::File).unwrap();
        let before = fs.inode_count();
        assert_eq!(
            fs.create_child(&root, "x", InodeKind::File).unwrap_err(),
            VfsError::Exists
        );
        assert_eq!(fs.inode_count(), before, "no leaked inode");
    }

    #[test]
    fn non_empty_directory_cannot_be_unlinked() {
        let fs = Tmpfs::new();
        let root = fs.get(fs.root()).unwrap();
        let dir = fs.create_child(&root, "d", InodeKind::Dir).unwrap();
        fs.create_child(&dir, "inner", InodeKind::File).unwrap();
        assert_eq!(fs.unlink_child(&root, "d").unwrap_err(), VfsError::NotEmpty);
        fs.unlink_child(&dir, "inner").unwrap();
        fs.unlink_child(&root, "d").unwrap();
    }

    #[test]
    fn invalid_names_rejected() {
        let fs = Tmpfs::new();
        let root = fs.get(fs.root()).unwrap();
        assert_eq!(
            fs.create_child(&root, "", InodeKind::File).unwrap_err(),
            VfsError::InvalidArgument
        );
        assert_eq!(
            fs.create_child(&root, "a/b", InodeKind::File).unwrap_err(),
            VfsError::InvalidArgument
        );
    }

    #[test]
    fn files_are_not_directories() {
        let fs = Tmpfs::new();
        let root = fs.get(fs.root()).unwrap();
        let f = fs.create_child(&root, "f", InodeKind::File).unwrap();
        assert_eq!(
            fs.create_child(&f, "c", InodeKind::File).unwrap_err(),
            VfsError::NotADirectory
        );
        assert_eq!(
            fs.lookup_child(&f, "c").unwrap_err(),
            VfsError::NotADirectory
        );
    }

    #[test]
    fn concurrent_creates_in_one_directory() {
        let fs = Arc::new(Tmpfs::new());
        let root = fs.get(fs.root()).unwrap();
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let fs = Arc::clone(&fs);
                let root = Arc::clone(&root);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        fs.create_child(&root, &format!("t{t}-{i}"), InodeKind::File)
                            .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(root.child_count(), 400);
        assert_eq!(fs.inode_count(), 401);
    }
}
