//! VFS contention diagnostics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters of shared-cache-line events inside the VFS.
///
/// The simulator and the figure harness use these to attribute time the
/// way the paper does: every counter here is an event that, on real
/// hardware, pulls a contended line or serializes on a lock.
#[derive(Debug, Default)]
pub struct VfsStats {
    /// Per-dentry spin-lock acquisitions during lookup (stock `dlookup`).
    pub dentry_lock_acquisitions: AtomicU64,
    /// Lock-free lookups that succeeded without any shared write.
    pub lockfree_lookups: AtomicU64,
    /// Lock-free lookups that had to fall back to the locking protocol.
    pub lockfree_fallbacks: AtomicU64,
    /// Global mount-table lock acquisitions.
    pub mount_central_lookups: AtomicU64,
    /// Mount lookups satisfied from a per-core cache.
    pub mount_percore_hits: AtomicU64,
    /// Global open-file-list lock acquisitions.
    pub open_list_global_ops: AtomicU64,
    /// Per-core open-file-list operations.
    pub open_list_percore_ops: AtomicU64,
    /// Expensive cross-core removals (file closed on a different core).
    pub open_list_cross_core_removals: AtomicU64,
    /// `lseek` calls that acquired the per-inode mutex (stock).
    pub lseek_mutex_acquisitions: AtomicU64,
    /// `lseek` calls served by atomic reads (PK).
    pub lseek_atomic_reads: AtomicU64,
    /// Global inode/dcache list-lock acquisitions (stock bookkeeping).
    pub list_lock_acquisitions: AtomicU64,
    /// List-lock acquisitions skipped because they were unnecessary (PK).
    pub list_lock_skips: AtomicU64,
    /// Dcache hits.
    pub dcache_hits: AtomicU64,
    /// Dcache misses (demand-populated from the backing file system).
    pub dcache_misses: AtomicU64,
    /// Dentries evicted by the shrinker (each one paid a reconcile).
    pub dcache_evictions: AtomicU64,
    /// Dentry allocations that failed with ENOMEM (injected faults).
    pub dentry_alloc_failures: AtomicU64,
    /// Lookup misses forced by injected dcache memory pressure.
    pub dcache_pressure_misses: AtomicU64,
    /// Runtime bucket splits (`Dcache::split_buckets`): each doubles the
    /// dcache stripe count under `pk-adapt` control.
    pub dcache_splits: AtomicU64,
    /// Whole-path RCU walks that completed without any shared write —
    /// no refcount op, no lock, per component (generation-2 fix).
    pub rcu_walks: AtomicU64,
    /// RCU walks that dropped to the reference walk (torn seqcount,
    /// cold dcache entry, or cold mount snapshot).
    pub rcu_walk_fallbacks: AtomicU64,
}

impl VfsStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bumps a counter by one (helper for terse call sites).
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Total shared (cross-core) events — the quantity PK minimizes.
    pub fn shared_events(&self) -> u64 {
        self.dentry_lock_acquisitions.load(Ordering::Relaxed)
            + self.lockfree_fallbacks.load(Ordering::Relaxed)
            + self.mount_central_lookups.load(Ordering::Relaxed)
            + self.open_list_global_ops.load(Ordering::Relaxed)
            + self.open_list_cross_core_removals.load(Ordering::Relaxed)
            + self.lseek_mutex_acquisitions.load(Ordering::Relaxed)
            + self.list_lock_acquisitions.load(Ordering::Relaxed)
    }

    /// Total core-local events.
    pub fn local_events(&self) -> u64 {
        self.lockfree_lookups.load(Ordering::Relaxed)
            + self.rcu_walks.load(Ordering::Relaxed)
            + self.mount_percore_hits.load(Ordering::Relaxed)
            + self.open_list_percore_ops.load(Ordering::Relaxed)
            + self.lseek_atomic_reads.load(Ordering::Relaxed)
            + self.list_lock_skips.load(Ordering::Relaxed)
    }

    /// Resets every counter.
    pub fn reset(&self) {
        for c in [
            &self.dentry_lock_acquisitions,
            &self.lockfree_lookups,
            &self.lockfree_fallbacks,
            &self.mount_central_lookups,
            &self.mount_percore_hits,
            &self.open_list_global_ops,
            &self.open_list_percore_ops,
            &self.open_list_cross_core_removals,
            &self.lseek_mutex_acquisitions,
            &self.lseek_atomic_reads,
            &self.list_lock_acquisitions,
            &self.list_lock_skips,
            &self.dcache_hits,
            &self.dcache_misses,
            &self.dcache_evictions,
            &self.dentry_alloc_failures,
            &self.dcache_pressure_misses,
            &self.dcache_splits,
            &self.rcu_walks,
            &self.rcu_walk_fallbacks,
        ] {
            c.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_and_local_partition() {
        let s = VfsStats::new();
        VfsStats::bump(&s.dentry_lock_acquisitions);
        VfsStats::bump(&s.lockfree_lookups);
        VfsStats::bump(&s.lockfree_lookups);
        assert_eq!(s.shared_events(), 1);
        assert_eq!(s.local_events(), 2);
        s.reset();
        assert_eq!(s.shared_events(), 0);
        assert_eq!(s.local_events(), 0);
    }
}
