//! The directory entry cache (`dcache`).

use crate::config::VfsConfig;
use crate::dentry::{Dentry, DentryKey};
use crate::error::VfsError;
use crate::inode::InodeId;
use crate::stats::VfsStats;
use pk_fault::{FaultPlane, FaultPoint};
use pk_percpu::CoreId;
use pk_sync::rcu::{self, RcuCell};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A hash table of dentries with RCU buckets.
///
/// Readers traverse bucket snapshots without writing shared memory (the
/// dcache "has been optimized using RCU for scalability" \[40\]); what the
/// paper found still serialized lookups was the **per-dentry spin lock**
/// taken to compare fields. [`Dcache::lookup`] therefore implements both
/// protocols, selected by [`VfsConfig::lockfree_dlookup`]:
///
/// * stock — lock each candidate dentry to compare (`d_lock`);
/// * PK — the §4.4 generation-counter protocol, falling back to the lock
///   on a concurrent modification or a zero refcount.
///
/// A successful lookup returns the dentry with one new reference already
/// taken on the caller's behalf.
#[derive(Debug)]
pub struct Dcache {
    buckets: Vec<RcuCell<Vec<Arc<Dentry>>>>,
    mask: usize,
    config: VfsConfig,
    stats: Arc<VfsStats>,
    /// `vfs.dentry_alloc`: a dentry allocation fails with ENOMEM.
    fault_alloc: FaultPoint,
    /// `vfs.dcache_pressure`: a lookup misses as if the entry had been
    /// evicted under memory pressure.
    fault_pressure: FaultPoint,
}

impl Dcache {
    /// Creates a cache with `buckets` hash buckets (rounded up to a power
    /// of two).
    pub fn new(buckets: usize, config: VfsConfig, stats: Arc<VfsStats>) -> Self {
        Self::with_faults(buckets, config, stats, &FaultPlane::disabled())
    }

    /// Like [`Dcache::new`], with allocation failure and cache pressure
    /// injectable through `faults` (`vfs.dentry_alloc`,
    /// `vfs.dcache_pressure`).
    pub fn with_faults(
        buckets: usize,
        config: VfsConfig,
        stats: Arc<VfsStats>,
        faults: &FaultPlane,
    ) -> Self {
        let n = buckets.next_power_of_two().max(1);
        Self {
            buckets: (0..n).map(|_| RcuCell::new(Vec::new())).collect(),
            mask: n - 1,
            config,
            stats,
            fault_alloc: faults.point("vfs.dentry_alloc"),
            fault_pressure: faults.point("vfs.dcache_pressure"),
        }
    }

    fn bucket(&self, key: &DentryKey) -> &RcuCell<Vec<Arc<Dentry>>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.buckets[(h.finish() as usize) & self.mask]
    }

    /// Publishes a rewritten bucket snapshot, retiring the replaced one
    /// per the configured reclamation discipline: `call_rcu` deferral
    /// (the writer continues immediately) or a blocking `synchronize()`
    /// grace period.
    fn replace_bucket(
        cell: &RcuCell<Vec<Arc<Dentry>>>,
        deferred: bool,
        f: impl FnOnce(&Vec<Arc<Dentry>>) -> Vec<Arc<Dentry>>,
    ) {
        if deferred {
            cell.update_with_deferred(f);
        } else {
            cell.update_with(f);
        }
    }

    /// Looks up `(parent, name)`, taking a reference on the hit.
    ///
    /// `core` is the acting core (for sloppy refcounts and stats).
    pub fn lookup(&self, key: &DentryKey, core: CoreId) -> Option<Arc<Dentry>> {
        if self.fault_pressure.should_inject() {
            // The entry was "evicted" under memory pressure: the caller
            // falls back to the filesystem, exactly as on a cold miss.
            VfsStats::bump(&self.stats.dcache_pressure_misses);
            VfsStats::bump(&self.stats.dcache_misses);
            return None;
        }
        let guard = rcu::read_lock();
        let bucket = self.bucket(key).read(&guard);
        for d in bucket.iter() {
            if self.config.lockfree_dlookup {
                match d.compare_lockfree(key, core) {
                    Some(true) => {
                        VfsStats::bump(&self.stats.lockfree_lookups);
                        VfsStats::bump(&self.stats.dcache_hits);
                        return Some(Arc::clone(d));
                    }
                    Some(false) => continue,
                    None => {
                        // Fall back to the locking protocol (§4.4).
                        VfsStats::bump(&self.stats.lockfree_fallbacks);
                        if d.compare_locked(key, core) {
                            VfsStats::bump(&self.stats.dentry_lock_acquisitions);
                            VfsStats::bump(&self.stats.dcache_hits);
                            return Some(Arc::clone(d));
                        }
                        continue;
                    }
                }
            } else {
                VfsStats::bump(&self.stats.dentry_lock_acquisitions);
                if d.compare_locked(key, core) {
                    VfsStats::bump(&self.stats.dcache_hits);
                    return Some(Arc::clone(d));
                }
            }
        }
        VfsStats::bump(&self.stats.dcache_misses);
        None
    }

    /// Inserts a freshly created dentry for `key → inode` and returns it
    /// with one caller reference (plus the cache's own).
    ///
    /// Fails with [`VfsError::OutOfMemory`] when the dentry allocation
    /// does (only under an injected `vfs.dentry_alloc` fault); nothing is
    /// cached in that case and the caller degrades to uncached operation.
    pub fn insert(
        &self,
        key: DentryKey,
        inode: InodeId,
        core: CoreId,
    ) -> Result<Arc<Dentry>, VfsError> {
        if self.fault_alloc.should_inject() {
            VfsStats::bump(&self.stats.dentry_alloc_failures);
            return Err(VfsError::OutOfMemory);
        }
        let dentry = Dentry::new(
            key.clone(),
            inode,
            self.config.sloppy_dentry_refs,
            self.config.cores,
        );
        // The cache holds the creation reference; take one for the caller.
        // A freshly created dentry can only be dead if something tore it
        // down concurrently — surface that as ESTALE on the syscall path
        // rather than panicking in the kernel.
        dentry.get(core).map_err(|_| VfsError::Stale)?;
        let inserted = Arc::clone(&dentry);
        Self::replace_bucket(self.bucket(&key), self.config.deferred_reclamation, |v| {
            let mut v = v.clone();
            v.push(Arc::clone(&inserted));
            v
        });
        Ok(dentry)
    }

    /// Removes the dentry for `key` from the cache (unlink/rename):
    /// unhashes it under its modification guard and drops the cache's
    /// reference.
    ///
    /// Returns `true` if an entry was removed.
    pub fn remove(&self, key: &DentryKey, core: CoreId) -> bool {
        let mut removed: Option<Arc<Dentry>> = None;
        Self::replace_bucket(self.bucket(key), self.config.deferred_reclamation, |v| {
            let mut kept = Vec::with_capacity(v.len());
            for d in v.iter() {
                if removed.is_none() && !d.is_unhashed() && d.key == *key {
                    removed = Some(Arc::clone(d));
                } else {
                    kept.push(Arc::clone(d));
                }
            }
            kept
        });
        match removed {
            Some(d) => {
                d.begin_modify().unhash();
                // Drop the cache's reference; the object is freed when the
                // last user reference goes away.
                d.put(core);
                true
            }
            None => false,
        }
    }

    /// Shrinks the cache: evicts up to `target` dentries that only the
    /// cache itself still references, scanning buckets in order.
    ///
    /// Eviction is the expensive sloppy-counter moment: each candidate's
    /// refcount must be *reconciled* across all cores before the object
    /// can be freed (§4.3: "this operation is expensive, so sloppy
    /// counters should only be used for objects that are relatively
    /// infrequently de-allocated"). Returns the number evicted.
    pub fn shrink(&self, target: usize, core: CoreId) -> usize {
        let mut evicted = 0;
        for bucket in &self.buckets {
            if evicted >= target {
                break;
            }
            let mut victims = Vec::new();
            Self::replace_bucket(bucket, self.config.deferred_reclamation, |v| {
                let mut kept = Vec::with_capacity(v.len());
                for d in v.iter() {
                    // Only the cache's reference remains → evictable.
                    if evicted + victims.len() < target && d.references() == 1 {
                        victims.push(Arc::clone(d));
                    } else {
                        kept.push(Arc::clone(d));
                    }
                }
                kept
            });
            for d in victims {
                d.begin_modify().unhash();
                d.put(core);
                match d.try_dealloc() {
                    Ok(()) => {
                        evicted += 1;
                        VfsStats::bump(&self.stats.dcache_evictions);
                    }
                    // A lookup raced us and took a reference between the
                    // scan and the dealloc; the object stays alive (but
                    // unhashed) until that user drops it.
                    Err(_) => {
                        evicted += 1;
                        VfsStats::bump(&self.stats.dcache_evictions);
                    }
                }
            }
        }
        evicted
    }

    /// Returns the total number of hashed dentries (diagnostic; walks all
    /// buckets).
    pub fn len(&self) -> usize {
        let guard = rcu::read_lock();
        self.buckets.iter().map(|b| b.read(&guard).len()).sum()
    }

    /// Returns whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(lockfree: bool) -> Dcache {
        let mut cfg = VfsConfig::pk(4);
        cfg.lockfree_dlookup = lockfree;
        Dcache::new(64, cfg, Arc::new(VfsStats::new()))
    }

    #[test]
    fn insert_then_lookup_hits() {
        for lockfree in [false, true] {
            let c = cache(lockfree);
            let key = DentryKey::new(InodeId(1), "etc");
            let d = c.insert(key.clone(), InodeId(5), CoreId(0)).unwrap();
            assert_eq!(d.references(), 2);
            let hit = c.lookup(&key, CoreId(1)).expect("hit");
            assert_eq!(hit.inode(), InodeId(5));
            assert_eq!(hit.references(), 3);
        }
    }

    #[test]
    fn lookup_miss_returns_none() {
        let c = cache(true);
        assert!(c
            .lookup(&DentryKey::new(InodeId(1), "nope"), CoreId(0))
            .is_none());
    }

    #[test]
    fn same_name_different_parent_is_distinct() {
        let c = cache(true);
        c.insert(DentryKey::new(InodeId(1), "x"), InodeId(10), CoreId(0))
            .unwrap();
        c.insert(DentryKey::new(InodeId(2), "x"), InodeId(20), CoreId(0))
            .unwrap();
        assert_eq!(
            c.lookup(&DentryKey::new(InodeId(1), "x"), CoreId(0))
                .unwrap()
                .inode(),
            InodeId(10)
        );
        assert_eq!(
            c.lookup(&DentryKey::new(InodeId(2), "x"), CoreId(0))
                .unwrap()
                .inode(),
            InodeId(20)
        );
    }

    #[test]
    fn remove_makes_lookup_miss() {
        let c = cache(true);
        let key = DentryKey::new(InodeId(1), "tmp");
        c.insert(key.clone(), InodeId(3), CoreId(0)).unwrap();
        assert!(c.remove(&key, CoreId(0)));
        assert!(c.lookup(&key, CoreId(0)).is_none());
        assert!(!c.remove(&key, CoreId(0)), "second remove is a no-op");
        assert!(c.is_empty());
    }

    #[test]
    fn stats_distinguish_protocols() {
        let stats = Arc::new(VfsStats::new());
        let mut cfg = VfsConfig::pk(4);
        cfg.lockfree_dlookup = false;
        let c = Dcache::new(16, cfg, Arc::clone(&stats));
        let key = DentryKey::new(InodeId(1), "a");
        c.insert(key.clone(), InodeId(2), CoreId(0)).unwrap();
        c.lookup(&key, CoreId(0));
        assert!(
            stats
                .dentry_lock_acquisitions
                .load(std::sync::atomic::Ordering::Relaxed)
                >= 1
        );
        assert_eq!(
            stats
                .lockfree_lookups
                .load(std::sync::atomic::Ordering::Relaxed),
            0
        );
    }

    #[test]
    fn shrink_evicts_only_unreferenced() {
        let c = cache(true);
        let core = CoreId(0);
        for i in 0..8u64 {
            let d = c
                .insert(
                    DentryKey::new(InodeId(1), format!("e{i}")),
                    InodeId(i),
                    core,
                )
                .unwrap();
            d.put(core); // drop the caller reference; cache-only now
        }
        // Hold a reference to one entry.
        let held = c.lookup(&DentryKey::new(InodeId(1), "e3"), core).unwrap();
        let evicted = c.shrink(100, core);
        assert_eq!(evicted, 7, "everything except the held entry");
        assert_eq!(c.len(), 1);
        assert!(c.lookup(&DentryKey::new(InodeId(1), "e0"), core).is_none());
        assert!(c.lookup(&DentryKey::new(InodeId(1), "e3"), core).is_some());
        held.put(core);
    }

    #[test]
    fn shrink_respects_target() {
        let c = cache(false);
        let core = CoreId(0);
        for i in 0..10u64 {
            let d = c
                .insert(
                    DentryKey::new(InodeId(1), format!("t{i}")),
                    InodeId(i),
                    core,
                )
                .unwrap();
            d.put(core);
        }
        assert_eq!(c.shrink(4, core), 4);
        assert_eq!(c.len(), 6);
        assert_eq!(c.shrink(100, core), 6);
        assert!(c.is_empty());
    }

    #[test]
    fn concurrent_lookups_and_removes() {
        let c = Arc::new(cache(true));
        for i in 0..32u64 {
            c.insert(
                DentryKey::new(InodeId(1), format!("f{i}")),
                InodeId(100 + i),
                CoreId(0),
            )
            .unwrap();
        }
        let readers: Vec<_> = (0..3)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for round in 0..200 {
                        let i = (t * 7 + round) % 32;
                        let key = DentryKey::new(InodeId(1), format!("f{i}"));
                        if let Some(d) = c.lookup(&key, CoreId(t)) {
                            assert_eq!(d.inode(), InodeId(100 + i as u64));
                            d.put(CoreId(t));
                        }
                    }
                })
            })
            .collect();
        for i in (0..32).step_by(2) {
            c.remove(&DentryKey::new(InodeId(1), format!("f{i}")), CoreId(3));
        }
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(c.len(), 16);
    }
}
