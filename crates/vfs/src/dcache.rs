//! The directory entry cache (`dcache`).

use crate::config::VfsConfig;
use crate::dentry::{Dentry, DentryKey};
use crate::error::VfsError;
use crate::inode::InodeId;
use crate::stats::VfsStats;
use pk_fault::{FaultPlane, FaultPoint};
use pk_percpu::CoreId;
use pk_sync::rcu::{self, RcuCell};
use pk_sync::AdaptiveMutex;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{fence, AtomicBool, Ordering};
use std::sync::Arc;

/// One generation of the hash table: the bucket array itself is an
/// RCU-published snapshot, so `pk-adapt` can double the stripe count at
/// runtime (the §4.4 lock-striping decision made online instead of at
/// boot) without stopping readers.
///
/// The cells are `Arc`-shared between generations in flight: a writer
/// that captured a cell from the old table can finish its bucket update
/// and then notice the swap via `version`.
///
/// `version` is even for a stable generation and odd for the
/// intermediate generation [`Dcache::split_buckets`] publishes *before*
/// it snapshots the buckets. Writers only accept an even, unchanged
/// version as proof their update cannot have raced a snapshot; anything
/// else forces a re-apply against the next stable generation.
#[derive(Debug)]
struct DcacheTable {
    cells: Vec<Arc<RcuCell<Vec<Arc<Dentry>>>>>,
    mask: usize,
    version: u64,
}

/// A hash table of dentries with RCU buckets.
///
/// Readers traverse bucket snapshots without writing shared memory (the
/// dcache "has been optimized using RCU for scalability" \[40\]); what the
/// paper found still serialized lookups was the **per-dentry spin lock**
/// taken to compare fields. [`Dcache::lookup`] therefore implements both
/// protocols, selected by [`VfsConfig::lockfree_dlookup`]:
///
/// * stock — lock each candidate dentry to compare (`d_lock`);
/// * PK — the §4.4 generation-counter protocol, falling back to the lock
///   on a concurrent modification or a zero refcount.
///
/// A successful lookup returns the dentry with one new reference already
/// taken on the caller's behalf.
#[derive(Debug)]
pub struct Dcache {
    table: RcuCell<DcacheTable>,
    config: VfsConfig,
    stats: Arc<VfsStats>,
    /// Serializes table-generation swaps ([`Dcache::split_buckets`]) and
    /// the shrink walk against each other. Ordinary inserts/removes never
    /// take it — they detect a concurrent swap by version (odd = a split
    /// is mid-snapshot) and re-apply.
    split_lock: AdaptiveMutex<()>,
    /// Whether fresh dentries get live per-core refcount banks. The
    /// adaptive personality boots this off (`refs_start_degraded`) and
    /// lets the controller flip it via [`Dcache::set_ref_banking`].
    ref_banking: AtomicBool,
    /// `vfs.dentry_alloc`: a dentry allocation fails with ENOMEM.
    fault_alloc: FaultPoint,
    /// `vfs.dcache_pressure`: a lookup misses as if the entry had been
    /// evicted under memory pressure.
    fault_pressure: FaultPoint,
}

impl Dcache {
    /// Creates a cache with `buckets` hash buckets (rounded up to a power
    /// of two).
    pub fn new(buckets: usize, config: VfsConfig, stats: Arc<VfsStats>) -> Self {
        Self::with_faults(buckets, config, stats, &FaultPlane::disabled())
    }

    /// Like [`Dcache::new`], with allocation failure and cache pressure
    /// injectable through `faults` (`vfs.dentry_alloc`,
    /// `vfs.dcache_pressure`).
    pub fn with_faults(
        buckets: usize,
        config: VfsConfig,
        stats: Arc<VfsStats>,
        faults: &FaultPlane,
    ) -> Self {
        let n = buckets.next_power_of_two().max(1);
        let split_lock = AdaptiveMutex::new(());
        split_lock.set_class(pk_lockdep::register_class(
            "vfs.dcache.split",
            "pk-vfs",
            pk_lockdep::LockKind::Blocking,
        ));
        Self {
            table: RcuCell::new(DcacheTable {
                cells: (0..n).map(|_| Arc::new(RcuCell::new(Vec::new()))).collect(),
                mask: n - 1,
                version: 0,
            }),
            config,
            stats,
            split_lock,
            ref_banking: AtomicBool::new(!config.refs_start_degraded),
            fault_alloc: faults.point("vfs.dentry_alloc"),
            fault_pressure: faults.point("vfs.dcache_pressure"),
        }
    }

    fn hash_key(key: &DentryKey) -> u64 {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        h.finish()
    }

    /// Captures the bucket for `key` in the current table generation,
    /// plus that generation's version for the writer's swap check.
    fn cell_and_version(&self, key: &DentryKey) -> (Arc<RcuCell<Vec<Arc<Dentry>>>>, u64) {
        let guard = rcu::read_lock();
        let t = self.table.read(&guard);
        let cell = Arc::clone(&t.cells[(Self::hash_key(key) as usize) & t.mask]);
        (cell, t.version)
    }

    fn table_version(&self) -> u64 {
        let guard = rcu::read_lock();
        self.table.read(&guard).version
    }

    /// Publishes a rewritten bucket snapshot, retiring the replaced one
    /// per the configured reclamation discipline: `call_rcu` deferral
    /// (the writer continues immediately) or a blocking `synchronize()`
    /// grace period.
    fn replace_bucket(
        cell: &RcuCell<Vec<Arc<Dentry>>>,
        deferred: bool,
        f: impl FnOnce(&Vec<Arc<Dentry>>) -> Vec<Arc<Dentry>>,
    ) {
        if deferred {
            cell.update_with_deferred(f);
        } else {
            cell.update_with(f);
        }
    }

    /// Looks up `(parent, name)`, taking a reference on the hit.
    ///
    /// `core` is the acting core (for sloppy refcounts and stats).
    pub fn lookup(&self, key: &DentryKey, core: CoreId) -> Option<Arc<Dentry>> {
        if self.fault_pressure.should_inject() {
            // The entry was "evicted" under memory pressure: the caller
            // falls back to the filesystem, exactly as on a cold miss.
            VfsStats::bump(&self.stats.dcache_pressure_misses);
            VfsStats::bump(&self.stats.dcache_misses);
            return None;
        }
        let guard = rcu::read_lock();
        let t = self.table.read(&guard);
        let bucket = t.cells[(Self::hash_key(key) as usize) & t.mask].read(&guard);
        for d in bucket.iter() {
            if self.config.lockfree_dlookup {
                match d.compare_lockfree(key, core) {
                    Some(true) => {
                        VfsStats::bump(&self.stats.lockfree_lookups);
                        VfsStats::bump(&self.stats.dcache_hits);
                        return Some(Arc::clone(d));
                    }
                    Some(false) => continue,
                    None => {
                        // Fall back to the locking protocol (§4.4).
                        VfsStats::bump(&self.stats.lockfree_fallbacks);
                        if d.compare_locked(key, core) {
                            VfsStats::bump(&self.stats.dentry_lock_acquisitions);
                            VfsStats::bump(&self.stats.dcache_hits);
                            return Some(Arc::clone(d));
                        }
                        continue;
                    }
                }
            } else {
                VfsStats::bump(&self.stats.dentry_lock_acquisitions);
                if d.compare_locked(key, core) {
                    VfsStats::bump(&self.stats.dcache_hits);
                    return Some(Arc::clone(d));
                }
            }
        }
        VfsStats::bump(&self.stats.dcache_misses);
        None
    }

    /// The RCU-walk bucket probe: finds `key` without taking any lock or
    /// reference. Returns `Some(Some(inode))` on a hit, `Some(None)` on
    /// a definitive miss, or `None` when a candidate's seqcount tore
    /// mid-read (modification in flight) — the walker must then fall
    /// back to the reference walk.
    ///
    /// A miss is also grounds for fallback at the walk level (the entry
    /// may simply not be cached yet), but the two are distinguished so
    /// the stats can attribute fallbacks to churn vs. cold cache.
    pub fn peek(&self, key: &DentryKey) -> Option<Option<InodeId>> {
        if self.fault_pressure.should_inject() {
            // Same degradation as `lookup`: the entry was "evicted"
            // under memory pressure, so the RCU walk sees a miss and
            // drops to the reference walk.
            VfsStats::bump(&self.stats.dcache_pressure_misses);
            VfsStats::bump(&self.stats.dcache_misses);
            return Some(None);
        }
        let guard = rcu::read_lock();
        let t = self.table.read(&guard);
        let bucket = t.cells[(Self::hash_key(key) as usize) & t.mask].read(&guard);
        for d in bucket.iter() {
            match d.peek(key) {
                Some(Some(ino)) => {
                    VfsStats::bump(&self.stats.dcache_hits);
                    return Some(Some(ino));
                }
                Some(None) => continue,
                None => return None,
            }
        }
        Some(None)
    }

    /// Whether the generation-2 whole-path RCU walk is enabled
    /// ([`VfsConfig::rcu_path_walk`]).
    pub fn rcu_walk_enabled(&self) -> bool {
        self.config.rcu_path_walk
    }

    /// The stats sink shared with the rest of the VFS (for the path
    /// walker's walk-level counters).
    pub(crate) fn stats(&self) -> &VfsStats {
        &self.stats
    }

    /// Inserts a freshly created dentry for `key → inode` and returns it
    /// with one caller reference (plus the cache's own).
    ///
    /// Fails with [`VfsError::OutOfMemory`] when the dentry allocation
    /// does (only under an injected `vfs.dentry_alloc` fault); nothing is
    /// cached in that case and the caller degrades to uncached operation.
    pub fn insert(
        &self,
        key: DentryKey,
        inode: InodeId,
        core: CoreId,
    ) -> Result<Arc<Dentry>, VfsError> {
        if self.fault_alloc.should_inject() {
            VfsStats::bump(&self.stats.dentry_alloc_failures);
            return Err(VfsError::OutOfMemory);
        }
        let dentry = Dentry::with_refcount(
            key.clone(),
            inode,
            pk_sloppy::RefCount::new_scaled(
                self.config.sloppy_dentry_refs,
                self.config.snzi_refs,
                self.config.cores,
                self.config.sockets,
            ),
        );
        let banking = self.ref_banking.load(Ordering::Acquire);
        if !banking {
            dentry.set_ref_banking(false);
        }
        // The cache holds the creation reference; take one for the caller.
        // A freshly created dentry can only be dead if something tore it
        // down concurrently — surface that as ESTALE on the syscall path
        // rather than panicking in the kernel.
        dentry.get(core).map_err(|_| VfsError::Stale)?;
        let inserted = Arc::clone(&dentry);
        // If a bucket split swaps the table mid-update, the new
        // generation may or may not have copied our entry; re-apply
        // against the new bucket, skipping if the copy already landed.
        loop {
            let (cell, version) = self.cell_and_version(&key);
            Self::replace_bucket(&cell, self.config.deferred_reclamation, |v| {
                if v.iter().any(|d| Arc::ptr_eq(d, &inserted)) {
                    return v.clone();
                }
                let mut v = v.clone();
                v.push(Arc::clone(&inserted));
                v
            });
            // Pairs with the fence `split_buckets` issues between
            // publishing the intermediate (odd) generation and reading
            // its bucket snapshot: if the load below still sees our
            // even generation, the snapshot saw this bucket update.
            fence(Ordering::SeqCst);
            if version & 1 == 0 && self.table_version() == version {
                break;
            }
            // Odd version: a split is mid-snapshot; even mismatch: the
            // table already swapped. Re-apply against the next stable
            // generation either way.
            std::thread::yield_now();
        }
        // Re-check the banking flag: a `set_ref_banking` sweep may have
        // walked the buckets before our publish landed while we were
        // still acting on the old flag. The loop's trailing fence
        // orders the publish before this load (pairing with the fence
        // in `set_ref_banking`), so either the sweep saw the dentry or
        // this load sees the new flag — never neither.
        let now = self.ref_banking.load(Ordering::Acquire);
        if now != banking {
            dentry.set_ref_banking(now);
        }
        Ok(dentry)
    }

    /// Removes the dentry for `key` from the cache (unlink/rename):
    /// unhashes it under its modification guard and drops the cache's
    /// reference.
    ///
    /// Returns `true` if an entry was removed.
    pub fn remove(&self, key: &DentryKey, core: CoreId) -> bool {
        let mut removed: Option<Arc<Dentry>> = None;
        // Same swap-detection loop as `insert`: once a victim is chosen,
        // retries only scrub that exact entry from the new generation.
        loop {
            let (cell, version) = self.cell_and_version(key);
            let prior = removed.clone();
            Self::replace_bucket(&cell, self.config.deferred_reclamation, |v| {
                if let Some(d) = &prior {
                    return v.iter().filter(|e| !Arc::ptr_eq(e, d)).cloned().collect();
                }
                let mut kept = Vec::with_capacity(v.len());
                for d in v.iter() {
                    if removed.is_none() && !d.is_unhashed() && d.key == *key {
                        removed = Some(Arc::clone(d));
                    } else {
                        kept.push(Arc::clone(d));
                    }
                }
                kept
            });
            // Same discipline as `insert`: only an even, unchanged
            // version proves the scrub cannot have raced a snapshot.
            fence(Ordering::SeqCst);
            if version & 1 == 0 && self.table_version() == version {
                break;
            }
            std::thread::yield_now();
        }
        match removed {
            Some(d) => {
                d.begin_modify().unhash();
                // Drop the cache's reference; the object is freed when the
                // last user reference goes away.
                d.put(core);
                true
            }
            None => false,
        }
    }

    /// Doubles the number of hash buckets (lock striping ×2), rehashing
    /// every entry into a new table generation published through the
    /// configured RCU reclamation discipline.
    ///
    /// This is the structure-swap lever `pk-adapt` pulls when per-bucket
    /// contention stays above its bound: readers keep traversing the old
    /// generation until the swap, writers in flight detect the version
    /// bump and re-apply. Returns the new bucket count.
    ///
    /// The swap is two-phase so the version bump is observable *before*
    /// the buckets are snapshotted: phase 1 publishes an intermediate
    /// generation (same cells, odd version), phase 2 rehashes into the
    /// next even generation. Without phase 1, a writer could update an
    /// old bucket after the snapshot copied it, read the pre-split
    /// version (the rebuilt table not yet being published), and break
    /// out of its re-apply loop — silently losing the update.
    pub fn split_buckets(&self) -> usize {
        let _g = self.split_lock.lock();
        let bump = |old: &DcacheTable| DcacheTable {
            cells: old.cells.clone(),
            mask: old.mask,
            version: old.version + 1,
        };
        if self.config.deferred_reclamation {
            self.table.update_with_deferred(bump);
        } else {
            self.table.update_with(bump);
        }
        // Pairs with the fence in the writers' re-apply loops: either a
        // racing writer observes the odd generation published above (and
        // re-applies against the rebuilt table), or its bucket update is
        // visible to the snapshot below.
        fence(Ordering::SeqCst);
        let rebuild = |old: &DcacheTable| {
            let n = (old.mask + 1) * 2;
            let mut entries: Vec<Vec<Arc<Dentry>>> = vec![Vec::new(); n];
            {
                let guard = rcu::read_lock();
                for cell in &old.cells {
                    for d in cell.read(&guard).iter() {
                        entries[(Self::hash_key(&d.key) as usize) & (n - 1)].push(Arc::clone(d));
                    }
                }
            }
            DcacheTable {
                cells: entries
                    .into_iter()
                    .map(|v| Arc::new(RcuCell::new(v)))
                    .collect(),
                mask: n - 1,
                version: old.version + 1,
            }
        };
        if self.config.deferred_reclamation {
            self.table.update_with_deferred(rebuild);
        } else {
            self.table.update_with(rebuild);
        }
        VfsStats::bump(&self.stats.dcache_splits);
        self.bucket_count()
    }

    /// Returns the current number of hash buckets (stripes).
    pub fn bucket_count(&self) -> usize {
        let guard = rcu::read_lock();
        self.table.read(&guard).mask + 1
    }

    /// Switches per-core refcount banking for every cached dentry and
    /// for all future inserts: `true` promotes to live sloppy banks,
    /// `false` degrades to central-only mode. The sweep is the adaptive
    /// personality's promotion path for [`crate::VfsConfig::refs_start_degraded`]
    /// objects; a no-op on atomic-backed (stock) refcounts.
    pub fn set_ref_banking(&self, enabled: bool) {
        self.ref_banking.store(enabled, Ordering::SeqCst);
        // Pairs with the post-publish flag re-check in `insert`: a
        // dentry published concurrently with this call is either
        // already visible to the sweep below, or its inserter's re-check
        // sees the flag stored above and applies the mode itself.
        fence(Ordering::SeqCst);
        let guard = rcu::read_lock();
        let t = self.table.read(&guard);
        for cell in &t.cells {
            for d in cell.read(&guard).iter() {
                d.set_ref_banking(enabled);
            }
        }
    }

    /// Whether fresh dentries currently get live per-core banks.
    pub fn ref_banking(&self) -> bool {
        self.ref_banking.load(Ordering::Acquire)
    }

    /// Shrinks the cache: evicts up to `target` dentries that only the
    /// cache itself still references, scanning buckets in order.
    ///
    /// Eviction is the expensive sloppy-counter moment: each candidate's
    /// refcount must be *reconciled* across all cores before the object
    /// can be freed (§4.3: "this operation is expensive, so sloppy
    /// counters should only be used for objects that are relatively
    /// infrequently de-allocated"). Returns the number evicted.
    pub fn shrink(&self, target: usize, core: CoreId) -> usize {
        // Excludes concurrent bucket splits so the walk sees one stable
        // generation (maintenance paths serialize; hot paths never wait).
        let _g = self.split_lock.lock();
        let cells: Vec<Arc<RcuCell<Vec<Arc<Dentry>>>>> = {
            let guard = rcu::read_lock();
            self.table.read(&guard).cells.to_vec()
        };
        let mut evicted = 0;
        for bucket in &cells {
            if evicted >= target {
                break;
            }
            let mut victims = Vec::new();
            Self::replace_bucket(bucket, self.config.deferred_reclamation, |v| {
                let mut kept = Vec::with_capacity(v.len());
                for d in v.iter() {
                    // Only the cache's reference remains → evictable.
                    if evicted + victims.len() < target && d.references() == 1 {
                        victims.push(Arc::clone(d));
                    } else {
                        kept.push(Arc::clone(d));
                    }
                }
                kept
            });
            for d in victims {
                d.begin_modify().unhash();
                d.put(core);
                match d.try_dealloc() {
                    Ok(()) => {
                        evicted += 1;
                        VfsStats::bump(&self.stats.dcache_evictions);
                    }
                    // A lookup raced us and took a reference between the
                    // scan and the dealloc; the object stays alive (but
                    // unhashed) until that user drops it.
                    Err(_) => {
                        evicted += 1;
                        VfsStats::bump(&self.stats.dcache_evictions);
                    }
                }
            }
        }
        evicted
    }

    /// Returns the total number of hashed dentries (diagnostic; walks all
    /// buckets).
    pub fn len(&self) -> usize {
        let guard = rcu::read_lock();
        let t = self.table.read(&guard);
        t.cells.iter().map(|b| b.read(&guard).len()).sum()
    }

    /// Returns whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(lockfree: bool) -> Dcache {
        let mut cfg = VfsConfig::pk(4);
        cfg.lockfree_dlookup = lockfree;
        Dcache::new(64, cfg, Arc::new(VfsStats::new()))
    }

    #[test]
    fn insert_then_lookup_hits() {
        for lockfree in [false, true] {
            let c = cache(lockfree);
            let key = DentryKey::new(InodeId(1), "etc");
            let d = c.insert(key.clone(), InodeId(5), CoreId(0)).unwrap();
            assert_eq!(d.references(), 2);
            let hit = c.lookup(&key, CoreId(1)).expect("hit");
            assert_eq!(hit.inode(), InodeId(5));
            assert_eq!(hit.references(), 3);
        }
    }

    #[test]
    fn lookup_miss_returns_none() {
        let c = cache(true);
        assert!(c
            .lookup(&DentryKey::new(InodeId(1), "nope"), CoreId(0))
            .is_none());
    }

    #[test]
    fn same_name_different_parent_is_distinct() {
        let c = cache(true);
        c.insert(DentryKey::new(InodeId(1), "x"), InodeId(10), CoreId(0))
            .unwrap();
        c.insert(DentryKey::new(InodeId(2), "x"), InodeId(20), CoreId(0))
            .unwrap();
        assert_eq!(
            c.lookup(&DentryKey::new(InodeId(1), "x"), CoreId(0))
                .unwrap()
                .inode(),
            InodeId(10)
        );
        assert_eq!(
            c.lookup(&DentryKey::new(InodeId(2), "x"), CoreId(0))
                .unwrap()
                .inode(),
            InodeId(20)
        );
    }

    #[test]
    fn remove_makes_lookup_miss() {
        let c = cache(true);
        let key = DentryKey::new(InodeId(1), "tmp");
        c.insert(key.clone(), InodeId(3), CoreId(0)).unwrap();
        assert!(c.remove(&key, CoreId(0)));
        assert!(c.lookup(&key, CoreId(0)).is_none());
        assert!(!c.remove(&key, CoreId(0)), "second remove is a no-op");
        assert!(c.is_empty());
    }

    #[test]
    fn stats_distinguish_protocols() {
        let stats = Arc::new(VfsStats::new());
        let mut cfg = VfsConfig::pk(4);
        cfg.lockfree_dlookup = false;
        let c = Dcache::new(16, cfg, Arc::clone(&stats));
        let key = DentryKey::new(InodeId(1), "a");
        c.insert(key.clone(), InodeId(2), CoreId(0)).unwrap();
        c.lookup(&key, CoreId(0));
        assert!(
            stats
                .dentry_lock_acquisitions
                .load(std::sync::atomic::Ordering::Relaxed)
                >= 1
        );
        assert_eq!(
            stats
                .lockfree_lookups
                .load(std::sync::atomic::Ordering::Relaxed),
            0
        );
    }

    #[test]
    fn shrink_evicts_only_unreferenced() {
        let c = cache(true);
        let core = CoreId(0);
        for i in 0..8u64 {
            let d = c
                .insert(
                    DentryKey::new(InodeId(1), format!("e{i}")),
                    InodeId(i),
                    core,
                )
                .unwrap();
            d.put(core); // drop the caller reference; cache-only now
        }
        // Hold a reference to one entry.
        let held = c.lookup(&DentryKey::new(InodeId(1), "e3"), core).unwrap();
        let evicted = c.shrink(100, core);
        assert_eq!(evicted, 7, "everything except the held entry");
        assert_eq!(c.len(), 1);
        assert!(c.lookup(&DentryKey::new(InodeId(1), "e0"), core).is_none());
        assert!(c.lookup(&DentryKey::new(InodeId(1), "e3"), core).is_some());
        held.put(core);
    }

    #[test]
    fn shrink_respects_target() {
        let c = cache(false);
        let core = CoreId(0);
        for i in 0..10u64 {
            let d = c
                .insert(
                    DentryKey::new(InodeId(1), format!("t{i}")),
                    InodeId(i),
                    core,
                )
                .unwrap();
            d.put(core);
        }
        assert_eq!(c.shrink(4, core), 4);
        assert_eq!(c.len(), 6);
        assert_eq!(c.shrink(100, core), 6);
        assert!(c.is_empty());
    }

    #[test]
    fn split_doubles_buckets_and_keeps_entries() {
        let c = cache(true);
        let core = CoreId(0);
        for i in 0..50u64 {
            c.insert(
                DentryKey::new(InodeId(1), format!("s{i}")),
                InodeId(i),
                core,
            )
            .unwrap();
        }
        assert_eq!(c.bucket_count(), 64);
        assert_eq!(c.split_buckets(), 128);
        assert_eq!(c.split_buckets(), 256);
        assert_eq!(c.len(), 50, "rehash loses nothing");
        for i in 0..50u64 {
            let key = DentryKey::new(InodeId(1), format!("s{i}"));
            assert_eq!(c.lookup(&key, core).unwrap().inode(), InodeId(i));
        }
        // Removal still works against the rehashed generation.
        assert!(c.remove(&DentryKey::new(InodeId(1), "s7"), core));
        assert_eq!(c.len(), 49);
    }

    #[test]
    fn split_under_concurrent_writers_loses_no_updates() {
        // Writers race table swaps: every insert must survive (or be
        // re-applied past) the generation change, and every remove must
        // scrub its victim from whichever generation won.
        for deferred in [true, false] {
            let mut cfg = VfsConfig::pk(8);
            cfg.deferred_reclamation = deferred;
            let c = Arc::new(Dcache::new(4, cfg, Arc::new(VfsStats::new())));
            let writers: Vec<_> = (0..4)
                .map(|t| {
                    let c = Arc::clone(&c);
                    std::thread::spawn(move || {
                        for i in 0..100u64 {
                            let key = DentryKey::new(InodeId(t), format!("w{i}"));
                            let d = c
                                .insert(key.clone(), InodeId(i), CoreId(t as usize))
                                .unwrap();
                            d.put(CoreId(t as usize));
                            if i % 3 == 0 {
                                assert!(c.remove(&key, CoreId(t as usize)));
                            }
                        }
                    })
                })
                .collect();
            let splitter = {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..5 {
                        c.split_buckets();
                        std::thread::yield_now();
                    }
                })
            };
            for w in writers {
                w.join().unwrap();
            }
            splitter.join().unwrap();
            assert_eq!(c.bucket_count(), 128);
            // Per writer: 100 inserts, 34 removes → 66 survivors.
            assert_eq!(c.len(), 4 * 66);
            for t in 0..4u64 {
                assert!(c
                    .lookup(&DentryKey::new(InodeId(t), "w1"), CoreId(0))
                    .is_some());
                assert!(c
                    .lookup(&DentryKey::new(InodeId(t), "w0"), CoreId(0))
                    .is_none());
            }
        }
    }

    #[test]
    fn ref_banking_boots_degraded_and_promotes_in_place() {
        let mut cfg = VfsConfig::pk(4);
        cfg.refs_start_degraded = true;
        let c = Dcache::new(16, cfg, Arc::new(VfsStats::new()));
        let core = CoreId(1);
        let key = DentryKey::new(InodeId(1), "boot");
        let d = c.insert(key.clone(), InodeId(9), core).unwrap();
        // Degraded: every get/put is a central (shared) op.
        let (central0, local0) = d.refcount_ops();
        d.get(core).unwrap();
        d.put(core);
        let (central1, local1) = d.refcount_ops();
        assert_eq!(local1, local0, "degraded ops never stay core-local");
        assert!(central1 > central0);
        // Promote: the sweep restores banking for cached dentries and
        // future inserts.
        assert!(!c.ref_banking());
        c.set_ref_banking(true);
        assert!(c.ref_banking());
        d.get(core).unwrap();
        d.put(core);
        d.get(core).unwrap();
        d.put(core);
        let (_, local2) = d.refcount_ops();
        assert!(local2 > local1, "promoted ops bank core-locally");
        d.put(core);
    }

    #[test]
    fn ref_banking_flip_covers_concurrent_inserts() {
        // Inserts racing the promotion sweep must never strand a dentry
        // in the pre-flip mode: either the sweep sees the published
        // dentry, or the inserter's re-check sees the new flag.
        let mut cfg = VfsConfig::pk(4);
        cfg.refs_start_degraded = true;
        let c = Arc::new(Dcache::new(16, cfg, Arc::new(VfsStats::new())));
        let inserters: Vec<_> = (0..3u64)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        let d = c
                            .insert(
                                DentryKey::new(InodeId(t), format!("r{i}")),
                                InodeId(i),
                                CoreId(t as usize),
                            )
                            .unwrap();
                        d.put(CoreId(t as usize));
                    }
                })
            })
            .collect();
        // Flip banking while inserts are in flight, ending promoted.
        for flips in 0..7 {
            c.set_ref_banking(flips % 2 == 0);
            std::thread::yield_now();
        }
        for t in inserters {
            t.join().unwrap();
        }
        assert!(c.ref_banking());
        for t in 0..3u64 {
            for i in 0..200u64 {
                let d = c
                    .lookup(&DentryKey::new(InodeId(t), format!("r{i}")), CoreId(0))
                    .unwrap();
                assert!(
                    !d.ref_is_central_only(),
                    "dentry stranded in degraded mode after promotion"
                );
                d.put(CoreId(0));
            }
        }
    }

    #[test]
    fn concurrent_lookups_and_removes() {
        let c = Arc::new(cache(true));
        for i in 0..32u64 {
            c.insert(
                DentryKey::new(InodeId(1), format!("f{i}")),
                InodeId(100 + i),
                CoreId(0),
            )
            .unwrap();
        }
        let readers: Vec<_> = (0..3)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for round in 0..200 {
                        let i = (t * 7 + round) % 32;
                        let key = DentryKey::new(InodeId(1), format!("f{i}"));
                        if let Some(d) = c.lookup(&key, CoreId(t)) {
                            assert_eq!(d.inode(), InodeId(100 + i as u64));
                            d.put(CoreId(t));
                        }
                    }
                })
            })
            .collect();
        for i in (0..32).step_by(2) {
            c.remove(&DentryKey::new(InodeId(1), format!("f{i}")), CoreId(3));
        }
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(c.len(), 16);
    }
}
