//! The page (buffer) cache with lock-free lookup.
//!
//! The paper's lock-free dentry comparison is modelled on "Linux'
//! lock-free page cache lookup protocol" (\[18\], Corbet, *The lockless
//! page cache*): readers find pages without taking any lock, taking a
//! speculative reference and re-validating afterwards. This module
//! implements that shape over the same RCU buckets as the dcache, and
//! backs `Vfs::read_cached` — the path Apache's 300-byte file is served
//! from ("the file resides in the kernel buffer cache", §5.4).

use crate::inode::InodeId;
use pk_sync::rcu::{self, RcuCell};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cache page size (4 KB, like the kernel's).
pub const PAGE_BYTES: usize = 4096;

/// One cached page of file data.
#[derive(Debug)]
pub struct CachedPage {
    /// Owning inode.
    pub ino: InodeId,
    /// Page index within the file.
    pub index: u64,
    /// Page contents (up to [`PAGE_BYTES`]).
    pub data: Vec<u8>,
    /// Speculative reference count, as in the lockless protocol: a
    /// reader elevates it before re-checking that the page still belongs
    /// to `(ino, index)`.
    refs: AtomicU64,
}

impl CachedPage {
    /// Current reference count (cache's own reference included).
    pub fn references(&self) -> u64 {
        self.refs.load(Ordering::Acquire)
    }
}

/// Page-cache statistics.
#[derive(Debug, Default)]
pub struct PageCacheStats {
    /// Lookups served from the cache.
    pub hits: AtomicU64,
    /// Lookups that had to fill from the backing store.
    pub misses: AtomicU64,
    /// Pages dropped by invalidation.
    pub invalidated: AtomicU64,
}

/// One hash bucket: `(inode, page index) → page`, swapped wholesale
/// under RCU so readers never lock.
type Bucket = RcuCell<HashMap<(u64, u64), Arc<CachedPage>>>;

/// A buffer cache: `(inode, page index) → page`, with lock-free reads.
#[derive(Debug)]
pub struct PageCache {
    buckets: Vec<Bucket>,
    mask: usize,
    stats: PageCacheStats,
}

impl PageCache {
    /// Creates a cache with `buckets` hash buckets (rounded to a power
    /// of two).
    pub fn new(buckets: usize) -> Self {
        let n = buckets.next_power_of_two().max(1);
        Self {
            buckets: (0..n).map(|_| RcuCell::new(HashMap::new())).collect(),
            mask: n - 1,
            stats: PageCacheStats::default(),
        }
    }

    fn bucket(&self, ino: InodeId, index: u64) -> &RcuCell<HashMap<(u64, u64), Arc<CachedPage>>> {
        let mut h = DefaultHasher::new();
        (ino.0, index).hash(&mut h);
        &self.buckets[(h.finish() as usize) & self.mask]
    }

    /// Lock-free lookup: finds the page for `(ino, index)` without
    /// taking any lock, elevating its speculative refcount and
    /// re-validating identity afterwards (the \[18\] protocol).
    pub fn lookup(&self, ino: InodeId, index: u64) -> Option<Arc<CachedPage>> {
        let guard = rcu::read_lock();
        let bucket = self.bucket(ino, index).read(&guard);
        let page = bucket.get(&(ino.0, index))?;
        // Speculative get: elevate, then confirm the page is still the
        // one we asked for (it cannot be reused for another (ino, index)
        // while we hold the RCU guard, but the protocol re-checks anyway,
        // as the kernel must once the page can be recycled).
        page.refs.fetch_add(1, Ordering::AcqRel);
        if page.ino == ino && page.index == index {
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            Some(Arc::clone(page))
        } else {
            page.refs.fetch_sub(1, Ordering::AcqRel);
            None
        }
    }

    /// Drops a reference taken by [`PageCache::lookup`].
    pub fn put(&self, page: &CachedPage) {
        page.refs.fetch_sub(1, Ordering::AcqRel);
    }

    /// Inserts (or replaces) the page for `(ino, index)`.
    pub fn fill(&self, ino: InodeId, index: u64, data: Vec<u8>) -> Arc<CachedPage> {
        assert!(data.len() <= PAGE_BYTES, "page data too large");
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        let page = Arc::new(CachedPage {
            ino,
            index,
            data,
            refs: AtomicU64::new(1), // the cache's reference
        });
        let inserted = Arc::clone(&page);
        self.bucket(ino, index).update_with(move |m| {
            let mut m = m.clone();
            m.insert((ino.0, index), Arc::clone(&inserted));
            m
        });
        page
    }

    /// Invalidates every page of `ino` (truncate/unlink).
    pub fn invalidate(&self, ino: InodeId) {
        for bucket in &self.buckets {
            bucket.update_with(|m| {
                let mut m = m.clone();
                let before = m.len();
                m.retain(|(i, _), _| *i != ino.0);
                let dropped = before - m.len();
                if dropped > 0 {
                    self.stats
                        .invalidated
                        .fetch_add(dropped as u64, Ordering::Relaxed);
                }
                m
            });
        }
    }

    /// Number of cached pages.
    pub fn len(&self) -> usize {
        let guard = rcu::read_lock();
        self.buckets.iter().map(|b| b.read(&guard).len()).sum()
    }

    /// Returns whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the statistics.
    pub fn stats(&self) -> &PageCacheStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_then_lookup_hits() {
        let pc = PageCache::new(64);
        assert!(pc.lookup(InodeId(1), 0).is_none());
        pc.fill(InodeId(1), 0, b"hello".to_vec());
        let page = pc.lookup(InodeId(1), 0).expect("hit");
        assert_eq!(page.data, b"hello");
        assert_eq!(page.references(), 2); // cache + us
        pc.put(&page);
        assert_eq!(page.references(), 1);
        assert_eq!(pc.stats().hits.load(Ordering::Relaxed), 1);
        assert_eq!(pc.stats().misses.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn pages_are_per_inode_and_index() {
        let pc = PageCache::new(16);
        pc.fill(InodeId(1), 0, b"a".to_vec());
        pc.fill(InodeId(1), 1, b"b".to_vec());
        pc.fill(InodeId(2), 0, b"c".to_vec());
        assert_eq!(pc.len(), 3);
        assert_eq!(pc.lookup(InodeId(1), 1).unwrap().data, b"b");
        assert_eq!(pc.lookup(InodeId(2), 0).unwrap().data, b"c");
        assert!(pc.lookup(InodeId(2), 1).is_none());
    }

    #[test]
    fn invalidate_drops_only_that_inode() {
        let pc = PageCache::new(16);
        for idx in 0..4 {
            pc.fill(InodeId(7), idx, vec![7]);
            pc.fill(InodeId(8), idx, vec![8]);
        }
        pc.invalidate(InodeId(7));
        assert_eq!(pc.len(), 4);
        assert!(pc.lookup(InodeId(7), 0).is_none());
        assert!(pc.lookup(InodeId(8), 3).is_some());
        assert_eq!(pc.stats().invalidated.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn refill_replaces_content() {
        let pc = PageCache::new(8);
        pc.fill(InodeId(1), 0, b"old".to_vec());
        pc.fill(InodeId(1), 0, b"new".to_vec());
        assert_eq!(pc.len(), 1);
        assert_eq!(pc.lookup(InodeId(1), 0).unwrap().data, b"new");
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_page_rejected() {
        PageCache::new(4).fill(InodeId(1), 0, vec![0; PAGE_BYTES + 1]);
    }

    #[test]
    fn concurrent_readers_during_invalidation() {
        let pc = Arc::new(PageCache::new(64));
        for idx in 0..32 {
            pc.fill(InodeId(1), idx, vec![idx as u8]);
        }
        std::thread::scope(|s| {
            for t in 0..3 {
                let pc = Arc::clone(&pc);
                s.spawn(move || {
                    for round in 0..200 {
                        let idx = (t * 13 + round) % 32;
                        if let Some(p) = pc.lookup(InodeId(1), idx as u64) {
                            assert_eq!(p.data, vec![idx as u8]);
                            pc.put(&p);
                        }
                    }
                });
            }
            let pc2 = Arc::clone(&pc);
            s.spawn(move || {
                pc2.invalidate(InodeId(1));
            });
        });
        assert!(pc.is_empty());
    }
}
