//! Mount points: the global vfsmount table and PK's per-core caches.

use crate::config::VfsConfig;
use crate::stats::VfsStats;
use pk_percpu::{CoreId, PerCore};
use pk_sloppy::{DeallocError, RefCount};
use pk_sync::{rcu, SpinLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A mounted file system object (`struct vfsmount`).
///
/// Path resolution takes and drops a reference on the vfsmount of every
/// path it walks — "Exim causes the kernel to access the vfsmount table
/// dozens of times for each message" (§5.2) — so both the table lock and
/// this refcount are Figure-1 bottlenecks.
#[derive(Debug)]
pub struct VfsMount {
    /// The mount point path prefix (e.g. `/` or `/var/spool`).
    pub mount_point: String,
    refcount: RefCount,
}

impl VfsMount {
    /// Creates a mount object with one (table) reference.
    pub fn new(mount_point: impl Into<String>, sloppy: bool, cores: usize) -> Arc<Self> {
        Self::with_refcount(mount_point, RefCount::new(sloppy, cores))
    }

    /// [`VfsMount::new`] with an explicit refcount backing — how the
    /// mount table selects the generation-2 SNZI tree when
    /// `VfsConfig::snzi_refs` is set.
    pub fn with_refcount(mount_point: impl Into<String>, refcount: RefCount) -> Arc<Self> {
        Arc::new(Self {
            mount_point: mount_point.into(),
            refcount,
        })
    }

    /// Takes a reference on behalf of `core`.
    pub fn get(&self, core: CoreId) -> Result<(), DeallocError> {
        self.refcount.get(core)
    }

    /// Drops a reference on behalf of `core`.
    pub fn put(&self, core: CoreId) {
        self.refcount.put(core);
    }

    /// Exact reference count (expensive when sloppy).
    pub fn references(&self) -> i64 {
        self.refcount.references()
    }

    /// Returns `(shared_ops, local_ops)` of the refcount.
    pub fn refcount_ops(&self) -> (u64, u64) {
        self.refcount.op_counts()
    }

    /// Switches the refcount's per-core banking (`pk-adapt`'s in-place
    /// promotion lever; no-op on stock atomic refcounts).
    pub fn set_ref_banking(&self, enabled: bool) {
        self.refcount.set_banking(enabled);
    }

    /// Whether get/put currently bounce a shared cache line.
    pub fn ref_is_central_only(&self) -> bool {
        self.refcount.is_central_only()
    }
}

/// One mapping from mount point to mount, as the central table holds it.
type MountMap = HashMap<String, Arc<VfsMount>>;

/// The mount table: a central map under a global spin lock, with optional
/// per-core caches in front of it (§4.5).
///
/// Stock: every resolution locks the central table. PK: "when the kernel
/// needs to look up the vfsmount for a path, it first looks in the
/// current core's table, then the central table. If the latter succeeds,
/// the result is added to the per-core table."
#[derive(Debug)]
pub struct MountTable {
    central: SpinLock<MountMap>,
    /// Per-core snapshots of the central table (`None` = invalidated).
    ///
    /// Each snapshot mirrors the *whole* central table, not individual
    /// lookups: longest-prefix resolution answered from a partial cache
    /// is unsound, because a cached shorter prefix (say `/`) would mask
    /// a longer central entry (`/mnt`) that was never pulled into this
    /// core's cache. A full snapshot gives exactly the central answer
    /// until the next mount/umount invalidates it.
    percore: PerCore<SpinLock<Option<MountMap>>>,
    config: VfsConfig,
    stats: Arc<VfsStats>,
    /// Whether mount refcounts bank per-core. The adaptive personality
    /// boots this off (`VfsConfig::refs_start_degraded`) and promotes
    /// via [`MountTable::set_ref_banking`].
    ref_banking: AtomicBool,
}

impl MountTable {
    /// Creates a table with a root (`/`) mount pre-installed.
    pub fn new(config: VfsConfig, stats: Arc<VfsStats>) -> Self {
        let percore_class = pk_lockdep::register_class(
            "vfs.mount.percore_cache",
            "pk-vfs",
            pk_lockdep::LockKind::Spin,
        );
        let t = Self {
            central: SpinLock::new(HashMap::new()),
            percore: PerCore::new_with(config.cores, |_| {
                let l = SpinLock::new(None);
                l.set_class(percore_class);
                l
            }),
            ref_banking: AtomicBool::new(!config.refs_start_degraded),
            config,
            stats,
        };
        t.central.set_class(pk_lockdep::register_class(
            "vfs.mount.central_table",
            "pk-vfs",
            pk_lockdep::LockKind::Spin,
        ));
        t.mount("/");
        t
    }

    /// Installs a mount at `mount_point`.
    ///
    /// Invalidates every per-core snapshot: the new entry may be a
    /// longer prefix than anything a snapshot holds, and a stale
    /// snapshot would keep resolving paths the new mount now covers.
    /// The retired snapshots go through the reclamation discipline.
    pub fn mount(&self, mount_point: &str) -> Arc<VfsMount> {
        let m = VfsMount::with_refcount(
            mount_point,
            pk_sloppy::RefCount::new_scaled(
                self.config.sloppy_vfsmount_refs,
                self.config.snzi_refs,
                self.config.cores,
                self.config.sockets,
            ),
        );
        {
            // The banking mode is decided under the central lock, which
            // the `set_ref_banking` sweep also holds: either that sweep
            // finds this mount in the table, or this load sees the new
            // flag — a mount can never be published in a stale mode.
            let mut central = self.central.lock();
            if !self.ref_banking.load(Ordering::Acquire) {
                m.set_ref_banking(false);
            }
            central.insert(mount_point.to_string(), Arc::clone(&m));
        }
        let swept = self.sweep_percore_caches();
        if !swept.is_empty() {
            self.retire(swept);
        }
        m
    }

    /// Removes the mount at `mount_point` from the central table and
    /// invalidates all per-core snapshots, returning it if present.
    ///
    /// The table's reference to the mount (and every swept snapshot) is
    /// retired past a grace period, since a resolver may have copied the
    /// `Arc` out of a snapshot moments before the sweep: deferred
    /// through `call_rcu` by default, or via a blocking `synchronize()`
    /// when `deferred_reclamation` is off.
    pub fn umount(&self, mount_point: &str) -> Option<Arc<VfsMount>> {
        let removed = self.central.lock().remove(mount_point);
        if let Some(ref m) = removed {
            let swept = self.sweep_percore_caches();
            self.retire((Arc::clone(m), swept));
        }
        removed
    }

    /// Clears every per-core snapshot, returning the old contents so
    /// the caller can retire them past a grace period.
    fn sweep_percore_caches(&self) -> Vec<MountMap> {
        // Deliberate cross-core sweep: a mount-table mutation
        // invalidates every core's snapshot from whichever core runs it.
        let _migrate = pk_lockdep::MigrationScope::enter();
        self.percore
            .iter()
            .filter_map(|cache| cache.lock().take())
            .collect()
    }

    /// Retires `garbage` under the configured reclamation discipline:
    /// `call_rcu` when `deferred_reclamation` is on, else a blocking
    /// `synchronize()` followed by an immediate drop.
    fn retire<T: Send + 'static>(&self, garbage: T) {
        if self.config.deferred_reclamation {
            rcu::defer_drop(Box::new(garbage));
        } else {
            rcu::synchronize();
            drop(garbage);
        }
    }

    /// Resolves the vfsmount covering `path`: the longest mount-point
    /// prefix. Takes a reference on the returned mount.
    ///
    /// With `percore_mount_cache` the per-core snapshot answers without
    /// touching the central table's lock; an invalidated snapshot is
    /// refilled from the central table first (the only central access
    /// PK pays between mount-table mutations).
    pub fn resolve(&self, path: &str, core: CoreId) -> Option<Arc<VfsMount>> {
        if self.config.percore_mount_cache {
            let mut cache = self.percore.get(core).lock();
            let refilled = cache.is_none();
            if refilled {
                VfsStats::bump(&self.stats.mount_central_lookups);
                pk_lockdep::check_percore_mutation("vfs.mount.percore_cache", core.index());
                // percore → central is the only nesting of these two
                // classes (mount/umount release the central lock before
                // sweeping), so the order is consistent.
                *cache = Some(self.central.lock().clone());
            }
            let snapshot = cache.as_ref().expect("snapshot just refilled");
            match Self::longest_prefix_in(snapshot, path) {
                Some((_, m)) => {
                    drop(cache);
                    if m.get(core).is_ok() {
                        if !refilled {
                            VfsStats::bump(&self.stats.mount_percore_hits);
                        }
                        return Some(m);
                    }
                    // Dead mount in a stale snapshot: fall through to
                    // the central table below.
                }
                // The snapshot mirrors the whole central table, so a
                // snapshot miss is a central miss.
                None => return None,
            }
        }
        VfsStats::bump(&self.stats.mount_central_lookups);
        let m = {
            let central = self.central.lock();
            Self::longest_prefix_in(&central, path)?.1
        };
        m.get(core).ok()?;
        Some(m)
    }

    /// The RCU-walk mount probe: answers "is `path` covered by a mount?"
    /// from this core's snapshot **without taking any reference** — the
    /// vfsmount-refcount-free leg of the generation-2 path walk.
    ///
    /// Returns `None` when the snapshot is cold (or per-core caching is
    /// off): the caller must take the reference walk, which refills it.
    pub fn peek(&self, path: &str, core: CoreId) -> Option<bool> {
        if !self.config.percore_mount_cache {
            return None;
        }
        let cache = self.percore.get(core).lock();
        let snapshot = cache.as_ref()?;
        VfsStats::bump(&self.stats.mount_percore_hits);
        Some(Self::longest_prefix_in(snapshot, path).is_some())
    }

    /// Finds the entry with the longest mount-point prefix of `path` in
    /// `map`, scanning candidates from longest to shortest.
    fn longest_prefix_in(
        map: &HashMap<String, Arc<VfsMount>>,
        path: &str,
    ) -> Option<(String, Arc<VfsMount>)> {
        let mut candidate = path.trim_end_matches('/').to_string();
        loop {
            if candidate.is_empty() {
                candidate.push('/');
            }
            if let Some(m) = map.get(candidate.as_str()) {
                return Some((candidate, Arc::clone(m)));
            }
            if candidate == "/" {
                return None;
            }
            match candidate.rfind('/') {
                Some(0) | None => candidate = "/".to_string(),
                Some(i) => candidate.truncate(i),
            }
        }
    }

    /// Returns the central-table lock statistics.
    pub fn central_lock_stats(&self) -> &pk_sync::LockStats {
        self.central.stats()
    }

    /// Switches per-core refcount banking for every installed mount and
    /// for all future mounts — the adaptive promotion sweep for
    /// vfsmount refcounts. A no-op per object when the refcounts are
    /// stock atomics.
    pub fn set_ref_banking(&self, enabled: bool) {
        // Flag flip and sweep form one critical section under the
        // central lock; `mount` decides each new mount's mode under the
        // same lock, so no mount can miss both.
        let central = self.central.lock();
        self.ref_banking.store(enabled, Ordering::Release);
        for m in central.values() {
            m.set_ref_banking(enabled);
        }
    }

    /// Whether fresh mounts currently get live per-core banks.
    pub fn ref_banking(&self) -> bool {
        self.ref_banking.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(percore: bool) -> MountTable {
        let mut cfg = VfsConfig::pk(4);
        cfg.percore_mount_cache = percore;
        MountTable::new(cfg, Arc::new(VfsStats::new()))
    }

    #[test]
    fn root_mount_resolves_everything() {
        let t = table(false);
        let m = t.resolve("/some/deep/path", CoreId(0)).unwrap();
        assert_eq!(m.mount_point, "/");
        m.put(CoreId(0));
    }

    #[test]
    fn longest_prefix_wins() {
        let t = table(false);
        t.mount("/var");
        t.mount("/var/spool");
        assert_eq!(
            t.resolve("/var/spool/input/m1", CoreId(0))
                .unwrap()
                .mount_point,
            "/var/spool"
        );
        assert_eq!(
            t.resolve("/var/log/x", CoreId(0)).unwrap().mount_point,
            "/var"
        );
        assert_eq!(
            t.resolve("/etc/passwd", CoreId(0)).unwrap().mount_point,
            "/"
        );
    }

    #[test]
    fn percore_cache_avoids_central_lookups() {
        let stats = Arc::new(VfsStats::new());
        let mut cfg = VfsConfig::pk(4);
        cfg.percore_mount_cache = true;
        let t = MountTable::new(cfg, Arc::clone(&stats));
        t.mount("/data");
        for _ in 0..10 {
            let m = t.resolve("/data/file", CoreId(2)).unwrap();
            m.put(CoreId(2));
        }
        let central = stats
            .mount_central_lookups
            .load(std::sync::atomic::Ordering::Relaxed);
        let local = stats
            .mount_percore_hits
            .load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(central, 1, "only the first lookup hits the central table");
        assert_eq!(local, 9);
    }

    #[test]
    fn stock_hits_central_every_time() {
        let stats = Arc::new(VfsStats::new());
        let mut cfg = VfsConfig::stock(4);
        cfg.cores = 4;
        let t = MountTable::new(cfg, Arc::clone(&stats));
        for _ in 0..10 {
            let m = t.resolve("/x", CoreId(1)).unwrap();
            m.put(CoreId(1));
        }
        assert_eq!(
            stats
                .mount_central_lookups
                .load(std::sync::atomic::Ordering::Relaxed),
            10
        );
    }

    #[test]
    fn umount_purges_percore_caches() {
        let t = table(true);
        t.mount("/mnt");
        let m = t.resolve("/mnt/a", CoreId(1)).unwrap();
        m.put(CoreId(1));
        assert!(t.umount("/mnt").is_some());
        let m2 = t.resolve("/mnt/a", CoreId(1)).unwrap();
        assert_eq!(m2.mount_point, "/", "falls back to root after umount");
    }

    #[test]
    fn references_track_resolutions() {
        let t = table(false);
        let m1 = t.resolve("/", CoreId(0)).unwrap();
        let m2 = t.resolve("/", CoreId(1)).unwrap();
        assert_eq!(m1.references(), 3); // table + two resolutions
        m1.put(CoreId(0));
        m2.put(CoreId(1));
    }
}
