//! The super block and its open-file bookkeeping.

use crate::config::VfsConfig;
use crate::stats::VfsStats;
use pk_percpu::{CoreId, PerCore};
use pk_sync::SpinLock;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A unique open-file identifier within a super block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpenFileId(pub u64);

/// A super block tracking open files, read-only state, and the global
/// inode/dcache bookkeeping lists (Figure 1).
///
/// Stock keeps one list of open files per super block — "cores contend on
/// a per-super block list that tracks open files" — used only to decide
/// whether the file system "can be remounted read-only." PK splits it
/// per-core: opens lock only the local list; a close on a different core
/// pays an expensive cross-core removal; the remount check "must lock and
/// scan all cores' lists" (§4.5).
#[derive(Debug)]
pub struct SuperBlock {
    next_file: AtomicU64,
    global_list: SpinLock<HashSet<OpenFileId>>,
    percore_lists: PerCore<SpinLock<HashSet<OpenFileId>>>,
    read_only: AtomicBool,
    // The global inode-list and dcache-list locks (Figure 1: "inode
    // lists" / "dcache lists"). Stock acquires them on every inode/dentry
    // lifecycle event; PK avoids them when unnecessary.
    inode_list: SpinLock<()>,
    dcache_list: SpinLock<()>,
    config: VfsConfig,
    stats: Arc<VfsStats>,
}

impl SuperBlock {
    /// Creates a read-write super block.
    pub fn new(config: VfsConfig, stats: Arc<VfsStats>) -> Self {
        use pk_lockdep::{register_class, LockKind};
        let percore_class = register_class("vfs.sb.open_list_percore", "pk-vfs", LockKind::Spin);
        let sb = Self {
            next_file: AtomicU64::new(1),
            global_list: SpinLock::new(HashSet::new()),
            percore_lists: PerCore::new_with(config.cores, |_| {
                let l = SpinLock::new(HashSet::new());
                l.set_class(percore_class);
                l
            }),
            read_only: AtomicBool::new(false),
            inode_list: SpinLock::new(()),
            dcache_list: SpinLock::new(()),
            config,
            stats,
        };
        sb.global_list.set_class(register_class(
            "vfs.sb.open_list_global",
            "pk-vfs",
            LockKind::Spin,
        ));
        sb.inode_list.set_class(register_class(
            "vfs.sb.inode_list",
            "pk-vfs",
            LockKind::Spin,
        ));
        sb.dcache_list.set_class(register_class(
            "vfs.sb.dcache_list",
            "pk-vfs",
            LockKind::Spin,
        ));
        sb
    }

    /// Registers a newly opened file on `core`, returning its id and the
    /// core whose list holds it.
    pub fn add_open_file(&self, core: CoreId) -> (OpenFileId, CoreId) {
        let id = OpenFileId(self.next_file.fetch_add(1, Ordering::Relaxed));
        if self.config.percore_open_lists {
            pk_lockdep::check_percore_mutation("vfs.sb.open_list_percore", core.index());
            self.percore_lists.get(core).lock().insert(id);
            VfsStats::bump(&self.stats.open_list_percore_ops);
            (id, core)
        } else {
            self.global_list.lock().insert(id);
            VfsStats::bump(&self.stats.open_list_global_ops);
            (id, core)
        }
    }

    /// Removes a file opened on `home` when closed on `core`.
    ///
    /// With per-core lists, closing on the opening core is cheap; a
    /// migrated process pays the expensive cross-core removal the paper
    /// describes.
    pub fn remove_open_file(&self, id: OpenFileId, home: CoreId, core: CoreId) {
        if self.config.percore_open_lists {
            if home != core {
                VfsStats::bump(&self.stats.open_list_cross_core_removals);
                // The expensive migrated-close path of §4.5: removing
                // from another core's list is the documented exception.
                let _migrate = pk_lockdep::MigrationScope::enter();
                self.percore_lists.get(home).lock().remove(&id);
                return;
            }
            VfsStats::bump(&self.stats.open_list_percore_ops);
            pk_lockdep::check_percore_mutation("vfs.sb.open_list_percore", home.index());
            self.percore_lists.get(home).lock().remove(&id);
        } else {
            self.global_list.lock().remove(&id);
            VfsStats::bump(&self.stats.open_list_global_ops);
        }
    }

    /// Returns the total number of open files (scans all lists).
    pub fn open_files(&self) -> usize {
        if self.config.percore_open_lists {
            self.percore_lists.fold(0, |a, l| a + l.lock().len())
        } else {
            self.global_list.lock().len()
        }
    }

    /// Attempts to remount read-only; fails with files open. Must "lock
    /// and scan all cores' lists."
    pub fn remount_read_only(&self) -> Result<(), crate::VfsError> {
        let open = self.open_files();
        if open > 0 {
            return Err(crate::VfsError::Busy);
        }
        self.read_only.store(true, Ordering::Release);
        Ok(())
    }

    /// Remounts read-write.
    pub fn remount_read_write(&self) {
        self.read_only.store(false, Ordering::Release);
    }

    /// Returns whether the super block is read-only.
    pub fn is_read_only(&self) -> bool {
        self.read_only.load(Ordering::Acquire)
    }

    /// Performs the inode-list bookkeeping for an inode lifecycle event.
    ///
    /// Stock always locks the global inode list; PK skips it when the
    /// event doesn't actually require list membership changes
    /// (`necessary = false`).
    pub fn inode_list_bookkeeping(&self, necessary: bool) {
        if necessary || !self.config.avoid_inode_list_locks {
            let _g = self.inode_list.lock();
            VfsStats::bump(&self.stats.list_lock_acquisitions);
        } else {
            VfsStats::bump(&self.stats.list_lock_skips);
        }
    }

    /// Performs the dcache-list bookkeeping for a dentry lifecycle event,
    /// with the same stock/PK split as [`Self::inode_list_bookkeeping`].
    pub fn dcache_list_bookkeeping(&self, necessary: bool) {
        if necessary || !self.config.avoid_dcache_list_locks {
            let _g = self.dcache_list.lock();
            VfsStats::bump(&self.stats.list_lock_acquisitions);
        } else {
            VfsStats::bump(&self.stats.list_lock_skips);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sb(percore: bool) -> (SuperBlock, Arc<VfsStats>) {
        let stats = Arc::new(VfsStats::new());
        let mut cfg = VfsConfig::pk(4);
        cfg.percore_open_lists = percore;
        (SuperBlock::new(cfg, Arc::clone(&stats)), stats)
    }

    #[test]
    fn open_close_same_core() {
        let (sb, stats) = sb(true);
        let (id, home) = sb.add_open_file(CoreId(2));
        assert_eq!(sb.open_files(), 1);
        sb.remove_open_file(id, home, CoreId(2));
        assert_eq!(sb.open_files(), 0);
        assert_eq!(
            stats.open_list_cross_core_removals.load(Ordering::Relaxed),
            0
        );
    }

    #[test]
    fn cross_core_close_is_counted() {
        let (sb, stats) = sb(true);
        let (id, home) = sb.add_open_file(CoreId(0));
        sb.remove_open_file(id, home, CoreId(3));
        assert_eq!(sb.open_files(), 0);
        assert_eq!(
            stats.open_list_cross_core_removals.load(Ordering::Relaxed),
            1
        );
    }

    #[test]
    fn global_list_counts_global_ops() {
        let (sb, stats) = sb(false);
        let (id, home) = sb.add_open_file(CoreId(1));
        sb.remove_open_file(id, home, CoreId(1));
        assert_eq!(stats.open_list_global_ops.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn remount_requires_no_open_files() {
        let (sb, _) = sb(true);
        let (id, home) = sb.add_open_file(CoreId(0));
        assert_eq!(sb.remount_read_only(), Err(crate::VfsError::Busy));
        sb.remove_open_file(id, home, CoreId(0));
        assert_eq!(sb.remount_read_only(), Ok(()));
        assert!(sb.is_read_only());
        sb.remount_read_write();
        assert!(!sb.is_read_only());
    }

    #[test]
    fn list_bookkeeping_respects_config() {
        let (sb, stats) = sb(true); // avoid_list_locks = true (PK)
        sb.inode_list_bookkeeping(false);
        sb.dcache_list_bookkeeping(false);
        assert_eq!(stats.list_lock_acquisitions.load(Ordering::Relaxed), 0);
        assert_eq!(stats.list_lock_skips.load(Ordering::Relaxed), 2);
        sb.inode_list_bookkeeping(true); // necessary → still locks
        assert_eq!(stats.list_lock_acquisitions.load(Ordering::Relaxed), 1);

        let stats2 = Arc::new(VfsStats::new());
        let sb2 = SuperBlock::new(VfsConfig::stock(4), Arc::clone(&stats2));
        sb2.inode_list_bookkeeping(false); // stock always locks
        assert_eq!(stats2.list_lock_acquisitions.load(Ordering::Relaxed), 1);
    }
}
