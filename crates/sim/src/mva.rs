//! Mean Value Analysis over closed queueing networks of cores and
//! shared cache lines.

/// How a station serves contending cores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StationKind {
    /// Perfectly parallel work (user code, core-local kernel code):
    /// residence time never grows with load.
    Delay,
    /// A serialized shared resource — a contended cache line, an MCS
    /// lock, a ticket-lock *handoff*: waiting grows with queue length but
    /// service time stays constant.
    Queue,
    /// A non-scalable spin lock: like [`StationKind::Queue`], but each
    /// waiter's cache-line polling slows the holder, so the *service
    /// time itself* grows with the queue — "this traffic may slow down
    /// the core that holds the lock by an amount proportional to the
    /// number of waiting cores" (§4.1). `collapse` is the per-waiter
    /// inflation factor.
    NonScalable {
        /// Service-time inflation per queued waiter (e.g. 0.4 → each
        /// waiter adds 40% of the base service time).
        collapse: f64,
    },
}

/// One station in the network.
#[derive(Debug, Clone)]
pub struct Station {
    /// Label used in reports and CPU-time attribution.
    pub name: &'static str,
    /// Service demand per operation, in cycles (visits × per-visit
    /// service time).
    pub demand_cycles: f64,
    /// Queueing behaviour.
    pub kind: StationKind,
    /// Whether residence here counts as system (kernel) time.
    pub is_system: bool,
    /// The kernel structure this station models, as a stable class name
    /// (`"vfs.mount_table"`, `"net.dst_ref"`, …) — the same naming
    /// convention `pk-lockdep` uses for lock classes. An observational
    /// fact about the station, not a policy: `pk-adapt` matches it
    /// against the fix registry to decide which lever relieves the
    /// contention measured here. `None` for stations with no adaptable
    /// kernel structure behind them (user code, app-level locks).
    pub class: Option<&'static str>,
}

impl Station {
    /// A delay station (perfectly parallel cycles).
    pub fn delay(name: &'static str, demand_cycles: f64, is_system: bool) -> Self {
        Self {
            name,
            demand_cycles,
            kind: StationKind::Delay,
            is_system,
            class: None,
        }
    }

    /// A serialized-but-scalable station (constant service time).
    pub fn queue(name: &'static str, demand_cycles: f64, is_system: bool) -> Self {
        Self {
            name,
            demand_cycles,
            kind: StationKind::Queue,
            is_system,
            class: None,
        }
    }

    /// A non-scalable spin lock with the given collapse factor.
    pub fn spinlock(
        name: &'static str,
        demand_cycles: f64,
        collapse: f64,
        is_system: bool,
    ) -> Self {
        Self {
            name,
            demand_cycles,
            kind: StationKind::NonScalable { collapse },
            is_system,
            class: None,
        }
    }

    /// Tags the station with the kernel-structure class it models.
    pub fn with_class(mut self, class: &'static str) -> Self {
        self.class = Some(class);
        self
    }
}

/// Per-station output of the solver.
#[derive(Debug, Clone)]
pub struct StationResult {
    /// Station label.
    pub name: &'static str,
    /// How the station serves contending cores.
    pub kind: StationKind,
    /// Service demand per operation, in cycles (the load-independent
    /// input, before any queueing or collapse inflation).
    pub demand_cycles: f64,
    /// Mean residence time per operation, in cycles (service + waiting).
    pub residence_cycles: f64,
    /// Mean queue length.
    pub queue_len: f64,
    /// Utilization in `[0, 1]` (can exceed 1 transiently for
    /// non-scalable stations where service inflates).
    pub utilization: f64,
    /// Whether this station's residence is system time.
    pub is_system: bool,
}

impl StationResult {
    /// Cycles per operation lost to waiting (and, for non-scalable
    /// stations, to waiter-induced service inflation) — residence
    /// beyond the raw demand.
    pub fn wait_cycles(&self) -> f64 {
        (self.residence_cycles - self.demand_cycles).max(0.0)
    }
}

/// Output of one MVA solve.
#[derive(Debug, Clone)]
pub struct MvaResult {
    /// Active cores (customers).
    pub cores: usize,
    /// System throughput in operations per cycle.
    pub ops_per_cycle: f64,
    /// Mean end-to-end cycles per operation.
    pub cycles_per_op: f64,
    /// Cycles per op spent in stations marked `is_system`, including
    /// waiting (the paper's "system time").
    pub system_cycles_per_op: f64,
    /// Cycles per op in user-side stations.
    pub user_cycles_per_op: f64,
    /// Per-station detail.
    pub stations: Vec<StationResult>,
}

impl MvaResult {
    /// Throughput per core, in operations per cycle.
    pub fn ops_per_cycle_per_core(&self) -> f64 {
        self.ops_per_cycle / self.cores as f64
    }

    /// The station with the longest residence time (the bottleneck).
    pub fn bottleneck(&self) -> &StationResult {
        self.stations
            .iter()
            .max_by(|a, b| a.residence_cycles.total_cmp(&b.residence_cycles))
            .expect("networks have at least one station")
    }

    /// Exports every station as a [`pk_obs::Sample`] so the solve can
    /// feed the metrics registry and the contention report.
    ///
    /// Cache-line transfers per operation are the MESI estimate for a
    /// line owned by a serialized station: each visit moves the line
    /// unless the same core held it last (`(n-1)/n`), and every queued
    /// waiter at a non-scalable lock re-pulls the line while polling —
    /// the same traffic the collapse factor charges to the holder.
    pub fn snapshot(&self) -> pk_obs::Snapshot {
        let mut snap = pk_obs::Snapshot::new();
        let handoff = 1.0 - 1.0 / self.cores as f64;
        for st in &self.stations {
            let line_transfers = match st.kind {
                StationKind::Delay => 0.0,
                StationKind::Queue => handoff,
                StationKind::NonScalable { .. } => handoff + st.queue_len,
            };
            snap.push(pk_obs::Sample::station(
                st.name,
                pk_obs::StationSample {
                    demand_cycles: st.demand_cycles,
                    residence_cycles: st.residence_cycles,
                    wait_cycles: st.wait_cycles(),
                    queue_len: st.queue_len,
                    utilization: st.utilization,
                    line_transfers,
                    is_system: st.is_system,
                },
            ));
        }
        snap
    }
}

/// A closed queueing network of identical cores over shared stations.
#[derive(Debug, Clone, Default)]
pub struct Network {
    stations: Vec<Station>,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a station, skipping those with zero demand.
    pub fn push(&mut self, station: Station) -> &mut Self {
        if station.demand_cycles > 0.0 {
            self.stations.push(station);
        }
        self
    }

    /// Returns the stations.
    pub fn stations(&self) -> &[Station] {
        &self.stations
    }

    /// Clusters the classed, serialized kernel stations into one coarse
    /// lock per subsystem — the `coarse` personality's lowering, after
    /// "An Evaluation of Coarse-Grained Locking for Multicore
    /// Microkernels": instead of one fine-grained lock per structure,
    /// the kernel takes a single subsystem lock (`coarse.vfs_lock`,
    /// `coarse.net_lock`, `coarse.mm_lock`).
    ///
    /// Each cluster's demand is the sum of its members' demands times
    /// [`Self::COARSE_DISCOUNT`] (fewer distinct lock operations per
    /// syscall — the trade-off's upside), and its collapse factor is the
    /// worst member's (polling waiters hammer the one lock — the
    /// downside, which dominates as cores grow). Delay stations and
    /// unclassed stations (user code, app-level locks) pass through
    /// untouched, as do classed stations from subsystems outside the
    /// clustering map.
    pub fn coarsen(&self) -> Self {
        /// The per-acquire savings from folding many lock sites into
        /// one: a coarse kernel executes fewer lock instructions per
        /// syscall, so serialized demand shrinks modestly.
        const DISCOUNT: f64 = 0.85;
        /// Even classes modeled as scalable queues inherit a minimum
        /// collapse once clustered: a single subsystem lock is a
        /// classic non-scalable ticket lock.
        const COLLAPSE_FLOOR: f64 = 0.05;
        const CLUSTERS: [(&str, &str); 3] = [
            ("vfs.", "coarse.vfs_lock"),
            ("net.", "coarse.net_lock"),
            ("mm.", "coarse.mm_lock"),
        ];
        let mut out = Network::new();
        // (summed demand, max collapse) per cluster, in CLUSTERS order.
        let mut acc = [(0.0f64, COLLAPSE_FLOOR); CLUSTERS.len()];
        for st in &self.stations {
            let cluster = match (st.class, st.kind) {
                (Some(class), StationKind::Queue | StationKind::NonScalable { .. }) => CLUSTERS
                    .iter()
                    .position(|(prefix, _)| class.starts_with(prefix)),
                _ => None,
            };
            match cluster {
                Some(i) => {
                    acc[i].0 += st.demand_cycles * DISCOUNT;
                    if let StationKind::NonScalable { collapse } = st.kind {
                        acc[i].1 = acc[i].1.max(collapse);
                    }
                }
                None => {
                    out.push(st.clone());
                }
            }
        }
        for (i, &(_, name)) in CLUSTERS.iter().enumerate() {
            let (demand, collapse) = acc[i];
            out.push(Station::spinlock(name, demand, collapse, true).with_class(name));
        }
        out
    }

    /// Solves the network for `cores` customers by exact MVA, extended
    /// with load-dependent service for non-scalable stations.
    ///
    /// # Panics
    ///
    /// Panics if the network has no stations or `cores == 0`.
    pub fn solve(&self, cores: usize) -> MvaResult {
        assert!(cores > 0, "need at least one core");
        assert!(!self.stations.is_empty(), "need at least one station");
        let m = self.stations.len();
        let mut queue = vec![0.0f64; m];
        let mut residence = vec![0.0f64; m];
        let mut x = 0.0f64;
        for n in 1..=cores {
            for (j, st) in self.stations.iter().enumerate() {
                residence[j] = match st.kind {
                    StationKind::Delay => st.demand_cycles,
                    StationKind::Queue => st.demand_cycles * (1.0 + queue[j]),
                    StationKind::NonScalable { collapse } => {
                        // Waiters inflate the effective service time; the
                        // arrival-theorem queue is seen by each arriving
                        // customer.
                        let inflated = st.demand_cycles * (1.0 + collapse * queue[j]);
                        inflated * (1.0 + queue[j])
                    }
                };
            }
            let total: f64 = residence.iter().sum();
            x = n as f64 / total;
            for j in 0..m {
                queue[j] = x * residence[j];
            }
        }
        let cycles_per_op: f64 = residence.iter().sum();
        let mut system = 0.0;
        let mut user = 0.0;
        let mut stations = Vec::with_capacity(m);
        for (j, st) in self.stations.iter().enumerate() {
            if st.is_system {
                system += residence[j];
            } else {
                user += residence[j];
            }
            stations.push(StationResult {
                name: st.name,
                kind: st.kind,
                demand_cycles: st.demand_cycles,
                residence_cycles: residence[j],
                queue_len: queue[j],
                utilization: (x * st.demand_cycles).min(cores as f64),
                is_system: st.is_system,
            });
        }
        MvaResult {
            cores,
            ops_per_cycle: x,
            cycles_per_op,
            system_cycles_per_op: system,
            user_cycles_per_op: user,
            stations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * b.abs().max(1.0)
    }

    #[test]
    fn pure_delay_scales_linearly() {
        let mut net = Network::new();
        net.push(Station::delay("user", 1000.0, false));
        let x1 = net.solve(1).ops_per_cycle;
        let x48 = net.solve(48).ops_per_cycle;
        assert!(close(x48 / x1, 48.0, 1e-9), "delay-only network is linear");
    }

    #[test]
    fn single_queue_saturates_at_service_rate() {
        let mut net = Network::new();
        net.push(Station::delay("user", 9000.0, false));
        net.push(Station::queue("lock", 1000.0, true));
        // Asymptotic bound: X ≤ 1/D_max = 1/1000 ops/cycle.
        let x = net.solve(64).ops_per_cycle;
        assert!(x <= 1.0 / 1000.0 + 1e-12);
        assert!(x > 0.9 / 1000.0, "should approach the bound");
        // At 1 core there is no queueing at all.
        let r1 = net.solve(1);
        assert!(close(r1.cycles_per_op, 10_000.0, 1e-9));
    }

    #[test]
    fn nonscalable_station_collapses() {
        let mut net = Network::new();
        net.push(Station::delay("user", 2000.0, false));
        net.push(Station::spinlock("biglock", 500.0, 0.5, true));
        let mut best = 0.0f64;
        let mut best_n = 0;
        let mut x48 = 0.0;
        for n in 1..=48 {
            let x = net.solve(n).ops_per_cycle;
            if x > best {
                best = x;
                best_n = n;
            }
            if n == 48 {
                x48 = x;
            }
        }
        assert!(best_n < 48, "peak before 48 cores (got {best_n})");
        assert!(
            x48 < best * 0.8,
            "total throughput collapses: best={best}, x48={x48}"
        );
    }

    #[test]
    fn queue_station_does_not_collapse() {
        // A scalable (constant-service) station saturates but never loses
        // total throughput.
        let mut net = Network::new();
        net.push(Station::delay("user", 2000.0, false));
        net.push(Station::queue("mcslock", 500.0, true));
        let mut prev = 0.0;
        for n in 1..=48 {
            let x = net.solve(n).ops_per_cycle;
            assert!(x >= prev - 1e-15, "monotone non-decreasing at n={n}");
            prev = x;
        }
    }

    #[test]
    fn system_user_split_accounts_everything() {
        let mut net = Network::new();
        net.push(Station::delay("user", 3000.0, false));
        net.push(Station::queue("refcount", 200.0, true));
        let r = net.solve(16);
        assert!(close(
            r.system_cycles_per_op + r.user_cycles_per_op,
            r.cycles_per_op,
            1e-12
        ));
        assert!(r.system_cycles_per_op >= 200.0);
    }

    #[test]
    fn bottleneck_identifies_hottest_station() {
        let mut net = Network::new();
        net.push(Station::delay("user", 100.0, false));
        net.push(Station::queue("cold", 10.0, true));
        net.push(Station::queue("hot", 400.0, true));
        let r = net.solve(32);
        assert_eq!(r.bottleneck().name, "hot");
    }

    #[test]
    fn snapshot_exports_station_samples() {
        let mut net = Network::new();
        net.push(Station::delay("user", 5_000.0, false));
        net.push(Station::spinlock("hot", 800.0, 0.4, true));
        let r = net.solve(32);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 2);
        let user = snap.find("user").unwrap();
        let hot = snap.find("hot").unwrap();
        match (&user.value, &hot.value) {
            (pk_obs::MetricValue::Station(u), pk_obs::MetricValue::Station(h)) => {
                assert_eq!(u.wait_cycles, 0.0, "delay stations never wait");
                assert_eq!(u.line_transfers, 0.0, "core-local lines never move");
                assert!(h.wait_cycles > 0.0, "a contended lock waits");
                assert!(
                    h.line_transfers > 1.0,
                    "handoffs plus waiter polling move the line: {}",
                    h.line_transfers
                );
                assert!(h.is_system && !u.is_system);
            }
            v => panic!("wrong value kinds: {v:?}"),
        }
    }

    #[test]
    fn station_result_carries_demand_and_wait() {
        let mut net = Network::new();
        net.push(Station::delay("user", 2_000.0, false));
        net.push(Station::queue("lock", 500.0, true));
        let r = net.solve(16);
        let lock = r.stations.iter().find(|s| s.name == "lock").unwrap();
        assert_eq!(lock.demand_cycles, 500.0);
        assert!((lock.wait_cycles() - (lock.residence_cycles - 500.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        let mut net = Network::new();
        net.push(Station::delay("user", 1.0, false));
        net.solve(0);
    }

    #[test]
    fn coarsen_clusters_classed_kernel_stations() {
        let mut net = Network::new();
        net.push(Station::delay("user", 5_000.0, false));
        net.push(Station::spinlock("dcache", 300.0, 0.3, true).with_class("vfs.dcache"));
        net.push(Station::queue("mount", 100.0, true).with_class("vfs.mount_table"));
        net.push(Station::spinlock("dst", 200.0, 0.2, true).with_class("net.dst_ref"));
        net.push(Station::queue("applock", 50.0, false));
        let coarse = net.coarsen();
        let names: Vec<_> = coarse.stations().iter().map(|s| s.name).collect();
        assert!(names.contains(&"user"), "delay passes through");
        assert!(names.contains(&"applock"), "unclassed passes through");
        assert!(names.contains(&"coarse.vfs_lock"));
        assert!(names.contains(&"coarse.net_lock"));
        assert!(
            !names.contains(&"coarse.mm_lock"),
            "empty clusters have zero demand and are dropped by push"
        );
        let vfs = coarse
            .stations()
            .iter()
            .find(|s| s.name == "coarse.vfs_lock")
            .unwrap();
        assert!((vfs.demand_cycles - (300.0 + 100.0) * 0.85).abs() < 1e-9);
        assert_eq!(vfs.kind, StationKind::NonScalable { collapse: 0.3 });
    }

    #[test]
    fn coarse_collapses_harder_than_fine_at_scale() {
        // The coarse-grained trade-off: slightly cheaper at low core
        // counts (fewer lock ops), much worse at high core counts (one
        // lock absorbs every subsystem's traffic).
        let mut fine = Network::new();
        fine.push(Station::delay("user", 20_000.0, false));
        fine.push(Station::spinlock("a", 150.0, 0.2, true).with_class("vfs.a"));
        fine.push(Station::spinlock("b", 150.0, 0.2, true).with_class("vfs.b"));
        fine.push(Station::spinlock("c", 150.0, 0.2, true).with_class("vfs.c"));
        let coarse = fine.coarsen();
        let x_fine = fine.solve(192).ops_per_cycle;
        let x_coarse = coarse.solve(192).ops_per_cycle;
        assert!(
            x_coarse < x_fine,
            "one clustered lock serializes harder: coarse={x_coarse}, fine={x_fine}"
        );
    }

    #[test]
    fn zero_demand_stations_are_dropped() {
        let mut net = Network::new();
        net.push(Station::delay("user", 100.0, false));
        net.push(Station::queue("disabled-fix", 0.0, true));
        assert_eq!(net.stations().len(), 1);
    }
}
