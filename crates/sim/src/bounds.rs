//! Asymptotic (operational) bounds for closed networks.
//!
//! Before solving a network exactly, classical operational analysis
//! already brackets it: with total demand `D = Σ Dᵢ` of queueing
//! stations, per-customer think/delay time `Z`, and bottleneck demand
//! `D_max`,
//!
//! * `X(n) ≤ n / (D + Z)` — even with zero queueing;
//! * `X(n) ≤ 1 / D_max` — the bottleneck's service rate;
//! * the crossing point `n* = (D + Z) / D_max` predicts where the
//!   throughput curve knees.
//!
//! The figure harness uses [`knee`] to sanity-check every model: the
//! knee position is where the paper's curves change character (e.g.
//! PostgreSQL's `n* ≈ 36`), and the `bounds_bracket_mva` test keeps the
//! exact solver inside the bounds for every network.

use crate::mva::{Network, StationKind};

/// Operational bounds of a network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bounds {
    /// Total per-operation delay-station cycles (`Z`).
    pub delay_cycles: f64,
    /// Total per-operation queueing demand (`D`).
    pub queue_demand_cycles: f64,
    /// The largest single queueing demand (`D_max`), 0 if none.
    pub bottleneck_demand_cycles: f64,
}

impl Bounds {
    /// Upper bound on throughput (ops/cycle) at `n` customers.
    pub fn throughput_bound(&self, n: usize) -> f64 {
        let light = n as f64 / (self.delay_cycles + self.queue_demand_cycles);
        if self.bottleneck_demand_cycles > 0.0 {
            light.min(1.0 / self.bottleneck_demand_cycles)
        } else {
            light
        }
    }

    /// The knee: customers beyond which the bottleneck bound binds.
    /// `None` when the network has no queueing station.
    pub fn knee(&self) -> Option<f64> {
        if self.bottleneck_demand_cycles > 0.0 {
            Some((self.delay_cycles + self.queue_demand_cycles) / self.bottleneck_demand_cycles)
        } else {
            None
        }
    }
}

/// Computes the operational bounds of `net`.
///
/// Non-scalable stations are treated by their *base* demand, so the
/// bounds are those of the equivalent scalable network — an upper bound
/// for the collapsing one too.
pub fn bounds(net: &Network) -> Bounds {
    let mut delay = 0.0;
    let mut demand = 0.0;
    let mut max_d = 0.0f64;
    for s in net.stations() {
        match s.kind {
            StationKind::Delay => delay += s.demand_cycles,
            StationKind::Queue | StationKind::NonScalable { .. } => {
                demand += s.demand_cycles;
                max_d = max_d.max(s.demand_cycles);
            }
        }
    }
    Bounds {
        delay_cycles: delay,
        queue_demand_cycles: demand,
        bottleneck_demand_cycles: max_d,
    }
}

/// Shorthand: the knee of `net`, if any.
pub fn knee(net: &Network) -> Option<f64> {
    bounds(net).knee()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mva::Station;

    fn sample() -> Network {
        let mut n = Network::new();
        n.push(Station::delay("user", 9_000.0, false));
        n.push(Station::queue("lock", 1_000.0, true));
        n.push(Station::queue("counter", 250.0, true));
        n
    }

    #[test]
    fn bounds_are_computed() {
        let b = bounds(&sample());
        assert_eq!(b.delay_cycles, 9_000.0);
        assert_eq!(b.queue_demand_cycles, 1_250.0);
        assert_eq!(b.bottleneck_demand_cycles, 1_000.0);
        assert!((b.knee().unwrap() - 10.25).abs() < 1e-9);
    }

    #[test]
    fn bounds_bracket_mva() {
        let net = sample();
        let b = bounds(&net);
        for n in [1, 2, 5, 10, 11, 20, 48] {
            let exact = net.solve(n).ops_per_cycle;
            let bound = b.throughput_bound(n);
            assert!(
                exact <= bound * (1.0 + 1e-9),
                "n={n}: exact {exact} above bound {bound}"
            );
            // And the bound is not absurdly loose below the knee.
            if (n as f64) < b.knee().unwrap() / 2.0 {
                assert!(exact > 0.8 * bound, "n={n}: bound too loose");
            }
        }
    }

    #[test]
    fn delay_only_network_has_no_knee() {
        let mut n = Network::new();
        n.push(Station::delay("user", 100.0, false));
        assert_eq!(knee(&n), None);
        assert_eq!(bounds(&n).throughput_bound(10), 0.1);
    }

    #[test]
    fn postgres_knee_lands_mid_thirties() {
        // The §5.5 collapse position falls out of the model's bounds
        // (inline equivalent of the PostgreSQL stock model's hot
        // station).
        let mut n = Network::new();
        n.push(Station::delay("user+local", 114_286.0 * 0.972, false));
        n.push(Station::spinlock("lseek", 114_286.0 * 0.028, 0.13, true));
        let k = knee(&n).unwrap();
        assert!((30.0..40.0).contains(&k), "knee at {k}");
    }
}
