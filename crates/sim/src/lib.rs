//! A deterministic model of the paper's 48-core machine.
//!
//! The evaluation machine (§5.1) cannot be rented in 2010 trim, and this
//! host has one CPU, so the figures are regenerated on a performance
//! model instead of bare metal. The model is a **closed queueing
//! network** solved by Mean Value Analysis:
//!
//! * each active core is a customer cycling through one operation after
//!   another (MOSBENCH keeps every core saturated);
//! * per-core work (user code, uncontended kernel code) is *delay* —
//!   it scales perfectly;
//! * every shared cache line — a lock word, a reference count, a falsely
//!   shared structure field — is a *queueing station* whose service time
//!   is the cache-line transfer latency: "these operations take about the
//!   same time as loading data from off-chip RAM (hundreds of cycles)"
//!   (§4.1);
//! * non-scalable spin locks additionally inflate their service time in
//!   proportion to the number of waiters ("per-acquire interconnect
//!   traffic that is proportional to the number of waiting cores", §4.1,
//!   \[41\]), which is what makes stock curves *collapse* rather than
//!   merely flatten.
//!
//! On top of the network sit the §5 hardware ceilings: the NIC's
//! packet-rate limit that worsens with queue count (§5.3–§5.4), the
//! 51.5 GB/s DRAM bandwidth ceiling (§5.8), and the per-socket L3
//! capacity model behind pedsort's cache sensitivity (§5.7).
//!
//! Everything is pure arithmetic over [`MachineSpec`] constants —
//! byte-identical on every run.

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod bounds;
mod caps;
pub mod des;
pub mod flow;
mod machine;
mod mva;
pub mod open;
mod workload;

pub use caps::{DramModel, L3Model, NicModel};
pub use flow::{flow_ring_capacity, simulate_flow};
pub use machine::{MachineSpec, TopologyError};
pub use mva::{MvaResult, Network, Station, StationKind};
pub use open::{
    simulate_open, simulate_open_with_faults, ArrivalPattern, ClientMix, OpenLoopResult,
    OverloadPolicy, ShedPolicy,
};
pub use workload::{Coarsened, CoreSweep, SweepPoint, WorkloadModel};
