//! Hardware ceilings outside the queueing network: NIC, DRAM, and L3.

use crate::machine::MachineSpec;

/// The NIC throughput model (§5.3–§5.4).
///
/// Two effects bound network workloads:
///
/// * the 10 Gbit wire itself (why Apache serves a 300-byte file);
/// * the card's internal packet engine, which "appears to handle fewer
///   packets as the number of virtual queues increases" — memcached's
///   residual bottleneck past 16 cores — and whose "internal receive
///   packet FIFO overflows" in the Apache benchmark even below wire rate.
///
/// The packet-rate curve interpolates between the measured endpoints:
/// `nic_peak_pps` with one queue and `nic_pps_at_max_queues` with all 48.
#[derive(Debug, Clone, Copy)]
pub struct NicModel {
    spec: MachineSpec,
}

impl NicModel {
    /// Creates the model for `spec`.
    pub fn new(spec: MachineSpec) -> Self {
        Self { spec }
    }

    /// Maximum packets/second the card sustains with `queues` active
    /// virtual queues.
    pub fn max_pps(&self, queues: usize) -> f64 {
        let max_q = self.spec.cores() as f64;
        let q = (queues.max(1) as f64).min(max_q);
        // Linear degradation in queue count between the two measured
        // points (1 queue → peak, 48 queues → degraded).
        let frac = (q - 1.0) / (max_q - 1.0);
        self.spec.nic_peak_pps + frac * (self.spec.nic_pps_at_max_queues - self.spec.nic_peak_pps)
    }

    /// Maximum request rate for a request/response workload where one
    /// request costs `packets_per_op` packets through the card and
    /// `bits_per_op` on the wire.
    pub fn max_ops_per_sec(&self, queues: usize, packets_per_op: f64, bits_per_op: f64) -> f64 {
        let pps_bound = self.max_pps(queues) / packets_per_op.max(1e-9);
        let wire_bound = self.spec.nic_wire_bits_per_sec / bits_per_op.max(1e-9);
        pps_bound.min(wire_bound)
    }
}

/// The DRAM bandwidth ceiling (§5.8).
#[derive(Debug, Clone, Copy)]
pub struct DramModel {
    spec: MachineSpec,
}

impl DramModel {
    /// Creates the model for `spec`.
    pub fn new(spec: MachineSpec) -> Self {
        Self { spec }
    }

    /// Maximum operations/second when each op moves `bytes_per_op` bytes
    /// of DRAM traffic. Metis' reduce phase runs at 50.0 of the 51.5
    /// GB/s ceiling at 48 cores.
    pub fn max_ops_per_sec(&self, bytes_per_op: f64) -> f64 {
        self.spec.dram_peak_bytes_per_sec / bytes_per_op.max(1e-9)
    }
}

/// The per-socket L3 capacity model (§5.7–§5.8).
///
/// pedsort "is bottlenecked by cache capacity": as the per-socket working
/// set outgrows the shared L3, `msort_with_tmp` takes more misses and
/// user time rises. The model inflates user cycles by the miss fraction
/// times the DRAM/L3 latency gap.
#[derive(Debug, Clone, Copy)]
pub struct L3Model {
    spec: MachineSpec,
}

impl L3Model {
    /// Creates the model for `spec`.
    pub fn new(spec: MachineSpec) -> Self {
        Self { spec }
    }

    /// Fraction of cache accesses that miss L3 given the aggregate
    /// working set on one socket.
    pub fn miss_fraction(&self, working_set_bytes_per_socket: f64) -> f64 {
        let cap = self.spec.l3_bytes_per_socket as f64;
        if working_set_bytes_per_socket <= cap {
            0.0
        } else {
            (1.0 - cap / working_set_bytes_per_socket).clamp(0.0, 1.0)
        }
    }

    /// Inflates `user_cycles` for a workload whose cache-resident
    /// fraction `access_intensity` (accesses per cycle-ish, 0..=1 of
    /// cycles being cache accesses) runs with the given per-socket
    /// working set.
    pub fn inflate_user_cycles(
        &self,
        user_cycles: f64,
        access_intensity: f64,
        working_set_bytes_per_socket: f64,
    ) -> f64 {
        let miss = self.miss_fraction(working_set_bytes_per_socket);
        let extra_per_access = self.spec.dram_local_cycles - self.spec.l3_cycles;
        user_cycles * (1.0 + access_intensity * miss * extra_per_access / self.spec.l3_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nic_pps_degrades_with_queues() {
        let nic = NicModel::new(MachineSpec::paper());
        assert!((nic.max_pps(1) - 5.0e6).abs() < 1.0);
        assert!((nic.max_pps(48) - 2.8e6).abs() < 1.0);
        assert!(nic.max_pps(16) < nic.max_pps(8));
        assert!(nic.max_pps(0) == nic.max_pps(1), "clamped below 1");
        assert!(nic.max_pps(64) == nic.max_pps(48), "clamped above 48");
    }

    #[test]
    fn nic_ops_bound_takes_the_tighter_limit() {
        let nic = NicModel::new(MachineSpec::paper());
        // Tiny packets: pps-bound.
        let small = nic.max_ops_per_sec(48, 2.0, 2.0 * 68.0 * 8.0);
        assert!((small - 2.8e6 / 2.0).abs() / small < 1e-6);
        // Huge responses: wire-bound.
        let big = nic.max_ops_per_sec(1, 2.0, 1e6);
        assert!((big - 10e9 / 1e6).abs() / big < 1e-6);
    }

    #[test]
    fn dram_bound() {
        let dram = DramModel::new(MachineSpec::paper());
        let x = dram.max_ops_per_sec(1024.0);
        assert!((x - 51.5e9 / 1024.0).abs() / x < 1e-9);
    }

    #[test]
    fn l3_miss_fraction_kicks_in_past_capacity() {
        let l3 = L3Model::new(MachineSpec::paper());
        let cap = (5u64 << 20) as f64;
        assert_eq!(l3.miss_fraction(cap * 0.5), 0.0);
        assert_eq!(l3.miss_fraction(cap), 0.0);
        assert!(l3.miss_fraction(cap * 2.0) > 0.49);
        assert!(l3.miss_fraction(cap * 2.0) < 0.51);
    }

    #[test]
    fn l3_inflation_grows_user_time() {
        let l3 = L3Model::new(MachineSpec::paper());
        let cap = (5u64 << 20) as f64;
        let base = 1000.0;
        let fit = l3.inflate_user_cycles(base, 0.3, cap * 0.9);
        let spill = l3.inflate_user_cycles(base, 0.3, cap * 4.0);
        assert_eq!(fit, base);
        assert!(spill > base * 1.5, "misses must hurt: {spill}");
    }
}
