//! Sweeping a workload model across core counts.

use crate::machine::{MachineSpec, TopologyError};
use crate::mva::Network;

/// A workload expressed as a core-count-dependent queueing network plus
/// optional hardware ceilings.
pub trait WorkloadModel {
    /// Workload name (figure legend label).
    fn name(&self) -> String;

    /// The machine being modelled.
    fn machine(&self) -> MachineSpec;

    /// Builds the network for `cores` active cores. Demands may depend
    /// on the core count (e.g. L3 capacity inflation of user time).
    fn network(&self, cores: usize) -> Network;

    /// A hard cap on *total* operations/second at `cores` (NIC packet
    /// rate, DRAM bandwidth), if any.
    fn throughput_cap(&self, _cores: usize) -> Option<f64> {
        None
    }

    /// Operations per application-level unit (e.g. kernel ops per
    /// message); 1.0 by default.
    fn ops_per_unit(&self) -> f64 {
        1.0
    }
}

/// Wraps a model so every network it builds is clustered through
/// [`Network::coarsen`] — the `coarse` kernel personality applied at
/// the model layer. Hardware ceilings and unit conversions pass
/// through untouched; only the lock topology changes.
pub struct Coarsened(pub Box<dyn WorkloadModel>);

impl WorkloadModel for Coarsened {
    fn name(&self) -> String {
        self.0.name()
    }

    fn machine(&self) -> MachineSpec {
        self.0.machine()
    }

    fn network(&self, cores: usize) -> Network {
        self.0.network(cores).coarsen()
    }

    fn throughput_cap(&self, cores: usize) -> Option<f64> {
        self.0.throughput_cap(cores)
    }

    fn ops_per_unit(&self) -> f64 {
        self.0.ops_per_unit()
    }
}

/// One point of a core sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Active cores.
    pub cores: usize,
    /// Application units/second across all cores.
    pub total_per_sec: f64,
    /// Application units/second/core — the paper's y axis.
    pub per_core_per_sec: f64,
    /// User CPU time per unit, microseconds.
    pub user_usec: f64,
    /// System CPU time per unit, microseconds (includes lock waiting,
    /// like the paper's measurements).
    pub system_usec: f64,
    /// Whether a hardware cap (NIC/DRAM) bound this point.
    pub hw_capped: bool,
    /// Fraction of CPU capacity left idle because the hardware cap
    /// starves the cores (0.0 when CPU-bound). Apache reaches 18% at 48
    /// cores (§5.4).
    pub idle_fraction: f64,
    /// Name of the dominant station.
    pub bottleneck: &'static str,
}

/// Sweeps a model over the paper's standard core counts.
#[derive(Debug)]
pub struct CoreSweep;

impl CoreSweep {
    /// The x-axis used by every figure: 1, then multiples of 4 up to 48.
    pub fn paper_core_counts() -> Vec<usize> {
        let mut v = vec![1];
        v.extend((1..=12).map(|i| i * 4));
        v
    }

    /// The sweep axis generalized to an arbitrary topology: 1, then
    /// 12 evenly spaced steps up to the machine's full core count.
    /// For the paper's 8×6 machine this reproduces
    /// [`CoreSweep::paper_core_counts`] exactly.
    pub fn counts_for(spec: &MachineSpec) -> Vec<usize> {
        let total = spec.cores();
        let step = total.div_ceil(12).max(1);
        let mut v = vec![1];
        v.extend((1..=12).map(|i| (i * step).min(total)));
        v.dedup();
        v
    }

    /// Evaluates `model` at one core count, first checking that the
    /// count fits the model's machine. This is the sweep entry point
    /// every topology-parameterized caller goes through, so models may
    /// assume validated core counts inside `network()`.
    pub fn try_point<M: WorkloadModel + ?Sized>(
        model: &M,
        cores: usize,
    ) -> Result<SweepPoint, TopologyError> {
        model.machine().validate_cores(cores)?;
        Ok(Self::point(model, cores))
    }

    /// Evaluates `model` at one core count.
    pub fn point<M: WorkloadModel + ?Sized>(model: &M, cores: usize) -> SweepPoint {
        let spec = model.machine();
        let net = model.network(cores);
        let r = net.solve(cores);
        let units_per_cycle = r.ops_per_cycle / model.ops_per_unit();
        let uncapped = units_per_cycle * spec.clock_hz;
        let mut total = uncapped;
        let mut capped = false;
        if let Some(cap) = model.throughput_cap(cores) {
            if total > cap {
                total = cap;
                capped = true;
            }
        }
        // When the hardware cap binds, cores sit idle for the fraction
        // of work they could have done but the device never delivered.
        let idle_fraction = if capped { 1.0 - total / uncapped } else { 0.0 };
        let unit_cycles = model.ops_per_unit();
        SweepPoint {
            cores,
            total_per_sec: total,
            per_core_per_sec: total / cores as f64,
            user_usec: spec.cycles_to_usecs(r.user_cycles_per_op * unit_cycles),
            system_usec: spec.cycles_to_usecs(r.system_cycles_per_op * unit_cycles),
            hw_capped: capped,
            idle_fraction,
            bottleneck: r.bottleneck().name,
        }
    }

    /// Evaluates `model` across the paper's core counts.
    pub fn run<M: WorkloadModel + ?Sized>(model: &M) -> Vec<SweepPoint> {
        Self::paper_core_counts()
            .into_iter()
            .map(|n| Self::point(model, n))
            .collect()
    }

    /// The Figure-3 scalability ratio: per-core throughput at `max_cores`
    /// relative to one core.
    pub fn figure3_ratio<M: WorkloadModel + ?Sized>(model: &M, max_cores: usize) -> f64 {
        let one = Self::point(model, 1).per_core_per_sec;
        let many = Self::point(model, max_cores).per_core_per_sec;
        many / one
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mva::Station;

    struct Toy {
        lock_cycles: f64,
        cap: Option<f64>,
    }

    impl WorkloadModel for Toy {
        fn name(&self) -> String {
            "toy".into()
        }

        fn machine(&self) -> MachineSpec {
            MachineSpec::paper()
        }

        fn network(&self, _cores: usize) -> Network {
            let mut net = Network::new();
            net.push(Station::delay("user", 10_000.0, false));
            net.push(Station::spinlock("lock", self.lock_cycles, 0.5, true));
            net
        }

        fn throughput_cap(&self, _cores: usize) -> Option<f64> {
            self.cap
        }
    }

    #[test]
    fn paper_core_counts_match_axis() {
        let counts = CoreSweep::paper_core_counts();
        assert_eq!(counts[0], 1);
        assert_eq!(counts[1], 4);
        assert_eq!(*counts.last().unwrap(), 48);
        assert_eq!(counts.len(), 13);
    }

    #[test]
    fn generalized_counts_reproduce_the_paper_axis() {
        assert_eq!(
            CoreSweep::counts_for(&MachineSpec::paper()),
            CoreSweep::paper_core_counts()
        );
        let big = MachineSpec::with_topology(16, 12).unwrap();
        let counts = CoreSweep::counts_for(&big);
        assert_eq!(counts.first(), Some(&1));
        assert_eq!(counts.last(), Some(&192));
        assert_eq!(counts.len(), 13);
        let huge = MachineSpec::with_topology(128, 8).unwrap();
        assert_eq!(*CoreSweep::counts_for(&huge).last().unwrap(), 1024);
        let tiny = MachineSpec::with_topology(1, 1).unwrap();
        assert_eq!(CoreSweep::counts_for(&tiny), [1]);
    }

    #[test]
    fn try_point_rejects_oversubscription() {
        let toy = Toy {
            lock_cycles: 100.0,
            cap: None,
        };
        assert!(CoreSweep::try_point(&toy, 48).is_ok());
        let err = CoreSweep::try_point(&toy, 49).unwrap_err();
        assert!(matches!(
            err,
            crate::machine::TopologyError::Oversubscribed { requested: 49, .. }
        ));
    }

    #[test]
    fn contended_toy_has_declining_per_core_throughput() {
        let sweep = CoreSweep::run(&Toy {
            lock_cycles: 2_000.0,
            cap: None,
        });
        assert!(sweep.last().unwrap().per_core_per_sec < sweep[0].per_core_per_sec * 0.5);
        assert_eq!(sweep.last().unwrap().bottleneck, "lock");
    }

    #[test]
    fn figure3_ratio_is_high_for_uncontended() {
        let ratio = CoreSweep::figure3_ratio(
            &Toy {
                lock_cycles: 1.0,
                cap: None,
            },
            48,
        );
        assert!(ratio > 0.9, "nearly perfect scalability: {ratio}");
    }

    #[test]
    fn hardware_cap_applies() {
        let capped = Toy {
            lock_cycles: 1.0,
            cap: Some(100_000.0),
        };
        let p = CoreSweep::point(&capped, 48);
        assert!(p.hw_capped);
        assert!((p.total_per_sec - 100_000.0).abs() < 1e-6);
    }

    #[test]
    fn cpu_times_are_in_sane_units() {
        let p = CoreSweep::point(
            &Toy {
                lock_cycles: 100.0,
                cap: None,
            },
            1,
        );
        // 10_000 user cycles at 2.4 GHz ≈ 4.17 µs.
        assert!((p.user_usec - 10_000.0 / 2400.0).abs() < 1e-6);
        assert!(p.system_usec > 0.0);
    }
}
