//! The evaluation machine's published constants (§5.1).

/// The 48-core machine from the paper: a Tyan Thunder S4985 with eight
/// 2.4 GHz 6-core AMD Opteron 8431 chips and a dual-port Intel 82599
/// 10 Gbit NIC.
///
/// All latencies are in cycles at 2.4 GHz, exactly as the paper reports
/// them; deriving everything from this one struct keeps the model honest
/// and lets ablations vary the hardware.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineSpec {
    /// Number of sockets (chips).
    pub sockets: usize,
    /// Cores per socket.
    pub cores_per_socket: usize,
    /// Clock frequency in Hz.
    pub clock_hz: f64,
    /// L1 hit latency in cycles ("3 cycles").
    pub l1_cycles: f64,
    /// L2 hit latency in cycles ("14 cycles").
    pub l2_cycles: f64,
    /// Shared L3 hit latency in cycles ("28 cycles").
    pub l3_cycles: f64,
    /// Local DRAM read latency in cycles ("122 cycles").
    pub dram_local_cycles: f64,
    /// Farthest-chip DRAM read latency in cycles ("503 cycles").
    pub dram_far_cycles: f64,
    /// Cost of pulling a cache line another core has modified, in cycles.
    /// "About the same time as loading data from off-chip RAM (hundreds
    /// of cycles)" (§4.1); we use the mean of the near/far DRAM costs.
    pub coherence_miss_cycles: f64,
    /// Usable L3 per socket in bytes (6 MB minus the 1 MB HT Assist probe
    /// filter).
    pub l3_bytes_per_socket: u64,
    /// DRAM per socket in bytes (8 GB).
    pub dram_bytes_per_socket: u64,
    /// Peak achievable DRAM bandwidth in bytes/second ("51.5
    /// Gbyte/second measured by our microbenchmarks", §5.8).
    pub dram_peak_bytes_per_sec: f64,
    /// NIC wire rate in bits/second (one 10 Gbit port).
    pub nic_wire_bits_per_sec: f64,
    /// NIC peak packet rate with few queues ("5 million packets per
    /// second", §5.4).
    pub nic_peak_pps: f64,
    /// Packet rate the card actually sustains at 48 virtual queues
    /// ("2.8 million packets per second" delivered while overflowing,
    /// §5.4).
    pub nic_pps_at_max_queues: f64,
}

impl MachineSpec {
    /// The paper's machine.
    pub fn paper() -> Self {
        Self {
            sockets: 8,
            cores_per_socket: 6,
            clock_hz: 2.4e9,
            l1_cycles: 3.0,
            l2_cycles: 14.0,
            l3_cycles: 28.0,
            dram_local_cycles: 122.0,
            dram_far_cycles: 503.0,
            coherence_miss_cycles: (122.0 + 503.0) / 2.0,
            l3_bytes_per_socket: 5 << 20,
            dram_bytes_per_socket: 8 << 30,
            dram_peak_bytes_per_sec: 51.5e9,
            nic_wire_bits_per_sec: 10e9,
            nic_peak_pps: 5.0e6,
            nic_pps_at_max_queues: 2.8e6,
        }
    }

    /// Total core count.
    pub fn cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Converts cycles to seconds.
    pub fn cycles_to_secs(&self, cycles: f64) -> f64 {
        cycles / self.clock_hz
    }

    /// Converts cycles to microseconds.
    pub fn cycles_to_usecs(&self, cycles: f64) -> f64 {
        cycles * 1e6 / self.clock_hz
    }

    /// How many sockets are active when `cores` cores are enabled,
    /// filling sockets in order (the default enablement pattern).
    pub fn sockets_for(&self, cores: usize) -> usize {
        cores.div_ceil(self.cores_per_socket).clamp(1, self.sockets)
    }

    /// How many sockets are active when `cores` are spread round-robin
    /// over sockets (the "RR" placement of §5.7/§5.8).
    pub fn sockets_for_rr(&self, cores: usize) -> usize {
        cores.min(self.sockets).max(1)
    }
}

impl Default for MachineSpec {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machine_has_48_cores() {
        let m = MachineSpec::paper();
        assert_eq!(m.cores(), 48);
    }

    #[test]
    fn unit_conversions() {
        let m = MachineSpec::paper();
        assert!((m.cycles_to_secs(2.4e9) - 1.0).abs() < 1e-12);
        assert!((m.cycles_to_usecs(2400.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn socket_enablement_patterns() {
        let m = MachineSpec::paper();
        assert_eq!(m.sockets_for(1), 1);
        assert_eq!(m.sockets_for(6), 1);
        assert_eq!(m.sockets_for(7), 2);
        assert_eq!(m.sockets_for(48), 8);
        assert_eq!(m.sockets_for_rr(1), 1);
        assert_eq!(m.sockets_for_rr(4), 4);
        assert_eq!(m.sockets_for_rr(48), 8);
    }

    #[test]
    fn coherence_cost_is_hundreds_of_cycles() {
        let m = MachineSpec::paper();
        assert!(m.coherence_miss_cycles > 100.0);
        assert!(m.coherence_miss_cycles < 600.0);
    }
}
