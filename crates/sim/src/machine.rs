//! The evaluation machine's published constants (§5.1), plus sweepable
//! topologies for the beyond-48-core extrapolations (§7).

/// A topology request the machine model cannot satisfy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// More active cores requested than the topology provides. The old
    /// behaviour silently clamped to the socket count, which made an
    /// oversubscribed sweep produce confidently wrong cache-pressure
    /// numbers; now it is a typed error callers must surface.
    Oversubscribed {
        /// Cores requested.
        requested: usize,
        /// Sockets in the topology.
        sockets: usize,
        /// Cores per socket in the topology.
        cores_per_socket: usize,
    },
    /// Zero cores requested (or a zero-sized topology axis).
    Empty,
    /// A topology string that is not `<sockets>x<cores_per_socket>`.
    Malformed(String),
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Oversubscribed {
                requested,
                sockets,
                cores_per_socket,
            } => write!(
                f,
                "{requested} cores oversubscribe the {sockets}x{cores_per_socket} topology \
                 ({} cores total)",
                sockets * cores_per_socket
            ),
            Self::Empty => write!(f, "topology axes and core counts must be nonzero"),
            Self::Malformed(s) => {
                write!(
                    f,
                    "malformed topology {s:?} (expected <sockets>x<cores_per_socket>)"
                )
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// The 48-core machine from the paper: a Tyan Thunder S4985 with eight
/// 2.4 GHz 6-core AMD Opteron 8431 chips and a dual-port Intel 82599
/// 10 Gbit NIC.
///
/// All latencies are in cycles at 2.4 GHz, exactly as the paper reports
/// them; deriving everything from this one struct keeps the model honest
/// and lets ablations vary the hardware.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineSpec {
    /// Number of sockets (chips).
    pub sockets: usize,
    /// Cores per socket.
    pub cores_per_socket: usize,
    /// Clock frequency in Hz.
    pub clock_hz: f64,
    /// L1 hit latency in cycles ("3 cycles").
    pub l1_cycles: f64,
    /// L2 hit latency in cycles ("14 cycles").
    pub l2_cycles: f64,
    /// Shared L3 hit latency in cycles ("28 cycles").
    pub l3_cycles: f64,
    /// Local DRAM read latency in cycles ("122 cycles").
    pub dram_local_cycles: f64,
    /// Farthest-chip DRAM read latency in cycles ("503 cycles").
    pub dram_far_cycles: f64,
    /// Cost of pulling a cache line another core has modified, in cycles.
    /// "About the same time as loading data from off-chip RAM (hundreds
    /// of cycles)" (§4.1); we use the mean of the near/far DRAM costs.
    pub coherence_miss_cycles: f64,
    /// Usable L3 per socket in bytes (6 MB minus the 1 MB HT Assist probe
    /// filter).
    pub l3_bytes_per_socket: u64,
    /// DRAM per socket in bytes (8 GB).
    pub dram_bytes_per_socket: u64,
    /// Peak achievable DRAM bandwidth in bytes/second ("51.5
    /// Gbyte/second measured by our microbenchmarks", §5.8).
    pub dram_peak_bytes_per_sec: f64,
    /// NIC wire rate in bits/second (one 10 Gbit port).
    pub nic_wire_bits_per_sec: f64,
    /// NIC peak packet rate with few queues ("5 million packets per
    /// second", §5.4).
    pub nic_peak_pps: f64,
    /// Packet rate the card actually sustains at 48 virtual queues
    /// ("2.8 million packets per second" delivered while overflowing,
    /// §5.4).
    pub nic_pps_at_max_queues: f64,
}

impl MachineSpec {
    /// The paper's machine.
    pub fn paper() -> Self {
        Self {
            sockets: 8,
            cores_per_socket: 6,
            clock_hz: 2.4e9,
            l1_cycles: 3.0,
            l2_cycles: 14.0,
            l3_cycles: 28.0,
            dram_local_cycles: 122.0,
            dram_far_cycles: 503.0,
            coherence_miss_cycles: (122.0 + 503.0) / 2.0,
            l3_bytes_per_socket: 5 << 20,
            dram_bytes_per_socket: 8 << 30,
            dram_peak_bytes_per_sec: 51.5e9,
            nic_wire_bits_per_sec: 10e9,
            nic_peak_pps: 5.0e6,
            nic_pps_at_max_queues: 2.8e6,
        }
    }

    /// The paper's machine scaled to a different `sockets` ×
    /// `cores_per_socket` topology — the §7 "would the fixes hold past
    /// 48 cores" axis. Per-socket constants (L3, DRAM capacity and
    /// bandwidth, cache latencies) are per-socket already, so they
    /// scale with the socket count automatically; only the shape
    /// changes.
    pub fn with_topology(sockets: usize, cores_per_socket: usize) -> Result<Self, TopologyError> {
        if sockets == 0 || cores_per_socket == 0 {
            return Err(TopologyError::Empty);
        }
        Ok(Self {
            sockets,
            cores_per_socket,
            ..Self::paper()
        })
    }

    /// Parses a `<sockets>x<cores_per_socket>` topology string (e.g.
    /// `8x6`, `16x12`) into a scaled paper machine.
    pub fn parse_topology(s: &str) -> Result<Self, TopologyError> {
        let malformed = || TopologyError::Malformed(s.to_string());
        let (sockets, cps) = s.split_once(['x', 'X']).ok_or_else(malformed)?;
        let sockets: usize = sockets.trim().parse().map_err(|_| malformed())?;
        let cps: usize = cps.trim().parse().map_err(|_| malformed())?;
        Self::with_topology(sockets, cps)
    }

    /// Total core count.
    pub fn cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Checks that `cores` active cores fit this topology.
    pub fn validate_cores(&self, cores: usize) -> Result<(), TopologyError> {
        if cores == 0 {
            return Err(TopologyError::Empty);
        }
        if cores > self.cores() {
            return Err(TopologyError::Oversubscribed {
                requested: cores,
                sockets: self.sockets,
                cores_per_socket: self.cores_per_socket,
            });
        }
        Ok(())
    }

    /// Converts cycles to seconds.
    pub fn cycles_to_secs(&self, cycles: f64) -> f64 {
        cycles / self.clock_hz
    }

    /// Converts cycles to microseconds.
    pub fn cycles_to_usecs(&self, cycles: f64) -> f64 {
        cycles * 1e6 / self.clock_hz
    }

    /// How many sockets are active when `cores` cores are enabled,
    /// filling sockets in order (the default enablement pattern).
    /// Oversubscription is a [`TopologyError`], not a clamp: the old
    /// clamping answer under-counted cores-per-socket cache pressure
    /// for any request past the machine's size.
    pub fn sockets_for(&self, cores: usize) -> Result<usize, TopologyError> {
        self.validate_cores(cores)?;
        Ok(cores.div_ceil(self.cores_per_socket))
    }

    /// How many sockets are active when `cores` are spread round-robin
    /// over sockets (the "RR" placement of §5.7/§5.8). Errors like
    /// [`MachineSpec::sockets_for`] on oversubscription.
    pub fn sockets_for_rr(&self, cores: usize) -> Result<usize, TopologyError> {
        self.validate_cores(cores)?;
        Ok(cores.min(self.sockets))
    }
}

impl Default for MachineSpec {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machine_has_48_cores() {
        let m = MachineSpec::paper();
        assert_eq!(m.cores(), 48);
    }

    #[test]
    fn unit_conversions() {
        let m = MachineSpec::paper();
        assert!((m.cycles_to_secs(2.4e9) - 1.0).abs() < 1e-12);
        assert!((m.cycles_to_usecs(2400.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn socket_enablement_patterns() {
        let m = MachineSpec::paper();
        assert_eq!(m.sockets_for(1), Ok(1));
        assert_eq!(m.sockets_for(6), Ok(1));
        assert_eq!(m.sockets_for(7), Ok(2));
        assert_eq!(m.sockets_for(48), Ok(8));
        assert_eq!(m.sockets_for_rr(1), Ok(1));
        assert_eq!(m.sockets_for_rr(4), Ok(4));
        assert_eq!(m.sockets_for_rr(48), Ok(8));
    }

    #[test]
    fn oversubscription_is_a_typed_error_not_a_clamp() {
        let m = MachineSpec::paper();
        let err = m.sockets_for(49).unwrap_err();
        assert_eq!(
            err,
            TopologyError::Oversubscribed {
                requested: 49,
                sockets: 8,
                cores_per_socket: 6,
            }
        );
        assert!(err.to_string().contains("49 cores oversubscribe the 8x6"));
        assert!(m.sockets_for_rr(100).is_err());
        assert_eq!(m.sockets_for(0), Err(TopologyError::Empty));
        // The same request fits once the topology grows.
        let big = MachineSpec::with_topology(16, 12).unwrap();
        assert_eq!(big.sockets_for(49), Ok(5));
        assert_eq!(big.sockets_for(192), Ok(16));
    }

    #[test]
    fn topologies_scale_the_paper_machine() {
        let m = MachineSpec::with_topology(16, 12).unwrap();
        assert_eq!(m.cores(), 192);
        // Per-socket constants are untouched; capacity scales by count.
        let paper = MachineSpec::paper();
        assert_eq!(m.l3_bytes_per_socket, paper.l3_bytes_per_socket);
        assert_eq!(m.clock_hz, paper.clock_hz);
        assert!(MachineSpec::with_topology(0, 6).is_err());
        assert!(MachineSpec::with_topology(8, 0).is_err());
    }

    #[test]
    fn topology_strings_parse() {
        assert_eq!(MachineSpec::parse_topology("8x6"), Ok(MachineSpec::paper()));
        let m = MachineSpec::parse_topology("86X12").unwrap();
        assert_eq!(m.cores(), 1032);
        for bad in ["", "8", "8x", "x6", "8x6x2", "ax6", "8 by 6"] {
            assert!(
                matches!(
                    MachineSpec::parse_topology(bad),
                    Err(TopologyError::Malformed(_))
                ),
                "{bad:?} must be malformed"
            );
        }
        assert_eq!(
            MachineSpec::parse_topology("0x6"),
            Err(TopologyError::Empty)
        );
    }

    #[test]
    fn the_1024_core_topology_validates_at_its_exact_edge() {
        // The §7 sweep's largest shape: 64 sockets × 16 cores. The
        // total is a power of two — the shape that breaks any wheel or
        // mask math quietly tuned for the paper's 8×6 — so the
        // boundary must be exact: 1024 fits, 1025 is a typed error.
        let m = MachineSpec::parse_topology("64x16").unwrap();
        assert_eq!(m.cores(), 1024);
        assert_eq!(m.validate_cores(1024), Ok(()));
        assert_eq!(m.sockets_for(1024), Ok(64));
        assert_eq!(m.sockets_for_rr(1024), Ok(64));
        // Partial enablement still fills sockets in order.
        assert_eq!(m.sockets_for(17), Ok(2));
        assert_eq!(m.sockets_for_rr(17), Ok(17));
        let err = m.validate_cores(1025).unwrap_err();
        assert_eq!(
            err,
            TopologyError::Oversubscribed {
                requested: 1025,
                sockets: 64,
                cores_per_socket: 16,
            }
        );
        assert!(err
            .to_string()
            .contains("1025 cores oversubscribe the 64x16"));
        assert_eq!(m.validate_cores(0), Err(TopologyError::Empty));
        // Negative and overflowing socket counts are malformed, not
        // panics or silent wraps.
        for bad in ["-64x16", "64x-16", "99999999999999999999x16", "64x1.6"] {
            assert!(
                matches!(
                    MachineSpec::parse_topology(bad),
                    Err(TopologyError::Malformed(_))
                ),
                "{bad:?} must be malformed"
            );
        }
    }

    #[test]
    fn coherence_cost_is_hundreds_of_cycles() {
        let m = MachineSpec::paper();
        assert!(m.coherence_miss_cycles > 100.0);
        assert!(m.coherence_miss_cycles < 600.0);
    }
}
