//! A discrete-event simulator for the same closed networks MVA solves.
//!
//! The figure sweeps use Mean Value Analysis because it is exact (for
//! product-form networks), instant, and deterministic. This module is
//! the cross-check: an event-driven simulation of the *same* network —
//! cores cycling through stations, FCFS queues, exponential service —
//! whose measured throughput must agree with MVA. The
//! `des_validates_mva` tests pin the two solvers against each other, so
//! a bug in either one breaks the build.
//!
//! Non-scalable stations are simulated literally: a waiter's polling
//! slows the holder, so the service time drawn at dispatch is inflated
//! by the queue length at that instant — the same load-dependence the
//! MVA extension models.

use crate::mva::{Network, StationKind};
use pk_fault::{FaultPlane, FaultPoint};
use pk_trace::{EventKind, Tracer};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

/// Extra cycles a lock holder loses when the `sim.lock_holder_preempt`
/// fault fires at a service start: the holder is descheduled mid
/// critical section and every waiter spins for the full quantum. The
/// magnitude is a scheduler timeslice in cycles, dwarfing any service
/// demand in the roster networks.
const PREEMPT_CYCLES: u64 = 50_000;

/// Extra cycles a core loses when the `sim.core_stall` fault fires at a
/// dispatch: the core is stalled (interrupt storm, SMI, thermal event)
/// before it reaches the station.
const STALL_CYCLES: u64 = 10_000;

/// Result of one simulation run.
#[derive(Debug, Clone)]
pub struct DesResult {
    /// Measured throughput in operations per cycle (post-warmup).
    pub ops_per_cycle: f64,
    /// Operations completed in the measurement window.
    pub completed_ops: u64,
    /// Mean cycles per operation (end-to-end, post-warmup).
    pub cycles_per_op: f64,
    /// Per-station mean queue length sampled at departures.
    pub mean_queue_len: Vec<f64>,
    /// Per-station mean queueing delay per visit, in cycles: time from
    /// joining the queue to service start, measured over the whole run.
    pub mean_wait_cycles: Vec<f64>,
    /// Per-station cache-line transfers over the whole run: one per
    /// service start whose previous holder was a different core, plus
    /// one per enqueue at a non-scalable lock (the waiter pulls the
    /// line to poll it — the traffic behind the collapse factor).
    pub line_transfers: Vec<u64>,
}

/// Ordered event: (time, sequence, customer), wrapped so the max-heap
/// pops the *smallest* `(time, seq)` first. The `seq` component makes
/// the order total: simultaneous events dispatch FIFO (smallest
/// sequence number first) — the canonical tie-break contract every
/// engine must honour (see the `simultaneous_events_dispatch_fifo`
/// regression test).
type Event = Reverse<(u64, u64, usize)>;

/// Per-customer progress.
#[derive(Debug, Clone, Copy)]
struct Customer {
    station: usize,
    ops_done: u64,
    op_start: u64,
}

/// Per-station runtime state.
#[derive(Debug)]
struct StationState {
    busy: bool,
    /// Waiters with their enqueue times.
    queue: VecDeque<(usize, u64)>,
    queue_len_samples: f64,
    samples: u64,
    /// Total cycles waiters spent queued (enqueue → service start).
    wait_cycles: u64,
    /// Service starts, for per-visit wait averaging.
    service_starts: u64,
    /// Cache-line transfers (owner changes + non-scalable polling).
    transfers: u64,
    /// Core whose cache last held the station's line.
    last_owner: Option<usize>,
}

impl StationState {
    /// Charges the coherence cost of customer `c` starting service.
    fn start_service(&mut self, c: usize, nonscalable_waiters: usize) {
        self.service_starts += 1;
        if self.last_owner != Some(c) {
            self.transfers += 1;
        }
        self.last_owner = Some(c);
        // Every waiter polling a non-scalable lock pulls the line
        // away from the new holder at least once per handoff.
        self.transfers += nonscalable_waiters as u64;
    }
}

/// Simulates `net` with `cores` customers for `ops_per_core` operations
/// each (plus a 20% warmup that is excluded from the measurement).
///
/// Service times are exponential with the stations' mean demands, drawn
/// from a deterministic seeded generator: the same `(net, cores,
/// ops_per_core, seed)` always produces the same result.
///
/// # Panics
///
/// Panics if the network is empty or `cores == 0`.
pub fn simulate(net: &Network, cores: usize, ops_per_core: u64, seed: u64) -> DesResult {
    simulate_with_faults(net, cores, ops_per_core, seed, &FaultPlane::disabled())
}

/// [`simulate`] with a fault plane wired into the event loop.
///
/// Two injection points perturb the simulated hardware:
///
/// * `sim.lock_holder_preempt` — checked at every Queue/NonScalable
///   service start; when it fires the service time is inflated by
///   [`PREEMPT_CYCLES`], modeling the holder losing its timeslice
///   inside the critical section (the pathology spin locks are famously
///   vulnerable to).
/// * `sim.core_stall` — checked at every dispatch; when it fires the
///   customer arrives [`STALL_CYCLES`] late, modeling a stalled core.
///
/// With the plane disabled this is byte-for-byte [`simulate`]: the
/// fault checks cost one relaxed atomic load and draw nothing from the
/// service-time RNG, so fault-free runs replay exactly.
pub fn simulate_with_faults(
    net: &Network,
    cores: usize,
    ops_per_core: u64,
    seed: u64,
    faults: &FaultPlane,
) -> DesResult {
    simulate_traced(net, cores, ops_per_core, seed, faults, None)
}

/// Span classes for one traced simulation, interned up front so the
/// event loop records bare `u32`s.
struct SimTrace<'a> {
    tracer: &'a Tracer,
    /// `des.op` — one root span per operation (end-to-end latency).
    op_class: u32,
    /// Per station: (service span, queue-wait child span). The wait
    /// class shares the station's name plus a ` (wait)` suffix, so a
    /// substring match on the station name (e.g. `vfsmount`) catches
    /// both holding and waiting cycles.
    station_classes: Vec<(u32, u32)>,
}

impl<'a> SimTrace<'a> {
    fn new(tracer: &'a Tracer, stations: &[crate::mva::Station]) -> Self {
        Self {
            tracer,
            op_class: pk_trace::intern::intern_span("des.op"),
            station_classes: stations
                .iter()
                .map(|st| {
                    (
                        pk_trace::intern::intern_span(st.name),
                        pk_trace::intern::intern_span(&format!("{} (wait)", st.name)),
                    )
                })
                .collect(),
        }
    }

    fn begin(&self, track: usize, ts: u64, class: u32) {
        self.tracer
            .record_at(track, ts, EventKind::SpanBegin, class, 0, 0);
    }

    fn end(&self, track: usize, ts: u64, class: u32) {
        self.tracer
            .record_at(track, ts, EventKind::SpanEnd, class, 0, 0);
    }
}

/// [`simulate_with_faults`] plus **sim-domain** tracing: when `tracer`
/// is `Some`, every customer gets a track (track = customer index)
/// carrying a root `des.op` span per operation, a span per station
/// visit (named after the station), and — when the visit queued — a
/// nested `<station> (wait)` span from enqueue to service start. All
/// timestamps are DES cycles via [`Tracer::record_at`]; tracing draws
/// nothing from the service-time RNG, so the measured result is
/// byte-for-byte identical to the untraced run.
pub fn simulate_traced(
    net: &Network,
    cores: usize,
    ops_per_core: u64,
    seed: u64,
    faults: &FaultPlane,
    tracer: Option<&Tracer>,
) -> DesResult {
    assert!(cores > 0, "need at least one core");
    let stations = net.stations();
    assert!(!stations.is_empty(), "need at least one station");
    let trace = tracer.map(|t| SimTrace::new(t, stations));
    let fault_preempt = faults.point("sim.lock_holder_preempt");
    let fault_stall = faults.point("sim.core_stall");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut state: Vec<StationState> = stations
        .iter()
        .map(|_| StationState {
            busy: false,
            queue: VecDeque::new(),
            queue_len_samples: 0.0,
            samples: 0,
            wait_cycles: 0,
            service_starts: 0,
            transfers: 0,
            last_owner: None,
        })
        .collect();
    let mut customers: Vec<Customer> = (0..cores)
        .map(|_| Customer {
            station: 0,
            ops_done: 0,
            op_start: 0,
        })
        .collect();

    let warmup_ops = (ops_per_core / 5).max(1);
    let total_ops = ops_per_core + warmup_ops;
    let mut events: BinaryHeap<Event> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut now = 0u64;
    let mut measured_ops = 0u64;
    let mut measured_cycles = 0u64;
    let mut warmup_end_time = 0u64;
    let mut finished = 0usize;

    // Draw an exponential service time with the given mean.
    let mut service = |rng: &mut SmallRng, mean: f64| -> u64 {
        let u: f64 = rng.gen::<f64>().max(1e-12);
        (-mean * u.ln()).max(1.0) as u64
    };

    // Dispatch customer `c` into its current station at time `now`.
    // Returns the (possibly stall-shifted) arrival time and, when
    // service started immediately, the completion time (`None` means
    // the customer queued).
    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        stations: &[crate::mva::Station],
        state: &mut [StationState],
        service: &mut dyn FnMut(&mut SmallRng, f64) -> u64,
        rng: &mut SmallRng,
        c: usize,
        station: usize,
        now: u64,
        preempt: &FaultPoint,
        stall: &FaultPoint,
    ) -> (u64, Option<u64>) {
        // A stalled core arrives late; the delay shifts both its service
        // and (if the server is busy) its enqueue time.
        let now = if stall.should_inject() {
            now + STALL_CYCLES
        } else {
            now
        };
        let st = &stations[station];
        match st.kind {
            StationKind::Delay => (now, Some(now + service(rng, st.demand_cycles))),
            StationKind::Queue | StationKind::NonScalable { .. } => {
                let s = &mut state[station];
                if s.busy {
                    s.queue.push_back((c, now));
                    (now, None)
                } else {
                    s.busy = true;
                    let (mean, pollers) = match st.kind {
                        StationKind::NonScalable { collapse } => (
                            st.demand_cycles * (1.0 + collapse * s.queue.len() as f64),
                            s.queue.len(),
                        ),
                        _ => (st.demand_cycles, 0),
                    };
                    s.start_service(c, pollers);
                    let mut done = now + service(rng, mean);
                    if preempt.should_inject() {
                        done += PREEMPT_CYCLES;
                    }
                    (now, Some(done))
                }
            }
        }
    }

    // Seed: every customer enters station 0.
    for c in 0..cores {
        if let Some(tr) = &trace {
            tr.begin(c, 0, tr.op_class);
        }
        let (arrival, done) = dispatch(
            stations,
            &mut state,
            &mut service,
            &mut rng,
            c,
            0,
            0,
            &fault_preempt,
            &fault_stall,
        );
        if let Some(tr) = &trace {
            tr.begin(c, arrival, tr.station_classes[0].0);
            if done.is_none() {
                tr.begin(c, arrival, tr.station_classes[0].1);
            }
        }
        if let Some(t) = done {
            events.push(Reverse((t, seq, c)));
            seq += 1;
        }
    }

    while let Some(Reverse((t, _, c))) = events.pop() {
        now = t;
        let station = customers[c].station;
        if let Some(tr) = &trace {
            tr.end(c, now, tr.station_classes[station].0);
        }
        // Departure from `station`.
        if matches!(
            stations[station].kind,
            StationKind::Queue | StationKind::NonScalable { .. }
        ) {
            let s = &mut state[station];
            s.queue_len_samples += s.queue.len() as f64;
            s.samples += 1;
            s.busy = false;
            if let Some((next_c, enqueued_at)) = s.queue.pop_front() {
                // Start the next waiter; the server stays busy.
                s.busy = true;
                // A stall-injected waiter can carry an enqueue stamp later
                // than this departure; it effectively waited zero cycles.
                s.wait_cycles += now.saturating_sub(enqueued_at);
                if let Some(tr) = &trace {
                    tr.end(next_c, now.max(enqueued_at), tr.station_classes[station].1);
                }
                let st = &stations[station];
                let (mean, pollers) = match st.kind {
                    StationKind::NonScalable { collapse } => (
                        st.demand_cycles * (1.0 + collapse * s.queue.len() as f64),
                        s.queue.len(),
                    ),
                    _ => (st.demand_cycles, 0),
                };
                s.start_service(next_c, pollers);
                let mut done = now + service(&mut rng, mean);
                if fault_preempt.should_inject() {
                    done += PREEMPT_CYCLES;
                }
                events.push(Reverse((done, seq, next_c)));
                seq += 1;
                // next_c stays at the same station until its own departure.
            }
        }
        // Advance this customer.
        let mut cust = customers[c];
        cust.station += 1;
        if cust.station == stations.len() {
            // One operation complete.
            cust.station = 0;
            cust.ops_done += 1;
            if let Some(tr) = &trace {
                tr.end(c, now, tr.op_class);
                if cust.ops_done < total_ops {
                    tr.begin(c, now, tr.op_class);
                }
            }
            if cust.ops_done == warmup_ops {
                warmup_end_time = warmup_end_time.max(now);
            }
            if cust.ops_done > warmup_ops && cust.ops_done <= total_ops {
                measured_ops += 1;
                measured_cycles += now - cust.op_start;
            }
            cust.op_start = now;
            if cust.ops_done >= total_ops {
                customers[c] = cust;
                finished += 1;
                if finished == cores {
                    break;
                }
                continue;
            }
        }
        customers[c] = cust;
        let (arrival, done) = dispatch(
            stations,
            &mut state,
            &mut service,
            &mut rng,
            c,
            cust.station,
            now,
            &fault_preempt,
            &fault_stall,
        );
        if let Some(tr) = &trace {
            tr.begin(c, arrival, tr.station_classes[cust.station].0);
            if done.is_none() {
                tr.begin(c, arrival, tr.station_classes[cust.station].1);
            }
        }
        if let Some(done) = done {
            events.push(Reverse((done, seq, c)));
            seq += 1;
        }
    }

    let span = now.saturating_sub(warmup_end_time).max(1);
    DesResult {
        ops_per_cycle: measured_ops as f64 / span as f64,
        completed_ops: measured_ops,
        cycles_per_op: if measured_ops > 0 {
            measured_cycles as f64 / measured_ops as f64
        } else {
            0.0
        },
        mean_queue_len: state
            .iter()
            .map(|s| {
                if s.samples == 0 {
                    0.0
                } else {
                    s.queue_len_samples / s.samples as f64
                }
            })
            .collect(),
        mean_wait_cycles: state
            .iter()
            .map(|s| {
                if s.service_starts == 0 {
                    0.0
                } else {
                    s.wait_cycles as f64 / s.service_starts as f64
                }
            })
            .collect(),
        line_transfers: state.iter().map(|s| s.transfers).collect(),
    }
}

impl DesResult {
    /// Exports the measured per-station detail as [`pk_obs::Sample`]s,
    /// mirroring [`crate::mva::MvaResult::snapshot`] but with *measured*
    /// waits and transfer counts instead of analytic ones. `net` must be
    /// the network that was simulated (it supplies names and demands).
    pub fn snapshot(&self, net: &Network) -> pk_obs::Snapshot {
        let mut snap = pk_obs::Snapshot::new();
        let per_op = self.completed_ops.max(1) as f64;
        for (j, st) in net.stations().iter().enumerate() {
            let wait = self.mean_wait_cycles[j];
            snap.push(pk_obs::Sample::station(
                st.name,
                pk_obs::StationSample {
                    demand_cycles: st.demand_cycles,
                    residence_cycles: st.demand_cycles + wait,
                    wait_cycles: wait,
                    queue_len: self.mean_queue_len[j],
                    utilization: (self.ops_per_cycle * st.demand_cycles).min(1.0),
                    line_transfers: self.line_transfers[j] as f64 / per_op,
                    is_system: st.is_system,
                },
            ));
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mva::Station;

    fn relative_error(a: f64, b: f64) -> f64 {
        (a - b).abs() / b.abs().max(1e-12)
    }

    #[test]
    fn delay_only_network_matches_mva_exactly_in_rate() {
        let mut net = Network::new();
        net.push(Station::delay("user", 10_000.0, false));
        for cores in [1, 8, 48] {
            let mva = net.solve(cores).ops_per_cycle;
            let des = simulate(&net, cores, 4_000, 42).ops_per_cycle;
            assert!(
                relative_error(des, mva) < 0.05,
                "cores={cores}: des={des}, mva={mva}"
            );
        }
    }

    #[test]
    fn des_validates_mva_on_queueing_networks() {
        let mut net = Network::new();
        net.push(Station::delay("user", 8_000.0, false));
        net.push(Station::queue("lock", 1_000.0, true));
        for cores in [1, 4, 12, 24] {
            let mva = net.solve(cores).ops_per_cycle;
            let des = simulate(&net, cores, 6_000, 7).ops_per_cycle;
            assert!(
                relative_error(des, mva) < 0.10,
                "cores={cores}: des={des}, mva={mva}"
            );
        }
    }

    #[test]
    fn des_validates_mva_at_saturation() {
        // Deep saturation: the throughput must pin to the service bound
        // for both solvers.
        let mut net = Network::new();
        net.push(Station::delay("user", 1_000.0, false));
        net.push(Station::queue("hot", 2_000.0, true));
        let mva = net.solve(32).ops_per_cycle;
        let des = simulate(&net, 32, 4_000, 11).ops_per_cycle;
        let bound = 1.0 / 2_000.0;
        assert!(relative_error(mva, bound) < 0.02);
        assert!(
            relative_error(des, bound) < 0.05,
            "des={des}, bound={bound}"
        );
    }

    #[test]
    fn des_shows_nonscalable_collapse_too() {
        let mut net = Network::new();
        net.push(Station::delay("user", 2_000.0, false));
        net.push(Station::spinlock("biglock", 500.0, 0.5, true));
        let x8 = simulate(&net, 8, 6_000, 3).ops_per_cycle;
        let x48 = simulate(&net, 48, 6_000, 3).ops_per_cycle;
        assert!(
            x48 < x8,
            "the simulated spin lock must collapse: x8={x8}, x48={x48}"
        );
    }

    #[test]
    fn event_order_is_time_then_fifo_seq() {
        // The canonical contract: smaller time first; at equal times,
        // smaller sequence number first (FIFO dispatch). The original
        // engine popped ties LIFO — largest seq first — which silently
        // reversed every simultaneous handoff.
        let mut heap: BinaryHeap<Event> = BinaryHeap::new();
        heap.push(Reverse((5, 0, 10)));
        heap.push(Reverse((5, 1, 11)));
        heap.push(Reverse((3, 2, 12)));
        heap.push(Reverse((5, 3, 13)));
        let order: Vec<(u64, u64, usize)> = std::iter::from_fn(|| heap.pop().map(|e| e.0)).collect();
        assert_eq!(order, [(3, 2, 12), (5, 0, 10), (5, 1, 11), (5, 3, 13)]);
    }

    #[test]
    fn simultaneous_events_dispatch_fifo() {
        // Demands so small every service clamps to exactly 1 cycle:
        // all four customers finish the delay station at t=1
        // simultaneously, so the queue station's first-come order is
        // decided purely by the tie-break. FIFO hands the queue to
        // customer 0 (dispatched first, smallest seq) and makes
        // customer 3 wait the full 3 cycles; the old LIFO order did
        // the exact opposite.
        let mut net = Network::new();
        net.push(Station::delay("u", 1e-12, false));
        net.push(Station::queue("q", 1e-12, true));
        let tracer = pk_trace::Tracer::new(4, 1 << 12);
        simulate_traced(
            &net,
            4,
            8,
            1,
            &pk_fault::FaultPlane::disabled(),
            Some(&tracer),
        );
        let wait_class = pk_trace::intern::intern_span("q (wait)");
        let first_wait = |track: u32, events: &[pk_trace::Event]| -> Option<(u64, u64)> {
            let begin = events
                .iter()
                .find(|e| {
                    e.track == track && e.class == wait_class && e.kind == EventKind::SpanBegin
                })?
                .ts;
            let end = events
                .iter()
                .find(|e| e.track == track && e.class == wait_class && e.kind == EventKind::SpanEnd)?
                .ts;
            Some((begin, end))
        };
        let events = tracer.drain();
        // Customer 0 reaches the free queue first: it never waits on
        // its first visit (its first wait, if any, is on a later lap).
        if let Some((begin, _)) = first_wait(0, &events) {
            assert!(begin > 1, "customer 0 queued on its first visit");
        }
        // Customer 3 arrives last at t=1 and waits behind 1 and 2.
        let (begin, end) = first_wait(3, &events).expect("customer 3 must queue");
        assert_eq!((begin, end), (1, 4), "FIFO makes the last arrival wait 3");
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let mut net = Network::new();
        net.push(Station::delay("u", 5_000.0, false));
        net.push(Station::queue("q", 700.0, true));
        let a = simulate(&net, 6, 2_000, 99);
        let b = simulate(&net, 6, 2_000, 99);
        assert_eq!(a.ops_per_cycle, b.ops_per_cycle);
        assert_eq!(a.completed_ops, b.completed_ops);
        let c = simulate(&net, 6, 2_000, 100);
        assert_ne!(a.ops_per_cycle, c.ops_per_cycle, "different seed differs");
    }

    #[test]
    fn waits_and_transfers_grow_with_load() {
        let mut net = Network::new();
        net.push(Station::delay("u", 4_000.0, false));
        net.push(Station::spinlock("lock", 1_000.0, 0.3, true));
        let light = simulate(&net, 2, 4_000, 5);
        let heavy = simulate(&net, 24, 4_000, 5);
        assert!(
            heavy.mean_wait_cycles[1] > light.mean_wait_cycles[1] + 1_000.0,
            "queueing delay must grow: light={}, heavy={}",
            light.mean_wait_cycles[1],
            heavy.mean_wait_cycles[1]
        );
        assert_eq!(light.mean_wait_cycles[0], 0.0, "delay stations never queue");
        assert_eq!(light.line_transfers[0], 0, "core-local lines never move");
        // Per completed op, the contended run moves the lock's line
        // more often (handoffs plus waiter polling).
        let per_op = |r: &DesResult| r.line_transfers[1] as f64 / r.completed_ops.max(1) as f64;
        assert!(per_op(&heavy) > per_op(&light));
    }

    #[test]
    fn des_snapshot_matches_measured_fields() {
        let mut net = Network::new();
        net.push(Station::delay("u", 3_000.0, false));
        net.push(Station::queue("q", 1_500.0, true));
        let r = simulate(&net, 16, 3_000, 9);
        let snap = r.snapshot(&net);
        assert_eq!(snap.len(), 2);
        match &snap.find("q").unwrap().value {
            pk_obs::MetricValue::Station(s) => {
                assert_eq!(s.wait_cycles, r.mean_wait_cycles[1]);
                assert!(s.residence_cycles >= s.demand_cycles);
                assert!(s.line_transfers > 0.0);
                assert!(s.is_system);
            }
            v => panic!("wrong value kind: {v:?}"),
        }
    }

    fn faulted_net() -> Network {
        let mut net = Network::new();
        net.push(Station::delay("u", 4_000.0, false));
        net.push(Station::queue("lock", 1_000.0, true));
        net
    }

    fn chaos_plane(seed: u64) -> pk_fault::FaultPlane {
        let plane = pk_fault::FaultPlane::with_seed(seed);
        plane.set(
            "sim.lock_holder_preempt",
            pk_fault::FaultSchedule::EveryNth(50),
        );
        plane.set("sim.core_stall", pk_fault::FaultSchedule::EveryNth(97));
        plane.enable();
        plane
    }

    #[test]
    fn disabled_fault_plane_replays_plain_simulate() {
        let net = faulted_net();
        let plain = simulate(&net, 8, 3_000, 21);
        let plane = pk_fault::FaultPlane::with_seed(21); // never enabled
        let with = simulate_with_faults(&net, 8, 3_000, 21, &plane);
        assert_eq!(plain.ops_per_cycle, with.ops_per_cycle);
        assert_eq!(plain.completed_ops, with.completed_ops);
        assert!(plane.trace().is_empty());
    }

    #[test]
    fn preemption_and_stalls_slow_the_network() {
        let net = faulted_net();
        let clean = simulate(&net, 8, 3_000, 21);
        let plane = chaos_plane(21);
        let chaotic = simulate_with_faults(&net, 8, 3_000, 21, &plane);
        assert!(plane.injected_total() > 0, "faults must actually fire");
        assert!(
            chaotic.cycles_per_op > clean.cycles_per_op,
            "preempted holders must raise latency: clean={}, chaotic={}",
            clean.cycles_per_op,
            chaotic.cycles_per_op
        );
        assert!(chaotic.ops_per_cycle < clean.ops_per_cycle);
    }

    #[test]
    fn fault_injection_replays_from_the_seed() {
        let net = faulted_net();
        let plane_a = chaos_plane(77);
        let plane_b = chaos_plane(77);
        let a = simulate_with_faults(&net, 6, 2_000, 5, &plane_a);
        let b = simulate_with_faults(&net, 6, 2_000, 5, &plane_b);
        assert_eq!(a.ops_per_cycle, b.ops_per_cycle);
        assert_eq!(a.completed_ops, b.completed_ops);
        assert_eq!(plane_a.trace(), plane_b.trace(), "fault traces must replay");
        assert!(!plane_a.trace().is_empty());
    }

    #[test]
    fn queue_lengths_grow_with_load() {
        let mut net = Network::new();
        net.push(Station::delay("u", 4_000.0, false));
        net.push(Station::queue("q", 1_000.0, true));
        let light = simulate(&net, 2, 4_000, 5);
        let heavy = simulate(&net, 24, 4_000, 5);
        assert!(heavy.mean_queue_len[1] > light.mean_queue_len[1] + 1.0);
    }

    #[test]
    fn tracing_does_not_perturb_the_simulation() {
        let mut net = Network::new();
        net.push(Station::delay("trace-u", 4_000.0, false));
        net.push(Station::spinlock("trace-lock", 1_000.0, 0.3, true));
        let plain = simulate(&net, 8, 1_000, 17);
        let tracer = pk_trace::Tracer::new(8, 1 << 16);
        let traced = simulate_traced(
            &net,
            8,
            1_000,
            17,
            &pk_fault::FaultPlane::disabled(),
            Some(&tracer),
        );
        assert_eq!(plain.ops_per_cycle, traced.ops_per_cycle);
        assert_eq!(plain.completed_ops, traced.completed_ops);
        assert_eq!(tracer.dropped(), 0, "ring sized for the whole run");

        let events = tracer.drain();
        assert!(!events.is_empty());
        // Per track, timestamps never go backwards (fault-free run).
        let mut last: std::collections::BTreeMap<u32, u64> = Default::default();
        for e in &events {
            let prev = last.entry(e.track).or_insert(0);
            assert!(e.ts >= *prev, "track {} went backwards", e.track);
            *prev = e.ts;
        }

        let profile = pk_trace::Profile::build(&events);
        assert!(profile.total_cycles > 0);
        let names: Vec<&str> = profile.totals().iter().map(|t| t.name.as_str()).collect();
        assert!(names.contains(&"trace-lock"), "{names:?}");
        assert!(names.contains(&"trace-lock (wait)"), "contention queued");
        assert!(names.contains(&"des.op"));
        // The contended lock's hold + wait cycles dominate the delay
        // station's self time at this load.
        let lock_share = profile.share_where(|n| n.contains("trace-lock"));
        assert!(lock_share > 0.1, "lock_share={lock_share}");
    }

    #[test]
    fn traced_runs_replay_byte_identically() {
        let mut net = Network::new();
        net.push(Station::delay("replay-u", 3_000.0, false));
        net.push(Station::queue("replay-q", 900.0, true));
        let run = || {
            let tracer = pk_trace::Tracer::new(6, 1 << 15);
            simulate_traced(
                &net,
                6,
                500,
                23,
                &pk_fault::FaultPlane::disabled(),
                Some(&tracer),
            );
            pk_trace::encode_stream(&tracer.drain())
        };
        assert_eq!(run(), run(), "same seed, same bytes");
    }
}
