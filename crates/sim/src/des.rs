//! A discrete-event simulator for the same closed networks MVA solves.
//!
//! The figure sweeps use Mean Value Analysis because it is exact (for
//! product-form networks), instant, and deterministic. This module is
//! the cross-check: an event-driven simulation of the *same* network —
//! cores cycling through stations, FCFS queues, exponential service —
//! whose measured throughput must agree with MVA. The
//! `des_validates_mva` tests pin the two solvers against each other, so
//! a bug in either one breaks the build.
//!
//! Non-scalable stations are simulated literally: a waiter's polling
//! slows the holder, so the service time drawn at dispatch is inflated
//! by the queue length at that instant — the same load-dependence the
//! MVA extension models.
//!
//! # Two engines, one schedule
//!
//! The public entry points run the **fast engine**: a calendar-queue
//! event wheel ([`wheel::EventWheel`]) that drains one bucket-width
//! window of simulated time at a time as a sorted batch, over
//! struct-of-arrays hot state (per-station and per-customer fields in
//! parallel vectors, station FIFO queues as an intrusive index-linked
//! list — no per-event allocation anywhere in the loop). The
//! [`reference`] module keeps the original `BinaryHeap` engine as the
//! differential oracle: both engines process events in the canonical
//! `(time, seq)` order — FIFO among simultaneous events — draw from
//! the service-time RNG at identical points, and consult the fault
//! plane at identical points, so for any `(net, cores, ops, seed,
//! faults)` they produce byte-identical results and event traces
//! (`tests/engine_equivalence.rs` pins this; see `DESIGN.md` §11).

pub mod reference;
pub mod wheel;

use crate::mva::{Network, StationKind};
use pk_fault::{FaultPlane, FaultPoint};
use pk_trace::{EventKind, Tracer};
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use wheel::{EventWheel, WheelEvent};

/// Extra cycles a lock holder loses when the `sim.lock_holder_preempt`
/// fault fires at a service start: the holder is descheduled mid
/// critical section and every waiter spins for the full quantum. The
/// magnitude is a scheduler timeslice in cycles, dwarfing any service
/// demand in the roster networks.
pub(crate) const PREEMPT_CYCLES: u64 = 50_000;

/// Extra cycles a core loses when the `sim.core_stall` fault fires at a
/// dispatch: the core is stalled (interrupt storm, SMI, thermal event)
/// before it reaches the station.
pub(crate) const STALL_CYCLES: u64 = 10_000;

/// Result of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct DesResult {
    /// Measured throughput in operations per cycle (post-warmup).
    pub ops_per_cycle: f64,
    /// Operations completed in the measurement window.
    pub completed_ops: u64,
    /// Mean cycles per operation (end-to-end, post-warmup).
    pub cycles_per_op: f64,
    /// Per-station mean queue length sampled at departures.
    pub mean_queue_len: Vec<f64>,
    /// Per-station mean queueing delay per visit, in cycles: time from
    /// joining the queue to service start, measured over the whole run.
    pub mean_wait_cycles: Vec<f64>,
    /// Per-station cache-line transfers over the whole run: one per
    /// service start whose previous holder was a different core, plus
    /// one per enqueue at a non-scalable lock (the waiter pulls the
    /// line to poll it — the traffic behind the collapse factor).
    pub line_transfers: Vec<u64>,
    /// Events the engine dispatched (station departures processed) —
    /// the denominator of the wall-clock events/sec rows `scalebench`
    /// prints. Identical across engines for the same inputs.
    pub events_processed: u64,
}

/// Draws an exponential service time with the given mean, clamped to
/// at least one cycle. Both engines call this at the same points, so
/// the RNG streams stay aligned. The uniform draw inlines the vendored
/// `rand` `f64` sampling (53 mantissa bits) without the `dyn RngCore`
/// hop `Rng::gen` takes — identical bits, fewer indirect calls.
#[inline]
pub(crate) fn service(rng: &mut SmallRng, mean: f64) -> u64 {
    let u = ((rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)).max(1e-12);
    (-mean * u.ln()).max(1.0) as u64
}

/// Adds to a saturating `u64` accumulator. At 1024 simulated cores a
/// long soak can push raw counters (line transfers, queue-length
/// sample sums) toward `u64::MAX`; wrapping would silently corrupt
/// every derived mean, so debug builds assert and release builds pin
/// at the ceiling.
#[inline]
pub(crate) fn add_sat(acc: &mut u64, delta: u64) {
    debug_assert!(
        acc.checked_add(delta).is_some(),
        "u64 cycle accumulator overflow: {acc} + {delta}"
    );
    *acc = acc.saturating_add(delta);
}

/// Span classes for one traced simulation, interned up front so the
/// event loop records bare `u32`s.
pub(crate) struct SimTrace<'a> {
    tracer: &'a Tracer,
    /// `des.op` — one root span per operation (end-to-end latency).
    op_class: u32,
    /// Per station: (service span, queue-wait child span). The wait
    /// class shares the station's name plus a ` (wait)` suffix, so a
    /// substring match on the station name (e.g. `vfsmount`) catches
    /// both holding and waiting cycles.
    station_classes: Vec<(u32, u32)>,
}

impl<'a> SimTrace<'a> {
    pub(crate) fn new(tracer: &'a Tracer, stations: &[crate::mva::Station]) -> Self {
        Self {
            tracer,
            op_class: pk_trace::intern::intern_span("des.op"),
            station_classes: stations
                .iter()
                .map(|st| {
                    (
                        pk_trace::intern::intern_span(st.name),
                        pk_trace::intern::intern_span(&format!("{} (wait)", st.name)),
                    )
                })
                .collect(),
        }
    }

    pub(crate) fn begin(&self, track: usize, ts: u64, class: u32) {
        self.tracer
            .record_at(track, ts, EventKind::SpanBegin, class, 0, 0);
    }

    pub(crate) fn end(&self, track: usize, ts: u64, class: u32) {
        self.tracer
            .record_at(track, ts, EventKind::SpanEnd, class, 0, 0);
    }
}

/// Trace hooks the engine loop calls. The no-op implementation compiles
/// to nothing, so the untraced hot loop carries no `Option` checks.
pub(crate) trait TraceSink {
    fn op_begin(&self, track: usize, ts: u64);
    fn op_end(&self, track: usize, ts: u64);
    fn station_begin(&self, track: usize, ts: u64, station: usize);
    fn station_end(&self, track: usize, ts: u64, station: usize);
    fn wait_begin(&self, track: usize, ts: u64, station: usize);
    fn wait_end(&self, track: usize, ts: u64, station: usize);
}

/// The zero-cost sink for untraced runs.
pub(crate) struct NoTrace;

impl TraceSink for NoTrace {
    #[inline(always)]
    fn op_begin(&self, _: usize, _: u64) {}
    #[inline(always)]
    fn op_end(&self, _: usize, _: u64) {}
    #[inline(always)]
    fn station_begin(&self, _: usize, _: u64, _: usize) {}
    #[inline(always)]
    fn station_end(&self, _: usize, _: u64, _: usize) {}
    #[inline(always)]
    fn wait_begin(&self, _: usize, _: u64, _: usize) {}
    #[inline(always)]
    fn wait_end(&self, _: usize, _: u64, _: usize) {}
}

impl TraceSink for SimTrace<'_> {
    #[inline]
    fn op_begin(&self, track: usize, ts: u64) {
        self.begin(track, ts, self.op_class);
    }
    #[inline]
    fn op_end(&self, track: usize, ts: u64) {
        self.end(track, ts, self.op_class);
    }
    #[inline]
    fn station_begin(&self, track: usize, ts: u64, station: usize) {
        self.begin(track, ts, self.station_classes[station].0);
    }
    #[inline]
    fn station_end(&self, track: usize, ts: u64, station: usize) {
        self.end(track, ts, self.station_classes[station].0);
    }
    #[inline]
    fn wait_begin(&self, track: usize, ts: u64, station: usize) {
        self.begin(track, ts, self.station_classes[station].1);
    }
    #[inline]
    fn wait_end(&self, track: usize, ts: u64, station: usize) {
        self.end(track, ts, self.station_classes[station].1);
    }
}

/// Simulates `net` with `cores` customers for `ops_per_core` operations
/// each (plus a 20% warmup that is excluded from the measurement).
///
/// Service times are exponential with the stations' mean demands, drawn
/// from a deterministic seeded generator: the same `(net, cores,
/// ops_per_core, seed)` always produces the same result.
///
/// # Panics
///
/// Panics if the network is empty or `cores == 0`.
pub fn simulate(net: &Network, cores: usize, ops_per_core: u64, seed: u64) -> DesResult {
    simulate_with_faults(net, cores, ops_per_core, seed, &FaultPlane::disabled())
}

/// [`simulate`] with a fault plane wired into the event loop.
///
/// Two injection points perturb the simulated hardware:
///
/// * `sim.lock_holder_preempt` — checked at every Queue/NonScalable
///   service start; when it fires the service time is inflated by
///   [`PREEMPT_CYCLES`], modeling the holder losing its timeslice
///   inside the critical section (the pathology spin locks are famously
///   vulnerable to).
/// * `sim.core_stall` — checked at every dispatch; when it fires the
///   customer arrives [`STALL_CYCLES`] late, modeling a stalled core.
///
/// With the plane disabled this is byte-for-byte [`simulate`]: the
/// fault checks cost one relaxed atomic load and draw nothing from the
/// service-time RNG, so fault-free runs replay exactly.
pub fn simulate_with_faults(
    net: &Network,
    cores: usize,
    ops_per_core: u64,
    seed: u64,
    faults: &FaultPlane,
) -> DesResult {
    simulate_traced(net, cores, ops_per_core, seed, faults, None)
}

/// [`simulate_with_faults`] plus **sim-domain** tracing: when `tracer`
/// is `Some`, every customer gets a track (track = customer index)
/// carrying a root `des.op` span per operation, a span per station
/// visit (named after the station), and — when the visit queued — a
/// nested `<station> (wait)` span from enqueue to service start. All
/// timestamps are DES cycles via [`Tracer::record_at`]; tracing draws
/// nothing from the service-time RNG, so the measured result is
/// byte-for-byte identical to the untraced run.
pub fn simulate_traced(
    net: &Network,
    cores: usize,
    ops_per_core: u64,
    seed: u64,
    faults: &FaultPlane,
    tracer: Option<&Tracer>,
) -> DesResult {
    assert!(cores > 0, "need at least one core");
    assert!(!net.stations().is_empty(), "need at least one station");
    match tracer {
        Some(t) => run(
            net,
            cores,
            ops_per_core,
            seed,
            faults,
            &SimTrace::new(t, net.stations()),
        ),
        None => run(net, cores, ops_per_core, seed, faults, &NoTrace),
    }
}

/// Sentinel for "no customer" in the intrusive queue links and "no
/// owner" in the cache-line ownership column.
const NONE: u32 = u32::MAX;

/// The engine's hot state, struct-of-arrays: every per-station and
/// per-customer field lives in its own dense vector so the event loop
/// touches only the cache lines it needs. Station wait queues are an
/// intrusive FIFO over `qnext` (each customer queues at most once, so
/// one link per customer is a complete slab — no allocation per
/// enqueue, ever).
struct Hot {
    // Stations.
    kind: Vec<StationKind>,
    demand: Vec<f64>,
    busy: Vec<bool>,
    qhead: Vec<u32>,
    qtail: Vec<u32>,
    qlen: Vec<u32>,
    /// Exact integer sum of departure-sampled queue lengths. An `f64`
    /// running sum silently loses precision past 2^53; the integer sum
    /// is exact (and saturates loudly via [`add_sat`]).
    qlen_sum: Vec<u64>,
    samples: Vec<u64>,
    /// 128-bit: 1024 cores × multi-billion-cycle soaks can push the
    /// summed wait past `u64::MAX`.
    wait_cycles: Vec<u128>,
    service_starts: Vec<u64>,
    transfers: Vec<u64>,
    last_owner: Vec<u32>,
    // Customers.
    cust_station: Vec<u32>,
    cust_ops: Vec<u64>,
    cust_op_start: Vec<u64>,
    qnext: Vec<u32>,
    enq_at: Vec<u64>,
    rng: SmallRng,
}

impl Hot {
    fn new(net: &Network, cores: usize, seed: u64) -> Self {
        let stations = net.stations();
        let n = stations.len();
        Self {
            kind: stations.iter().map(|s| s.kind).collect(),
            demand: stations.iter().map(|s| s.demand_cycles).collect(),
            busy: vec![false; n],
            qhead: vec![NONE; n],
            qtail: vec![NONE; n],
            qlen: vec![0; n],
            qlen_sum: vec![0; n],
            samples: vec![0; n],
            wait_cycles: vec![0; n],
            service_starts: vec![0; n],
            transfers: vec![0; n],
            last_owner: vec![NONE; n],
            cust_station: vec![0; cores],
            cust_ops: vec![0; cores],
            cust_op_start: vec![0; cores],
            qnext: vec![NONE; cores],
            enq_at: vec![0; cores],
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    #[inline]
    fn enqueue(&mut self, st: usize, c: u32, t: u64) {
        let ci = c as usize;
        self.qnext[ci] = NONE;
        self.enq_at[ci] = t;
        let tail = self.qtail[st];
        if tail == NONE {
            self.qhead[st] = c;
        } else {
            self.qnext[tail as usize] = c;
        }
        self.qtail[st] = c;
        self.qlen[st] += 1;
    }

    #[inline]
    fn dequeue(&mut self, st: usize) -> Option<(u32, u64)> {
        let head = self.qhead[st];
        if head == NONE {
            return None;
        }
        let hi = head as usize;
        let next = self.qnext[hi];
        self.qhead[st] = next;
        if next == NONE {
            self.qtail[st] = NONE;
        }
        self.qlen[st] -= 1;
        Some((head, self.enq_at[hi]))
    }

    /// Mean service time and poller count for a service starting at
    /// `st` with the station's *current* queue length.
    #[inline]
    fn service_params(&self, st: usize) -> (f64, u32) {
        match self.kind[st] {
            StationKind::NonScalable { collapse } => (
                self.demand[st] * (1.0 + collapse * self.qlen[st] as f64),
                self.qlen[st],
            ),
            _ => (self.demand[st], 0),
        }
    }

    /// Charges the coherence cost of customer `c` starting service.
    #[inline]
    fn start_service(&mut self, st: usize, c: u32, pollers: u32) {
        add_sat(&mut self.service_starts[st], 1);
        if self.last_owner[st] != c {
            self.transfers[st] += 1;
        }
        self.last_owner[st] = c;
        // Every waiter polling a non-scalable lock pulls the line
        // away from the new holder at least once per handoff.
        add_sat(&mut self.transfers[st], pollers as u64);
    }

    /// Dispatches customer `c` into station `st` at time `now`.
    /// Returns the (possibly stall-shifted) arrival time and, when
    /// service started immediately, the completion time (`None` means
    /// the customer queued).
    #[inline]
    fn dispatch(
        &mut self,
        st: usize,
        c: u32,
        now: u64,
        preempt: &FaultPoint,
        stall: &FaultPoint,
    ) -> (u64, Option<u64>) {
        // A stalled core arrives late; the delay shifts both its service
        // and (if the server is busy) its enqueue time.
        let now = if stall.should_inject() {
            now + STALL_CYCLES
        } else {
            now
        };
        match self.kind[st] {
            StationKind::Delay => {
                let d = self.demand[st];
                (now, Some(now + service(&mut self.rng, d)))
            }
            StationKind::Queue | StationKind::NonScalable { .. } => {
                if self.busy[st] {
                    self.enqueue(st, c, now);
                    (now, None)
                } else {
                    self.busy[st] = true;
                    let (mean, pollers) = self.service_params(st);
                    self.start_service(st, c, pollers);
                    let mut done = now + service(&mut self.rng, mean);
                    if preempt.should_inject() {
                        done += PREEMPT_CYCLES;
                    }
                    (now, Some(done))
                }
            }
        }
    }

    fn into_result(
        self,
        measured_ops: u64,
        measured_cycles: u128,
        span: u64,
        events_processed: u64,
    ) -> DesResult {
        DesResult {
            ops_per_cycle: measured_ops as f64 / span as f64,
            completed_ops: measured_ops,
            cycles_per_op: if measured_ops > 0 {
                measured_cycles as f64 / measured_ops as f64
            } else {
                0.0
            },
            mean_queue_len: self
                .qlen_sum
                .iter()
                .zip(&self.samples)
                .map(|(&sum, &n)| if n == 0 { 0.0 } else { sum as f64 / n as f64 })
                .collect(),
            mean_wait_cycles: self
                .wait_cycles
                .iter()
                .zip(&self.service_starts)
                .map(|(&w, &n)| if n == 0 { 0.0 } else { w as f64 / n as f64 })
                .collect(),
            line_transfers: self.transfers,
            events_processed,
        }
    }
}

/// Schedules event `(t, seq, c)`.
///
/// Three routes, cheapest first:
///
/// * **Singleton bypass** — the batch is exhausted and the wheel is
///   empty, so this event is provably the only one pending (the shape
///   of a fully serialized network: one lock holder, everyone else in
///   a station FIFO). It becomes the next batch directly; the wheel
///   fast-forwards so later pushes stay ahead of its window.
/// * **Batch merge** — before the current batching horizon it
///   binary-inserts into the sorted in-flight batch (completion times
///   are always strictly after `now`, so the insertion point is past
///   the cursor).
/// * **Wheel push** — at or beyond the horizon it goes back to the
///   wheel.
#[inline]
fn sched(
    wheel: &mut EventWheel,
    batch: &mut Vec<WheelEvent>,
    cursor: &mut usize,
    horizon: &mut u64,
    seq: &mut u64,
    t: u64,
    c: u32,
) {
    let s = *seq;
    *seq += 1;
    if *cursor == batch.len() && wheel.is_empty() {
        batch.clear();
        *cursor = 0;
        batch.push((t, s, c));
        if t >= *horizon {
            *horizon = t + 1;
            wheel.advance_to(t);
        }
    } else if t < *horizon {
        // Completions scheduled below the horizon almost always sort
        // after everything already batched (service times rarely
        // shrink), so scan back from the end — typically zero or one
        // comparisons — and push rather than insert when it lands last.
        let mut pos = batch.len();
        while pos > *cursor && (batch[pos - 1].0, batch[pos - 1].1) > (t, s) {
            pos -= 1;
        }
        if pos == batch.len() {
            batch.push((t, s, c));
        } else {
            batch.insert(pos, (t, s, c));
        }
    } else {
        wheel.push(t, s, c);
    }
}

/// The fast engine: monomorphized over the trace sink so untraced runs
/// pay nothing for the hooks.
fn run<S: TraceSink>(
    net: &Network,
    cores: usize,
    ops_per_core: u64,
    seed: u64,
    faults: &FaultPlane,
    sink: &S,
) -> DesResult {
    let stations = net.stations();
    let n_stations = stations.len();
    let fault_preempt = faults.point("sim.lock_holder_preempt");
    let fault_stall = faults.point("sim.core_stall");
    let mut hot = Hot::new(net, cores, seed);
    let max_demand = hot.demand.iter().cloned().fold(1.0_f64, f64::max);
    let mut wheel = EventWheel::new(max_demand, cores);

    let warmup_ops = (ops_per_core / 5).max(1);
    let total_ops = ops_per_core + warmup_ops;
    let mut seq = 0u64;
    let mut now = 0u64;
    let mut measured_ops = 0u64;
    let mut measured_cycles = 0u128;
    let mut warmup_end_time = 0u64;
    let mut finished = 0usize;
    let mut events_processed = 0u64;

    // The in-flight batch: the current window's events, sorted by
    // (time, seq). `cursor` walks it; completions landing before the
    // horizon are merged in at their sorted position.
    let mut batch: Vec<WheelEvent> = Vec::new();
    let mut cursor = 0usize;
    let mut horizon = 0u64;

    // Seed: every customer enters station 0. `horizon` is still 0, so
    // every completion goes to the wheel.
    for c in 0..cores as u32 {
        sink.op_begin(c as usize, 0);
        let (arrival, done) = hot.dispatch(0, c, 0, &fault_preempt, &fault_stall);
        sink.station_begin(c as usize, arrival, 0);
        if done.is_none() {
            sink.wait_begin(c as usize, arrival, 0);
        }
        if let Some(t) = done {
            sched(
                &mut wheel,
                &mut batch,
                &mut cursor,
                &mut horizon,
                &mut seq,
                t,
                c,
            );
        }
    }

    loop {
        if cursor == batch.len() {
            batch.clear();
            cursor = 0;
            match wheel.next_batch(&mut batch) {
                Some(h) => horizon = h,
                None => break,
            }
        }
        let (t, _, c) = batch[cursor];
        cursor += 1;
        events_processed += 1;
        now = t;
        let ci = c as usize;
        let station = hot.cust_station[ci] as usize;
        sink.station_end(ci, now, station);
        // Departure from `station`.
        if matches!(
            hot.kind[station],
            StationKind::Queue | StationKind::NonScalable { .. }
        ) {
            add_sat(&mut hot.qlen_sum[station], hot.qlen[station] as u64);
            add_sat(&mut hot.samples[station], 1);
            hot.busy[station] = false;
            if let Some((next_c, enqueued_at)) = hot.dequeue(station) {
                // Start the next waiter; the server stays busy.
                hot.busy[station] = true;
                // A stall-injected waiter can carry an enqueue stamp later
                // than this departure; it effectively waited zero cycles.
                hot.wait_cycles[station] += now.saturating_sub(enqueued_at) as u128;
                sink.wait_end(next_c as usize, now.max(enqueued_at), station);
                let (mean, pollers) = hot.service_params(station);
                hot.start_service(station, next_c, pollers);
                let mut done = now + service(&mut hot.rng, mean);
                if fault_preempt.should_inject() {
                    done += PREEMPT_CYCLES;
                }
                sched(
                    &mut wheel,
                    &mut batch,
                    &mut cursor,
                    &mut horizon,
                    &mut seq,
                    done,
                    next_c,
                );
                // next_c stays at the same station until its own departure.
            }
        }
        // Advance this customer.
        let mut next_station = station + 1;
        if next_station == n_stations {
            // One operation complete.
            next_station = 0;
            hot.cust_ops[ci] += 1;
            let ops_done = hot.cust_ops[ci];
            sink.op_end(ci, now);
            if ops_done < total_ops {
                sink.op_begin(ci, now);
            }
            if ops_done == warmup_ops {
                warmup_end_time = warmup_end_time.max(now);
            }
            if ops_done > warmup_ops && ops_done <= total_ops {
                measured_ops += 1;
                measured_cycles += now.saturating_sub(hot.cust_op_start[ci]) as u128;
            }
            hot.cust_op_start[ci] = now;
            if ops_done >= total_ops {
                hot.cust_station[ci] = 0;
                finished += 1;
                if finished == cores {
                    break;
                }
                continue;
            }
        }
        hot.cust_station[ci] = next_station as u32;
        let (arrival, done) = hot.dispatch(next_station, c, now, &fault_preempt, &fault_stall);
        sink.station_begin(ci, arrival, next_station);
        if done.is_none() {
            sink.wait_begin(ci, arrival, next_station);
        }
        if let Some(done) = done {
            sched(
                &mut wheel,
                &mut batch,
                &mut cursor,
                &mut horizon,
                &mut seq,
                done,
                c,
            );
        }
    }

    let span = now.saturating_sub(warmup_end_time).max(1);
    hot.into_result(measured_ops, measured_cycles, span, events_processed)
}

impl DesResult {
    /// Exports the measured per-station detail as [`pk_obs::Sample`]s,
    /// mirroring [`crate::mva::MvaResult::snapshot`] but with *measured*
    /// waits and transfer counts instead of analytic ones. `net` must be
    /// the network that was simulated (it supplies names and demands).
    pub fn snapshot(&self, net: &Network) -> pk_obs::Snapshot {
        let mut snap = pk_obs::Snapshot::new();
        let per_op = self.completed_ops.max(1) as f64;
        for (j, st) in net.stations().iter().enumerate() {
            let wait = self.mean_wait_cycles[j];
            snap.push(pk_obs::Sample::station(
                st.name,
                pk_obs::StationSample {
                    demand_cycles: st.demand_cycles,
                    residence_cycles: st.demand_cycles + wait,
                    wait_cycles: wait,
                    queue_len: self.mean_queue_len[j],
                    utilization: (self.ops_per_cycle * st.demand_cycles).min(1.0),
                    line_transfers: self.line_transfers[j] as f64 / per_op,
                    is_system: st.is_system,
                },
            ));
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mva::Station;

    fn relative_error(a: f64, b: f64) -> f64 {
        (a - b).abs() / b.abs().max(1e-12)
    }

    #[test]
    fn delay_only_network_matches_mva_exactly_in_rate() {
        let mut net = Network::new();
        net.push(Station::delay("user", 10_000.0, false));
        for cores in [1, 8, 48] {
            let mva = net.solve(cores).ops_per_cycle;
            let des = simulate(&net, cores, 4_000, 42).ops_per_cycle;
            assert!(
                relative_error(des, mva) < 0.05,
                "cores={cores}: des={des}, mva={mva}"
            );
        }
    }

    #[test]
    fn des_validates_mva_on_queueing_networks() {
        let mut net = Network::new();
        net.push(Station::delay("user", 8_000.0, false));
        net.push(Station::queue("lock", 1_000.0, true));
        for cores in [1, 4, 12, 24] {
            let mva = net.solve(cores).ops_per_cycle;
            let des = simulate(&net, cores, 6_000, 7).ops_per_cycle;
            assert!(
                relative_error(des, mva) < 0.10,
                "cores={cores}: des={des}, mva={mva}"
            );
        }
    }

    #[test]
    fn des_validates_mva_at_saturation() {
        // Deep saturation: the throughput must pin to the service bound
        // for both solvers.
        let mut net = Network::new();
        net.push(Station::delay("user", 1_000.0, false));
        net.push(Station::queue("hot", 2_000.0, true));
        let mva = net.solve(32).ops_per_cycle;
        let des = simulate(&net, 32, 4_000, 11).ops_per_cycle;
        let bound = 1.0 / 2_000.0;
        assert!(relative_error(mva, bound) < 0.02);
        assert!(
            relative_error(des, bound) < 0.05,
            "des={des}, bound={bound}"
        );
    }

    #[test]
    fn des_shows_nonscalable_collapse_too() {
        let mut net = Network::new();
        net.push(Station::delay("user", 2_000.0, false));
        net.push(Station::spinlock("biglock", 500.0, 0.5, true));
        let x8 = simulate(&net, 8, 6_000, 3).ops_per_cycle;
        let x48 = simulate(&net, 48, 6_000, 3).ops_per_cycle;
        assert!(
            x48 < x8,
            "the simulated spin lock must collapse: x8={x8}, x48={x48}"
        );
    }

    #[test]
    fn simultaneous_events_dispatch_fifo() {
        // Demands so small every service clamps to exactly 1 cycle:
        // all four customers finish the delay station at t=1
        // simultaneously, so the queue station's first-come order is
        // decided purely by the tie-break. FIFO hands the queue to
        // customer 0 (dispatched first, smallest seq) and makes
        // customer 3 wait the full 3 cycles; the old LIFO order did
        // the exact opposite.
        let mut net = Network::new();
        net.push(Station::delay("u", 1e-12, false));
        net.push(Station::queue("q", 1e-12, true));
        let tracer = pk_trace::Tracer::new(4, 1 << 12);
        simulate_traced(
            &net,
            4,
            8,
            1,
            &pk_fault::FaultPlane::disabled(),
            Some(&tracer),
        );
        let wait_class = pk_trace::intern::intern_span("q (wait)");
        let first_wait = |track: u32, events: &[pk_trace::Event]| -> Option<(u64, u64)> {
            let begin = events
                .iter()
                .find(|e| {
                    e.track == track && e.class == wait_class && e.kind == EventKind::SpanBegin
                })?
                .ts;
            let end = events
                .iter()
                .find(|e| {
                    e.track == track && e.class == wait_class && e.kind == EventKind::SpanEnd
                })?
                .ts;
            Some((begin, end))
        };
        let events = tracer.drain();
        // Customer 0 reaches the free queue first: it never waits on
        // its first visit (its first wait, if any, is on a later lap).
        if let Some((begin, _)) = first_wait(0, &events) {
            assert!(begin > 1, "customer 0 queued on its first visit");
        }
        // Customer 3 arrives last at t=1 and waits behind 1 and 2.
        let (begin, end) = first_wait(3, &events).expect("customer 3 must queue");
        assert_eq!((begin, end), (1, 4), "FIFO makes the last arrival wait 3");
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let mut net = Network::new();
        net.push(Station::delay("u", 5_000.0, false));
        net.push(Station::queue("q", 700.0, true));
        let a = simulate(&net, 6, 2_000, 99);
        let b = simulate(&net, 6, 2_000, 99);
        assert_eq!(a.ops_per_cycle, b.ops_per_cycle);
        assert_eq!(a.completed_ops, b.completed_ops);
        assert_eq!(a.events_processed, b.events_processed);
        let c = simulate(&net, 6, 2_000, 100);
        assert_ne!(a.ops_per_cycle, c.ops_per_cycle, "different seed differs");
    }

    #[test]
    fn waits_and_transfers_grow_with_load() {
        let mut net = Network::new();
        net.push(Station::delay("u", 4_000.0, false));
        net.push(Station::spinlock("lock", 1_000.0, 0.3, true));
        let light = simulate(&net, 2, 4_000, 5);
        let heavy = simulate(&net, 24, 4_000, 5);
        assert!(
            heavy.mean_wait_cycles[1] > light.mean_wait_cycles[1] + 1_000.0,
            "queueing delay must grow: light={}, heavy={}",
            light.mean_wait_cycles[1],
            heavy.mean_wait_cycles[1]
        );
        assert_eq!(light.mean_wait_cycles[0], 0.0, "delay stations never queue");
        assert_eq!(light.line_transfers[0], 0, "core-local lines never move");
        // Per completed op, the contended run moves the lock's line
        // more often (handoffs plus waiter polling).
        let per_op = |r: &DesResult| r.line_transfers[1] as f64 / r.completed_ops.max(1) as f64;
        assert!(per_op(&heavy) > per_op(&light));
    }

    #[test]
    fn des_snapshot_matches_measured_fields() {
        let mut net = Network::new();
        net.push(Station::delay("u", 3_000.0, false));
        net.push(Station::queue("q", 1_500.0, true));
        let r = simulate(&net, 16, 3_000, 9);
        let snap = r.snapshot(&net);
        assert_eq!(snap.len(), 2);
        match &snap.find("q").unwrap().value {
            pk_obs::MetricValue::Station(s) => {
                assert_eq!(s.wait_cycles, r.mean_wait_cycles[1]);
                assert!(s.residence_cycles >= s.demand_cycles);
                assert!(s.line_transfers > 0.0);
                assert!(s.is_system);
            }
            v => panic!("wrong value kind: {v:?}"),
        }
    }

    fn faulted_net() -> Network {
        let mut net = Network::new();
        net.push(Station::delay("u", 4_000.0, false));
        net.push(Station::queue("lock", 1_000.0, true));
        net
    }

    fn chaos_plane(seed: u64) -> pk_fault::FaultPlane {
        let plane = pk_fault::FaultPlane::with_seed(seed);
        plane.set(
            "sim.lock_holder_preempt",
            pk_fault::FaultSchedule::EveryNth(50),
        );
        plane.set("sim.core_stall", pk_fault::FaultSchedule::EveryNth(97));
        plane.enable();
        plane
    }

    #[test]
    fn disabled_fault_plane_replays_plain_simulate() {
        let net = faulted_net();
        let plain = simulate(&net, 8, 3_000, 21);
        let plane = pk_fault::FaultPlane::with_seed(21); // never enabled
        let with = simulate_with_faults(&net, 8, 3_000, 21, &plane);
        assert_eq!(plain.ops_per_cycle, with.ops_per_cycle);
        assert_eq!(plain.completed_ops, with.completed_ops);
        assert!(plane.trace().is_empty());
    }

    #[test]
    fn preemption_and_stalls_slow_the_network() {
        let net = faulted_net();
        let clean = simulate(&net, 8, 3_000, 21);
        let plane = chaos_plane(21);
        let chaotic = simulate_with_faults(&net, 8, 3_000, 21, &plane);
        assert!(plane.injected_total() > 0, "faults must actually fire");
        assert!(
            chaotic.cycles_per_op > clean.cycles_per_op,
            "preempted holders must raise latency: clean={}, chaotic={}",
            clean.cycles_per_op,
            chaotic.cycles_per_op
        );
        assert!(chaotic.ops_per_cycle < clean.ops_per_cycle);
    }

    #[test]
    fn fault_injection_replays_from_the_seed() {
        let net = faulted_net();
        let plane_a = chaos_plane(77);
        let plane_b = chaos_plane(77);
        let a = simulate_with_faults(&net, 6, 2_000, 5, &plane_a);
        let b = simulate_with_faults(&net, 6, 2_000, 5, &plane_b);
        assert_eq!(a.ops_per_cycle, b.ops_per_cycle);
        assert_eq!(a.completed_ops, b.completed_ops);
        assert_eq!(plane_a.trace(), plane_b.trace(), "fault traces must replay");
        assert!(!plane_a.trace().is_empty());
    }

    #[test]
    fn queue_lengths_grow_with_load() {
        let mut net = Network::new();
        net.push(Station::delay("u", 4_000.0, false));
        net.push(Station::queue("q", 1_000.0, true));
        let light = simulate(&net, 2, 4_000, 5);
        let heavy = simulate(&net, 24, 4_000, 5);
        assert!(heavy.mean_queue_len[1] > light.mean_queue_len[1] + 1.0);
    }

    #[test]
    fn tracing_does_not_perturb_the_simulation() {
        let mut net = Network::new();
        net.push(Station::delay("trace-u", 4_000.0, false));
        net.push(Station::spinlock("trace-lock", 1_000.0, 0.3, true));
        let plain = simulate(&net, 8, 1_000, 17);
        let tracer = pk_trace::Tracer::new(8, 1 << 16);
        let traced = simulate_traced(
            &net,
            8,
            1_000,
            17,
            &pk_fault::FaultPlane::disabled(),
            Some(&tracer),
        );
        assert_eq!(plain.ops_per_cycle, traced.ops_per_cycle);
        assert_eq!(plain.completed_ops, traced.completed_ops);
        assert_eq!(plain.events_processed, traced.events_processed);
        assert_eq!(tracer.dropped(), 0, "ring sized for the whole run");

        let events = tracer.drain();
        assert!(!events.is_empty());
        // Per track, timestamps never go backwards (fault-free run).
        let mut last: std::collections::BTreeMap<u32, u64> = Default::default();
        for e in &events {
            let prev = last.entry(e.track).or_insert(0);
            assert!(e.ts >= *prev, "track {} went backwards", e.track);
            *prev = e.ts;
        }

        let profile = pk_trace::Profile::build(&events);
        assert!(profile.total_cycles > 0);
        let names: Vec<&str> = profile.totals().iter().map(|t| t.name.as_str()).collect();
        assert!(names.contains(&"trace-lock"), "{names:?}");
        assert!(names.contains(&"trace-lock (wait)"), "contention queued");
        assert!(names.contains(&"des.op"));
        // The contended lock's hold + wait cycles dominate the delay
        // station's self time at this load.
        let lock_share = profile.share_where(|n| n.contains("trace-lock"));
        assert!(lock_share > 0.1, "lock_share={lock_share}");
    }

    #[test]
    fn traced_runs_replay_byte_identically() {
        let mut net = Network::new();
        net.push(Station::delay("replay-u", 3_000.0, false));
        net.push(Station::queue("replay-q", 900.0, true));
        let run = || {
            let tracer = pk_trace::Tracer::new(6, 1 << 15);
            simulate_traced(
                &net,
                6,
                500,
                23,
                &pk_fault::FaultPlane::disabled(),
                Some(&tracer),
            );
            pk_trace::encode_stream(&tracer.drain())
        };
        assert_eq!(run(), run(), "same seed, same bytes");
    }
}
