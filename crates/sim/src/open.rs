//! Open-loop serving: seeded arrival processes driving the closed
//! queueing networks as *servers* instead of saturated clients.
//!
//! Every other entry point in this crate is closed-loop — `cores`
//! customers cycle forever, so the system can never be *overloaded*,
//! only slow. Real front ends (Exim, memcached, Apache — §5 of the
//! paper) face the opposite regime: requests arrive whether or not
//! capacity exists, queues grow without bound past saturation, and
//! the interesting metric is the latency *tail*, not the throughput
//! mean. This module adds that regime:
//!
//! * [`ArrivalPattern`] — deterministic seeded arrival processes
//!   (Poisson, bursty on/off, diurnal phase schedules);
//! * [`ClientMix`] — a client-population abstraction: millions of
//!   distinct users hashed statelessly from the request sequence
//!   number, with connection churn and slow-client stalls;
//! * [`OverloadPolicy`] / [`ShedPolicy`] — bounded admission queues,
//!   load shedding, per-request deadline propagation, and graceful
//!   degradation, all `Copy + Eq` so `KernelConfig` can carry them
//!   as a sweepable axis like every other knob;
//! * [`simulate_open`] — the engine: an M/G/c-style discrete-event
//!   loop over the calendar-queue [`EventWheel`](crate::des::wheel),
//!   drawing per-request service from the same exponential stream the
//!   closed engines use, with closed-MVA-style inflation (`Queue`
//!   stations serialize, `NonScalable` stations collapse) so a stock
//!   kernel's tail degrades *faster* than PK's as load climbs.
//!
//! Determinism contract: every output of [`simulate_open`] is a pure
//! function of `(network, cores, pattern, clients, policy,
//! horizon_cycles, seed, fault plane)` — byte-identical across runs,
//! platforms, and opt levels, like the closed engines.

use crate::des::wheel::{EventWheel, WheelEvent};
use crate::mva::{Network, StationKind};
use pk_fault::FaultPlane;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::VecDeque;

/// SplitMix64 finalizer — the stateless hash behind client-population
/// draws and probabilistic shedding. Same construction as
/// `pk-fault`'s schedule hashing, local so the engine has no hidden
/// coupling to the plane's internals.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A deterministic seeded arrival process. All rates are expressed as
/// mean interarrival gaps in cycles, so patterns compose with any
/// machine clock without unit juggling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalPattern {
    /// Memoryless arrivals: exponential gaps with the given mean.
    Poisson {
        /// Mean cycles between arrivals.
        mean_interarrival_cycles: f64,
    },
    /// Bursty on/off source: Poisson at `mean_interarrival_cycles`
    /// during `on_cycles`-long bursts, silent for `off_cycles`
    /// between them. Arrivals that would land in an off window are
    /// deferred to the next burst start — the thundering herd a
    /// keepalive-timeout stampede produces.
    OnOff {
        /// Mean cycles between arrivals while the source is on.
        mean_interarrival_cycles: f64,
        /// Length of each on (burst) window, cycles.
        on_cycles: u64,
        /// Length of each off (silent) window, cycles.
        off_cycles: u64,
    },
    /// Diurnal phase schedule: alternating peak/trough Poisson phases
    /// of `phase_cycles` each — a day/night cycle compressed to
    /// simulation scale.
    Diurnal {
        /// Mean interarrival during peak phases, cycles.
        peak_interarrival_cycles: f64,
        /// Mean interarrival during trough phases, cycles.
        trough_interarrival_cycles: f64,
        /// Length of each phase, cycles.
        phase_cycles: u64,
    },
}

impl ArrivalPattern {
    /// The pattern with every rate scaled by `load` (interarrival
    /// gaps divided by it): `scaled(2.0)` doubles the offered load —
    /// the 2× overload axis of `latency_report`.
    #[must_use]
    pub fn scaled(self, load: f64) -> Self {
        match self {
            Self::Poisson {
                mean_interarrival_cycles,
            } => Self::Poisson {
                mean_interarrival_cycles: mean_interarrival_cycles / load,
            },
            Self::OnOff {
                mean_interarrival_cycles,
                on_cycles,
                off_cycles,
            } => Self::OnOff {
                mean_interarrival_cycles: mean_interarrival_cycles / load,
                on_cycles,
                off_cycles,
            },
            Self::Diurnal {
                peak_interarrival_cycles,
                trough_interarrival_cycles,
                phase_cycles,
            } => Self::Diurnal {
                peak_interarrival_cycles: peak_interarrival_cycles / load,
                trough_interarrival_cycles: trough_interarrival_cycles / load,
                phase_cycles,
            },
        }
    }

    /// Long-run mean interarrival gap, cycles — the normalizing
    /// constant callers use to size horizons (`requests × mean gap`).
    pub fn mean_interarrival_cycles(&self) -> f64 {
        match *self {
            Self::Poisson {
                mean_interarrival_cycles,
            } => mean_interarrival_cycles,
            // The source emits at the burst rate only for the on
            // fraction of each period.
            Self::OnOff {
                mean_interarrival_cycles,
                on_cycles,
                off_cycles,
            } => {
                let period = (on_cycles + off_cycles) as f64;
                mean_interarrival_cycles * period / on_cycles.max(1) as f64
            }
            Self::Diurnal {
                peak_interarrival_cycles,
                trough_interarrival_cycles,
                ..
            } => {
                // Equal phase lengths: the mean *rate* is the average
                // of the two phase rates.
                let rate = 0.5 / peak_interarrival_cycles + 0.5 / trough_interarrival_cycles;
                1.0 / rate
            }
        }
    }

    /// Draws the next arrival time strictly after `now`. Shared with
    /// the request-flow engine (`flow.rs`) so both draw identical
    /// arrival streams from the same seed.
    pub(crate) fn next_after(&self, now: u64, rng: &mut SmallRng) -> u64 {
        match *self {
            Self::Poisson {
                mean_interarrival_cycles,
            } => now + crate::des::service(rng, mean_interarrival_cycles),
            Self::OnOff {
                mean_interarrival_cycles,
                on_cycles,
                off_cycles,
            } => {
                let t = now + crate::des::service(rng, mean_interarrival_cycles);
                let period = on_cycles + off_cycles;
                if period == 0 || on_cycles == 0 {
                    return t;
                }
                let pos = t % period;
                if pos < on_cycles {
                    t
                } else {
                    // Landed in the silent window: defer to the next
                    // burst start (the whole backlog of the off window
                    // stampedes in together).
                    t - pos + period
                }
            }
            Self::Diurnal {
                peak_interarrival_cycles,
                trough_interarrival_cycles,
                phase_cycles,
            } => {
                let mean = if phase_cycles == 0 || (now / phase_cycles).is_multiple_of(2) {
                    peak_interarrival_cycles
                } else {
                    trough_interarrival_cycles
                };
                now + crate::des::service(rng, mean)
            }
        }
    }
}

/// The client population behind an arrival stream. Users are hashed
/// statelessly from the request sequence number, so "millions of
/// distinct users" costs no per-user state: request `i` belongs to
/// user `hash(i) % population`, opens a fresh connection with
/// probability `1/mean_session_requests` (connection churn), and is a
/// slow client with probability `slow_per_mille/1000`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientMix {
    /// Distinct simulated users.
    pub population: u64,
    /// Mean requests per connection before the client reconnects
    /// (0 = no churn, every request rides one warm connection).
    pub mean_session_requests: u32,
    /// Extra service cycles charged on a new connection (TCP + TLS
    /// handshake work the accept path does).
    pub connect_cycles: u64,
    /// Per-mille of requests issued by slow clients (trickled writes,
    /// high-RTT links) that stall a worker.
    pub slow_per_mille: u32,
    /// Worker cycles a slow client holds beyond its service demand.
    pub stall_cycles: u64,
}

impl ClientMix {
    /// A uniform, frictionless population: one fast user per request
    /// with no churn and no stalls.
    pub const fn uniform(population: u64) -> Self {
        Self {
            population,
            mean_session_requests: 0,
            connect_cycles: 0,
            slow_per_mille: 0,
            stall_cycles: 0,
        }
    }
}

/// Which request a bounded admission queue sacrifices when it must.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShedPolicy {
    /// Reject the arriving request (classic bounded backlog).
    DropNewest,
    /// Evict the oldest queued request in favor of the arrival — it
    /// has burned the most SLO budget, so it is the likeliest to miss
    /// its deadline anyway.
    DropOldest,
    /// Shed the arrival with probability `depth/cap` — pressure rises
    /// smoothly instead of cliff-edging at the cap.
    Probabilistic,
}

impl ShedPolicy {
    /// Stable lower-case label used in reports and sweep tables.
    pub fn label(&self) -> &'static str {
        match self {
            Self::DropNewest => "drop-newest",
            Self::DropOldest => "drop-oldest",
            Self::Probabilistic => "probabilistic",
        }
    }
}

/// Overload-survival policy: every knob the serving layer exposes,
/// integer-valued so the struct stays `Copy + Eq` and can ride inside
/// `KernelConfig` like the fix bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OverloadPolicy {
    /// Bound on the admission queue (requests waiting for a worker);
    /// 0 = unbounded (stock behaviour: accept everything, queue
    /// forever).
    pub admission_cap: u32,
    /// What to do when the admission queue is full.
    pub shed: ShedPolicy,
    /// Per-request latency budget in cycles; 0 = no SLO. Completions
    /// slower than this count as SLO violations whether or not
    /// deadline propagation is on.
    pub slo_budget_cycles: u64,
    /// When true, a request that has already exhausted its SLO budget
    /// while queued is cancelled at dispatch instead of occupying a
    /// worker to produce a useless late reply.
    pub deadline_propagation: bool,
    /// Queue depth at which graceful degradation engages; 0 = never
    /// degrade.
    pub degrade_watermark: u32,
    /// Percentage of normal service demand charged while degraded
    /// (e.g. 60 = memcached stale-ok reads skip the lease check).
    pub degrade_demand_pct: u8,
    /// Percentage of slow-client stall cycles charged while degraded
    /// (e.g. 0 = Apache shrinks keepalive and hangs up on slow
    /// clients under pressure).
    pub degrade_stall_pct: u8,
}

impl OverloadPolicy {
    /// No overload handling at all: unbounded queue, no SLO, no
    /// shedding, no degradation — the stock serving posture.
    pub const NONE: Self = Self {
        admission_cap: 0,
        shed: ShedPolicy::DropNewest,
        slo_budget_cycles: 0,
        deadline_propagation: false,
        degrade_watermark: 0,
        degrade_demand_pct: 100,
        degrade_stall_pct: 100,
    };

    /// Measure against an SLO but keep the unbounded queue — the
    /// "no-shed" arm of the overload experiments.
    pub const fn observe(slo_budget_cycles: u64) -> Self {
        Self {
            slo_budget_cycles,
            ..Self::NONE
        }
    }

    /// Full overload survival: a bounded queue shedding by `shed`,
    /// deadline propagation on, degradation at half the cap.
    pub const fn shedding(admission_cap: u32, shed: ShedPolicy, slo_budget_cycles: u64) -> Self {
        Self {
            admission_cap,
            shed,
            slo_budget_cycles,
            deadline_propagation: true,
            degrade_watermark: admission_cap / 2,
            degrade_demand_pct: 100,
            degrade_stall_pct: 100,
        }
    }

    /// The same policy with degradation hooks: at `watermark` queued
    /// requests, service demand drops to `demand_pct`% and slow-client
    /// stalls to `stall_pct`%.
    #[must_use]
    pub const fn with_degradation(mut self, watermark: u32, demand_pct: u8, stall_pct: u8) -> Self {
        self.degrade_watermark = watermark;
        self.degrade_demand_pct = demand_pct;
        self.degrade_stall_pct = stall_pct;
        self
    }

    /// Whether any overload handling beyond observation is enabled.
    pub const fn is_bounded(&self) -> bool {
        self.admission_cap > 0
    }
}

impl Default for OverloadPolicy {
    fn default() -> Self {
        Self::NONE
    }
}

/// Everything one open-loop run produces. The counters satisfy the
/// accounting identity checked by [`OpenLoopResult::accounted`]: every
/// arrival is exactly one of completed / rejected / shed / cancelled /
/// NIC-dropped / still queued / still in flight.
#[derive(Debug, Clone)]
pub struct OpenLoopResult {
    /// Per-request end-to-end latency (arrival → completion), cycles,
    /// in `pk-obs` log2 buckets. Only completed requests record.
    pub latency: pk_obs::HistogramSnapshot,
    /// Requests the arrival process offered.
    pub arrivals: u64,
    /// Requests served to completion inside the horizon.
    pub completed: u64,
    /// Completions slower than the SLO budget.
    pub slo_violations: u64,
    /// Arrivals refused at a full admission queue (drop-newest and
    /// the deterministic floor of probabilistic shed).
    pub rejected: u64,
    /// Queued requests evicted by a later arrival (drop-oldest).
    pub shed_oldest: u64,
    /// Arrivals shed probabilistically below the cap.
    pub shed_probabilistic: u64,
    /// Requests cancelled at dispatch because their deadline had
    /// already passed (deadline propagation).
    pub deadline_cancelled: u64,
    /// Arrivals lost to the injected NIC before admission
    /// (`net.rx_drop`).
    pub nic_dropped: u64,
    /// Requests served in degraded mode.
    pub degraded: u64,
    /// Distinct users observed across all arrivals.
    pub distinct_users: u64,
    /// Arrivals that opened a fresh connection (churn).
    pub new_connections: u64,
    /// Arrivals from slow clients.
    pub slow_requests: u64,
    /// Requests still queued when the horizon closed — the divergence
    /// signal for unbounded queues past saturation.
    pub queue_depth_end: u64,
    /// Peak admission-queue depth over the run.
    pub queue_depth_peak: u64,
    /// Requests still on a worker at the horizon.
    pub in_flight_end: u64,
    /// Observation window, cycles.
    pub horizon_cycles: u64,
}

impl OpenLoopResult {
    /// Completions within the SLO budget (all completions when no SLO
    /// is set).
    pub fn goodput_ops(&self) -> u64 {
        self.completed - self.slo_violations
    }

    /// Goodput as ops/cycle over the horizon — comparable to an MVA
    /// solve's `ops_per_cycle` saturation estimate.
    pub fn goodput_ops_per_cycle(&self) -> f64 {
        self.goodput_ops() as f64 / self.horizon_cycles.max(1) as f64
    }

    /// Offered load as ops/cycle over the horizon.
    pub fn offered_ops_per_cycle(&self) -> f64 {
        self.arrivals as f64 / self.horizon_cycles.max(1) as f64
    }

    /// Sum of all per-arrival dispositions; equals [`Self::arrivals`]
    /// by construction, asserted in tests and the chaos harness.
    pub fn accounted(&self) -> u64 {
        self.completed
            + self.rejected
            + self.shed_oldest
            + self.shed_probabilistic
            + self.deadline_cancelled
            + self.nic_dropped
            + self.queue_depth_end
            + self.in_flight_end
    }
}

/// One queued request.
#[derive(Debug, Clone, Copy)]
struct Request {
    arrival: u64,
    new_connection: bool,
    slow: bool,
}

/// Single-event pop adapter over the batch-draining [`EventWheel`].
///
/// The wheel's contract says any event pushed *below* the horizon of
/// the current batch must be merged into that batch, not pushed back
/// (the window has already been drained). The closed engines satisfy
/// it by construction; the open engine schedules completions from
/// mid-batch dispatches, so this adapter keeps the live batch as a
/// sorted buffer and insert-sorts sub-horizon pushes into it.
struct WheelQueue {
    wheel: EventWheel,
    buf: Vec<WheelEvent>,
    pos: usize,
    horizon: u64,
}

impl WheelQueue {
    fn new(max_service_cycles: f64, lanes: usize) -> Self {
        Self {
            wheel: EventWheel::new(max_service_cycles, lanes),
            buf: Vec::new(),
            pos: 0,
            horizon: 0,
        }
    }

    fn push(&mut self, t: u64, seq: u64, id: u32) {
        if t < self.horizon {
            // Below the live batch's horizon: merge, keeping the
            // remaining tail sorted by (time, seq).
            let at =
                self.buf[self.pos..].partition_point(|&(bt, bs, _)| (bt, bs) < (t, seq)) + self.pos;
            self.buf.insert(at, (t, seq, id));
        } else {
            self.wheel.push(t, seq, id);
        }
    }

    fn pop(&mut self) -> Option<WheelEvent> {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
            self.horizon = self.wheel.next_batch(&mut self.buf)?;
        }
        let e = self.buf[self.pos];
        self.pos += 1;
        Some(e)
    }
}

/// Sentinel customer id for arrival events; worker completions use
/// their slot index.
const ARRIVAL: u32 = u32::MAX;

/// Runs an open-loop serving simulation with no fault plane.
/// See [`simulate_open_with_faults`].
#[allow(clippy::too_many_arguments)]
pub fn simulate_open(
    network: &Network,
    cores: usize,
    pattern: ArrivalPattern,
    clients: ClientMix,
    policy: OverloadPolicy,
    horizon_cycles: u64,
    seed: u64,
) -> OpenLoopResult {
    simulate_open_with_faults(
        network,
        cores,
        pattern,
        clients,
        policy,
        horizon_cycles,
        seed,
        &FaultPlane::disabled(),
    )
}

/// Runs an open-loop serving simulation: `pattern` offers requests to
/// a `cores`-worker server whose per-request service is drawn from
/// `network`'s stations, under `policy`'s admission/shedding/deadline
/// rules, until the horizon closes. Consults the plane's
/// `net.rx_drop` point on every arrival (a dropped arrival never
/// reaches admission), so chaos runs can cross overload with packet
/// loss.
///
/// Service model: each request draws an exponential service time per
/// station; `Queue` stations serialize (`× n` in-service requests)
/// and `NonScalable` stations collapse (`× n × (1 + collapse·(n−1))`)
/// — the open-loop analogue of the closed MVA residence formulas, so
/// a stock network's workers slow each other down under load exactly
/// the way its closed curves collapse.
#[allow(clippy::too_many_arguments)]
pub fn simulate_open_with_faults(
    network: &Network,
    cores: usize,
    pattern: ArrivalPattern,
    clients: ClientMix,
    policy: OverloadPolicy,
    horizon_cycles: u64,
    seed: u64,
    faults: &FaultPlane,
) -> OpenLoopResult {
    assert!(cores > 0, "open-loop serving needs at least one worker");
    assert!(
        !network.stations().is_empty(),
        "open-loop serving needs at least one station"
    );
    let mut svc_rng = SmallRng::seed_from_u64(seed);
    let mut arr_rng = SmallRng::seed_from_u64(seed ^ 0xa5a5_5a5a_1234_5678);
    let rx_drop = faults.point("net.rx_drop");

    let max_demand = network
        .stations()
        .iter()
        .map(|s| s.demand_cycles)
        .fold(0.0_f64, f64::max);
    let mut events = WheelQueue::new(max_demand.max(1.0) * cores as f64, cores + 1);
    let mut seq = 0u64;

    // Worker slots: `slots[i]` holds the request the slot is serving.
    let mut slots: Vec<Option<Request>> = vec![None; cores];
    let mut free: Vec<u32> = (0..cores as u32).rev().collect();
    let mut in_service = 0usize;
    let mut queue: VecDeque<Request> = VecDeque::new();

    let hist = pk_obs::Histogram::new(cores);
    let mut users = std::collections::HashSet::new();
    let mut r = OpenLoopResult {
        latency: pk_obs::HistogramSnapshot {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
        },
        arrivals: 0,
        completed: 0,
        slo_violations: 0,
        rejected: 0,
        shed_oldest: 0,
        shed_probabilistic: 0,
        deadline_cancelled: 0,
        nic_dropped: 0,
        degraded: 0,
        distinct_users: 0,
        new_connections: 0,
        slow_requests: 0,
        queue_depth_end: 0,
        queue_depth_peak: 0,
        in_flight_end: 0,
        horizon_cycles,
    };

    // Draws one request's total service, inflated by the in-service
    // count at dispatch.
    let mut draw_service = |rng: &mut SmallRng, n: usize, degraded: bool| -> u64 {
        let nf = n as f64;
        let mut total = 0u64;
        for st in network.stations() {
            if st.demand_cycles <= 0.0 {
                continue;
            }
            let base = crate::des::service(rng, st.demand_cycles);
            let inflated = match st.kind {
                StationKind::Delay => base as f64,
                StationKind::Queue => base as f64 * nf,
                StationKind::NonScalable { collapse } => {
                    base as f64 * nf * (1.0 + collapse * (nf - 1.0))
                }
            };
            total = total.saturating_add(inflated as u64);
        }
        if degraded {
            total = total * policy.degrade_demand_pct as u64 / 100;
        }
        total.max(1)
    };

    let first = pattern.next_after(0, &mut arr_rng);
    if first < horizon_cycles {
        events.push(first, seq, ARRIVAL);
        seq += 1;
    }

    while let Some((now, _, id)) = events.pop() {
        if now >= horizon_cycles {
            break;
        }
        if id == ARRIVAL {
            // Schedule the next arrival first so the arrival RNG
            // stream never depends on admission decisions.
            let next = pattern.next_after(now, &mut arr_rng);
            if next < horizon_cycles {
                events.push(next, seq, ARRIVAL);
                seq += 1;
            }
            let i = r.arrivals;
            r.arrivals += 1;

            // Client population: stateless hashes of the arrival
            // index, seeded separately from service and arrivals.
            let h = mix64(seed ^ mix64(i.wrapping_add(0x5eed_c11e)));
            users.insert(h % clients.population.max(1));
            let new_connection = clients.mean_session_requests > 0
                && mix64(h ^ 1).is_multiple_of(clients.mean_session_requests as u64);
            let slow =
                clients.slow_per_mille > 0 && (mix64(h ^ 2) % 1000) < clients.slow_per_mille as u64;
            if new_connection {
                r.new_connections += 1;
            }
            if slow {
                r.slow_requests += 1;
            }
            let req = Request {
                arrival: now,
                new_connection,
                slow,
            };

            if rx_drop.should_inject() {
                r.nic_dropped += 1;
                continue;
            }

            if in_service < cores {
                dispatch(
                    req,
                    now,
                    &mut svc_rng,
                    &mut draw_service,
                    &mut slots,
                    &mut free,
                    &mut in_service,
                    &mut events,
                    &mut seq,
                    &queue,
                    &policy,
                    &clients,
                    &mut r,
                );
            } else {
                let depth = queue.len() as u64;
                let cap = policy.admission_cap as u64;
                if cap > 0 && depth >= cap {
                    match policy.shed {
                        ShedPolicy::DropNewest | ShedPolicy::Probabilistic => r.rejected += 1,
                        ShedPolicy::DropOldest => {
                            queue.pop_front();
                            r.shed_oldest += 1;
                            queue.push_back(req);
                        }
                    }
                } else if cap > 0
                    && policy.shed == ShedPolicy::Probabilistic
                    && (mix64(h ^ 3) % cap) < depth
                {
                    r.shed_probabilistic += 1;
                } else {
                    queue.push_back(req);
                    r.queue_depth_peak = r.queue_depth_peak.max(queue.len() as u64);
                }
            }
        } else {
            // A worker finished.
            let slot = id as usize;
            let req = slots[slot].take().expect("completion for an empty slot");
            in_service -= 1;
            free.push(id);
            let latency = now - req.arrival;
            hist.record(pk_percpu::CoreId(slot % cores), latency);
            r.completed += 1;
            if policy.slo_budget_cycles > 0 && latency > policy.slo_budget_cycles {
                r.slo_violations += 1;
            }

            // Pull the next admitted request, cancelling any whose
            // deadline already passed (deadline propagation).
            while let Some(q) = queue.pop_front() {
                if policy.deadline_propagation
                    && policy.slo_budget_cycles > 0
                    && now - q.arrival > policy.slo_budget_cycles
                {
                    r.deadline_cancelled += 1;
                    continue;
                }
                dispatch(
                    q,
                    now,
                    &mut svc_rng,
                    &mut draw_service,
                    &mut slots,
                    &mut free,
                    &mut in_service,
                    &mut events,
                    &mut seq,
                    &queue,
                    &policy,
                    &clients,
                    &mut r,
                );
                break;
            }
        }
    }

    r.queue_depth_end = queue.len() as u64;
    r.in_flight_end = in_service as u64;
    r.distinct_users = users.len() as u64;
    r.latency = hist.snapshot();
    r
}

/// Starts service for `req` on a free worker slot at `now`.
#[allow(clippy::too_many_arguments)]
fn dispatch(
    req: Request,
    now: u64,
    svc_rng: &mut SmallRng,
    draw_service: &mut impl FnMut(&mut SmallRng, usize, bool) -> u64,
    slots: &mut [Option<Request>],
    free: &mut Vec<u32>,
    in_service: &mut usize,
    events: &mut WheelQueue,
    seq: &mut u64,
    queue: &VecDeque<Request>,
    policy: &OverloadPolicy,
    clients: &ClientMix,
    r: &mut OpenLoopResult,
) {
    let degraded = policy.degrade_watermark > 0 && queue.len() >= policy.degrade_watermark as usize;
    if degraded {
        r.degraded += 1;
    }
    *in_service += 1;
    let mut service = draw_service(svc_rng, *in_service, degraded);
    if req.new_connection {
        service = service.saturating_add(clients.connect_cycles);
    }
    if req.slow {
        let stall = if degraded {
            clients.stall_cycles * policy.degrade_stall_pct as u64 / 100
        } else {
            clients.stall_cycles
        };
        service = service.saturating_add(stall);
    }
    let slot = free.pop().expect("dispatch with no free worker");
    slots[slot as usize] = Some(req);
    events.push(now + service.max(1), *seq, slot);
    *seq += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mva::Station;
    use pk_fault::{FaultPlane, FaultSchedule};

    fn toy_network() -> Network {
        let mut n = Network::new();
        n.push(Station::delay("user", 800.0, false))
            .push(Station::queue("handoff", 40.0, true))
            .push(Station::spinlock("lock", 60.0, 0.3, true));
        n
    }

    fn poisson(gap: f64) -> ArrivalPattern {
        ArrivalPattern::Poisson {
            mean_interarrival_cycles: gap,
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let net = toy_network();
        let run = || {
            simulate_open(
                &net,
                4,
                poisson(500.0),
                ClientMix::uniform(1_000_000),
                OverloadPolicy::observe(20_000),
                2_000_000,
                42,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.latency.buckets, b.latency.buckets);
        assert_eq!(a.arrivals, b.arrivals);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.distinct_users, b.distinct_users);
        assert_eq!(a.queue_depth_peak, b.queue_depth_peak);
    }

    #[test]
    fn accounting_identity_holds() {
        let net = toy_network();
        for &(cap, shed) in &[
            (0u32, ShedPolicy::DropNewest),
            (8, ShedPolicy::DropNewest),
            (8, ShedPolicy::DropOldest),
            (8, ShedPolicy::Probabilistic),
        ] {
            let policy = if cap == 0 {
                OverloadPolicy::observe(10_000)
            } else {
                OverloadPolicy::shedding(cap, shed, 10_000)
            };
            let r = simulate_open(
                &net,
                2,
                poisson(300.0),
                ClientMix::uniform(1000),
                policy,
                1_000_000,
                7,
            );
            assert_eq!(
                r.accounted(),
                r.arrivals,
                "identity broken under {shed:?} cap={cap}"
            );
        }
    }

    #[test]
    fn poisson_rate_is_close_to_nominal() {
        let net = toy_network();
        let r = simulate_open(
            &net,
            48,
            poisson(1_000.0),
            ClientMix::uniform(1_000_000),
            OverloadPolicy::NONE,
            10_000_000,
            42,
        );
        let expected = 10_000.0;
        assert!(
            (r.arrivals as f64) > 0.9 * expected && (r.arrivals as f64) < 1.1 * expected,
            "poisson arrivals {} far from nominal {expected}",
            r.arrivals
        );
    }

    #[test]
    fn onoff_bursts_confine_arrivals_to_on_windows() {
        // All arrivals must land inside on windows — verified
        // indirectly: an off fraction of 3/4 leaves the long-run rate
        // at ~1/4 of the burst rate.
        let net = toy_network();
        let pattern = ArrivalPattern::OnOff {
            mean_interarrival_cycles: 200.0,
            on_cycles: 50_000,
            off_cycles: 150_000,
        };
        let r = simulate_open(
            &net,
            48,
            pattern,
            ClientMix::uniform(1_000_000),
            OverloadPolicy::NONE,
            8_000_000,
            42,
        );
        let nominal = 8_000_000.0 / pattern.mean_interarrival_cycles();
        assert!(
            (r.arrivals as f64) > 0.7 * nominal && (r.arrivals as f64) < 1.3 * nominal,
            "on/off arrivals {} far from nominal {nominal}",
            r.arrivals
        );
    }

    #[test]
    fn bounded_queue_respects_cap_and_unbounded_diverges() {
        let net = toy_network();
        // Demand ~900 cycles/request on 1 worker, arrivals every ~200
        // cycles: heavy overload.
        let shed = simulate_open(
            &net,
            1,
            poisson(200.0),
            ClientMix::uniform(1000),
            OverloadPolicy::shedding(16, ShedPolicy::DropNewest, 50_000),
            2_000_000,
            42,
        );
        assert!(shed.queue_depth_peak <= 16, "cap violated: {shed:?}");
        assert!(shed.rejected > 0, "overload never rejected: {shed:?}");

        let noshed = simulate_open(
            &net,
            1,
            poisson(200.0),
            ClientMix::uniform(1000),
            OverloadPolicy::observe(50_000),
            2_000_000,
            42,
        );
        assert!(
            noshed.queue_depth_end > 100,
            "unbounded queue failed to diverge: {noshed:?}"
        );
    }

    #[test]
    fn drop_oldest_evicts_and_probabilistic_sheds_early() {
        let net = toy_network();
        let oldest = simulate_open(
            &net,
            1,
            poisson(150.0),
            ClientMix::uniform(1000),
            OverloadPolicy::shedding(8, ShedPolicy::DropOldest, 50_000),
            1_000_000,
            42,
        );
        assert!(oldest.shed_oldest > 0, "drop-oldest never evicted");
        let prob = simulate_open(
            &net,
            1,
            poisson(150.0),
            ClientMix::uniform(1000),
            OverloadPolicy::shedding(8, ShedPolicy::Probabilistic, 50_000),
            1_000_000,
            42,
        );
        assert!(
            prob.shed_probabilistic > 0,
            "probabilistic shed never fired below the cap"
        );
    }

    #[test]
    fn deadline_propagation_cancels_late_work() {
        let net = toy_network();
        let r = simulate_open(
            &net,
            1,
            poisson(200.0),
            ClientMix::uniform(1000),
            // Large cap, tiny SLO: queued requests blow their budget.
            OverloadPolicy::shedding(512, ShedPolicy::DropNewest, 2_000),
            1_000_000,
            42,
        );
        assert!(r.deadline_cancelled > 0, "no deadlines propagated: {r:?}");
    }

    #[test]
    fn degradation_reduces_service_under_pressure() {
        let net = toy_network();
        let base = OverloadPolicy::shedding(64, ShedPolicy::DropNewest, 100_000);
        let plain = simulate_open(
            &net,
            1,
            poisson(250.0),
            ClientMix::uniform(1000),
            base,
            2_000_000,
            42,
        );
        let degraded = simulate_open(
            &net,
            1,
            poisson(250.0),
            ClientMix::uniform(1000),
            base.with_degradation(4, 50, 0),
            2_000_000,
            42,
        );
        assert!(degraded.degraded > 0, "degradation never engaged");
        assert!(
            degraded.completed > plain.completed,
            "degradation should raise completions: {} vs {}",
            degraded.completed,
            plain.completed
        );
    }

    #[test]
    fn client_population_produces_churn_slow_clients_and_many_users() {
        let net = toy_network();
        let clients = ClientMix {
            population: 2_000_000,
            mean_session_requests: 8,
            connect_cycles: 500,
            slow_per_mille: 50,
            stall_cycles: 10_000,
        };
        let r = simulate_open(
            &net,
            48,
            poisson(500.0),
            clients,
            OverloadPolicy::NONE,
            10_000_000,
            42,
        );
        assert!(r.new_connections > 0, "no connection churn");
        assert!(r.slow_requests > 0, "no slow clients");
        // ~20k arrivals over 2M users: collisions are rare, so nearly
        // every arrival is a distinct user.
        assert!(
            r.distinct_users as f64 > 0.95 * r.arrivals as f64,
            "population hashing collapsed: {} users / {} arrivals",
            r.distinct_users,
            r.arrivals
        );
    }

    #[test]
    fn nic_drop_faults_count_as_lost_arrivals() {
        let net = toy_network();
        let plane = FaultPlane::with_seed(42);
        plane.set("net.rx_drop", FaultSchedule::EveryNth(10));
        plane.enable();
        let r = simulate_open_with_faults(
            &net,
            4,
            poisson(500.0),
            ClientMix::uniform(1000),
            OverloadPolicy::observe(50_000),
            2_000_000,
            42,
            &plane,
        );
        assert!(r.nic_dropped > 0, "armed rx_drop never fired");
        assert_eq!(r.accounted(), r.arrivals);
    }

    #[test]
    fn scaled_doubles_offered_load() {
        let p = poisson(1_000.0).scaled(2.0);
        assert_eq!(
            p,
            ArrivalPattern::Poisson {
                mean_interarrival_cycles: 500.0
            }
        );
    }
}
