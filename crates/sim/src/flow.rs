//! Request-flow serving: the open-loop engine with *real* station
//! queues, built for per-request causal tracing (DESIGN.md §15).
//!
//! [`simulate_open`](crate::open::simulate_open) answers capacity
//! questions with a lumped service model: each request draws one total
//! service time, inflated by the in-service count, and a worker sleeps
//! through it. That is the right fidelity for shed/SLO sweeps, but it
//! cannot say *where* a slow request's cycles went — the inflation
//! spreads queueing uniformly across every station, while on the real
//! machine (and in the closed DES) queueing concentrates at the
//! saturated station. §5.2.1 of the paper is exactly that distinction:
//! 97% of stock Exim's cycles sat in one lock, not 97% spread evenly.
//!
//! This engine keeps the open side of `simulate_open` byte-for-byte in
//! spirit — same arrival processes, same client hashing, same
//! admission/shed/deadline/degradation policy decisions in the same
//! order — but each admitted request then *traverses the station list
//! through per-station FIFOs* with the closed engine's service rules:
//!
//! * `Delay` stations never queue (perfectly parallel work);
//! * `Queue` stations serve one request at a time, FCFS;
//! * `NonScalable` stations additionally inflate the service mean at
//!   service start by `1 + collapse × waiters` — the §4.1 collapse.
//!
//! At most `cores` requests are in the network at once (one per worker
//! slot); the admission queue holds the rest. Each slot is a trace
//! track, and when a [`Tracer`] is supplied the engine emits the full
//! causal record per request: a `CtxBegin`/`CtxEnd` envelope carrying
//! the deterministic request id, a zero-width admission-wait lock pair,
//! per-station span + wait-span + lock-hold events (lock classes from
//! the shared `pk-lockdep` registry), connect and stall spans. Folded
//! by `pk-why`, those events satisfy the accounting identity
//! `latency = admission wait + service + Σ station waits` exactly.
//!
//! Determinism contract: identical to `simulate_open` — every output,
//! including the trace stream, is a pure function of the inputs.

use crate::des::wheel::{EventWheel, WheelEvent};
use crate::mva::{Network, StationKind};
use crate::open::{ArrivalPattern, ClientMix, OpenLoopResult, OverloadPolicy, ShedPolicy};
use pk_fault::FaultPlane;
use pk_trace::{EventKind, Tracer};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::VecDeque;

/// Lock-class name charged for time spent in the admission queue.
pub const ADMISSION_CLASS: &str = "serve.admission_queue";
/// Span class for connection-establishment work (churned arrivals).
pub const CONNECT_CLASS: &str = "serve.connect";
/// Span class for slow-client stalls after service completes.
pub const STALL_CLASS: &str = "serve.stall";
/// Instant classes recorded on the admission track, `arg` = request id.
pub const SHED_CLASS: &str = "serve.shed";
/// See [`SHED_CLASS`].
pub const REJECT_CLASS: &str = "serve.reject";
/// See [`SHED_CLASS`].
pub const CANCEL_CLASS: &str = "serve.cancel";
/// See [`SHED_CLASS`].
pub const NIC_DROP_CLASS: &str = "serve.nic_drop";

/// Ring capacity per track that guarantees a lossless capture of a
/// `requests`-arrival flow run (the sizing rule `tail_report` applies,
/// DESIGN.md §15): each request emits at most `8 + 6·stations` events
/// (ctx pair, admission pair, connect pair, stall pair, and per station
/// a span pair, a wait pair, and a lock pair), requests spread
/// round-robin across `cores` slot tracks, and the ×2 slack covers the
/// admission track — which sees one instant per shed/cancelled arrival
/// — and any residual imbalance from uneven request lifetimes.
pub fn flow_ring_capacity(requests: u64, cores: usize, stations: usize) -> usize {
    let per_request = 8 + 6 * stations as u64;
    let per_track = requests.div_ceil(cores.max(1) as u64).max(1);
    (per_track * per_request * 2).max(64) as usize
}

/// SplitMix64 finalizer — must match `open.rs` exactly so the two
/// engines agree on which arrival is which user / slow / churned.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Single-event pop adapter over the batch-draining [`EventWheel`];
/// same shape as the one in `open.rs` (completions scheduled from
/// mid-batch must merge into the live sorted batch).
struct WheelQueue {
    wheel: EventWheel,
    buf: Vec<WheelEvent>,
    pos: usize,
    horizon: u64,
}

impl WheelQueue {
    fn new(max_service_cycles: f64, lanes: usize) -> Self {
        Self {
            wheel: EventWheel::new(max_service_cycles, lanes),
            buf: Vec::new(),
            pos: 0,
            horizon: 0,
        }
    }

    fn push(&mut self, t: u64, seq: u64, id: u32) {
        if t < self.horizon {
            let at =
                self.buf[self.pos..].partition_point(|&(bt, bs, _)| (bt, bs) < (t, seq)) + self.pos;
            self.buf.insert(at, (t, seq, id));
        } else {
            self.wheel.push(t, seq, id);
        }
    }

    fn pop(&mut self) -> Option<WheelEvent> {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
            self.horizon = self.wheel.next_batch(&mut self.buf)?;
        }
        let e = self.buf[self.pos];
        self.pos += 1;
        Some(e)
    }
}

const ARRIVAL: u32 = u32::MAX;

/// Where a request is in its traversal. A slot's scheduled wheel event
/// always refers to the end of the phase it is currently *in*; waiting
/// requests have no scheduled event (their next event is created when
/// the station's server frees).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    /// Paying connection-establishment cycles before station 0.
    Connect,
    /// In station `i`'s FIFO (serialized stations only).
    Waiting(usize),
    /// In service at station `i`.
    InService(usize),
    /// Paying the slow-client stall after the last station.
    Stalling,
}

/// One in-network request, owned by its worker slot.
#[derive(Debug, Clone, Copy)]
struct FlowReq {
    ctx: u64,
    arrival: u64,
    slow: bool,
    degraded: bool,
    phase: Phase,
    /// When the request entered its current station's FIFO.
    enqueued_at: u64,
}

/// A queued (admitted but not yet in-network) request.
#[derive(Debug, Clone, Copy)]
struct Pending {
    ctx: u64,
    arrival: u64,
    new_connection: bool,
    slow: bool,
}

/// Per-station serialization state (`Queue`/`NonScalable` only).
struct StationQueue {
    /// Whether a request is in service.
    busy: bool,
    /// Waiting slots, FCFS.
    fifo: VecDeque<u32>,
}

/// Resolved trace ids for one station.
#[derive(Clone, Copy)]
struct StationIds {
    span: u32,
    wait: u32,
    /// Lockdep class for serialized stations; `None` for delay.
    lock: Option<u32>,
}

/// Trace emitter: all recording funnels here so an untraced run costs
/// one branch per would-be event.
struct Emit<'a> {
    tracer: Option<&'a Tracer>,
}

impl Emit<'_> {
    #[inline]
    fn rec(&self, track: u32, ts: u64, kind: EventKind, class: u32, arg: u64) {
        if let Some(t) = self.tracer {
            t.record_at(track as usize, ts, kind, class, 0, arg);
        }
    }
}

/// Runs an open-loop request-flow simulation: `pattern` offers requests
/// exactly as [`simulate_open`](crate::open::simulate_open) does, under
/// the same `policy`, but admitted requests traverse `network`'s
/// stations through real FIFOs (see the module docs), and — when
/// `tracer` is `Some` — every request's path is recorded as a causal
/// span tree on its worker slot's track. The tracer needs at least
/// `cores + 1` tracks: track `cores` carries admission-side instants
/// (sheds, rejects, cancels, NIC drops).
///
/// Request ids are `pk_trace::request_id(seed, user, arrival_seq)`.
#[allow(clippy::too_many_arguments)]
pub fn simulate_flow(
    network: &Network,
    cores: usize,
    pattern: ArrivalPattern,
    clients: ClientMix,
    policy: OverloadPolicy,
    horizon_cycles: u64,
    seed: u64,
    tracer: Option<&Tracer>,
) -> OpenLoopResult {
    simulate_flow_with_faults(
        network,
        cores,
        pattern,
        clients,
        policy,
        horizon_cycles,
        seed,
        tracer,
        &FaultPlane::disabled(),
    )
}

/// [`simulate_flow`] with a fault plane: consults `net.rx_drop` on
/// every arrival before admission, same as
/// [`simulate_open_with_faults`](crate::open::simulate_open_with_faults);
/// dropped arrivals record a `serve.nic_drop` instant on the admission
/// track.
#[allow(clippy::too_many_arguments)]
pub fn simulate_flow_with_faults(
    network: &Network,
    cores: usize,
    pattern: ArrivalPattern,
    clients: ClientMix,
    policy: OverloadPolicy,
    horizon_cycles: u64,
    seed: u64,
    tracer: Option<&Tracer>,
    faults: &FaultPlane,
) -> OpenLoopResult {
    assert!(cores > 0, "request-flow serving needs at least one worker");
    assert!(
        !network.stations().is_empty(),
        "request-flow serving needs at least one station"
    );
    if let Some(t) = tracer {
        assert!(
            t.tracks() > cores,
            "tracer needs cores+1 tracks ({} for {cores} cores)",
            t.tracks()
        );
    }
    let stations = network.stations();
    let mut svc_rng = SmallRng::seed_from_u64(seed);
    let mut arr_rng = SmallRng::seed_from_u64(seed ^ 0xa5a5_5a5a_1234_5678);
    let rx_drop = faults.point("net.rx_drop");

    // Resolve every class id up front; zero ring work on the hot path.
    let ctx_class = pk_trace::REQUEST_CLASS.class_id();
    let admission_lock =
        pk_lockdep::register_class(ADMISSION_CLASS, "pk-sim", pk_lockdep::LockKind::Ticket).raw();
    let connect_span = pk_trace::intern::intern_span(CONNECT_CLASS);
    let stall_span = pk_trace::intern::intern_span(STALL_CLASS);
    let shed_i = pk_trace::intern::intern_span(SHED_CLASS);
    let reject_i = pk_trace::intern::intern_span(REJECT_CLASS);
    let cancel_i = pk_trace::intern::intern_span(CANCEL_CLASS);
    let nic_i = pk_trace::intern::intern_span(NIC_DROP_CLASS);
    let st_ids: Vec<StationIds> = stations
        .iter()
        .map(|st| StationIds {
            span: pk_trace::intern::intern_span(st.name),
            wait: pk_trace::intern::intern_span(&format!("{} (wait)", st.name)),
            lock: match st.kind {
                StationKind::Delay => None,
                StationKind::Queue | StationKind::NonScalable { .. } => Some(
                    pk_lockdep::register_class(
                        st.class.unwrap_or(st.name),
                        "pk-sim",
                        pk_lockdep::LockKind::Spin,
                    )
                    .raw(),
                ),
            },
        })
        .collect();
    let emit = Emit { tracer };
    let adm_track = cores as u32;

    let max_demand = stations
        .iter()
        .map(|s| s.demand_cycles)
        .fold(0.0_f64, f64::max);
    let mut events = WheelQueue::new(max_demand.max(1.0) * cores as f64, cores + 1);
    let mut seq = 0u64;

    let mut slots: Vec<Option<FlowReq>> = vec![None; cores];
    // Round-robin slot reuse spreads requests evenly across trace
    // tracks (the ring-sizing rule in `flow_ring_capacity` relies on
    // it); `open.rs` uses LIFO, but slot choice is invisible to every
    // OpenLoopResult field, so the engines still agree on semantics.
    let mut free: VecDeque<u32> = (0..cores as u32).collect();
    let mut in_network = 0usize;
    let mut queue: VecDeque<Pending> = VecDeque::new();
    let mut st_q: Vec<StationQueue> = stations
        .iter()
        .map(|_| StationQueue {
            busy: false,
            fifo: VecDeque::new(),
        })
        .collect();

    let hist = pk_obs::Histogram::new(cores);
    let mut users = std::collections::HashSet::new();
    let mut r = OpenLoopResult {
        latency: pk_obs::HistogramSnapshot {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
        },
        arrivals: 0,
        completed: 0,
        slo_violations: 0,
        rejected: 0,
        shed_oldest: 0,
        shed_probabilistic: 0,
        deadline_cancelled: 0,
        nic_dropped: 0,
        degraded: 0,
        distinct_users: 0,
        new_connections: 0,
        slow_requests: 0,
        queue_depth_end: 0,
        queue_depth_peak: 0,
        in_flight_end: 0,
        horizon_cycles,
    };

    // Draws one station service, applying degradation. Inflation is
    // applied to the *mean* (matching the closed engine's
    // `service_params`), not the drawn value, so the exponential shape
    // is preserved.
    let draw = |rng: &mut SmallRng, mean: f64, degraded: bool| -> u64 {
        let s = crate::des::service(rng, mean);
        if degraded {
            (s * policy.degrade_demand_pct as u64 / 100).max(1)
        } else {
            s
        }
    };

    // Starts service for `slot` at station `si` at time `now`. The
    // caller has already removed it from the FIFO / kept it out.
    macro_rules! start_service {
        ($slot:expr, $si:expr, $now:expr) => {{
            let slot = $slot;
            let si = $si;
            let now = $now;
            let req = slots[slot as usize]
                .as_mut()
                .expect("service on empty slot");
            let waited = now - req.enqueued_at;
            let mean = match stations[si].kind {
                StationKind::NonScalable { collapse } => {
                    stations[si].demand_cycles * (1.0 + collapse * st_q[si].fifo.len() as f64)
                }
                _ => stations[si].demand_cycles,
            };
            let svc = draw(&mut svc_rng, mean, req.degraded);
            // A request that queued opened a wait span at entry; close
            // it even when the wait was zero-width (dequeued the same
            // cycle), or the stream leaves an unbalanced span.
            if matches!(req.phase, Phase::Waiting(_)) {
                emit.rec(slot, now, EventKind::SpanEnd, st_ids[si].wait, 0);
            }
            if let Some(lock) = st_ids[si].lock {
                emit.rec(slot, now, EventKind::LockBegin, lock, waited);
            }
            req.phase = Phase::InService(si);
            st_q[si].busy = true;
            events.push(now + svc, seq, slot);
            seq += 1;
        }};
    }

    // Moves `slot` into station `si` (or finishes if past the last) at
    // time `now`.
    macro_rules! enter_station {
        ($slot:expr, $si:expr, $now:expr) => {{
            let slot: u32 = $slot;
            let si: usize = $si;
            let now: u64 = $now;
            let req = slots[slot as usize].as_mut().expect("enter on empty slot");
            emit.rec(slot, now, EventKind::SpanBegin, st_ids[si].span, 0);
            req.enqueued_at = now;
            match stations[si].kind {
                StationKind::Delay => {
                    let svc = draw(&mut svc_rng, stations[si].demand_cycles, req.degraded);
                    req.phase = Phase::InService(si);
                    events.push(now + svc, seq, slot);
                    seq += 1;
                }
                StationKind::Queue | StationKind::NonScalable { .. } => {
                    if st_q[si].busy {
                        emit.rec(slot, now, EventKind::SpanBegin, st_ids[si].wait, 0);
                        slots[slot as usize].as_mut().unwrap().phase = Phase::Waiting(si);
                        st_q[si].fifo.push_back(slot);
                    } else {
                        start_service!(slot, si, now);
                    }
                }
            }
        }};
    }

    // Dispatches an admitted request into the network at `now`.
    macro_rules! dispatch {
        ($p:expr, $now:expr) => {{
            let p: Pending = $p;
            let now: u64 = $now;
            let degraded =
                policy.degrade_watermark > 0 && queue.len() >= policy.degrade_watermark as usize;
            if degraded {
                r.degraded += 1;
            }
            in_network += 1;
            let slot = free.pop_front().expect("dispatch with no free worker");
            slots[slot as usize] = Some(FlowReq {
                ctx: p.ctx,
                arrival: p.arrival,
                slow: p.slow,
                degraded,
                phase: Phase::Connect,
                enqueued_at: now,
            });
            emit.rec(slot, now, EventKind::CtxBegin, ctx_class, p.ctx);
            // Admission wait rides as a zero-width lock pair at entry,
            // `arg` = cycles queued, so the fold attributes it without
            // needing a backdated span (track timestamps stay monotone).
            emit.rec(
                slot,
                now,
                EventKind::LockBegin,
                admission_lock,
                now - p.arrival,
            );
            emit.rec(slot, now, EventKind::LockEnd, admission_lock, 0);
            if p.new_connection && clients.connect_cycles > 0 {
                emit.rec(slot, now, EventKind::SpanBegin, connect_span, 0);
                events.push(now + clients.connect_cycles, seq, slot);
                seq += 1;
            } else {
                enter_station!(slot, 0, now);
            }
        }};
    }

    // Retires `slot`'s request at `now`, then pulls the next admitted
    // request (cancelling any whose deadline already passed — deadline
    // propagation, same order as open.rs).
    macro_rules! complete {
        ($slot:expr, $now:expr) => {{
            let slot: u32 = $slot;
            let now: u64 = $now;
            let req = slots[slot as usize].take().expect("complete on empty slot");
            in_network -= 1;
            free.push_back(slot);
            emit.rec(slot, now, EventKind::CtxEnd, ctx_class, req.ctx);
            let latency = now - req.arrival;
            hist.record(pk_percpu::CoreId(slot as usize % cores), latency);
            r.completed += 1;
            if policy.slo_budget_cycles > 0 && latency > policy.slo_budget_cycles {
                r.slo_violations += 1;
            }
            while let Some(q) = queue.pop_front() {
                if policy.deadline_propagation
                    && policy.slo_budget_cycles > 0
                    && now - q.arrival > policy.slo_budget_cycles
                {
                    r.deadline_cancelled += 1;
                    emit.rec(adm_track, now, EventKind::Instant, cancel_i, q.ctx);
                    continue;
                }
                dispatch!(q, now);
                break;
            }
        }};
    }

    let first = pattern.next_after(0, &mut arr_rng);
    if first < horizon_cycles {
        events.push(first, seq, ARRIVAL);
        seq += 1;
    }

    while let Some((now, _, id)) = events.pop() {
        if now >= horizon_cycles {
            break;
        }
        if id == ARRIVAL {
            // Next arrival first: the arrival RNG stream must never
            // depend on admission decisions (same rule as open.rs).
            let next = pattern.next_after(now, &mut arr_rng);
            if next < horizon_cycles {
                events.push(next, seq, ARRIVAL);
                seq += 1;
            }
            let i = r.arrivals;
            r.arrivals += 1;

            let h = mix64(seed ^ mix64(i.wrapping_add(0x5eed_c11e)));
            let user = h % clients.population.max(1);
            users.insert(user);
            let new_connection = clients.mean_session_requests > 0
                && mix64(h ^ 1).is_multiple_of(clients.mean_session_requests as u64);
            let slow =
                clients.slow_per_mille > 0 && (mix64(h ^ 2) % 1000) < clients.slow_per_mille as u64;
            if new_connection {
                r.new_connections += 1;
            }
            if slow {
                r.slow_requests += 1;
            }
            let ctx = pk_trace::request_id(seed, user, i);
            let p = Pending {
                ctx,
                arrival: now,
                new_connection,
                slow,
            };

            if rx_drop.should_inject() {
                r.nic_dropped += 1;
                emit.rec(adm_track, now, EventKind::Instant, nic_i, ctx);
                continue;
            }

            if in_network < cores {
                dispatch!(p, now);
            } else {
                let depth = queue.len() as u64;
                let cap = policy.admission_cap as u64;
                if cap > 0 && depth >= cap {
                    match policy.shed {
                        ShedPolicy::DropNewest | ShedPolicy::Probabilistic => {
                            r.rejected += 1;
                            emit.rec(adm_track, now, EventKind::Instant, reject_i, ctx);
                        }
                        ShedPolicy::DropOldest => {
                            if let Some(old) = queue.pop_front() {
                                r.shed_oldest += 1;
                                emit.rec(adm_track, now, EventKind::Instant, shed_i, old.ctx);
                            }
                            queue.push_back(p);
                        }
                    }
                } else if cap > 0
                    && policy.shed == ShedPolicy::Probabilistic
                    && (mix64(h ^ 3) % cap) < depth
                {
                    r.shed_probabilistic += 1;
                    emit.rec(adm_track, now, EventKind::Instant, shed_i, ctx);
                } else {
                    queue.push_back(p);
                    r.queue_depth_peak = r.queue_depth_peak.max(queue.len() as u64);
                }
            }
        } else {
            // A slot's current phase ended.
            let slot = id;
            let req = *slots[slot as usize].as_ref().expect("event for empty slot");
            match req.phase {
                Phase::Connect => {
                    emit.rec(slot, now, EventKind::SpanEnd, connect_span, 0);
                    enter_station!(slot, 0, now);
                }
                Phase::Waiting(_) => unreachable!("waiting requests have no scheduled event"),
                Phase::InService(si) => {
                    if let Some(lock) = st_ids[si].lock {
                        emit.rec(slot, now, EventKind::LockEnd, lock, 0);
                    }
                    emit.rec(slot, now, EventKind::SpanEnd, st_ids[si].span, 0);
                    if st_ids[si].lock.is_some() {
                        st_q[si].busy = false;
                        if let Some(next) = st_q[si].fifo.pop_front() {
                            start_service!(next, si, now);
                        }
                    }
                    if si + 1 < stations.len() {
                        enter_station!(slot, si + 1, now);
                    } else if req.slow {
                        let stall = if req.degraded {
                            clients.stall_cycles * policy.degrade_stall_pct as u64 / 100
                        } else {
                            clients.stall_cycles
                        };
                        if stall > 0 {
                            emit.rec(slot, now, EventKind::SpanBegin, stall_span, 0);
                            slots[slot as usize].as_mut().unwrap().phase = Phase::Stalling;
                            events.push(now + stall, seq, slot);
                            seq += 1;
                        } else {
                            complete!(slot, now);
                        }
                    } else {
                        complete!(slot, now);
                    }
                }
                Phase::Stalling => {
                    emit.rec(slot, now, EventKind::SpanEnd, stall_span, 0);
                    complete!(slot, now);
                }
            }
        }
    }

    r.queue_depth_end = queue.len() as u64;
    r.in_flight_end = in_network as u64;
    r.distinct_users = users.len() as u64;
    r.latency = hist.snapshot();
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mva::Station;
    use pk_trace::encode_stream;

    fn toy_network() -> Network {
        let mut n = Network::new();
        n.push(Station::delay("user", 800.0, false))
            .push(Station::queue("handoff", 40.0, true))
            .push(Station::spinlock("lock", 60.0, 0.3, true));
        n
    }

    fn poisson(gap: f64) -> ArrivalPattern {
        ArrivalPattern::Poisson {
            mean_interarrival_cycles: gap,
        }
    }

    fn run_traced(seed: u64) -> (OpenLoopResult, Vec<pk_trace::Event>) {
        let net = toy_network();
        let tracer = Tracer::new(5, flow_ring_capacity(5_000, 4, 3));
        let r = simulate_flow(
            &net,
            4,
            poisson(500.0),
            ClientMix {
                population: 1_000_000,
                mean_session_requests: 8,
                connect_cycles: 300,
                slow_per_mille: 20,
                stall_cycles: 5_000,
            },
            OverloadPolicy::observe(20_000),
            2_000_000,
            seed,
            Some(&tracer),
        );
        assert_eq!(tracer.dropped(), 0, "ring sizing rule must hold");
        (r, tracer.drain())
    }

    #[test]
    fn deterministic_including_the_trace_stream() {
        let (a, ea) = run_traced(42);
        let (b, eb) = run_traced(42);
        assert_eq!(a.latency.buckets, b.latency.buckets);
        assert_eq!(a.arrivals, b.arrivals);
        assert_eq!(a.completed, b.completed);
        assert_eq!(encode_stream(&ea), encode_stream(&eb));
    }

    #[test]
    fn accounting_identity_holds_under_every_shed_policy() {
        let net = toy_network();
        for &(cap, shed) in &[
            (0u32, ShedPolicy::DropNewest),
            (8, ShedPolicy::DropNewest),
            (8, ShedPolicy::DropOldest),
            (8, ShedPolicy::Probabilistic),
        ] {
            let policy = if cap == 0 {
                OverloadPolicy::observe(10_000)
            } else {
                OverloadPolicy::shedding(cap, shed, 10_000)
            };
            let r = simulate_flow(
                &net,
                2,
                poisson(300.0),
                ClientMix::uniform(1000),
                policy,
                1_000_000,
                7,
                None,
            );
            assert_eq!(
                r.accounted(),
                r.arrivals,
                "identity broken under {shed:?} cap={cap}"
            );
        }
    }

    #[test]
    fn arrival_stream_matches_the_lumped_engine() {
        // Same seed, same pattern, same client mix: the two engines
        // must see the identical offered stream — arrivals, users,
        // churn, slow clients — because the service side must never
        // perturb the arrival side in either engine.
        let net = toy_network();
        let clients = ClientMix {
            population: 1_000_000,
            mean_session_requests: 8,
            connect_cycles: 300,
            slow_per_mille: 20,
            stall_cycles: 5_000,
        };
        let f = simulate_flow(
            &net,
            4,
            poisson(500.0),
            clients,
            OverloadPolicy::observe(20_000),
            2_000_000,
            42,
            None,
        );
        let o = crate::open::simulate_open(
            &net,
            4,
            poisson(500.0),
            clients,
            OverloadPolicy::observe(20_000),
            2_000_000,
            42,
        );
        assert_eq!(f.arrivals, o.arrivals);
        assert_eq!(f.distinct_users, o.distinct_users);
        assert_eq!(f.new_connections, o.new_connections);
        assert_eq!(f.slow_requests, o.slow_requests);
    }

    #[test]
    fn trace_stream_is_balanced_and_ctx_enveloped() {
        let (r, events) = run_traced(42);
        let begins = events.iter().filter(|e| e.kind.is_begin()).count();
        let ends = events.iter().filter(|e| e.kind.is_end()).count();
        // In-flight requests at the horizon leave their envelope open.
        assert!(begins >= ends);
        let ctx_begin = events
            .iter()
            .filter(|e| e.kind == EventKind::CtxBegin)
            .count() as u64;
        let ctx_end = events
            .iter()
            .filter(|e| e.kind == EventKind::CtxEnd)
            .count() as u64;
        assert_eq!(ctx_end, r.completed, "one CtxEnd per completion");
        assert!(ctx_begin >= ctx_end);
        // Every ctx id is unique per direction: no cross-request reuse.
        let mut ids: Vec<u64> = events
            .iter()
            .filter(|e| e.kind == EventKind::CtxBegin)
            .map(|e| e.arg)
            .collect();
        ids.sort_unstable();
        let n = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), n, "request ids must be unique");
    }

    #[test]
    fn waits_concentrate_at_the_bottleneck_station() {
        // Saturate a network whose collapse lock dominates: nearly all
        // lock-wait cycles must attribute to it, not spread uniformly
        // (the property the lumped engine cannot express).
        let mut net = Network::new();
        net.push(Station::delay("user", 200.0, false))
            .push(Station::queue("fast", 10.0, true))
            .push(Station::spinlock("hot", 400.0, 0.3, true));
        let tracer = Tracer::new(5, 1 << 18);
        let r = simulate_flow(
            &net,
            4,
            poisson(150.0),
            ClientMix::uniform(1_000),
            OverloadPolicy::observe(0),
            2_000_000,
            42,
            Some(&tracer),
        );
        assert!(r.completed > 100);
        let events = tracer.drain();
        // Admission wait is the "queue" term of the accounting
        // identity, not a lock-class wait — exclude it from the pool
        // (pk-why does the same).
        let adm =
            pk_lockdep::register_class(ADMISSION_CLASS, "pk-sim", pk_lockdep::LockKind::Ticket)
                .raw();
        let mut by_class: std::collections::BTreeMap<u32, u64> = Default::default();
        for e in &events {
            if e.kind == EventKind::LockBegin && e.class != adm {
                *by_class.entry(e.class).or_default() += e.arg;
            }
        }
        let hot = pk_lockdep::register_class("hot", "pk-sim", pk_lockdep::LockKind::Spin).raw();
        let total: u64 = by_class.values().sum();
        let hot_wait = by_class.get(&hot).copied().unwrap_or(0);
        assert!(
            hot_wait as f64 > 0.9 * total as f64,
            "bottleneck wait share {hot_wait}/{total}"
        );
    }

    #[test]
    fn ring_capacity_rule_covers_the_event_budget() {
        // 3 stations, 1000 requests, 4 cores: per-request budget is
        // 8 + 18 = 26 events; 250 requests/track; rule gives 2x slack.
        assert_eq!(flow_ring_capacity(1000, 4, 3), 250 * 26 * 2);
        assert!(flow_ring_capacity(0, 4, 3) >= 64);
    }
}
