//! The original `BinaryHeap` DES engine, kept as the differential
//! oracle for the fast calendar-queue engine.
//!
//! This is deliberately the *simple* implementation: one central
//! max-heap over `Reverse((time, seq, customer))`, boxed `VecDeque`
//! waiter queues, one event popped at a time. It is an order of
//! magnitude slower than [`super`]'s wheel engine, but its correctness
//! argument fits in a paragraph — which is exactly what an oracle is
//! for. `tests/engine_equivalence.rs` drives both engines through
//! identical seeded schedules (all station kinds × fault injections ×
//! topologies) and asserts byte-identical results and event traces;
//! `scalebench` runs it live to print the speedup row. Keep the two
//! engines' RNG draws and fault-point checks in lockstep: any
//! divergence is a bug in one of them, and the oracle is the one that
//! is easy to audit.

use super::{add_sat, service, DesResult, NoTrace, SimTrace, TraceSink};
use super::{PREEMPT_CYCLES, STALL_CYCLES};
use crate::mva::{Network, StationKind};
use pk_fault::{FaultPlane, FaultPoint};
use pk_trace::Tracer;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

/// Ordered event: (time, sequence, customer), wrapped so the max-heap
/// pops the *smallest* `(time, seq)` first. The `seq` component makes
/// the order total: simultaneous events dispatch FIFO (smallest
/// sequence number first) — the canonical tie-break contract every
/// engine must honour (see the `simultaneous_events_dispatch_fifo`
/// regression test in the parent module).
type Event = Reverse<(u64, u64, usize)>;

/// Per-customer progress.
#[derive(Debug, Clone, Copy)]
struct Customer {
    station: usize,
    ops_done: u64,
    op_start: u64,
}

/// Per-station runtime state.
#[derive(Debug)]
struct StationState {
    busy: bool,
    /// Waiters with their enqueue times.
    queue: VecDeque<(usize, u64)>,
    /// Exact integer sum of departure-sampled queue lengths (same
    /// width as the fast engine, so derived means match bit-for-bit).
    queue_len_samples: u64,
    samples: u64,
    /// Total cycles waiters spent queued (enqueue → service start).
    wait_cycles: u128,
    /// Service starts, for per-visit wait averaging.
    service_starts: u64,
    /// Cache-line transfers (owner changes + non-scalable polling).
    transfers: u64,
    /// Core whose cache last held the station's line.
    last_owner: Option<usize>,
}

impl StationState {
    /// Charges the coherence cost of customer `c` starting service.
    fn start_service(&mut self, c: usize, nonscalable_waiters: usize) {
        add_sat(&mut self.service_starts, 1);
        if self.last_owner != Some(c) {
            self.transfers += 1;
        }
        self.last_owner = Some(c);
        // Every waiter polling a non-scalable lock pulls the line
        // away from the new holder at least once per handoff.
        add_sat(&mut self.transfers, nonscalable_waiters as u64);
    }
}

/// [`super::simulate`] on the heap engine.
pub fn simulate(net: &Network, cores: usize, ops_per_core: u64, seed: u64) -> DesResult {
    simulate_with_faults(net, cores, ops_per_core, seed, &FaultPlane::disabled())
}

/// [`super::simulate_with_faults`] on the heap engine.
pub fn simulate_with_faults(
    net: &Network,
    cores: usize,
    ops_per_core: u64,
    seed: u64,
    faults: &FaultPlane,
) -> DesResult {
    simulate_traced(net, cores, ops_per_core, seed, faults, None)
}

/// [`super::simulate_traced`] on the heap engine.
pub fn simulate_traced(
    net: &Network,
    cores: usize,
    ops_per_core: u64,
    seed: u64,
    faults: &FaultPlane,
    tracer: Option<&Tracer>,
) -> DesResult {
    assert!(cores > 0, "need at least one core");
    assert!(!net.stations().is_empty(), "need at least one station");
    match tracer {
        Some(t) => run(
            net,
            cores,
            ops_per_core,
            seed,
            faults,
            &SimTrace::new(t, net.stations()),
        ),
        None => run(net, cores, ops_per_core, seed, faults, &NoTrace),
    }
}

fn run<S: TraceSink>(
    net: &Network,
    cores: usize,
    ops_per_core: u64,
    seed: u64,
    faults: &FaultPlane,
    sink: &S,
) -> DesResult {
    let stations = net.stations();
    let fault_preempt = faults.point("sim.lock_holder_preempt");
    let fault_stall = faults.point("sim.core_stall");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut state: Vec<StationState> = stations
        .iter()
        .map(|_| StationState {
            busy: false,
            queue: VecDeque::new(),
            queue_len_samples: 0,
            samples: 0,
            wait_cycles: 0,
            service_starts: 0,
            transfers: 0,
            last_owner: None,
        })
        .collect();
    let mut customers: Vec<Customer> = (0..cores)
        .map(|_| Customer {
            station: 0,
            ops_done: 0,
            op_start: 0,
        })
        .collect();

    let warmup_ops = (ops_per_core / 5).max(1);
    let total_ops = ops_per_core + warmup_ops;
    let mut events: BinaryHeap<Event> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut now = 0u64;
    let mut measured_ops = 0u64;
    let mut measured_cycles = 0u128;
    let mut warmup_end_time = 0u64;
    let mut finished = 0usize;
    let mut events_processed = 0u64;

    // Dispatch customer `c` into its current station at time `now`.
    // Returns the (possibly stall-shifted) arrival time and, when
    // service started immediately, the completion time (`None` means
    // the customer queued).
    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        stations: &[crate::mva::Station],
        state: &mut [StationState],
        rng: &mut SmallRng,
        c: usize,
        station: usize,
        now: u64,
        preempt: &FaultPoint,
        stall: &FaultPoint,
    ) -> (u64, Option<u64>) {
        // A stalled core arrives late; the delay shifts both its service
        // and (if the server is busy) its enqueue time.
        let now = if stall.should_inject() {
            now + STALL_CYCLES
        } else {
            now
        };
        let st = &stations[station];
        match st.kind {
            StationKind::Delay => (now, Some(now + service(rng, st.demand_cycles))),
            StationKind::Queue | StationKind::NonScalable { .. } => {
                let s = &mut state[station];
                if s.busy {
                    s.queue.push_back((c, now));
                    (now, None)
                } else {
                    s.busy = true;
                    let (mean, pollers) = match st.kind {
                        StationKind::NonScalable { collapse } => (
                            st.demand_cycles * (1.0 + collapse * s.queue.len() as f64),
                            s.queue.len(),
                        ),
                        _ => (st.demand_cycles, 0),
                    };
                    s.start_service(c, pollers);
                    let mut done = now + service(rng, mean);
                    if preempt.should_inject() {
                        done += PREEMPT_CYCLES;
                    }
                    (now, Some(done))
                }
            }
        }
    }

    // Seed: every customer enters station 0.
    for c in 0..cores {
        sink.op_begin(c, 0);
        let (arrival, done) = dispatch(
            stations,
            &mut state,
            &mut rng,
            c,
            0,
            0,
            &fault_preempt,
            &fault_stall,
        );
        sink.station_begin(c, arrival, 0);
        if done.is_none() {
            sink.wait_begin(c, arrival, 0);
        }
        if let Some(t) = done {
            events.push(Reverse((t, seq, c)));
            seq += 1;
        }
    }

    while let Some(Reverse((t, _, c))) = events.pop() {
        events_processed += 1;
        now = t;
        let station = customers[c].station;
        sink.station_end(c, now, station);
        // Departure from `station`.
        if matches!(
            stations[station].kind,
            StationKind::Queue | StationKind::NonScalable { .. }
        ) {
            let s = &mut state[station];
            add_sat(&mut s.queue_len_samples, s.queue.len() as u64);
            add_sat(&mut s.samples, 1);
            s.busy = false;
            if let Some((next_c, enqueued_at)) = s.queue.pop_front() {
                // Start the next waiter; the server stays busy.
                s.busy = true;
                // A stall-injected waiter can carry an enqueue stamp later
                // than this departure; it effectively waited zero cycles.
                s.wait_cycles += now.saturating_sub(enqueued_at) as u128;
                sink.wait_end(next_c, now.max(enqueued_at), station);
                let st = &stations[station];
                let (mean, pollers) = match st.kind {
                    StationKind::NonScalable { collapse } => (
                        st.demand_cycles * (1.0 + collapse * s.queue.len() as f64),
                        s.queue.len(),
                    ),
                    _ => (st.demand_cycles, 0),
                };
                s.start_service(next_c, pollers);
                let mut done = now + service(&mut rng, mean);
                if fault_preempt.should_inject() {
                    done += PREEMPT_CYCLES;
                }
                events.push(Reverse((done, seq, next_c)));
                seq += 1;
                // next_c stays at the same station until its own departure.
            }
        }
        // Advance this customer.
        let mut cust = customers[c];
        cust.station += 1;
        if cust.station == stations.len() {
            // One operation complete.
            cust.station = 0;
            cust.ops_done += 1;
            sink.op_end(c, now);
            if cust.ops_done < total_ops {
                sink.op_begin(c, now);
            }
            if cust.ops_done == warmup_ops {
                warmup_end_time = warmup_end_time.max(now);
            }
            if cust.ops_done > warmup_ops && cust.ops_done <= total_ops {
                measured_ops += 1;
                measured_cycles += now.saturating_sub(cust.op_start) as u128;
            }
            cust.op_start = now;
            if cust.ops_done >= total_ops {
                customers[c] = cust;
                finished += 1;
                if finished == cores {
                    break;
                }
                continue;
            }
        }
        customers[c] = cust;
        let (arrival, done) = dispatch(
            stations,
            &mut state,
            &mut rng,
            c,
            cust.station,
            now,
            &fault_preempt,
            &fault_stall,
        );
        sink.station_begin(c, arrival, cust.station);
        if done.is_none() {
            sink.wait_begin(c, arrival, cust.station);
        }
        if let Some(done) = done {
            events.push(Reverse((done, seq, c)));
            seq += 1;
        }
    }

    let span = now.saturating_sub(warmup_end_time).max(1);
    DesResult {
        ops_per_cycle: measured_ops as f64 / span as f64,
        completed_ops: measured_ops,
        cycles_per_op: if measured_ops > 0 {
            measured_cycles as f64 / measured_ops as f64
        } else {
            0.0
        },
        mean_queue_len: state
            .iter()
            .map(|s| {
                if s.samples == 0 {
                    0.0
                } else {
                    s.queue_len_samples as f64 / s.samples as f64
                }
            })
            .collect(),
        mean_wait_cycles: state
            .iter()
            .map(|s| {
                if s.service_starts == 0 {
                    0.0
                } else {
                    s.wait_cycles as f64 / s.service_starts as f64
                }
            })
            .collect(),
        line_transfers: state.iter().map(|s| s.transfers).collect(),
        events_processed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mva::Station;

    #[test]
    fn event_order_is_time_then_fifo_seq() {
        // The heap must pop ascending (time, seq): earliest time first,
        // and FIFO (smallest sequence number) among ties.
        let mut heap: BinaryHeap<Event> = BinaryHeap::new();
        heap.push(Reverse((50, 1, 0)));
        heap.push(Reverse((50, 0, 1)));
        heap.push(Reverse((10, 2, 2)));
        heap.push(Reverse((50, 2, 3)));
        let order: Vec<(u64, u64, usize)> =
            std::iter::from_fn(|| heap.pop().map(|e| e.0)).collect();
        assert_eq!(order, [(10, 2, 2), (50, 0, 1), (50, 1, 0), (50, 2, 3)]);
    }

    #[test]
    fn reference_engine_still_validates_mva() {
        let mut net = Network::new();
        net.push(Station::delay("user", 8_000.0, false));
        net.push(Station::queue("lock", 1_000.0, true));
        let mva = net.solve(12).ops_per_cycle;
        let des = simulate(&net, 12, 6_000, 7).ops_per_cycle;
        assert!(
            (des - mva).abs() / mva < 0.10,
            "reference engine drifted: des={des}, mva={mva}"
        );
    }
}
