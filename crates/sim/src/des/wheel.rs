//! The calendar-queue event wheel behind the fast DES engine.
//!
//! A classic binary heap costs `O(log n)` comparisons per push/pop and
//! scatters events across the heap array. The calendar queue instead
//! hashes each event by time into a ring of buckets (`bucket = (t >>
//! shift) & mask`), so a push is a `Vec::push` and a pop amortizes to
//! a few comparisons: the engine drains one *window* — the slice of
//! simulated time one bucket covers — at a time, sorts that handful of
//! events once, and processes them as a batch (the synchronization
//! horizon; see `DESIGN.md` §11).
//!
//! Ordering contract: events are `(time, seq, customer)` and pop in
//! ascending `(time, seq)` order — FIFO among simultaneous events,
//! exactly the canonical tie-break the heap engine pins. `seq` is
//! unique, so the order is total and independent of bucket layout.
//!
//! Sizing is a pure function of `(max service demand, cores)`, so the
//! wheel introduces no nondeterminism: width ≈ `max_demand / cores`
//! (the mean spacing between completions when every core is busy on
//! the slowest station) rounded to a power of two, and `2·cores`
//! buckets so the wheel's span covers about two full service times.
//! Events beyond the span stay in their bucket and are skipped until
//! their rotation comes around; if a whole rotation finds nothing due
//! (a rare lull, e.g. after a preemption fault pushes the only event
//! 50 k cycles out), the wheel jumps straight to the earliest event.

/// One pending event: `(time, sequence, customer)`.
pub type WheelEvent = (u64, u64, u32);

/// Soft cap on events per drained batch. Large enough to amortize the
/// refill and sort over a dense schedule, small enough that the
/// engine's in-batch merge inserts (completions landing before the
/// horizon) stay a sub-cache-line memmove.
const TARGET_BATCH: usize = 32;

/// A calendar queue over `(time, seq, customer)` events.
#[derive(Debug)]
pub struct EventWheel {
    buckets: Vec<Vec<WheelEvent>>,
    /// `nbuckets - 1`; bucket index = `(t >> shift) & mask`.
    mask: usize,
    /// log2 of the bucket width in cycles.
    shift: u32,
    /// Bucket holding the current window.
    cursor: usize,
    /// Inclusive start of the current window (aligned to the width).
    win_start: u64,
    len: usize,
    /// One bit per bucket, set while the bucket holds any event (of
    /// any rotation). The drain skips runs of empty buckets in word
    /// steps instead of probing each `Vec` — under heavy contention
    /// events sit far apart (a serialized lock spaces completions by
    /// the full inflated service time), and probing every bucket in
    /// between used to dominate the whole engine.
    occupied: Vec<u64>,
}

impl EventWheel {
    /// Builds a wheel sized for `cores` concurrent events spaced by
    /// service times up to `max_demand_cycles`. Both inputs are known
    /// before the run starts, so the geometry is deterministic.
    pub fn new(max_demand_cycles: f64, cores: usize) -> Self {
        let spacing = max_demand_cycles.max(1.0) / cores.max(1) as f64;
        // `as u64` saturates on overflow, and `next_power_of_two` on a
        // saturated value would wrap to 0 — clamp to 2^40 cycles, far
        // past any demand the models use.
        let width = (spacing as u64).clamp(1, 1 << 40).next_power_of_two();
        let nbuckets = (2 * cores + 16).next_power_of_two();
        Self {
            buckets: vec![Vec::new(); nbuckets],
            mask: nbuckets - 1,
            shift: width.trailing_zeros(),
            cursor: 0,
            win_start: 0,
            len: 0,
            occupied: vec![0; nbuckets.div_ceil(64)],
        }
    }

    /// Pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bucket width in cycles (the batching horizon).
    pub fn width(&self) -> u64 {
        1 << self.shift
    }

    #[inline]
    fn bucket_of(&self, t: u64) -> usize {
        ((t >> self.shift) as usize) & self.mask
    }

    /// Schedules an event. `t` must not precede the current window
    /// (the engine routes events due inside the already-drained window
    /// into its sorted batch instead).
    #[inline]
    pub fn push(&mut self, t: u64, seq: u64, customer: u32) {
        debug_assert!(t >= self.win_start, "event scheduled in the past");
        let b = self.bucket_of(t);
        self.buckets[b].push((t, seq, customer));
        self.occupied[b >> 6] |= 1u64 << (b & 63);
        self.len += 1;
    }

    /// Fast-forwards an **empty** wheel so its window starts at `t`'s
    /// bucket: the engine's singleton bypass hands the only pending
    /// event straight to its batch without a wheel round-trip, and this
    /// keeps the ring position consistent so later pushes land ahead
    /// of the cursor.
    #[inline]
    pub fn advance_to(&mut self, t: u64) {
        debug_assert_eq!(self.len, 0, "advance_to on a non-empty wheel");
        self.win_start = t & !((1u64 << self.shift) - 1);
        self.cursor = self.bucket_of(t);
    }

    /// Distance (in buckets, 0 = the cursor itself) to the nearest
    /// occupied bucket at or after the cursor, wrapping around the
    /// ring. Word-at-a-time bit scan over the occupancy bitmap.
    ///
    /// # Panics
    ///
    /// Panics if the wheel is empty (callers check `len` first).
    #[inline]
    fn next_occupied_offset(&self) -> usize {
        let nbuckets = self.mask + 1;
        // `nbuckets` is a power of two, so the word count is too (or 1)
        // and the ring wrap is a mask, not a division.
        let wmask = self.occupied.len() - 1;
        let mut w = self.cursor >> 6;
        // First word: only bits at or above the cursor's position.
        let mut cur = self.occupied[w] & (!0u64 << (self.cursor & 63));
        for _ in 0..=wmask + 1 {
            if cur != 0 {
                let b = (w << 6) + cur.trailing_zeros() as usize;
                return (b + nbuckets - self.cursor) & self.mask;
            }
            w = (w + 1) & wmask;
            cur = self.occupied[w];
        }
        unreachable!("len > 0 but the occupancy bitmap is empty");
    }

    /// Drains the next batch of due events into `out` (sorted ascending
    /// by `(time, seq)`) and returns the batch's exclusive time horizon.
    /// Returns `None` when no events are pending.
    ///
    /// A batch coalesces consecutive windows — up to [`TARGET_BATCH`]
    /// events, and never more than one full rotation of the ring — so
    /// the per-batch costs (the refill call, the sort) amortize over
    /// many events when the schedule is dense, without revisiting a
    /// bucket whose later-rotation events are not yet due.
    ///
    /// The returned horizon is the batching contract: every pending
    /// event with `t < horizon` is in `out`, and any event the caller
    /// schedules before the horizon must be merged into its batch, not
    /// pushed back here.
    pub fn next_batch(&mut self, out: &mut Vec<WheelEvent>) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let width = 1u64 << self.shift;
        let start = out.len();
        let mut advanced = 0usize;
        loop {
            let drained = out.len() - start;
            if drained == self.len {
                break; // the wheel is fully drained
            }
            // Jump over empty buckets: windows map 1:1 to buckets
            // within a rotation, so skipping an empty bucket skips a
            // provably eventless window.
            let skip = self.next_occupied_offset();
            if drained > 0 && (drained >= TARGET_BATCH || advanced + skip > self.mask) {
                break; // batch full, or the next event is a rotation out
            }
            self.cursor = (self.cursor + skip) & self.mask;
            self.win_start += skip as u64 * width;
            advanced += skip;

            let win_end = self.win_start + width;
            let bucket = &mut self.buckets[self.cursor];
            let mut i = 0;
            while i < bucket.len() {
                if bucket[i].0 < win_end {
                    out.push(bucket.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            if bucket.is_empty() {
                self.occupied[self.cursor >> 6] &= !(1u64 << (self.cursor & 63));
            }
            self.cursor = (self.cursor + 1) & self.mask;
            self.win_start = win_end;
            advanced += 1;
            if out.len() == start && advanced > self.mask {
                // A full rotation with nothing due: every pending
                // event is at least one wheel-span away. Jump the
                // window straight to the earliest one, visiting only
                // occupied buckets to find it.
                let mut min_t = u64::MAX;
                for (wi, &word) in self.occupied.iter().enumerate() {
                    let mut word = word;
                    while word != 0 {
                        let b = (wi << 6) + word.trailing_zeros() as usize;
                        word &= word - 1;
                        for e in &self.buckets[b] {
                            min_t = min_t.min(e.0);
                        }
                    }
                }
                debug_assert_ne!(min_t, u64::MAX, "len > 0 but no events in any bucket");
                self.win_start = min_t & !(width - 1);
                self.cursor = self.bucket_of(min_t);
                advanced = 0;
            }
        }
        self.len -= out.len() - start;
        out[start..].sort_unstable();
        Some(self.win_start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all(wheel: &mut EventWheel) -> Vec<WheelEvent> {
        let mut all = Vec::new();
        let mut batch = Vec::new();
        while wheel.next_batch(&mut batch).is_some() {
            all.append(&mut batch);
        }
        all
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = EventWheel::new(100.0, 4);
        w.push(50, 3, 0);
        w.push(10, 1, 1);
        w.push(50, 0, 2);
        w.push(10, 2, 3);
        let order = drain_all(&mut w);
        assert_eq!(order, [(10, 1, 1), (10, 2, 3), (50, 0, 2), (50, 3, 0)]);
        assert!(w.is_empty());
    }

    #[test]
    fn simultaneous_events_pop_fifo_by_seq() {
        // The tie-break regression guard at the data-structure layer:
        // equal times must come out in push (sequence) order even
        // though swap_remove scrambles the bucket internally.
        let mut w = EventWheel::new(1.0, 2);
        for seq in 0..16u64 {
            w.push(7, seq, seq as u32);
        }
        let order = drain_all(&mut w);
        let seqs: Vec<u64> = order.iter().map(|e| e.1).collect();
        assert_eq!(seqs, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn far_future_events_survive_wrapping() {
        // An event many wheel-spans out (a preempted holder) shares a
        // bucket with near events; it must pop last, not early.
        let mut w = EventWheel::new(64.0, 2);
        let span = w.width() * (w.mask as u64 + 1);
        w.push(5, 0, 0);
        w.push(5 + 3 * span, 1, 1); // same bucket, three rotations out
        w.push(9, 2, 2);
        let order = drain_all(&mut w);
        assert_eq!(order[0].0, 5);
        assert_eq!(order[1].0, 9);
        assert_eq!(order[2].0, 5 + 3 * span);
    }

    #[test]
    fn empty_lulls_jump_to_the_next_event() {
        let mut w = EventWheel::new(8.0, 1);
        w.push(1_000_000, 0, 0);
        let mut batch = Vec::new();
        let horizon = w.next_batch(&mut batch).expect("one event pending");
        assert_eq!(batch, [(1_000_000, 0, 0)]);
        assert!(horizon > 1_000_000);
        assert!(w.next_batch(&mut batch).is_none());
    }

    #[test]
    fn interleaved_push_and_drain_keeps_global_order() {
        let mut w = EventWheel::new(32.0, 4);
        assert_eq!(w.width(), 8, "spacing 32/4 rounds to an 8-cycle bucket");
        w.push(3, 0, 0);
        w.push(40, 1, 1);
        let mut batch = Vec::new();
        let horizon = w.next_batch(&mut batch).unwrap();
        assert_eq!(
            batch,
            [(3, 0, 0), (40, 1, 1)],
            "nearby windows coalesce into one batch"
        );
        assert_eq!(horizon, 48, "horizon is the last drained window's end");
        batch.clear();
        // New events at or past the horizon go back into the wheel and
        // still drain in global time order.
        w.push(horizon + 2, 2, 2);
        w.push(horizon + 9, 3, 3);
        assert_eq!(
            drain_all(&mut w),
            [(50, 2, 2), (57, 3, 3)],
            "post-horizon pushes drain in time order"
        );
    }

    #[test]
    fn batches_cap_at_target_and_stop_at_the_rotation_boundary() {
        // 40 events in consecutive windows: the first batch takes
        // TARGET_BATCH of them, the rest arrive in the next batch.
        let mut w = EventWheel::new(4.0, 4);
        for i in 0..40u64 {
            w.push(i * w.width(), i, i as u32);
        }
        let mut batch = Vec::new();
        w.next_batch(&mut batch).unwrap();
        assert_eq!(batch.len(), TARGET_BATCH);
        assert_eq!(w.len(), 40 - TARGET_BATCH);

        // An event a full rotation out never rides along in a batch
        // with a due event, even though its bucket is nearby in ring
        // order: the rotation boundary closes the batch first.
        let mut w = EventWheel::new(4.0, 4);
        let span = w.width() * (w.mask as u64 + 1);
        w.push(0, 0, 0);
        w.push(span + 1, 1, 1);
        let mut batch = Vec::new();
        w.next_batch(&mut batch).unwrap();
        assert_eq!(batch, [(0, 0, 0)]);
        batch.clear();
        w.next_batch(&mut batch).unwrap();
        assert_eq!(batch, [(span + 1, 1, 1)]);
    }
}
