//! Differential oracle: the fast calendar-queue engine must be
//! observationally identical to the reference `BinaryHeap` engine.
//!
//! Both engines promise the same canonical schedule — events dispatch
//! in ascending `(time, seq)` order, RNG draws happen at the same
//! points, fault points are consulted in the same sequence — so for
//! any `(network, cores, ops, seed, fault schedule)` they must agree
//! on every field of `DesResult`, produce byte-identical encoded event
//! traces, and leave byte-identical fault-injection traces. Any
//! divergence is a scheduling bug in one of them: the wheel batching
//! horizon leaked an ordering difference, or an RNG/fault call moved.
//!
//! The grid deliberately crosses every station kind (Delay, Queue,
//! NonScalable) with fault schedules (none, preempt-heavy,
//! stall-heavy, both) and core counts from 1 to 1024 — the §7 sweep
//! scales (48, 96, 192, 1024) plus the degenerate small counts — on
//! single-station and all-delay networks included.

use pk_fault::{FaultPlane, FaultSchedule};
use pk_sim::des::{self, reference, DesResult};
use pk_sim::{Network, Station};

/// The network shapes the grid sweeps: every station kind alone and in
/// combination, including queue-after-queue (back-to-back FCFS) and a
/// spin lock behind a fast delay (deep NonScalable collapse).
fn networks() -> Vec<(&'static str, Network)> {
    let mut nets = Vec::new();

    let mut n = Network::new();
    n.push(Station::delay("think", 5_000.0, false));
    nets.push(("delay-only", n));

    let mut n = Network::new();
    n.push(Station::queue("lock", 800.0, true));
    nets.push(("queue-only", n));

    let mut n = Network::new();
    n.push(Station::delay("think", 6_000.0, false));
    n.push(Station::queue("dcache", 900.0, true));
    nets.push(("delay+queue", n));

    let mut n = Network::new();
    n.push(Station::delay("think", 4_000.0, false));
    n.push(Station::queue("a", 700.0, true));
    n.push(Station::queue("b", 500.0, true));
    nets.push(("two-queues", n));

    let mut n = Network::new();
    n.push(Station::delay("think", 2_000.0, false));
    n.push(Station::spinlock("biglock", 500.0, 0.5, true));
    nets.push(("spinlock-collapse", n));

    let mut n = Network::new();
    n.push(Station::delay("think", 3_000.0, false));
    n.push(Station::queue("mutex", 600.0, true));
    n.push(Station::spinlock("spin", 400.0, 0.3, true));
    n.push(Station::delay("dram", 1_200.0, true));
    nets.push(("all-kinds", n));

    nets
}

/// Fault schedules crossed against every network. The planes are
/// rebuilt per engine run so each engine sees a fresh counter state.
fn plane(variant: &str, seed: u64) -> FaultPlane {
    match variant {
        "none" => FaultPlane::disabled(),
        "preempt" => {
            let p = FaultPlane::with_seed(seed);
            p.set("sim.lock_holder_preempt", FaultSchedule::EveryNth(13));
            p.enable();
            p
        }
        "stall" => {
            let p = FaultPlane::with_seed(seed);
            p.set("sim.core_stall", FaultSchedule::EveryNth(17));
            p.enable();
            p
        }
        "both" => {
            let p = FaultPlane::with_seed(seed);
            p.set("sim.lock_holder_preempt", FaultSchedule::EveryNth(41));
            p.set("sim.core_stall", FaultSchedule::EveryNth(29));
            p.enable();
            p
        }
        _ => unreachable!(),
    }
}

fn assert_results_identical(ctx: &str, fast: &DesResult, oracle: &DesResult) {
    // Bitwise, not approximate: both engines run the same schedule, so
    // every derived f64 must match exactly.
    assert_eq!(
        fast, oracle,
        "{ctx}: fast engine diverged from the reference oracle"
    );
    assert_eq!(fast.events_processed, oracle.events_processed, "{ctx}");
}

#[test]
fn engines_agree_across_kinds_faults_and_scales() {
    for (net_name, net) in networks() {
        for fault in ["none", "preempt", "stall", "both"] {
            for cores in [1usize, 3, 8, 48, 96, 192, 1024] {
                let ctx = format!("{net_name}/{fault}/{cores}c");
                let seed = 0xC0FFEE ^ cores as u64;
                let pa = plane(fault, seed);
                let pb = plane(fault, seed);
                let fast = des::simulate_with_faults(&net, cores, 400, seed, &pa);
                let oracle = reference::simulate_with_faults(&net, cores, 400, seed, &pb);
                assert_results_identical(&ctx, &fast, &oracle);
                assert_eq!(
                    pa.trace(),
                    pb.trace(),
                    "{ctx}: fault-injection traces diverged"
                );
            }
        }
    }
}

#[test]
fn engines_emit_byte_identical_event_traces() {
    for (net_name, net) in networks() {
        for fault in ["none", "both"] {
            let ctx = format!("{net_name}/{fault}");
            let run = |which: &str| -> (Vec<u8>, DesResult) {
                let tracer = pk_trace::Tracer::new(8, 1 << 18);
                let p = plane(fault, 7);
                let r = match which {
                    "fast" => des::simulate_traced(&net, 8, 300, 7, &p, Some(&tracer)),
                    _ => reference::simulate_traced(&net, 8, 300, 7, &p, Some(&tracer)),
                };
                assert_eq!(tracer.dropped(), 0, "{ctx}: ring too small for the run");
                (pk_trace::encode_stream(&tracer.drain()), r)
            };
            let (fast_bytes, fast) = run("fast");
            let (oracle_bytes, oracle) = run("oracle");
            assert_results_identical(&ctx, &fast, &oracle);
            assert_eq!(
                fast_bytes, oracle_bytes,
                "{ctx}: encoded traces must be byte-identical"
            );
        }
    }
}

#[test]
fn engines_agree_on_the_roster_scale_defaults() {
    // The exact configurations scalebench pins: the 8-core, 2000-op,
    // seed-42 schedule behind BENCH_scale.json's des.* rows, plus the
    // §7 topology rows' (cores, ops) pairs — ops scale down inversely
    // with the core count, `(192_000 / cores).max(100)`, to keep the
    // event volume constant.
    let mut net = Network::new();
    net.push(Station::delay("user", 8_000.0, false));
    net.push(Station::queue("vfsmount", 1_000.0, true));
    net.push(Station::spinlock("sem", 400.0, 0.4, true));
    for (cores, ops) in [(8usize, 2_000u64), (96, 2_000), (192, 1_000), (1024, 187)] {
        let fast = des::simulate(&net, cores, ops, 42);
        let oracle = reference::simulate(&net, cores, ops, 42);
        assert_results_identical(&format!("scalebench-{cores}c"), &fast, &oracle);
    }
}
