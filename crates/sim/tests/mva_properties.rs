//! Property tests for the queueing-network solver: the classical MVA
//! laws must hold for every network the workload models can build.

use pk_sim::{CoreSweep, MachineSpec, Network, Station, WorkloadModel};
use proptest::prelude::*;

fn arb_network() -> impl Strategy<Value = Vec<(f64, u8)>> {
    // (demand, kind: 0=delay, 1=queue, 2=nonscalable)
    proptest::collection::vec((1.0f64..100_000.0, 0..3u8), 1..6)
}

fn build(stations: &[(f64, u8)]) -> Network {
    let mut net = Network::new();
    // Always include some local work so the network is never empty.
    net.push(Station::delay("base", 1_000.0, false));
    for &(demand, kind) in stations {
        match kind {
            0 => net.push(Station::delay("d", demand, true)),
            1 => net.push(Station::queue("q", demand, true)),
            _ => net.push(Station::spinlock("s", demand, 0.3, true)),
        };
    }
    net
}

proptest! {
    /// Throughput is positive and bounded by n/total-demand (no free
    /// lunch) and by the asymptotic service bound for queue stations.
    #[test]
    fn throughput_bounds(stations in arb_network(), cores in 1..64usize) {
        let net = build(&stations);
        let r = net.solve(cores);
        prop_assert!(r.ops_per_cycle > 0.0);
        let total_demand: f64 = net.stations().iter().map(|s| s.demand_cycles).sum();
        // Upper bound: n customers can't beat n / (sum of demands).
        prop_assert!(
            r.ops_per_cycle <= cores as f64 / total_demand * (1.0 + 1e-9),
            "X={} exceeds n/D", r.ops_per_cycle
        );
        // Queue stations bound throughput by 1/demand.
        for s in net.stations() {
            if matches!(s.kind, pk_sim::StationKind::Queue) {
                prop_assert!(
                    r.ops_per_cycle <= 1.0 / s.demand_cycles * (1.0 + 1e-9),
                    "X={} exceeds 1/D_q={}", r.ops_per_cycle, 1.0 / s.demand_cycles
                );
            }
        }
    }

    /// One customer sees raw demands: cycles/op = sum of demands, no
    /// queueing anywhere.
    #[test]
    fn single_customer_sees_no_queueing(stations in arb_network()) {
        let net = build(&stations);
        let r = net.solve(1);
        let total: f64 = net.stations().iter().map(|s| {
            // A non-scalable station still charges only its base demand
            // when alone.
            s.demand_cycles
        }).sum();
        prop_assert!((r.cycles_per_op - total).abs() / total < 1e-9);
    }

    /// User + system residence always sums to the total.
    #[test]
    fn time_partition_is_exact(stations in arb_network(), cores in 1..64usize) {
        let r = build(&stations).solve(cores);
        let sum = r.user_cycles_per_op + r.system_cycles_per_op;
        prop_assert!((sum - r.cycles_per_op).abs() / r.cycles_per_op < 1e-9);
    }

    /// Without non-scalable stations, total throughput is monotone
    /// non-decreasing in cores (queues saturate but never collapse).
    #[test]
    fn scalable_networks_never_collapse(
        stations in proptest::collection::vec((1.0f64..100_000.0, 0..2u8), 1..6)
    ) {
        let net = build(&stations);
        let mut prev = 0.0;
        for n in 1..=48 {
            let x = net.solve(n).ops_per_cycle;
            prop_assert!(x >= prev * (1.0 - 1e-12), "collapse at {n}: {prev} -> {x}");
            prev = x;
        }
    }

    /// In a network with no non-scalable stations, adding work can only
    /// slow it down. (With a contended non-scalable lock this is FALSE —
    /// see `inefficiency_can_improve_scalability` below.)
    #[test]
    fn more_work_is_never_faster_when_scalable(
        stations in proptest::collection::vec((1.0f64..100_000.0, 0..2u8), 1..6),
        extra in 1.0f64..50_000.0,
        cores in 1..48usize,
    ) {
        let base = build(&stations);
        let mut bigger = build(&stations);
        bigger.push(Station::queue("extra", extra, true));
        prop_assert!(bigger.solve(cores).ops_per_cycle <= base.solve(cores).ops_per_cycle * (1.0 + 1e-12));
    }
}

/// The paper's §4.1 paradox, reproduced by the model: "one way to
/// achieve scalability is to use inefficient algorithms, so that each
/// core busily computes and makes little use of shared resources ...
/// increasing the efficiency of software often makes it less scalable."
/// Extra per-core work drains the non-scalable lock's queue, reducing
/// its waiter-induced collapse — total throughput at 48 cores can rise.
#[test]
fn inefficiency_can_improve_scalability() {
    let mut lean = Network::new();
    lean.push(Station::delay("user", 2_000.0, false));
    lean.push(Station::spinlock("lock", 1_000.0, 1.0, true));
    let mut padded = Network::new();
    padded.push(Station::delay("user", 2_000.0, false));
    padded.push(Station::delay("padding", 40_000.0, false));
    padded.push(Station::spinlock("lock", 1_000.0, 1.0, true));
    // At one core the lean version is far faster.
    assert!(lean.solve(1).ops_per_cycle > 10.0 * padded.solve(1).ops_per_cycle);
    // At 48 cores the padded version overtakes it.
    assert!(
        padded.solve(48).ops_per_cycle > lean.solve(48).ops_per_cycle,
        "padded={} lean={}",
        padded.solve(48).ops_per_cycle,
        lean.solve(48).ops_per_cycle
    );
}

/// Every MOSBENCH model satisfies basic sanity across the whole sweep.
#[test]
fn workload_models_are_sane_everywhere() {
    // Drive the sim crate's own trait with a representative model.
    struct Rep;
    impl WorkloadModel for Rep {
        fn name(&self) -> String {
            "rep".into()
        }
        fn machine(&self) -> MachineSpec {
            MachineSpec::paper()
        }
        fn network(&self, cores: usize) -> Network {
            let mut n = Network::new();
            n.push(Station::delay("u", 10_000.0 + cores as f64, false));
            n.push(Station::spinlock("l", 700.0, 0.4, true));
            n
        }
    }
    for p in CoreSweep::run(&Rep) {
        assert!(p.per_core_per_sec > 0.0);
        assert!(p.total_per_sec >= p.per_core_per_sec);
        assert!(p.user_usec > 0.0);
        assert!(p.system_usec >= 0.0);
    }
}
