//! The determinism and exactness contracts of the fold, over *real*
//! traced flow runs (DESIGN.md §15):
//!
//! 1. **Rerun identity** — same seed, same workload: folded trees,
//!    exemplar bytes, and attribution tables are byte-identical.
//! 2. **Migration invariance** — permuting track ids and re-interleaving
//!    the stream (what thread migration / worker renumbering does to a
//!    capture) changes nothing, as long as per-track order survives.
//! 3. **Exactness** — every folded request satisfies
//!    `latency = queue + service + Σ waits + slack` with `slack = 0`
//!    in the flow engine, and the fold recovers exactly the requests
//!    the engine says completed.

use pk_sim::{
    flow_ring_capacity, simulate_flow, ArrivalPattern, ClientMix, Network, OverloadPolicy, Station,
};
use pk_trace::{Event, Tracer};
use pk_why::{attribute, encode_exemplars, exemplars, fold, RequestCost};
use proptest::prelude::*;

fn toy_network() -> Network {
    let mut n = Network::new();
    n.push(Station::delay("user", 600.0, false))
        .push(Station::queue("handoff", 40.0, true))
        .push(Station::spinlock("hot", 120.0, 0.3, true));
    n
}

fn traced_run(seed: u64) -> (u64, Vec<Event>) {
    let cores = 4;
    let net = toy_network();
    let tracer = Tracer::new(cores + 1, flow_ring_capacity(4_000, cores, 3));
    let r = simulate_flow(
        &net,
        cores,
        ArrivalPattern::Poisson {
            mean_interarrival_cycles: 400.0,
        },
        ClientMix {
            population: 100_000,
            mean_session_requests: 8,
            connect_cycles: 200,
            slow_per_mille: 20,
            stall_cycles: 3_000,
        },
        OverloadPolicy::observe(20_000),
        1_500_000,
        seed,
        Some(&tracer),
    );
    assert_eq!(tracer.dropped(), 0, "sizing rule must hold");
    (r.completed, tracer.drain())
}

/// Relabels track `t` as `perm[t]` and re-interleaves the stream
/// round-robin across tracks: per-track order is preserved, everything
/// else about the layout changes.
fn migrate(events: &[Event], perm: &[u32]) -> Vec<Event> {
    let mut lanes: Vec<Vec<Event>> = vec![Vec::new(); perm.len()];
    for e in events {
        let mut e = *e;
        let from = e.track as usize;
        e.track = perm[from];
        lanes[from].push(e);
    }
    let mut out = Vec::with_capacity(events.len());
    let mut idx = vec![0usize; lanes.len()];
    loop {
        let mut any = false;
        for (lane, i) in lanes.iter().zip(idx.iter_mut()) {
            if *i < lane.len() {
                out.push(lane[*i]);
                *i += 1;
                any = true;
            }
        }
        if !any {
            return out;
        }
    }
}

#[test]
fn fold_recovers_exactly_the_completed_requests_with_zero_slack() {
    let (completed, events) = traced_run(42);
    let f = fold(&events);
    assert_eq!(f.trees.len() as u64, completed);
    assert_eq!(f.malformed, 0);
    assert!(completed > 500, "the run must exercise the engine");
    for t in &f.trees {
        let c = RequestCost::of(t);
        assert_eq!(c.slack, 0, "flow spans are contiguous");
        assert_eq!(
            c.latency,
            c.queue + c.service + c.wait_total() + c.slack,
            "identity must be exact for ctx {:#x}",
            t.ctx
        );
    }
}

#[test]
fn rerun_produces_byte_identical_exemplars_and_attribution() {
    let (_, ea) = traced_run(42);
    let (_, eb) = traced_run(42);
    let (fa, fb) = (fold(&ea), fold(&eb));
    assert_eq!(fa.trees, fb.trees);
    assert_eq!(
        encode_exemplars(&exemplars(&fa.trees, 5, 42)),
        encode_exemplars(&exemplars(&fb.trees, 5, 42))
    );
    let costs_a: Vec<RequestCost> = fa.trees.iter().map(RequestCost::of).collect();
    let costs_b: Vec<RequestCost> = fb.trees.iter().map(RequestCost::of).collect();
    assert_eq!(attribute(&costs_a, 0.999), attribute(&costs_b, 0.999));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Forced thread migration: an arbitrary rotation of track ids
    /// plus a full re-interleave of the stream must not change a byte
    /// of the folded trees or the exemplar encoding.
    #[test]
    fn fold_is_invariant_under_track_permutation(seed in 1u64..64, rot in 1u32..5) {
        let (_, events) = traced_run(seed);
        let perm: Vec<u32> = (0..5u32).map(|t| (t + rot) % 5).collect();
        let migrated = migrate(&events, &perm);
        let (a, b) = (fold(&events), fold(&migrated));
        prop_assert_eq!(&a.trees, &b.trees);
        prop_assert_eq!(a.in_flight, b.in_flight);
        prop_assert_eq!(
            encode_exemplars(&exemplars(&a.trees, 5, seed)),
            encode_exemplars(&exemplars(&b.trees, 5, seed))
        );
    }

    /// The exemplar set is a deterministic function of (trees, k, seed)
    /// and always the K slowest by identity latency.
    #[test]
    fn exemplars_are_the_k_slowest(seed in 1u64..32, k in 1usize..8) {
        let (_, events) = traced_run(seed);
        let trees = fold(&events).trees;
        let ex = exemplars(&trees, k, seed);
        prop_assert_eq!(ex.len(), k.min(trees.len()));
        let floor = ex.iter().map(|t| RequestCost::of(t).latency).min().unwrap();
        let below = trees.iter().filter(|t| RequestCost::of(t).latency > floor).count();
        prop_assert!(below < k, "a slower-than-floor tree was left out");
    }
}
