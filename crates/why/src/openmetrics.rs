//! Minimal OpenMetrics text-format renderer (no external deps — the
//! container is offline). Enough of the spec for CI artifacts: gauge
//! and counter families, `# HELP`/`# TYPE` headers, escaped label
//! values, samples grouped by family, terminating `# EOF`.

use std::collections::BTreeMap;
use std::fmt::Write;

struct Family {
    kind: &'static str,
    help: String,
    /// (rendered label block, value) in insertion order.
    samples: Vec<(String, f64)>,
}

/// A set of metric families, rendered deterministically: families in
/// name order, samples in insertion order.
#[derive(Default)]
pub struct MetricSet {
    families: BTreeMap<String, Family>,
}

fn escape(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn label_block(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

impl MetricSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(
        &mut self,
        kind: &'static str,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        value: f64,
    ) {
        let fam = self
            .families
            .entry(name.to_string())
            .or_insert_with(|| Family {
                kind,
                help: help.to_string(),
                samples: Vec::new(),
            });
        assert_eq!(fam.kind, kind, "{name}: family type must not change");
        fam.samples.push((label_block(labels), value));
    }

    /// Adds one gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.push("gauge", name, help, labels, value);
    }

    /// Adds one counter sample. Counter sample names carry the
    /// `_total` suffix per the spec; pass the family name bare.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.push("counter", name, help, labels, value);
    }

    /// Renders the OpenMetrics text exposition, `# EOF` included.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, fam) in &self.families {
            writeln!(out, "# HELP {name} {}", fam.help).expect("string write");
            writeln!(out, "# TYPE {name} {}", fam.kind).expect("string write");
            let suffix = if fam.kind == "counter" { "_total" } else { "" };
            for (labels, value) in &fam.samples {
                writeln!(out, "{name}{suffix}{labels} {value}").expect("string write");
            }
        }
        out.push_str("# EOF\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_grouped_escaped_and_terminated() {
        let mut m = MetricSet::new();
        m.gauge(
            "pk_tail_wait_bp",
            "basis points of tail latency",
            &[("class", "vfs.mount_table"), ("kernel", "stock")],
            9_123.0,
        );
        m.counter(
            "pk_requests",
            "completed requests",
            &[("kernel", "stock")],
            2000.0,
        );
        m.gauge(
            "pk_tail_wait_bp",
            "basis points of tail latency",
            &[("class", "odd\"name\\x"), ("kernel", "pk")],
            1.0,
        );
        let text = m.render();
        let lines: Vec<&str> = text.lines().collect();
        // Families in name order, each contiguous.
        assert_eq!(lines[0], "# HELP pk_requests completed requests");
        assert_eq!(lines[1], "# TYPE pk_requests counter");
        assert_eq!(lines[2], "pk_requests_total{kernel=\"stock\"} 2000");
        assert_eq!(
            lines[3],
            "# HELP pk_tail_wait_bp basis points of tail latency"
        );
        assert!(lines[5].contains("class=\"vfs.mount_table\""));
        assert!(lines[6].contains("odd\\\"name\\\\x"));
        assert_eq!(*lines.last().unwrap(), "# EOF");
    }

    #[test]
    #[should_panic(expected = "family type must not change")]
    fn mixing_types_in_one_family_is_a_bug() {
        let mut m = MetricSet::new();
        m.gauge("x", "h", &[], 1.0);
        m.counter("x", "h", &[], 1.0);
    }
}
