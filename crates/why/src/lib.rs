//! `pk-why`: *why was this request slow?*
//!
//! `pk-trace` records what happened; `pk-obs` records how much. This
//! crate closes the remaining gap — **per-request causality**: it folds
//! a drained trace stream into one span tree per request context
//! ([`fold`]), prices each tree against the accounting identity
//!
//! ```text
//! request latency = admission queue wait
//!                 + service
//!                 + Σ lock-class waits
//!                 + slack
//! ```
//!
//! ([`RequestCost`]), decomposes a tail quantile's cycles into
//! wait-by-lock-class basis points ([`attribute`]), and keeps a
//! deterministic reservoir of the slowest complete trees as exemplars
//! ([`exemplars`], [`encode_exemplars`]). [`MetricSet`] renders the
//! attribution tables in OpenMetrics text format for CI artifacts.
//!
//! This is §5.2.1 of the paper made per-request: "the kernel time of
//! [stock] Exim is dominated by one lock" becomes *this* request's
//! p999 decomposed into the cycles it spent behind each named class.
//!
//! Two contracts the rest of the tree relies on:
//!
//! * **Names, not raw ids.** Folded trees and exemplar encodings embed
//!   *resolved* class names (`pk-lockdep` registry for lock events,
//!   the pk-trace intern table for spans). Raw interned ids are
//!   registration-order-dependent and must never appear in canonical
//!   bytes.
//! * **Admission wait is not a lock wait.** Time in
//!   [`ADMISSION_QUEUE_CLASS`] is the identity's *queue* term: under
//!   overload it dwarfs every real lock class, so pooling it with
//!   lock-class waits would hide exactly the inversion the tables
//!   exist to show.
//!
//! Everything here is a pure function of the event stream: same
//! stream, same bytes out — and the fold is insensitive to how
//! requests were laid out across tracks (thread migration, worker
//! renumbering), as long as each track's own order is preserved.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attribution;
mod fold;
mod openmetrics;
mod reservoir;

pub use attribution::{attribute, Attribution, ClassShare};
pub use fold::{fold, FoldOutput, NodeKind, RequestCost, RequestTree, SpanNode};
pub use openmetrics::MetricSet;
pub use reservoir::{encode_exemplars, encode_tree, exemplars};

/// Resolved class name of the admission-queue wait (the zero-width
/// lock pair the flow engine stamps at dispatch). This is the *queue*
/// term of the accounting identity, excluded from the lock-class wait
/// pool by [`RequestCost`] and [`attribute`].
pub const ADMISSION_QUEUE_CLASS: &str = "serve.admission_queue";
