//! Deterministic exemplars: the K slowest complete requests, kept as
//! whole span trees so a tail regression comes with its own evidence.
//!
//! Selection sorts by latency (slowest first) with a **seeded
//! tie-break**: equal-latency requests are ordered by
//! `splitmix64(seed ^ ctx)`, so the choice among ties is arbitrary but
//! byte-identical across reruns and across track layouts — never "the
//! one whose worker drained first". A plain `(latency, ctx)` order
//! would also be deterministic, but it would bias ties toward low
//! request ids, i.e. toward early arrivals; the seeded hash keeps the
//! exemplar set unbiased while staying reproducible.
//!
//! The canonical encoding embeds resolved class *names*, never raw
//! interned ids: intern ids depend on registration order, which any
//! refactor can change without changing behavior. Two captures are the
//! same evidence iff [`encode_exemplars`] agrees byte-for-byte.

use crate::fold::{RequestCost, RequestTree, SpanNode};

fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Selects the `k` slowest trees (by accounting-identity latency,
/// admission wait included), seeded tie-break. Returns references in
/// slowest-first order; fewer than `k` when the capture has fewer
/// complete requests.
pub fn exemplars(trees: &[RequestTree], k: usize, seed: u64) -> Vec<&RequestTree> {
    let mut keyed: Vec<(u64, u64, &RequestTree)> = trees
        .iter()
        .map(|t| (RequestCost::of(t).latency, mix64(seed ^ t.ctx), t))
        .collect();
    keyed.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    keyed.into_iter().take(k).map(|(_, _, t)| t).collect()
}

fn encode_node(n: &SpanNode, out: &mut Vec<u8>) {
    out.push(n.kind.tag());
    let name = n.name.as_bytes();
    out.extend_from_slice(&(name.len() as u16).to_le_bytes());
    out.extend_from_slice(name);
    out.extend_from_slice(&n.start.to_le_bytes());
    out.extend_from_slice(&n.end.to_le_bytes());
    out.extend_from_slice(&n.wait.to_le_bytes());
    out.extend_from_slice(&(n.children.len() as u32).to_le_bytes());
    for c in &n.children {
        encode_node(c, out);
    }
}

/// Appends one tree's canonical encoding: ctx id, kind name, envelope,
/// then the children depth-first. No track ids, no raw class ids.
pub fn encode_tree(t: &RequestTree, out: &mut Vec<u8>) {
    out.extend_from_slice(&t.ctx.to_le_bytes());
    let name = t.kind_name.as_bytes();
    out.extend_from_slice(&(name.len() as u16).to_le_bytes());
    out.extend_from_slice(name);
    out.extend_from_slice(&t.start.to_le_bytes());
    out.extend_from_slice(&t.end.to_le_bytes());
    out.extend_from_slice(&(t.children.len() as u32).to_le_bytes());
    for c in &t.children {
        encode_node(c, out);
    }
}

/// The canonical bytes of an exemplar set, in selection order.
pub fn encode_exemplars(trees: &[&RequestTree]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(trees.len() as u32).to_le_bytes());
    for t in trees {
        encode_tree(t, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fold::NodeKind;

    fn tree(ctx: u64, start: u64, width: u64) -> RequestTree {
        RequestTree {
            ctx,
            kind_name: "serve.request".into(),
            start,
            end: start + width,
            children: vec![SpanNode {
                name: "w".into(),
                kind: NodeKind::Span,
                start,
                end: start + width,
                wait: 0,
                children: Vec::new(),
            }],
        }
    }

    #[test]
    fn selects_the_k_slowest_in_order() {
        let trees = vec![tree(1, 0, 10), tree(2, 0, 50), tree(3, 0, 30)];
        let ex = exemplars(&trees, 2, 42);
        assert_eq!(
            ex.iter().map(|t| t.ctx).collect::<Vec<_>>(),
            vec![2, 3],
            "slowest first"
        );
        assert_eq!(exemplars(&trees, 10, 42).len(), 3, "k caps at the capture");
    }

    #[test]
    fn ties_break_by_seeded_hash_not_arrival_order() {
        let trees: Vec<RequestTree> = (1..=8).map(|i| tree(i, 0, 10)).collect();
        let a: Vec<u64> = exemplars(&trees, 3, 42).iter().map(|t| t.ctx).collect();
        let b: Vec<u64> = exemplars(&trees, 3, 42).iter().map(|t| t.ctx).collect();
        assert_eq!(a, b, "same seed, same set");
        let c: Vec<u64> = exemplars(&trees, 3, 43).iter().map(|t| t.ctx).collect();
        assert_ne!(a, c, "a different seed must be able to pick different ties");
        assert_ne!(a, vec![1, 2, 3], "not simply the lowest ids");
    }

    #[test]
    fn encoding_embeds_names_and_is_injective_on_shape() {
        let a = tree(1, 0, 10);
        let mut b = a.clone();
        b.children[0].name = "x".into();
        let enc = |t: &RequestTree| {
            let mut v = Vec::new();
            encode_tree(t, &mut v);
            v
        };
        assert_ne!(enc(&a), enc(&b));
        let bytes = enc(&a);
        assert!(
            bytes.windows(1).any(|w| w == b"w"),
            "names are embedded, not interned ids"
        );
    }
}
