//! Folding a drained event stream into per-request span trees.
//!
//! The fold is a per-track stack walk, exactly like
//! `pk_trace::Profile::build`, except the unit of output is the
//! *request*: every `CtxBegin`/`CtxEnd` envelope that closes inside
//! the stream becomes one [`RequestTree`]; envelopes still open at the
//! end of the stream (requests in flight at the horizon) are counted
//! and discarded — a partial tree would misprice every term of the
//! accounting identity.
//!
//! Track layout is erased: trees carry no track id and the output is
//! sorted by `(start, ctx)`, so renumbering workers or migrating a
//! request's events to a different track (with per-track order
//! preserved) cannot change a byte of the fold.

use crate::ADMISSION_QUEUE_CLASS;
use pk_trace::{Event, EventKind};
use std::collections::BTreeMap;

/// What a [`SpanNode`] in a folded tree represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum NodeKind {
    /// A plain span (station service, connect, stall, kernel section).
    Span,
    /// A lock hold; `wait` is the cycles paid waiting to acquire.
    Lock,
    /// A point event; zero width, `wait` carries the payload.
    Instant,
    /// A counter delta; zero width, `wait` carries the raw delta.
    Counter,
}

impl NodeKind {
    /// Canonical one-byte tag for the exemplar encoding.
    pub(crate) fn tag(self) -> u8 {
        match self {
            NodeKind::Span => 0,
            NodeKind::Lock => 1,
            NodeKind::Instant => 2,
            NodeKind::Counter => 3,
        }
    }
}

/// One node of a folded request tree. Names are resolved at fold time
/// (lockdep registry for locks, span intern table otherwise) — trees
/// never carry raw interned ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Resolved class name.
    pub name: String,
    /// What the node is.
    pub kind: NodeKind,
    /// Open timestamp (virtual cycles).
    pub start: u64,
    /// Close timestamp; equals `start` for zero-width nodes.
    pub end: u64,
    /// Lock: cycles waited to acquire. Instant/counter: the payload.
    pub wait: u64,
    /// Nested nodes, in stream order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Node width in cycles.
    pub fn width(&self) -> u64 {
        self.end - self.start
    }
}

/// One complete request: the folded `CtxBegin..CtxEnd` envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestTree {
    /// The deterministic request id (`pk_trace::request_id`).
    pub ctx: u64,
    /// Resolved name of the context class (`serve.request`).
    pub kind_name: String,
    /// Envelope open (dispatch time in the flow engine).
    pub start: u64,
    /// Envelope close (completion).
    pub end: u64,
    /// Top-level children, in stream order.
    pub children: Vec<SpanNode>,
}

impl RequestTree {
    /// Envelope width in cycles. The *latency* additionally includes
    /// the admission-queue wait — see [`RequestCost`].
    pub fn envelope(&self) -> u64 {
        self.end - self.start
    }
}

/// Everything [`fold`] extracted from a stream.
#[derive(Debug, Clone, Default)]
pub struct FoldOutput {
    /// Complete request trees, sorted by `(start, ctx)`.
    pub trees: Vec<RequestTree>,
    /// Request envelopes still open at the end of the stream (in
    /// flight at the horizon). Not an error.
    pub in_flight: usize,
    /// End events with no matching open frame, and frames the fold had
    /// to force-close because an outer frame ended first. Zero on any
    /// well-formed stream; non-zero means a driver broke span nesting.
    pub malformed: usize,
}

struct Frame {
    node: SpanNode,
    /// `Some(id)` iff this frame is a request envelope.
    ctx: Option<u64>,
}

/// Whether `e` closes the frame `f`.
fn matches(f: &Frame, e: &Event) -> bool {
    match e.kind {
        EventKind::CtxEnd => f.ctx == Some(e.arg),
        EventKind::LockEnd => {
            f.ctx.is_none() && f.node.kind == NodeKind::Lock && f.node.name == resolve(e)
        }
        EventKind::SpanEnd => {
            f.ctx.is_none() && f.node.kind == NodeKind::Span && f.node.name == resolve(e)
        }
        _ => false,
    }
}

/// Resolves an event's class id to its name in the right namespace.
fn resolve(e: &Event) -> String {
    if e.kind.is_lock() {
        pk_lockdep::class_name(pk_lockdep::ClassId::from_raw(e.class))
    } else {
        pk_trace::intern::span_name(e.class)
    }
}

/// Folds a drained stream into complete per-request span trees.
///
/// Events are grouped by track (preserving each track's stream order)
/// and each track is walked with a frame stack. Events outside any
/// request envelope — the admission track's shed/reject instants,
/// driver spans between requests — are dropped: the fold answers
/// per-request questions only.
pub fn fold(events: &[Event]) -> FoldOutput {
    let mut by_track: BTreeMap<u32, Vec<&Event>> = BTreeMap::new();
    for e in events {
        by_track.entry(e.track).or_default().push(e);
    }

    let mut out = FoldOutput::default();
    for track in by_track.values() {
        let mut stack: Vec<Frame> = Vec::new();
        for &e in track {
            match e.kind {
                EventKind::SpanBegin | EventKind::LockBegin | EventKind::CtxBegin => {
                    stack.push(Frame {
                        node: SpanNode {
                            name: resolve(e),
                            kind: if e.kind.is_lock() {
                                NodeKind::Lock
                            } else {
                                NodeKind::Span
                            },
                            start: e.ts,
                            end: e.ts,
                            wait: if e.kind == EventKind::LockBegin {
                                e.arg
                            } else {
                                0
                            },
                            children: Vec::new(),
                        },
                        ctx: (e.kind == EventKind::CtxBegin).then_some(e.arg),
                    });
                }
                EventKind::SpanEnd | EventKind::LockEnd | EventKind::CtxEnd => {
                    let Some(depth) = stack.iter().rposition(|f| matches(f, e)) else {
                        out.malformed += 1;
                        continue;
                    };
                    // Frames opened inside the one being closed are
                    // force-closed at its end (broken nesting).
                    out.malformed += stack.len() - depth - 1;
                    while stack.len() > depth + 1 {
                        let mut f = stack.pop().expect("depth bounded");
                        f.node.end = e.ts;
                        stack
                            .last_mut()
                            .expect("parent below")
                            .node
                            .children
                            .push(f.node);
                    }
                    let mut f = stack.pop().expect("matched frame");
                    f.node.end = e.ts;
                    match (f.ctx, stack.last_mut()) {
                        (Some(ctx), _) => out.trees.push(RequestTree {
                            ctx,
                            kind_name: f.node.name,
                            start: f.node.start,
                            end: f.node.end,
                            children: f.node.children,
                        }),
                        (None, Some(parent)) => parent.node.children.push(f.node),
                        // A span that opened and closed outside any
                        // envelope: not request work, dropped.
                        (None, None) => {}
                    }
                }
                EventKind::Instant | EventKind::Counter => {
                    if let Some(top) = stack.last_mut() {
                        top.node.children.push(SpanNode {
                            name: resolve(e),
                            kind: if e.kind == EventKind::Instant {
                                NodeKind::Instant
                            } else {
                                NodeKind::Counter
                            },
                            start: e.ts,
                            end: e.ts,
                            wait: e.arg,
                            children: Vec::new(),
                        });
                    }
                }
            }
        }
        out.in_flight += stack.iter().filter(|f| f.ctx.is_some()).count();
    }
    out.trees.sort_by_key(|t| (t.start, t.ctx));
    out
}

/// One request priced against the accounting identity
/// `latency = queue + service + Σ waits + slack` (DESIGN.md §15).
/// All five terms are exact by construction — the struct cannot
/// represent a tree that violates the identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestCost {
    /// The request id.
    pub ctx: u64,
    /// End-to-end latency: admission wait + envelope width. This is
    /// the same number the engine's latency histogram recorded.
    pub latency: u64,
    /// Cycles queued at admission ([`ADMISSION_QUEUE_CLASS`]) — the
    /// *queue* term, deliberately not part of [`Self::waits`].
    pub queue: u64,
    /// Cycles doing work: envelope covered by spans, minus lock waits.
    pub service: u64,
    /// Envelope cycles covered by no top-level span — zero in the DES
    /// flow engine (its spans are contiguous), possibly positive for
    /// functional drivers with untraced gaps.
    pub slack: u64,
    /// Cycles waited per lock class, admission excluded. Keyed by
    /// resolved class name — the shared `pk-lockdep` vocabulary.
    pub waits: BTreeMap<String, u64>,
}

impl RequestCost {
    /// Prices one complete tree.
    pub fn of(tree: &RequestTree) -> Self {
        fn walk(n: &SpanNode, queue: &mut u64, waits: &mut BTreeMap<String, u64>) {
            if n.kind == NodeKind::Lock {
                if n.name == ADMISSION_QUEUE_CLASS {
                    *queue += n.wait;
                } else {
                    *waits.entry(n.name.clone()).or_default() += n.wait;
                }
            }
            for c in &n.children {
                walk(c, queue, waits);
            }
        }
        let mut queue = 0;
        let mut waits = BTreeMap::new();
        for c in &tree.children {
            walk(c, &mut queue, &mut waits);
        }
        let covered: u64 = tree
            .children
            .iter()
            .filter(|c| matches!(c.kind, NodeKind::Span | NodeKind::Lock))
            .map(SpanNode::width)
            .sum();
        let envelope = tree.envelope();
        let slack = envelope.saturating_sub(covered);
        let wait_sum: u64 = waits.values().sum();
        Self {
            ctx: tree.ctx,
            latency: queue + envelope,
            queue,
            service: covered.saturating_sub(wait_sum),
            slack,
            waits,
        }
    }

    /// Σ lock-class waits (admission excluded).
    pub fn wait_total(&self) -> u64 {
        self.waits.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(track: u32, ts: u64, kind: EventKind, class: u32, arg: u64) -> Event {
        Event {
            ts,
            arg,
            class,
            site: 0,
            track,
            kind,
        }
    }

    fn classes() -> (u32, u32, u32, u32) {
        let ctx = pk_trace::REQUEST_CLASS.class_id();
        let work = pk_trace::intern::intern_span("test.why.work");
        let adm = pk_lockdep::register_class(
            ADMISSION_QUEUE_CLASS,
            "pk-why",
            pk_lockdep::LockKind::Ticket,
        )
        .raw();
        let lock =
            pk_lockdep::register_class("test.why.lock", "pk-why", pk_lockdep::LockKind::Spin).raw();
        (ctx, work, adm, lock)
    }

    /// One request: dispatched at 100 after 40 cycles queued, a work
    /// span [100,160] holding the lock [110,150] (30 waited), done at
    /// 160.
    fn one_request(track: u32, ctx_id: u64, base: u64) -> Vec<Event> {
        let (ctx, work, adm, lock) = classes();
        vec![
            ev(track, base, EventKind::CtxBegin, ctx, ctx_id),
            ev(track, base, EventKind::LockBegin, adm, 40),
            ev(track, base, EventKind::LockEnd, adm, 0),
            ev(track, base, EventKind::SpanBegin, work, 0),
            ev(track, base + 10, EventKind::LockBegin, lock, 30),
            ev(track, base + 50, EventKind::LockEnd, lock, 0),
            ev(track, base + 60, EventKind::SpanEnd, work, 0),
            ev(track, base + 60, EventKind::CtxEnd, ctx, ctx_id),
        ]
    }

    #[test]
    fn folds_one_envelope_and_prices_the_identity() {
        let events = one_request(0, 7, 100);
        let f = fold(&events);
        assert_eq!(f.trees.len(), 1);
        assert_eq!(f.in_flight, 0);
        assert_eq!(f.malformed, 0);
        let t = &f.trees[0];
        assert_eq!(t.ctx, 7);
        assert_eq!(t.envelope(), 60);
        // admission pair + work span at top level; lock nested.
        assert_eq!(t.children.len(), 2);
        assert_eq!(t.children[1].children.len(), 1);
        let c = RequestCost::of(t);
        assert_eq!(c.latency, 100);
        assert_eq!(c.queue, 40);
        assert_eq!(c.waits["test.why.lock"], 30);
        assert_eq!(c.slack, 0);
        assert_eq!(
            c.latency,
            c.queue + c.service + c.wait_total() + c.slack,
            "the identity must be exact"
        );
    }

    #[test]
    fn open_envelopes_at_stream_end_are_in_flight_not_trees() {
        let (ctx, ..) = classes();
        let mut events = one_request(0, 7, 100);
        events.push(ev(0, 300, EventKind::CtxBegin, ctx, 8));
        let f = fold(&events);
        assert_eq!(f.trees.len(), 1);
        assert_eq!(f.in_flight, 1);
    }

    #[test]
    fn fold_is_track_layout_invariant() {
        // The same two requests, laid out (a) on separate tracks and
        // (b) on swapped track ids with the streams interleaved: the
        // fold must produce identical trees in identical order.
        let mut a = one_request(0, 7, 100);
        a.extend(one_request(1, 9, 90));
        let mut b: Vec<Event> = Vec::new();
        let (r0, r1) = (one_request(4, 7, 100), one_request(2, 9, 90));
        for i in 0..r0.len() {
            b.push(r1[i]);
            b.push(r0[i]);
        }
        assert_eq!(fold(&a).trees, fold(&b).trees);
        // Sorted by (start, ctx): the later-dispatched request is last.
        assert_eq!(fold(&a).trees[0].ctx, 9);
    }

    #[test]
    fn broken_nesting_is_surfaced_not_mispriced() {
        let (ctx, work, _, _) = classes();
        let events = vec![
            ev(0, 0, EventKind::CtxBegin, ctx, 5),
            ev(0, 10, EventKind::SpanBegin, work, 0),
            // Envelope closes while the span is still open.
            ev(0, 20, EventKind::CtxEnd, ctx, 5),
            // And a stray end with no open frame.
            ev(0, 30, EventKind::SpanEnd, work, 0),
        ];
        let f = fold(&events);
        assert_eq!(f.malformed, 2);
        assert_eq!(f.trees.len(), 1, "the envelope still folds");
        assert_eq!(
            f.trees[0].children[0].end, 20,
            "force-closed at the envelope end"
        );
    }

    #[test]
    fn instants_attach_to_the_open_frame_and_orphans_drop() {
        let (ctx, work, _, _) = classes();
        let leak = pk_trace::CTX_LEAK_CLASS.class_id();
        let events = vec![
            // Orphan instant before any envelope: dropped.
            ev(0, 1, EventKind::Instant, work, 0),
            ev(0, 10, EventKind::CtxBegin, ctx, 5),
            ev(0, 12, EventKind::Instant, leak, 99),
            ev(0, 20, EventKind::CtxEnd, ctx, 5),
        ];
        let f = fold(&events);
        assert_eq!(f.trees.len(), 1);
        let kids = &f.trees[0].children;
        assert_eq!(kids.len(), 1);
        assert_eq!(kids[0].kind, NodeKind::Instant);
        assert_eq!(kids[0].wait, 99);
    }
}
