//! Where the tail's cycles went: quantile decomposition by lock class.
//!
//! The attribution answers the question the latency tables raise: the
//! p999 is N cycles — *which lock* is it standing behind? The tail set
//! is every request at or above the **exact** order statistic
//! (computed from the per-request costs, not from histogram buckets,
//! so the threshold carries no bucketing error), and the decomposition
//! sums the accounting-identity terms over that set.
//!
//! Two shares are reported per class, because the gates need both:
//!
//! * `share_of_waits` — this class's fraction of the lock-class wait
//!   pool (admission excluded). The §5.2.1 stock gate ("≥ 90% of p999
//!   wait cycles sit behind the mount-table lock") reads this one.
//! * `bp_of_latency` — basis points of total tail latency, queue and
//!   service included. The PK gate ("no class exceeds 500 bp") reads
//!   this one: a kernel that waits on nothing should show every class
//!   near zero *of the latency*, not merely balanced among themselves.

use crate::fold::RequestCost;
use std::collections::BTreeMap;

/// One lock class's share of the tail.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassShare {
    /// Resolved class name (`pk-lockdep` vocabulary).
    pub class: String,
    /// Cycles the tail set waited on this class.
    pub wait: u64,
    /// Fraction of the lock-class wait pool (0..=1; admission
    /// excluded). Zero pool reports zero.
    pub share_of_waits: f64,
    /// Basis points of the tail set's total latency (0..=10_000).
    pub bp_of_latency: u64,
}

/// A tail quantile decomposed over the accounting identity.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribution {
    /// The quantile requested (e.g. 0.999).
    pub quantile: f64,
    /// Exact order statistic of per-request latency at that quantile.
    pub threshold_cycles: u64,
    /// Requests in the tail set (latency ≥ threshold).
    pub requests: usize,
    /// Σ latency over the tail set — denominator of `bp_of_latency`.
    pub total_latency: u64,
    /// Σ admission-queue wait over the tail set.
    pub queue: u64,
    /// Σ service over the tail set.
    pub service: u64,
    /// Σ slack over the tail set.
    pub slack: u64,
    /// Σ lock-class waits — denominator of `share_of_waits`.
    pub wait_total: u64,
    /// Per-class shares, widest wait first (ties by name).
    pub by_class: Vec<ClassShare>,
}

impl Attribution {
    /// The share entry for `class`, if any request waited on it.
    pub fn class(&self, class: &str) -> Option<&ClassShare> {
        self.by_class.iter().find(|c| c.class == class)
    }
}

/// Decomposes the `q`-quantile tail of `costs`. Returns `None` when
/// `costs` is empty. `q` is clamped to `0..=1`; the rank rule is
/// `ceil(q·n)`, matching `pk-obs`'s histogram quantile, so the exact
/// threshold here and the bucketed quantile there select the same
/// request.
pub fn attribute(costs: &[RequestCost], q: f64) -> Option<Attribution> {
    if costs.is_empty() {
        return None;
    }
    let mut lat: Vec<u64> = costs.iter().map(|c| c.latency).collect();
    lat.sort_unstable();
    let rank = ((q.clamp(0.0, 1.0) * lat.len() as f64).ceil() as usize).max(1);
    let threshold = lat[rank - 1];

    let mut a = Attribution {
        quantile: q,
        threshold_cycles: threshold,
        requests: 0,
        total_latency: 0,
        queue: 0,
        service: 0,
        slack: 0,
        wait_total: 0,
        by_class: Vec::new(),
    };
    let mut pool: BTreeMap<&str, u64> = BTreeMap::new();
    for c in costs.iter().filter(|c| c.latency >= threshold) {
        a.requests += 1;
        a.total_latency += c.latency;
        a.queue += c.queue;
        a.service += c.service;
        a.slack += c.slack;
        for (class, w) in &c.waits {
            *pool.entry(class).or_default() += w;
        }
    }
    a.wait_total = pool.values().sum();
    a.by_class = pool
        .into_iter()
        .map(|(class, wait)| ClassShare {
            class: class.to_string(),
            wait,
            share_of_waits: if a.wait_total == 0 {
                0.0
            } else {
                wait as f64 / a.wait_total as f64
            },
            bp_of_latency: (wait * 10_000).checked_div(a.total_latency).unwrap_or(0),
        })
        .collect();
    a.by_class
        .sort_by(|x, y| y.wait.cmp(&x.wait).then_with(|| x.class.cmp(&y.class)));
    Some(a)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(ctx: u64, queue: u64, service: u64, waits: &[(&str, u64)]) -> RequestCost {
        let waits: BTreeMap<String, u64> = waits.iter().map(|&(k, v)| (k.to_string(), v)).collect();
        let wait_sum: u64 = waits.values().sum();
        RequestCost {
            ctx,
            latency: queue + service + wait_sum,
            queue,
            service,
            slack: 0,
            waits,
        }
    }

    #[test]
    fn tail_set_respects_the_exact_order_statistic() {
        // 10 requests, one slow outlier: p90 rank selects the 9th.
        let costs: Vec<RequestCost> = (0..10).map(|i| cost(i, 0, 100 + i, &[("a", 10)])).collect();
        let a = attribute(&costs, 0.9).unwrap();
        assert_eq!(a.threshold_cycles, 118);
        assert_eq!(a.requests, 2, "latencies 118 and 119 are in the tail");
    }

    #[test]
    fn shares_split_the_pool_and_bp_split_the_latency() {
        let costs = vec![cost(1, 100, 100, &[("hot", 720), ("cold", 80)])];
        let a = attribute(&costs, 0.999).unwrap();
        assert_eq!(a.total_latency, 1_000);
        assert_eq!(a.wait_total, 800);
        let hot = a.class("hot").unwrap();
        assert!((hot.share_of_waits - 0.9).abs() < 1e-12);
        assert_eq!(hot.bp_of_latency, 7_200);
        // Queue cycles are in the latency denominator but not the pool.
        assert_eq!(a.queue, 100);
        assert!(a.class("serve.admission_queue").is_none());
        // Ordering: widest first.
        assert_eq!(a.by_class[0].class, "hot");
    }

    #[test]
    fn empty_and_waitless_inputs_are_total() {
        assert!(attribute(&[], 0.999).is_none());
        let a = attribute(&[cost(1, 0, 50, &[])], 0.999).unwrap();
        assert_eq!(a.wait_total, 0);
        assert!(a.by_class.is_empty());
    }
}
