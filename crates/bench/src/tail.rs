//! Where the p999 goes (`tail_report`).
//!
//! Runs the serving roster through the request-flow engine with
//! causal tracing on, folds every capture into per-request span trees
//! (`pk-why`), and decomposes the tail quantiles over the accounting
//! identity `latency = queue + service + Σ class waits + slack`.
//! The grid is `SERVING × {stock, coarse, pk, adaptive}` at
//! [`TAIL_CORES`] cores, observe posture, [`TAIL_LOAD_PCT`]% of PK
//! saturation — the §5.2.1 inversion re-derived *per request*, with
//! the wait cycles named by lock class instead of inferred from
//! aggregate counters.
//!
//! Three claims are derived from the runs (the CI gate):
//!
//! 1. **Per-request inversion** — the exact p999 order statistic of
//!    stock Exim's folded requests exceeds PK's at the same absolute
//!    arrival rate.
//! 2. **Stock attribution is concentrated** — at p999, at least
//!    [`STOCK_MOUNT_SHARE_FLOOR`] of stock Exim's lock-class wait pool
//!    sits behind [`MOUNT_CLASS`] (the vfsmount table, §5.2.1).
//! 3. **PK attribution is flat** — under PK no single class costs more
//!    than [`PK_CLASS_BP_CEILING`] basis points of tail latency.
//!
//! Everything downstream of the seed is deterministic: same seed, same
//! tables, byte-identical exemplar encodings (tested below). Ring
//! overflow is a *hard failure*, not a warning — a dropped event means
//! some exemplar tree is missing a span, so the capture is sized by
//! [`pk_sim::flow_ring_capacity`] and checked per track.

use pk_serve::{run_serving_flow, FlowRun, SERVING};
use pk_sim::{flow_ring_capacity, Network};
use pk_trace::{Event, Tracer};
use pk_why::{attribute, encode_exemplars, exemplars, fold, Attribution, MetricSet, RequestCost};
use pk_workloads::{roster, KernelChoice};

/// Core count for every traced run: the paper's full machine, past
/// the collapse knee for every stock serving workload.
pub const TAIL_CORES: usize = 48;
/// Target arrivals per cell: enough that the p999 tail set is real.
pub const TAIL_REQUESTS: u64 = 2_000;
/// Offered load, percent of PK saturation capacity — the same
/// absolute arrival rate for every personality.
pub const TAIL_LOAD_PCT: u32 = 60;
/// Exemplar span trees kept per cell (the K slowest requests).
pub const EXEMPLARS_PER_CELL: usize = 3;
/// The quantiles each cell decomposes, in report order.
pub const QUANTILES: [f64; 3] = [0.5, 0.99, 0.999];
/// The §5.2.1 lock class: the stock vfsmount table.
pub const MOUNT_CLASS: &str = "vfs.mount_table";
/// Stock Exim must attribute at least this share of its p999 wait
/// pool to [`MOUNT_CLASS`].
pub const STOCK_MOUNT_SHARE_FLOOR: f64 = 0.90;
/// Under PK no class may cost more than this many basis points of
/// p999 tail latency.
pub const PK_CLASS_BP_CEILING: u64 = 500;
/// The inversion must show on at least this many serving workloads.
pub const INVERSION_MIN_WORKLOADS: usize = 2;

/// The four kernel personalities the grid crosses with [`SERVING`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Personality {
    /// Stock Linux 2.6.35 behavior.
    Stock,
    /// One coarse lock per subsystem.
    Coarse,
    /// All paper fixes applied.
    Pk,
    /// `pk-adapt`'s converged configuration.
    Adaptive,
}

impl Personality {
    /// Grid order.
    pub const ALL: [Personality; 4] = [
        Personality::Stock,
        Personality::Coarse,
        Personality::Pk,
        Personality::Adaptive,
    ];

    /// Stable label used in tables, JSON, and metric labels.
    pub fn label(self) -> &'static str {
        match self {
            Personality::Stock => "stock",
            Personality::Coarse => "coarse",
            Personality::Pk => "pk",
            Personality::Adaptive => "adaptive",
        }
    }
}

/// Builds `workload`'s queueing network under `personality` at
/// `cores`. Stock/coarse/PK come straight from the roster (the roster
/// coarsens internally); adaptive boots the zero-fix config and lets
/// the controller converge on seeded DES observations first.
pub fn network_for(workload: &str, personality: Personality, cores: usize, seed: u64) -> Network {
    let machine = pk_sim::MachineSpec::paper();
    let choice = match personality {
        Personality::Stock => KernelChoice::Stock,
        Personality::Coarse => KernelChoice::Coarse,
        Personality::Pk => KernelChoice::Pk,
        Personality::Adaptive => {
            use pk_adapt::{AdaptController, AdaptPolicy};
            use pk_kernel::KernelConfig;
            let build = move |cfg: &KernelConfig| {
                roster::model_with_config(workload, cfg, machine)
                    .expect("serving workload resolves")
                    .network(cores)
            };
            let out =
                AdaptController::new(KernelConfig::adaptive(cores), AdaptPolicy::default(), seed)
                    .converge_des(build, cores);
            return roster::model_with_config(workload, &out.config, machine)
                .expect("serving workload resolves")
                .network(cores);
        }
    };
    roster::model_on(workload, choice, machine)
        .expect("serving workload resolves")
        .network(cores)
}

/// One traced cell: the flow run plus everything `pk-why` derived
/// from its capture.
#[derive(Debug, Clone)]
pub struct TailCell {
    /// Roster workload name.
    pub workload: &'static str,
    /// Kernel personality.
    pub personality: Personality,
    /// The flow-engine run (counters, histogram latency, policy).
    pub run: FlowRun,
    /// Complete span trees the fold recovered (== completed requests).
    pub folded: usize,
    /// Requests still open at the horizon (discarded by the fold).
    pub in_flight: usize,
    /// Per-quantile decompositions, in [`QUANTILES`] order.
    pub attributions: Vec<Attribution>,
    /// Canonical bytes of the [`EXEMPLARS_PER_CELL`] slowest trees.
    pub exemplar_bytes: Vec<u8>,
    /// Ring drops per track — all zero, or the cell would have
    /// panicked; surfaced so reports can print the margin.
    pub dropped_by_track: Vec<u64>,
}

impl TailCell {
    /// The decomposition at quantile `q` (must be in [`QUANTILES`]).
    pub fn at(&self, q: f64) -> &Attribution {
        let i = QUANTILES
            .iter()
            .position(|&x| x == q)
            .expect("quantile is one of QUANTILES");
        &self.attributions[i]
    }
}

/// The full grid, one seed.
#[derive(Debug, Clone)]
pub struct TailGrid {
    /// The seed every cell derives from.
    pub seed: u64,
    /// Cores per cell ([`TAIL_CORES`]).
    pub cores: usize,
    /// Target arrivals per cell ([`TAIL_REQUESTS`]).
    pub requests: u64,
    /// All cells, in `SERVING × Personality::ALL` order.
    pub cells: Vec<TailCell>,
}

impl TailGrid {
    /// The one cell matching (workload, personality).
    pub fn find(&self, workload: &str, personality: Personality) -> &TailCell {
        self.cells
            .iter()
            .find(|c| c.workload == workload && c.personality == personality)
            .expect("grid covers the full cross product")
    }
}

/// Runs one cell and returns it with the raw capture (for Perfetto
/// export). Panics — failing the report — on ring overflow, context
/// leaks, or a fold that disagrees with the engine's counters: each
/// means the exemplar evidence would be incomplete.
pub fn run_cell(
    workload: &'static str,
    personality: Personality,
    seed: u64,
) -> (TailCell, Vec<Event>) {
    let cores = TAIL_CORES;
    let net = network_for(workload, personality, cores, seed);
    // Track `cores` carries the admission instants; the ring size is
    // the documented rule, not a guess — overflow below is a bug in
    // the rule, not a tuning problem.
    let tracer = Tracer::new(
        cores + 1,
        flow_ring_capacity(TAIL_REQUESTS, cores, net.stations().len()),
    );
    let leaks_before = pk_trace::ctx_leaks();
    let run = run_serving_flow(
        workload,
        &net,
        cores,
        false,
        TAIL_LOAD_PCT,
        TAIL_REQUESTS,
        seed,
        Some(&tracer),
    )
    .expect("every SERVING workload has a serving spec");

    let dropped_by_track = tracer.dropped_by_track();
    assert_eq!(
        tracer.dropped(),
        0,
        "{workload}/{}: trace ring overflow {:?} — exemplar trees would be \
         incomplete; flow_ring_capacity(requests, cores, stations) is the \
         sizing rule and must cover the capture",
        personality.label(),
        dropped_by_track,
    );
    assert_eq!(
        pk_trace::ctx_leaks(),
        leaks_before,
        "{workload}/{}: a request context leaked across the run",
        personality.label()
    );

    let events = tracer.drain();
    let f = fold(&events);
    assert_eq!(
        f.malformed,
        0,
        "{workload}/{}: fold force-closed spans",
        personality.label()
    );
    assert_eq!(
        f.trees.len() as u64,
        run.result.completed,
        "{workload}/{}: fold must recover exactly the completed requests",
        personality.label()
    );

    let costs: Vec<RequestCost> = f.trees.iter().map(RequestCost::of).collect();
    let attributions: Vec<Attribution> = QUANTILES
        .iter()
        .map(|&q| attribute(&costs, q).expect("cells complete requests"))
        .collect();
    let exemplar_bytes = encode_exemplars(&exemplars(&f.trees, EXEMPLARS_PER_CELL, seed));

    (
        TailCell {
            workload,
            personality,
            folded: f.trees.len(),
            in_flight: f.in_flight,
            run,
            attributions,
            exemplar_bytes,
            dropped_by_track,
        },
        events,
    )
}

/// Runs the full grid. Deterministic: a pure function of `seed`.
pub fn run_grid(seed: u64) -> TailGrid {
    let mut cells = Vec::new();
    for w in SERVING {
        for p in Personality::ALL {
            cells.push(run_cell(w, p, seed).0);
        }
    }
    TailGrid {
        seed,
        cores: TAIL_CORES,
        requests: TAIL_REQUESTS,
        cells,
    }
}

/// One workload's per-request inversion verdict.
#[derive(Debug, Clone)]
pub struct TailVerdict {
    /// Roster name.
    pub workload: &'static str,
    /// Stock exact p999 order statistic, cycles.
    pub stock_p999: u64,
    /// PK exact p999 order statistic, cycles.
    pub pk_p999: u64,
    /// `stock_p999 > pk_p999` at the same absolute arrival rate.
    pub inverted: bool,
}

/// The grid's derived assertions — the CI gate.
#[derive(Debug, Clone)]
pub struct TailAssertions {
    /// Per-workload inversion verdicts, in `SERVING` order.
    pub verdicts: Vec<TailVerdict>,
    /// Workloads showing the per-request inversion.
    pub inversions: usize,
    /// `inversions >= INVERSION_MIN_WORKLOADS`.
    pub inversion_observed: bool,
    /// Stock Exim's p999 share of the wait pool behind [`MOUNT_CLASS`].
    pub stock_exim_mount_share: f64,
    /// `stock_exim_mount_share >= STOCK_MOUNT_SHARE_FLOOR`.
    pub stock_attribution_concentrated: bool,
    /// The widest class in PK Exim's p999 decomposition, basis points
    /// of tail latency.
    pub pk_exim_max_class_bp: u64,
    /// The class that holds `pk_exim_max_class_bp` (empty if no waits).
    pub pk_exim_max_class: String,
    /// `pk_exim_max_class_bp <= PK_CLASS_BP_CEILING`.
    pub pk_attribution_flat: bool,
}

impl TailAssertions {
    /// Whether all three headline claims held.
    pub fn ok(&self) -> bool {
        self.inversion_observed && self.stock_attribution_concentrated && self.pk_attribution_flat
    }
}

/// Derives the gate verdicts from a grid.
pub fn assess(grid: &TailGrid) -> TailAssertions {
    let verdicts: Vec<TailVerdict> = SERVING
        .iter()
        .map(|w| {
            let stock = grid.find(w, Personality::Stock).at(0.999).threshold_cycles;
            let pk = grid.find(w, Personality::Pk).at(0.999).threshold_cycles;
            TailVerdict {
                workload: w,
                stock_p999: stock,
                pk_p999: pk,
                inverted: stock > pk,
            }
        })
        .collect();
    let inversions = verdicts.iter().filter(|v| v.inverted).count();

    let stock_exim = grid.find("exim", Personality::Stock).at(0.999);
    let stock_exim_mount_share = stock_exim
        .class(MOUNT_CLASS)
        .map(|c| c.share_of_waits)
        .unwrap_or(0.0);

    let pk_exim = grid.find("exim", Personality::Pk).at(0.999);
    let (pk_exim_max_class, pk_exim_max_class_bp) = pk_exim
        .by_class
        .first()
        .map(|c| (c.class.clone(), c.bp_of_latency))
        .unwrap_or_default();

    TailAssertions {
        inversion_observed: inversions >= INVERSION_MIN_WORKLOADS,
        inversions,
        verdicts,
        stock_attribution_concentrated: stock_exim_mount_share >= STOCK_MOUNT_SHARE_FLOOR,
        stock_exim_mount_share,
        pk_attribution_flat: pk_exim_max_class_bp <= PK_CLASS_BP_CEILING,
        pk_exim_max_class,
        pk_exim_max_class_bp,
    }
}

/// Renders the per-cell summary table: one row per cell, the p999
/// decomposition compressed to its widest class.
pub fn table(grid: &TailGrid) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>10} {:>9} {:>9} {:>9} {:>10} {:>10} {:>10} {:>24} {:>7} {:>6}",
        "workload",
        "kernel",
        "arrivals",
        "folded",
        "p50",
        "p99",
        "p999",
        "p999 widest class",
        "share",
        "bp"
    );
    for c in &grid.cells {
        let a = c.at(0.999);
        let (class, share, bp) = a
            .by_class
            .first()
            .map(|s| (s.class.as_str(), s.share_of_waits, s.bp_of_latency))
            .unwrap_or(("-", 0.0, 0));
        let _ = writeln!(
            out,
            "{:>10} {:>9} {:>9} {:>9} {:>10} {:>10} {:>10} {:>24} {:>6.1}% {:>6}",
            c.workload,
            c.personality.label(),
            c.run.result.arrivals,
            c.folded,
            c.at(0.5).threshold_cycles,
            c.at(0.99).threshold_cycles,
            a.threshold_cycles,
            class,
            share * 100.0,
            bp
        );
    }
    out
}

/// Renders one workload's full p999 decomposition across all four
/// personalities: the accounting-identity terms, then every class.
pub fn class_table(grid: &TailGrid, workload: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for p in Personality::ALL {
        let c = grid.find(workload, p);
        let a = c.at(0.999);
        let _ = writeln!(
            out,
            "{workload}/{}: p999 >= {} cycles over {} requests \
             (queue {}, service {}, waits {}, slack {})",
            p.label(),
            a.threshold_cycles,
            a.requests,
            a.queue,
            a.service,
            a.wait_total,
            a.slack
        );
        for s in &a.by_class {
            let _ = writeln!(
                out,
                "    {:>24} {:>12} cycles {:>6.1}% of waits {:>6} bp of latency",
                s.class,
                s.wait,
                s.share_of_waits * 100.0,
                s.bp_of_latency
            );
        }
    }
    out
}

/// 64-bit FNV-1a — a stable digest for exemplar bytes in the JSON
/// artifact, so reruns can be compared without embedding kilobytes.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Renders the deterministic JSON artifact: fixed key order, fixed
/// float formatting, cells in grid order — byte-identical per seed.
pub fn report_json(grid: &TailGrid, asserts: &TailAssertions) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"seed\": {},", grid.seed);
    let _ = writeln!(out, "  \"cores\": {},", grid.cores);
    let _ = writeln!(out, "  \"requests\": {},", grid.requests);
    out.push_str("  \"cells\": [\n");
    for (i, c) in grid.cells.iter().enumerate() {
        let comma = if i + 1 == grid.cells.len() { "" } else { "," };
        let _ = write!(
            out,
            "    {{\"workload\": \"{}\", \"kernel\": \"{}\", \"arrivals\": {}, \
             \"completed\": {}, \"folded\": {}, \"in_flight\": {}, \
             \"exemplar_bytes\": {}, \"exemplar_fnv64\": \"{:016x}\", \
             \"quantiles\": [",
            c.workload,
            c.personality.label(),
            c.run.result.arrivals,
            c.run.result.completed,
            c.folded,
            c.in_flight,
            c.exemplar_bytes.len(),
            fnv64(&c.exemplar_bytes)
        );
        for (qi, a) in c.attributions.iter().enumerate() {
            let qcomma = if qi + 1 == c.attributions.len() {
                ""
            } else {
                ","
            };
            let _ = write!(
                out,
                "{{\"q\": {}, \"threshold\": {}, \"requests\": {}, \
                 \"total_latency\": {}, \"queue\": {}, \"service\": {}, \
                 \"wait_total\": {}, \"slack\": {}, \"by_class\": [",
                a.quantile,
                a.threshold_cycles,
                a.requests,
                a.total_latency,
                a.queue,
                a.service,
                a.wait_total,
                a.slack
            );
            for (ci, s) in a.by_class.iter().enumerate() {
                let ccomma = if ci + 1 == a.by_class.len() { "" } else { "," };
                let _ = write!(
                    out,
                    "{{\"class\": \"{}\", \"wait\": {}, \"share\": {:.6}, \"bp\": {}}}{ccomma}",
                    s.class, s.wait, s.share_of_waits, s.bp_of_latency
                );
            }
            let _ = write!(out, "]}}{qcomma}");
        }
        let _ = writeln!(out, "]}}{comma}");
    }
    out.push_str("  ],\n");
    let _ = writeln!(
        out,
        "  \"assertions\": {{\"inversions\": {}, \"inversion_observed\": {}, \
         \"stock_exim_mount_share\": {:.6}, \"stock_attribution_concentrated\": {}, \
         \"pk_exim_max_class\": \"{}\", \"pk_exim_max_class_bp\": {}, \
         \"pk_attribution_flat\": {}, \"ok\": {}}}",
        asserts.inversions,
        asserts.inversion_observed,
        asserts.stock_exim_mount_share,
        asserts.stock_attribution_concentrated,
        asserts.pk_exim_max_class,
        asserts.pk_exim_max_class_bp,
        asserts.pk_attribution_flat,
        asserts.ok()
    );
    out.push_str("}\n");
    out
}

/// Renders the grid as an OpenMetrics exposition (`pk-why`'s
/// renderer): thresholds, identity terms, and per-class shares as
/// gauges; completions and ring drops as counters.
pub fn metrics(grid: &TailGrid) -> MetricSet {
    let mut m = MetricSet::new();
    for c in &grid.cells {
        let kernel = c.personality.label();
        m.counter(
            "pk_tail_requests",
            "completed requests folded into span trees",
            &[("workload", c.workload), ("kernel", kernel)],
            c.folded as f64,
        );
        m.counter(
            "pk_trace_dropped_events",
            "trace ring overflow drops (must be zero)",
            &[("workload", c.workload), ("kernel", kernel)],
            c.dropped_by_track.iter().sum::<u64>() as f64,
        );
        for a in &c.attributions {
            let q = format!("{}", a.quantile);
            m.gauge(
                "pk_tail_threshold_cycles",
                "exact per-request latency order statistic",
                &[
                    ("workload", c.workload),
                    ("kernel", kernel),
                    ("quantile", &q),
                ],
                a.threshold_cycles as f64,
            );
            for (term, v) in [
                ("queue", a.queue),
                ("service", a.service),
                ("wait", a.wait_total),
                ("slack", a.slack),
            ] {
                m.gauge(
                    "pk_tail_term_cycles",
                    "accounting-identity term summed over the tail set",
                    &[
                        ("workload", c.workload),
                        ("kernel", kernel),
                        ("quantile", &q),
                        ("term", term),
                    ],
                    v as f64,
                );
            }
            for s in &a.by_class {
                m.gauge(
                    "pk_tail_wait_share",
                    "fraction of the tail's lock-class wait pool",
                    &[
                        ("workload", c.workload),
                        ("kernel", kernel),
                        ("quantile", &q),
                        ("class", &s.class),
                    ],
                    s.share_of_waits,
                );
                m.gauge(
                    "pk_tail_wait_bp",
                    "basis points of tail latency spent waiting on the class",
                    &[
                        ("workload", c.workload),
                        ("kernel", kernel),
                        ("quantile", &q),
                        ("class", &s.class),
                    ],
                    s.bp_of_latency as f64,
                );
            }
        }
    }
    m
}

/// The lockdep-live overload row: the *functional* Exim driver (real
/// pk-kernel syscalls, real pk-sync locks, request-scoped deliveries)
/// hammered from every core with the validator observing. Built with
/// `--features lockdep` this row proves the serving path holds lock
/// discipline under overload; without the feature it still exercises
/// the path and the context-leak check.
#[derive(Debug, Clone)]
pub struct LockdepLiveRow {
    /// Cores driven concurrently.
    pub cores: usize,
    /// SMTP connections completed.
    pub connections: u64,
    /// Messages delivered.
    pub delivered: u64,
    /// Lock acquisitions the validator observed (cumulative).
    pub acquisitions: u64,
    /// Discipline violations recorded (cumulative; must be zero).
    pub violations: usize,
    /// Request contexts leaked during the row (must be zero).
    pub ctx_leaks: u64,
}

/// Runs the lockdep-live row: `conns_per_core` connections on each of
/// 8 cores, concurrently, under the PK kernel.
pub fn run_lockdep_live(seed: u64) -> LockdepLiveRow {
    use pk_lockdep::ActingCore;
    use pk_percpu::CoreId;
    use pk_workloads::exim::EximDriver;

    const CORES: usize = 8;
    const CONNS_PER_CORE: usize = 4;

    let driver = EximDriver::new(KernelChoice::Pk, CORES).expect("driver boots");
    let leaks_before = pk_trace::ctx_leaks();
    std::thread::scope(|s| {
        for core in 0..CORES {
            let driver = &driver;
            s.spawn(move || {
                let _acting = ActingCore::enter(core);
                for conn in 0..CONNS_PER_CORE {
                    // Spread users so mailboxes are shared across cores
                    // (the contended path), deterministically per seed.
                    let user = (seed as usize + core + conn * CORES) % 8;
                    driver
                        .run_connection(CoreId(core), user)
                        .expect("overload connection completes");
                }
            });
        }
    });
    LockdepLiveRow {
        cores: CORES,
        connections: (CORES * CONNS_PER_CORE) as u64,
        delivered: driver.delivered(),
        acquisitions: pk_lockdep::acquisition_count(),
        violations: pk_lockdep::violation_count(),
        ctx_leaks: pk_trace::ctx_leaks() - leaks_before,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn grid42() -> &'static TailGrid {
        static GRID: OnceLock<TailGrid> = OnceLock::new();
        GRID.get_or_init(|| run_grid(42))
    }

    #[test]
    fn grid_covers_the_cross_product_and_all_three_claims_hold() {
        let grid = grid42();
        assert_eq!(grid.cells.len(), SERVING.len() * Personality::ALL.len());
        for c in &grid.cells {
            assert!(
                c.folded > 0,
                "{}/{} folded nothing",
                c.workload,
                c.personality.label()
            );
            assert_eq!(c.dropped_by_track.iter().sum::<u64>(), 0);
        }
        let asserts = assess(grid);
        assert!(
            asserts.inversion_observed,
            "per-request p999 inversion must show on >= {INVERSION_MIN_WORKLOADS} workloads: {:?}",
            asserts
                .verdicts
                .iter()
                .map(|v| (v.workload, v.stock_p999, v.pk_p999))
                .collect::<Vec<_>>()
        );
        assert!(
            asserts.stock_attribution_concentrated,
            "stock exim must attribute >= {:.0}% of p999 waits to {MOUNT_CLASS}, got {:.1}%",
            STOCK_MOUNT_SHARE_FLOOR * 100.0,
            asserts.stock_exim_mount_share * 100.0
        );
        assert!(
            asserts.pk_attribution_flat,
            "PK exim's widest class must stay <= {PK_CLASS_BP_CEILING} bp, got {} ({})",
            asserts.pk_exim_max_class_bp, asserts.pk_exim_max_class
        );
    }

    #[test]
    fn cells_are_byte_identical_across_reruns() {
        // One fresh cell against the cached grid: same seed, same
        // attribution tables, same exemplar bytes.
        let grid = grid42();
        let (fresh, _) = run_cell("exim", Personality::Stock, 42);
        let cached = grid.find("exim", Personality::Stock);
        assert_eq!(fresh.attributions, cached.attributions);
        assert_eq!(fresh.exemplar_bytes, cached.exemplar_bytes);
        assert_eq!(fresh.folded, cached.folded);
    }

    #[test]
    fn artifacts_are_deterministic_and_shaped() {
        let grid = grid42();
        let asserts = assess(grid);
        let json = report_json(grid, &asserts);
        assert_eq!(json, report_json(grid, &asserts));
        assert!(json.contains("\"seed\": 42"));
        assert!(json.contains(MOUNT_CLASS));
        let text = metrics(grid).render();
        assert!(text.contains("pk_tail_wait_share"));
        assert!(text.ends_with("# EOF\n"));
        assert!(!table(grid).is_empty());
        assert!(class_table(grid, "exim").contains("exim/pk"));
    }

    #[test]
    fn lockdep_live_row_is_clean() {
        let row = run_lockdep_live(42);
        assert_eq!(row.delivered, row.connections * 10, "every message lands");
        assert_eq!(row.violations, 0, "lock discipline holds under overload");
        assert_eq!(row.ctx_leaks, 0, "every delivery scope closed");
    }
}
