//! scalebench: the repo's perf-trajectory harness.
//!
//! Two halves, deliberately separated by determinism:
//!
//! * **Deterministic metrics** — analytic (MVA) sweep points, seeded
//!   discrete-event runs, and single-threaded writer-stall phases that
//!   churn the real substrates under both RCU reclamation disciplines
//!   and read the `rcu.*` counter deltas. These are pure functions of
//!   the seed and regenerate **byte-identically**, so they live in
//!   `BENCH_scale.json` and CI can diff them against a committed
//!   baseline.
//! * **Live microbenches** — real threads hammering the repo's
//!   primitives (dcache lookup, sloppy counters, RCU read sections,
//!   spinlock vs MCS handoff). Wall-clock numbers are noisy by nature,
//!   so they print to stdout and never enter the JSON.
//!
//! The JSON is a flat object — one sorted dotted key per line — so the
//! regression check needs no JSON library, just the line parser below.

use pk_percpu::{CoreId, MAX_CORES};
use pk_sim::{des, CoreSweep};
use pk_sync::rcu;
use pk_sync::CYCLES_PER_SPIN_ITERATION;
use pk_workloads::{roster, KernelChoice};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Bumped whenever the metric set changes shape, so a `--check` against
/// a stale baseline fails loudly instead of silently skipping keys.
/// v2: added `topo.*` large-topology rows (16×12 / 192 cores).
/// v3: added `adapt.*` adaptive-personality convergence rows.
/// v4: four-way personality curves (stock/coarse/pk/adaptive) keyed by
/// topology at 96 (16×6), 192 (16×12), and 1024 (64×16) cores.
pub const SCHEMA_VERSION: u64 = 4;

/// Allowed relative growth in a `*cycles*` metric before `--check`
/// calls it a regression (the issue's 10% budget).
pub const REGRESSION_BUDGET: f64 = 0.10;

/// A flat, sorted metric map with pre-formatted values. `BTreeMap`
/// ordering plus fixed float formatting is what makes the emitted JSON
/// byte-identical across runs.
#[derive(Debug, Default, Clone)]
pub struct Metrics {
    map: BTreeMap<String, String>,
}

impl Metrics {
    /// Empty metric set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an integer metric.
    pub fn put_u64(&mut self, key: &str, v: u64) {
        self.map.insert(key.to_string(), v.to_string());
    }

    /// Records a float metric with fixed 6-decimal formatting.
    pub fn put_f64(&mut self, key: &str, v: f64) {
        self.map.insert(key.to_string(), format!("{v:.6}"));
    }

    /// Number of metrics recorded.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no metrics are recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up a metric as a float.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.map.get(key).and_then(|v| v.parse().ok())
    }

    /// Renders the flat JSON document: `{`, one `  "key": value,` line
    /// per metric in sorted order, `}`, trailing newline.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let last = self.map.len().saturating_sub(1);
        for (i, (k, v)) in self.map.iter().enumerate() {
            let comma = if i == last { "" } else { "," };
            let _ = writeln!(out, "  \"{k}\": {v}{comma}");
        }
        out.push_str("}\n");
        out
    }

    /// Parses a document produced by [`Metrics::to_json`]. Returns the
    /// key → raw-value map; rejects lines it does not understand so a
    /// hand-edited baseline cannot half-parse.
    pub fn parse_json(text: &str) -> Result<BTreeMap<String, String>, String> {
        let mut map = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line == "{" || line == "}" {
                continue;
            }
            let line = line.strip_suffix(',').unwrap_or(line);
            let (key, value) = line
                .split_once("\": ")
                .ok_or_else(|| format!("unparseable metric line: {line:?}"))?;
            let key = key
                .strip_prefix('"')
                .ok_or_else(|| format!("key missing opening quote: {line:?}"))?;
            if value.parse::<f64>().is_err() {
                return Err(format!("non-numeric value for {key:?}: {value:?}"));
            }
            map.insert(key.to_string(), value.to_string());
        }
        if map.is_empty() {
            return Err("baseline contains no metrics".to_string());
        }
        Ok(map)
    }
}

/// One writer-stall measurement: `rcu.*` counter deltas over a churn
/// phase plus the modeled writer-side stall they imply.
#[derive(Debug, Clone, Copy)]
pub struct StallRow {
    /// Blocking grace periods the writers ate.
    pub synchronize_calls: u64,
    /// Spin iterations inside those grace periods.
    pub sync_spin_iters: u64,
    /// Objects retired through `call_rcu`.
    pub call_rcu: u64,
    /// Deferred objects reclaimed during the phase.
    pub deferred_freed: u64,
    /// Deferred objects still queued when the phase ended.
    pub deferred_pending_at_end: u64,
    /// Modeled writer stall: every `synchronize` scans all reader
    /// slots (`MAX_CORES` × the per-iteration cycle constant) and then
    /// spins until stragglers pass a quiescent point.
    pub modeled_stall_cycles: u64,
}

/// Runs `f` between two `rcu` counter snapshots and models the writer
/// stall it cost. Starts from a clean slate (`rcu_barrier`) so the
/// pending gauge reads as an absolute for this phase.
pub fn measure_stall(f: impl FnOnce()) -> StallRow {
    rcu::rcu_barrier();
    let before = rcu::stats_snapshot();
    f();
    let after = rcu::stats_snapshot();
    let synchronize_calls = after.synchronize_calls - before.synchronize_calls;
    let sync_spin_iters = after.sync_spin_iters - before.sync_spin_iters;
    StallRow {
        synchronize_calls,
        sync_spin_iters,
        call_rcu: after.call_rcu_calls - before.call_rcu_calls,
        deferred_freed: after.deferred_freed - before.deferred_freed,
        deferred_pending_at_end: after.deferred_pending,
        modeled_stall_cycles: synchronize_calls * MAX_CORES as u64 * CYCLES_PER_SPIN_ITERATION
            + sync_spin_iters * CYCLES_PER_SPIN_ITERATION,
    }
}

impl StallRow {
    fn emit(&self, m: &mut Metrics, prefix: &str) {
        m.put_u64(
            &format!("{prefix}.synchronize_calls"),
            self.synchronize_calls,
        );
        m.put_u64(&format!("{prefix}.sync_spin_iters"), self.sync_spin_iters);
        m.put_u64(&format!("{prefix}.call_rcu"), self.call_rcu);
        m.put_u64(&format!("{prefix}.deferred_freed"), self.deferred_freed);
        m.put_u64(
            &format!("{prefix}.deferred_pending_at_end"),
            self.deferred_pending_at_end,
        );
        m.put_u64(
            &format!("{prefix}.modeled_stall_cycles"),
            self.modeled_stall_cycles,
        );
    }
}

/// Dcache insert/remove churn: the acceptance-criteria path. Every
/// insert and remove republishes a bucket and retires the old vector.
pub fn stall_dcache(deferred: bool, ops: usize) -> StallRow {
    use pk_vfs::{Dcache, DentryKey, InodeId, VfsConfig, VfsStats};
    use std::sync::Arc;
    let mut cfg = VfsConfig::pk(8);
    cfg.deferred_reclamation = deferred;
    let dc = Dcache::new(64, cfg, Arc::new(VfsStats::new()));
    measure_stall(|| {
        for i in 0..ops {
            let key = DentryKey::new(InodeId(1), format!("f{i}"));
            let core = CoreId(i % 8);
            dc.insert(key.clone(), InodeId(i as u64 + 2), core)
                .expect("no faults armed");
            assert!(dc.remove(&key, core));
        }
    })
}

/// Mount/umount churn: each umount retires the table's mount reference
/// (and any per-core cache entries) past a grace period.
pub fn stall_mount(deferred: bool, ops: usize) -> StallRow {
    use pk_vfs::{MountTable, VfsConfig, VfsStats};
    use std::sync::Arc;
    let mut cfg = VfsConfig::pk(8);
    cfg.deferred_reclamation = deferred;
    let t = MountTable::new(cfg, Arc::new(VfsStats::new()));
    measure_stall(|| {
        for _ in 0..ops {
            t.mount("/mnt");
            let m = t.resolve("/mnt/x", CoreId(0)).expect("mounted");
            m.put(CoreId(0));
            t.umount("/mnt").expect("was mounted");
        }
    })
}

/// Socket-table churn: each bind/listen republishes the port map and
/// retires the previous version.
pub fn stall_net(deferred: bool, ops: usize) -> StallRow {
    use pk_net::{NetConfig, NetStack};
    let mut cfg = NetConfig::pk(8);
    cfg.deferred_reclamation = deferred;
    let stack = NetStack::new(cfg);
    measure_stall(|| {
        for i in 0..ops {
            let port = 1024 + i as u16;
            stack.udp_bind(port, CoreId(0)).expect("port free");
            stack.listen(port);
        }
    })
}

/// mmap/munmap churn: each call republishes the region list; munmap
/// retires the unmapped region's metadata past a grace period.
pub fn stall_mm(deferred: bool, ops: usize) -> StallRow {
    use pk_mm::{AddressSpace, MmConfig, MmStats, NumaAllocator, PageSize};
    use std::sync::Arc;
    let mut cfg = MmConfig::pk(8);
    cfg.deferred_reclamation = deferred;
    cfg.numa_nodes = 2;
    cfg.pages_per_node = 100_000;
    let stats = Arc::new(MmStats::new());
    let alloc = Arc::new(NumaAllocator::new(cfg, Arc::clone(&stats)));
    let asp = AddressSpace::new(cfg, alloc, stats);
    measure_stall(|| {
        for _ in 0..ops {
            let r = asp.mmap(64 << 10, PageSize::Base4K).expect("address space");
            asp.munmap(r, 0).expect("mapped");
        }
    })
}

/// Computes the full deterministic metric set for `seed`.
///
/// Everything here is a pure function of the seed: MVA solves are
/// plain f64 arithmetic, DES runs are seeded, and the stall phases run
/// single-threaded on freshly built substrates. Run this before any
/// live (multi-threaded) benchmarking — the `rcu.*` counters are
/// process-global and concurrent churn would perturb the deltas.
pub fn deterministic_metrics(seed: u64) -> Metrics {
    let mut m = Metrics::new();
    m.put_u64("meta.schema_version", SCHEMA_VERSION);
    m.put_u64("meta.seed", seed);

    // Analytic sweep points: the paper's per-core throughput axis at
    // 1 and 48 cores, both kernels, all seven workloads.
    for name in roster::NAMES {
        for (choice, label) in [(KernelChoice::Stock, "stock"), (KernelChoice::Pk, "pk")] {
            let model = roster::model(name, choice).expect("roster name resolves");
            let p1 = CoreSweep::point(model.as_ref(), 1);
            let p48 = CoreSweep::point(model.as_ref(), 48);
            let prefix = format!("model.{name}.{label}");
            m.put_f64(
                &format!("{prefix}.c1.per_core_per_sec"),
                p1.per_core_per_sec,
            );
            m.put_f64(
                &format!("{prefix}.c48.per_core_per_sec"),
                p48.per_core_per_sec,
            );
            m.put_f64(
                &format!("{prefix}.c48.scalability"),
                p48.per_core_per_sec / p1.per_core_per_sec,
            );

            // Seeded discrete-event cross-check at 8 cores: measured
            // cycles/op and total cache-line traffic.
            let net = model.network(8);
            let r = des::simulate(&net, 8, 2_000, seed);
            let des_prefix = format!("des.{name}.{label}.c8");
            m.put_f64(&format!("{des_prefix}.cycles_per_op"), r.cycles_per_op);
            m.put_u64(
                &format!("{des_prefix}.line_transfers"),
                r.line_transfers.iter().sum(),
            );
        }
    }

    // Large-topology extrapolation rows (§7): the roster's four-way
    // personality curves (stock / coarse / PK / adaptive) on scaled
    // machines at 96, 192, and 1024 cores. MVA rows cover every
    // workload × fixed personality; the adaptive personality converges
    // the controller per topology on the headline workload (full-roster
    // adaptive rows at 48 cores live under `adapt.*`). One seeded DES
    // cross-check per kernel on Exim pins the wheel engine's
    // large-topology path byte-identically.
    let topologies = [
        ("16x6", 16usize, 6usize, 96usize),
        ("16x12", 16, 12, 192),
        ("64x16", 64, 16, 1024),
    ];
    for (tlabel, sockets, per, cores) in topologies {
        let big =
            pk_sim::MachineSpec::with_topology(sockets, per).expect("sweep topologies are valid");
        for name in roster::NAMES {
            for (choice, label) in [
                (KernelChoice::Stock, "stock"),
                (KernelChoice::Coarse, "coarse"),
                (KernelChoice::Pk, "pk"),
            ] {
                let model = roster::model_on(name, choice, big).expect("roster name resolves");
                let p = CoreSweep::try_point(model.as_ref(), cores)
                    .expect("full-machine core count fits its own topology");
                m.put_f64(
                    &format!("topo.{tlabel}.{name}.{label}.c{cores}.per_core_per_sec"),
                    p.per_core_per_sec,
                );
            }
        }
        {
            use pk_adapt::{AdaptController, AdaptPolicy};
            use pk_kernel::KernelConfig;
            let build = move |cfg: &KernelConfig| {
                roster::model_with_config("exim", cfg, big)
                    .expect("exim resolves")
                    .network(cores)
            };
            let out =
                AdaptController::new(KernelConfig::adaptive(cores), AdaptPolicy::default(), seed)
                    .converge_des(build, cores);
            let model = roster::model_with_config("exim", &out.config, big).expect("exim resolves");
            let p = CoreSweep::try_point(model.as_ref(), cores)
                .expect("full-machine core count fits its own topology");
            let prefix = format!("topo.{tlabel}.exim.adaptive.c{cores}");
            m.put_f64(&format!("{prefix}.per_core_per_sec"), p.per_core_per_sec);
            m.put_u64(
                &format!("{prefix}.promoted"),
                out.config.enabled_count() as u64,
            );
            m.put_u64(&format!("{prefix}.converged"), u64::from(out.converged));
        }
        for (choice, label) in [(KernelChoice::Stock, "stock"), (KernelChoice::Pk, "pk")] {
            let model = roster::model_on("exim", choice, big).expect("exim resolves");
            let net = model.network(cores);
            let ops = (192_000 / cores as u64).max(100);
            let r = des::simulate(&net, cores, ops, seed);
            let prefix = format!("topo.{tlabel}.exim.{label}.des.c{cores}");
            m.put_f64(&format!("{prefix}.cycles_per_op"), r.cycles_per_op);
            m.put_u64(&format!("{prefix}.events"), r.events_processed);
        }
    }

    // Adaptive-personality convergence rows: for every workload, boot
    // the zero-fix adaptive config, let the controller promote levers
    // from seeded DES observations, and pin the outcome — promoted-fix
    // count, epochs, flap bound, and the converged config's measured
    // cycles/op (regression-checked like every `*cycles*` metric).
    {
        use pk_adapt::{AdaptController, AdaptPolicy};
        use pk_kernel::KernelConfig;
        let machine = pk_sim::MachineSpec::paper();
        for name in roster::NAMES {
            let build = move |cfg: &KernelConfig| {
                roster::model_with_config(name, cfg, machine)
                    .expect("roster name resolves")
                    .network(48)
            };
            let out =
                AdaptController::new(KernelConfig::adaptive(48), AdaptPolicy::default(), seed)
                    .converge_des(build, 48);
            let prefix = format!("adapt.{name}.c48");
            m.put_u64(
                &format!("{prefix}.promoted"),
                out.config.enabled_count() as u64,
            );
            m.put_u64(&format!("{prefix}.epochs"), u64::from(out.epochs));
            m.put_u64(&format!("{prefix}.converged"), u64::from(out.converged));
            m.put_u64(&format!("{prefix}.decisions"), out.decisions.len() as u64);
            m.put_u64(
                &format!("{prefix}.max_direction_changes"),
                u64::from(out.max_direction_changes()),
            );
            let r = des::simulate(&build(&out.config), 48, 2_000, seed);
            m.put_f64(&format!("{prefix}.des.cycles_per_op"), r.cycles_per_op);
        }
    }

    // Writer-stall phases: the same churn under blocking synchronize()
    // and deferred call_rcu, on every converted substrate.
    type StallPhase = (&'static str, fn(bool, usize) -> StallRow, usize);
    let phases: [StallPhase; 4] = [
        ("dcache", stall_dcache, 1024),
        ("mount", stall_mount, 256),
        ("net", stall_net, 512),
        ("mm", stall_mm, 256),
    ];
    for (name, run, ops) in phases {
        let blocking = run(false, ops);
        let deferred = run(true, ops);
        blocking.emit(&mut m, &format!("stall.{name}.blocking"));
        deferred.emit(&mut m, &format!("stall.{name}.deferred"));
        let saved = blocking
            .modeled_stall_cycles
            .saturating_sub(deferred.modeled_stall_cycles);
        let pct = if blocking.modeled_stall_cycles == 0 {
            0.0
        } else {
            100.0 * saved as f64 / blocking.modeled_stall_cycles as f64
        };
        m.put_f64(&format!("stall.{name}.stall_reduction_pct"), pct);
    }
    // Leave the global queues clean for whoever runs next.
    rcu::rcu_barrier();
    m
}

/// One `*cycles*` metric that grew past the budget.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Metric key.
    pub key: String,
    /// Committed baseline value.
    pub baseline: f64,
    /// Regenerated value.
    pub candidate: f64,
    /// `candidate / baseline` (`f64::INFINITY` for a 0 baseline).
    pub ratio: f64,
}

/// Structured result of diffing regenerated metrics against a
/// committed baseline document.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// Key-set drift (and unreadable-baseline) messages.
    pub drift: Vec<String>,
    /// Budget-busting `*cycles*` metrics, worst ratio first.
    pub regressions: Vec<Regression>,
}

impl CheckReport {
    /// Whether the candidate is clean.
    pub fn passed(&self) -> bool {
        self.drift.is_empty() && self.regressions.is_empty()
    }

    /// Every failure as a message line (drift first, then regressions
    /// worst-first) — the flat form [`check_against_baseline`] returns.
    pub fn failures(&self) -> Vec<String> {
        let mut out = self.drift.clone();
        out.extend(self.regressions.iter().map(|r| {
            format!(
                "regression in {}: {:.3} -> {:.3} (budget {:.0}%)",
                r.key,
                r.baseline,
                r.candidate,
                REGRESSION_BUDGET * 100.0
            )
        }));
        out
    }
}

/// Diffs `current` against a committed `baseline` document.
///
/// Failure modes, all reported:
/// * key sets differ (schema drift — regenerate and commit the baseline);
/// * any `*cycles*` metric grew more than [`REGRESSION_BUDGET`].
pub fn check_report(baseline_text: &str, current: &Metrics) -> CheckReport {
    let baseline = match Metrics::parse_json(baseline_text) {
        Ok(b) => b,
        Err(e) => {
            return CheckReport {
                drift: vec![format!("baseline unreadable: {e}")],
                regressions: Vec::new(),
            }
        }
    };
    let mut report = CheckReport::default();
    for key in baseline.keys() {
        if !current.map.contains_key(key) {
            report
                .drift
                .push(format!("metric {key} in baseline but not regenerated"));
        }
    }
    for key in current.map.keys() {
        if !baseline.contains_key(key) {
            report.drift.push(format!(
                "new metric {key} not in baseline (regenerate and commit)"
            ));
        }
    }
    for (key, old_raw) in &baseline {
        if !key.contains("cycles") {
            continue;
        }
        let (Some(new), Ok(old)) = (current.get(key), old_raw.parse::<f64>()) else {
            continue;
        };
        // Deterministic metrics should be byte-identical; the budget
        // exists so intentional model tweaks within 10% don't need a
        // baseline bump. The +0.5 floor keeps a 0 → tiny change legal.
        let limit = old * (1.0 + REGRESSION_BUDGET) + 0.5;
        if new > limit {
            report.regressions.push(Regression {
                key: key.clone(),
                baseline: old,
                candidate: new,
                ratio: if old == 0.0 { f64::INFINITY } else { new / old },
            });
        }
    }
    report
        .regressions
        .sort_by(|a, b| b.ratio.total_cmp(&a.ratio).then(a.key.cmp(&b.key)));
    report
}

/// Flat-message form of [`check_report`] (empty = pass), kept for
/// callers that only need pass/fail plus printable lines.
pub fn check_against_baseline(baseline_text: &str, current: &Metrics) -> Vec<String> {
    check_report(baseline_text, current).failures()
}

/// Which DES implementation to time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// The calendar-queue fast engine (the production path).
    Wheel,
    /// The `BinaryHeap` differential oracle (`pk_sim::des::reference`).
    ReferenceHeap,
}

impl Engine {
    /// Row label.
    pub fn label(self) -> &'static str {
        match self {
            Self::Wheel => "wheel (calendar queue)",
            Self::ReferenceHeap => "reference (binary heap)",
        }
    }
}

/// One wall-clock engine measurement. Lives on the **live** side of
/// the determinism split: printed, never persisted into
/// `BENCH_scale.json` (the committed engine baseline is a hand-set
/// floor, not a recorded measurement).
#[derive(Debug, Clone, Copy)]
pub struct EngineTiming {
    /// Events the engine dispatched.
    pub events: u64,
    /// Wall-clock seconds.
    pub secs: f64,
}

impl EngineTiming {
    /// The headline rate.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.secs.max(1e-9)
    }
}

/// Times one engine over the full 48-core roster (both kernels): the
/// workload mix scalebench's speedup row and the CI throughput smoke
/// both quote. Identical `(seed, ops)` on either engine simulates the
/// identical schedule, so the event counts match and the ratio is a
/// pure engine comparison.
pub fn time_roster_engine(engine: Engine, ops_per_core: u64, seed: u64) -> EngineTiming {
    let mut events = 0u64;
    let start = std::time::Instant::now();
    for name in roster::NAMES {
        for choice in [KernelChoice::Stock, KernelChoice::Pk] {
            let model = roster::model(name, choice).expect("roster name resolves");
            let net = model.network(48);
            let r = match engine {
                Engine::Wheel => des::simulate(&net, 48, ops_per_core, seed),
                Engine::ReferenceHeap => des::reference::simulate(&net, 48, ops_per_core, seed),
            };
            events += r.events_processed;
        }
    }
    EngineTiming {
        events,
        secs: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips_and_sorts() {
        let mut m = Metrics::new();
        m.put_u64("z.last", 7);
        m.put_f64("a.first", 1.5);
        let text = m.to_json();
        assert!(text.starts_with("{\n  \"a.first\": 1.500000,\n"));
        assert!(text.ends_with("  \"z.last\": 7\n}\n"));
        let parsed = Metrics::parse_json(&text).unwrap();
        assert_eq!(parsed["a.first"], "1.500000");
        assert_eq!(parsed["z.last"], "7");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Metrics::parse_json("{\n  \"k\": not-a-number\n}\n").is_err());
        assert!(Metrics::parse_json("").is_err());
    }

    #[test]
    fn deferred_dcache_writers_stall_less() {
        let _serial = crate::rcu_serial();
        let blocking = stall_dcache(false, 256);
        let deferred = stall_dcache(true, 256);
        assert_eq!(blocking.synchronize_calls, 512, "one grace wait per update");
        assert_eq!(blocking.call_rcu, 0);
        assert_eq!(deferred.call_rcu, 512, "every update retires via call_rcu");
        assert!(
            deferred.modeled_stall_cycles < blocking.modeled_stall_cycles,
            "deferral must shed writer stall: {} !< {}",
            deferred.modeled_stall_cycles,
            blocking.modeled_stall_cycles
        );
        // Nothing may leak: retired objects are freed or still queued.
        assert_eq!(
            deferred.call_rcu,
            deferred.deferred_freed + deferred.deferred_pending_at_end
        );
        rcu::rcu_barrier();
    }

    #[test]
    fn every_converted_substrate_defers() {
        let _serial = crate::rcu_serial();
        for (name, run) in [
            ("mount", stall_mount as fn(bool, usize) -> StallRow),
            ("net", stall_net),
            ("mm", stall_mm),
        ] {
            let blocking = run(false, 64);
            let deferred = run(true, 64);
            assert!(blocking.synchronize_calls > 0, "{name} blocking must wait");
            assert!(deferred.call_rcu > 0, "{name} deferred must call_rcu");
            assert!(
                deferred.modeled_stall_cycles < blocking.modeled_stall_cycles,
                "{name}: deferral must shed writer stall"
            );
        }
        rcu::rcu_barrier();
    }

    #[test]
    fn check_flags_regressions_and_drift() {
        let mut baseline = Metrics::new();
        baseline.put_f64("des.x.cycles_per_op", 100.0);
        baseline.put_u64("stall.y.modeled_stall_cycles", 1000);
        let text = baseline.to_json();

        let mut ok = Metrics::new();
        ok.put_f64("des.x.cycles_per_op", 104.0);
        ok.put_u64("stall.y.modeled_stall_cycles", 1000);
        assert!(check_against_baseline(&text, &ok).is_empty());

        let mut slow = ok.clone();
        slow.put_f64("des.x.cycles_per_op", 120.0);
        let fails = check_against_baseline(&text, &slow);
        assert_eq!(fails.len(), 1);
        assert!(fails[0].contains("regression in des.x.cycles_per_op"));

        let mut drifted = ok.clone();
        drifted.put_u64("stall.z.new_metric", 1);
        assert!(check_against_baseline(&text, &drifted)
            .iter()
            .any(|f| f.contains("not in baseline")));
    }

    #[test]
    fn check_report_ranks_regressions_worst_first() {
        let mut baseline = Metrics::new();
        baseline.put_f64("a.cycles_per_op", 100.0);
        baseline.put_f64("b.cycles_per_op", 100.0);
        baseline.put_f64("c.cycles_per_op", 100.0);
        let text = baseline.to_json();

        let mut cur = Metrics::new();
        cur.put_f64("a.cycles_per_op", 150.0); // +50%
        cur.put_f64("b.cycles_per_op", 300.0); // +200% — the worst
        cur.put_f64("c.cycles_per_op", 101.0); // within budget
        let report = check_report(&text, &cur);
        assert!(!report.passed());
        assert!(report.drift.is_empty());
        let keys: Vec<&str> = report.regressions.iter().map(|r| r.key.as_str()).collect();
        assert_eq!(keys, ["b.cycles_per_op", "a.cycles_per_op"]);
        let worst = &report.regressions[0];
        assert_eq!((worst.baseline, worst.candidate), (100.0, 300.0));
        assert!((worst.ratio - 3.0).abs() < 1e-9);
        // The flat form renders both, worst first, with the values.
        let flat = report.failures();
        assert_eq!(flat.len(), 2);
        assert!(flat[0].contains("b.cycles_per_op") && flat[0].contains("300.000"));
    }
}
