//! Regenerates Figure 5: memcached throughput.

use pk_workloads::memcached;
use pk_workloads::KernelChoice;

fn main() {
    pk_bench::header(
        "Figure 5",
        "memcached throughput (requests/sec/core), 1-48 cores. The PK \
         decline past 16 cores is the IXGBE card, not the kernel.",
    );
    let stock = memcached::figure5(KernelChoice::Stock);
    let pk = memcached::figure5(KernelChoice::Pk);
    pk_bench::print_throughput(
        "requests/sec/core",
        1.0,
        &[
            ("Stock".to_string(), stock.clone()),
            ("PK".to_string(), pk.clone()),
        ],
    );
    println!();
    pk_bench::print_ratio("Stock", &stock);
    pk_bench::print_ratio("PK", &pk);
}
