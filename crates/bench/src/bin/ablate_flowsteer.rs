//! Ablation: flow-director policies for short vs long connections
//! (section 4.2).
//!
//! The stock IXGBE driver samples every 20th outgoing TCP packet to
//! update the flow table, which "typically performs well for long-lived
//! connections, but poorly for short ones ... it is likely that the
//! majority of packets on a given short connection will be misdirected."
//! PK instead hashes headers so every packet of a connection (including
//! the handshake) reaches one core. This ablation measures misdirection
//! for both policies across connection lengths, plus the software-RFS
//! hybrid.

use bytes::Bytes;
use pk_net::{FlowHash, NetConfig, NetStack, NetStats, Nic, Skb};
use pk_percpu::CoreId;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Simulates `conns` connections of `pkts_per_conn` packets each.
///
/// Under PK, the serving core is the steering target (per-core accept
/// queues mean the connection is accepted where its handshake landed).
/// Under stock, accepts pop a shared backlog, so the serving thread ends
/// up on an arbitrary core — and only after the driver samples ~20
/// outgoing packets does the flow table point the flow there.
fn run(hash_steering: bool, conns: u32, pkts_per_conn: u32) -> f64 {
    let mut cfg = if hash_steering {
        NetConfig::pk(8)
    } else {
        NetConfig::stock(8)
    };
    cfg.hash_flow_steering = hash_steering;
    let stats = Arc::new(NetStats::new());
    let nic = Nic::new(cfg, Arc::clone(&stats));
    for c in 0..conns {
        let flow = FlowHash {
            src_ip: 0x0a00_0000 + c,
            src_port: (1024 + (c % 60000)) as u16,
            dst_ip: 1,
            dst_port: 80,
        };
        // PK: accepted on the arrival core. Stock: accepted by whichever
        // worker popped the shared backlog (round-robin here).
        let owner = if hash_steering {
            CoreId(nic.steer(&flow))
        } else {
            CoreId((c % 8) as usize)
        };
        for _ in 0..pkts_per_conn {
            nic.rx(
                flow,
                Skb {
                    data: Bytes::from_static(b"p"),
                    node: 0,
                },
                owner,
            )
            .expect("queues are drained every iteration");
            // Drain so queues never overflow, and reply (TX drives the
            // stock sampler's flow-table updates).
            while nic.poll(owner).is_some() {}
            for c2 in 0..8 {
                while nic.poll(CoreId(c2)).is_some() {}
            }
            nic.tx(owner, flow);
        }
    }
    1.0 - stats_accuracy(&stats)
}

fn stats_accuracy(stats: &NetStats) -> f64 {
    let local = stats.rx_steered_local.load(Ordering::Relaxed) as f64;
    let miss = stats.rx_misdirected.load(Ordering::Relaxed) as f64;
    if local + miss == 0.0 {
        1.0
    } else {
        local / (local + miss)
    }
}

fn main() {
    pk_bench::header(
        "Ablation: flow steering policy",
        "Fraction of packets misdirected away from the connection's \
         serving core, by policy and connection length (2000 connections).",
    );
    println!(
        "{:>22} {:>12} {:>12} {:>12}",
        "policy", "3 pkts/conn", "30 pkts/conn", "300 pkts/conn"
    );
    for (name, hash) in [("sampling (stock)", false), ("header hash (PK)", true)] {
        let mis: Vec<String> = [3u32, 30, 300]
            .into_iter()
            .map(|p| format!("{:.1}%", 100.0 * run(hash, 2000, p)))
            .collect();
        println!("{:>22} {:>12} {:>12} {:>12}", name, mis[0], mis[1], mis[2]);
    }
    // The software hybrid: even misdirected packets reach the right
    // socket, at the cost of a cross-core hop.
    let mut cfg = NetConfig::stock(4);
    cfg.software_rfs = true;
    let stack = NetStack::new(cfg);
    let server = stack.udp_bind(6000, CoreId(2)).unwrap();
    stack.nic().pin_port(6000, 0); // force hardware misdelivery
    for i in 0..100u32 {
        stack
            .udp_send(
                CoreId(0),
                pk_net::SockAddr::new(50 + i, 999),
                pk_net::SockAddr::new(1, 6000),
                Bytes::from_static(b"x"),
            )
            .expect("100 packets fit the queue");
    }
    for c in 0..4 {
        stack.process_rx(CoreId(c), usize::MAX);
    }
    stack.process_rx(CoreId(2), usize::MAX);
    let mut got = 0;
    while let Some(d) = server.recv() {
        stack.release(CoreId(2), d.skb);
        got += 1;
    }
    println!(
        "\nsoftware RFS hybrid: 100 hardware-misdirected packets, {got} \
         delivered to the owning core after one software hop each."
    );
    println!(
        "\nHash steering keeps every packet of every connection local; \
         sampling misdirects most packets of short connections."
    );
}
