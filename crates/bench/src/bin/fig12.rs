//! Regenerates Figure 12: the residual bottleneck summary.

use pk_workloads::summary;

fn main() {
    pk_bench::header(
        "Figure 12",
        "Summary of the current bottlenecks in MOSBENCH, attributed \
         either to hardware (HW) or application structure (App).",
    );
    println!(
        "{:<12} {:<42} model diagnostic at 48 cores",
        "Application", "Bottleneck"
    );
    for row in summary::figure12() {
        println!("{:<12} {:<42} {}", row.app, row.description, row.observed);
    }
}
