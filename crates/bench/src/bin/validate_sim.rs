//! Methodology check: the figure sweeps are solved analytically (MVA);
//! this binary re-runs the same networks through the discrete-event
//! simulator and prints both, so the solver the figures depend on is
//! auditable against a direct simulation.

use pk_sim::{des, WorkloadModel};
use pk_workloads::exim::EximModel;
use pk_workloads::memcached::MemcachedModel;
use pk_workloads::KernelChoice;

fn validate(name: &str, model: &dyn WorkloadModel) {
    println!("\n{name}:");
    println!(
        "{:>6} {:>16} {:>16} {:>9}",
        "cores", "MVA ops/s", "DES ops/s", "diff"
    );
    for cores in [1, 8, 16, 32, 48] {
        let net = model.network(cores);
        let mva = net.solve(cores).ops_per_cycle * model.machine().clock_hz;
        let sim =
            des::simulate(&net, cores, 3_000, 0xC0FFEE).ops_per_cycle * model.machine().clock_hz;
        println!(
            "{cores:>6} {mva:>16.0} {sim:>16.0} {:>8.1}%",
            100.0 * (sim - mva) / mva
        );
    }
}

fn main() {
    pk_bench::header(
        "Simulator validation: MVA vs discrete-event",
        "Same queueing networks, two independent solvers. (DES uses \
         exponential service times; single-digit-percent deviations are \
         expected, and larger ones right at a non-scalable lock's \
         collapse knee, where the two solvers' load-dependence \
         approximations differ most.)",
    );
    validate("Exim/Stock", &EximModel::new(KernelChoice::Stock));
    validate("Exim/PK", &EximModel::new(KernelChoice::Pk));
    validate("memcached/Stock", &MemcachedModel::new(KernelChoice::Stock));
    println!(
        "\nThe des_validates_mva unit tests pin the two solvers against \
         each other on canonical networks; this binary shows the match on \
         the actual MOSBENCH models."
    );
}
