//! Ablation: locked vs lock-free dentry comparison under rename storms.
//!
//! Measures how often the section-4.4 lock-free protocol completes
//! without touching the per-dentry spin lock while a writer keeps
//! renaming entries in the same directory.

use pk_percpu::CoreId;
use pk_vfs::{Vfs, VfsConfig};
use std::sync::atomic::Ordering;
use std::sync::Arc;

fn run(lockfree: bool, renames_per_100_lookups: usize) -> (u64, u64, u64) {
    let mut cfg = VfsConfig::pk(8);
    cfg.lockfree_dlookup = lockfree;
    let vfs = Arc::new(Vfs::new(cfg));
    let core = CoreId(0);
    vfs.mkdir_p("/usr/lib", core).unwrap();
    for i in 0..64 {
        vfs.write_file(&format!("/usr/lib/lib{i}.so"), b"elf", core)
            .unwrap();
    }
    let mut rename_round = 0usize;
    for round in 0..100usize {
        for i in 0..64 {
            vfs.stat(&format!("/usr/lib/lib{i}.so"), CoreId(i % 8))
                .unwrap();
        }
        if renames_per_100_lookups > 0 && round % (100 / renames_per_100_lookups.max(1)) == 0 {
            let a = format!("/usr/lib/lib{}.so", rename_round % 64);
            let b = format!("/usr/lib/renamed{rename_round}.so");
            vfs.rename(&a, &b, core).unwrap();
            vfs.rename(&b, &a, core).unwrap();
            rename_round += 1;
        }
    }
    let s = vfs.stats();
    (
        s.lockfree_lookups.load(Ordering::Relaxed),
        s.lockfree_fallbacks.load(Ordering::Relaxed),
        s.dentry_lock_acquisitions.load(Ordering::Relaxed),
    )
}

fn main() {
    pk_bench::header(
        "Ablation: dlookup comparison protocol",
        "6400 lookups of 64 names in one directory, with varying rename \
         pressure; PK's lock-free protocol vs the stock per-dentry lock.",
    );
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>12}",
        "protocol", "renames", "lock-free", "fallbacks", "d_lock taken"
    );
    for renames in [0, 10, 50] {
        for lockfree in [false, true] {
            let (lf, fb, locked) = run(lockfree, renames);
            println!(
                "{:>10} {renames:>10} {lf:>12} {fb:>12} {locked:>12}",
                if lockfree { "lock-free" } else { "locked" }
            );
        }
    }
    println!("\nThe lock-free protocol eliminates nearly all d_lock traffic.");
}
