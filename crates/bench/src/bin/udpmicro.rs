//! The section-5.4 UDP microbenchmark: clients flood the server with
//! UDP packets "as fast as possible"; the card delivers a similar packet
//! rate as in the Apache benchmark and drops the rest, demonstrating
//! that the NIC — not the kernel — limits Apache past 36 cores.

use bytes::Bytes;
use pk_net::{NetConfig, NetStack, SockAddr};
use pk_percpu::CoreId;
use pk_sim::{MachineSpec, NicModel};
use std::sync::atomic::Ordering;

fn main() {
    pk_bench::header(
        "UDP microbenchmark (section 5.4)",
        "Functional: flood a bounded RX queue and count FIFO drops. \
         Model: the card's deliverable packet rate vs offered load.",
    );
    // Functional part: overflow a single queue.
    let stack = NetStack::new(NetConfig::pk(2));
    stack.udp_bind(7000, CoreId(0)).unwrap();
    let offered = 10_000u32;
    let mut accepted = 0u32;
    for i in 0..offered {
        if stack
            .udp_send(
                CoreId(1),
                SockAddr::new(i, 1000),
                SockAddr::new(1, 7000),
                Bytes::from_static(b"flood"),
            )
            .is_ok()
        {
            accepted += 1;
        }
    }
    let drops = stack.stats().rx_fifo_drops.load(Ordering::Relaxed);
    println!("offered {offered} packets to one queue: {accepted} enqueued, {drops} FIFO drops");
    assert_eq!(accepted as u64 + drops, offered as u64);

    // Model part: deliverable packets/sec by queue count.
    let nic = NicModel::new(MachineSpec::paper());
    println!("\ncard deliverable packet rate by active queue count:");
    println!("{:>8} {:>14}", "queues", "Mpps");
    for q in [1, 8, 16, 24, 36, 48] {
        println!("{q:>8} {:>14.2}", nic.max_pps(q) / 1e6);
    }
    println!(
        "\nAt 48 queues the card delivers ~2.8 Mpps no matter the offered \
         load — the Apache ceiling of Figure 6."
    );
}
