//! adaptive_report: the ISSUE-8 acceptance harness for the adaptive
//! kernel personality.
//!
//! Runs the full seven-workload MOSBENCH roster × {stock, PK, adaptive}
//! through the discrete-event simulator at 48 cores (seed 42). The
//! adaptive column boots [`pk_kernel::KernelConfig::adaptive`] — zero
//! fixes — and lets the [`pk_adapt::AdaptController`] promote levers
//! from observed contention alone; no workload name ever reaches the
//! controller, so there are no hand-placed per-workload fixes to
//! smuggle in.
//!
//! Gates (exit non-zero if any fails):
//! * adaptive throughput ≥ 90% of PK on **every** workload;
//! * every knob changes direction at most 3 times per run;
//! * the controller settles before its epoch cap on every workload;
//! * the JSON artifact is byte-identical across two full runs at the
//!   same seed (the determinism contract, checked in-process).
//!
//! Usage:
//!
//! ```text
//! adaptive_report [--seed N] [--cores N] [--ops N] [--json PATH]
//! ```

use pk_adapt::{AdaptController, AdaptPolicy};
use pk_kernel::KernelConfig;
use pk_sim::{des, MachineSpec};
use pk_workloads::{roster, KernelChoice};
use std::fmt::Write as _;

/// Operations per core for the three measured throughput runs (the
/// controller's own measurement epochs use [`AdaptPolicy::ops_per_core`]).
const MEASURE_OPS_PER_CORE: u64 = 2_000;
/// The acceptance floor: adaptive must reach this fraction of PK.
const PK_FLOOR: f64 = 0.90;
/// The flap bound: direction changes per knob per run.
const MAX_FLIPS: u32 = 3;

/// One workload's three-way measurement plus the controller's outcome.
struct Row {
    workload: &'static str,
    stock_ops_per_cycle: f64,
    pk_ops_per_cycle: f64,
    adaptive_ops_per_cycle: f64,
    promoted: usize,
    epochs: u32,
    converged: bool,
    max_flips: u32,
    decisions: Vec<pk_adapt::Decision>,
}

impl Row {
    fn ratio_vs_pk(&self) -> f64 {
        self.adaptive_ops_per_cycle / self.pk_ops_per_cycle
    }
}

/// Measures one workload under one fixed kernel choice.
fn des_throughput(name: &str, choice: KernelChoice, cores: usize, ops: u64, seed: u64) -> f64 {
    let model = roster::model(name, choice).expect("roster name resolves");
    let net = model.network(cores);
    des::simulate(&net, cores, ops, seed).ops_per_cycle
}

/// Runs the full roster once. Pure function of `(seed, cores, ops)` —
/// the double-run determinism check relies on this.
fn run_all(seed: u64, cores: usize, ops: u64) -> Vec<Row> {
    let machine = MachineSpec::paper();
    roster::NAMES
        .iter()
        .map(|&name| {
            let stock = des_throughput(name, KernelChoice::Stock, cores, ops, seed);
            let pk = des_throughput(name, KernelChoice::Pk, cores, ops, seed);
            let build = move |cfg: &KernelConfig| {
                roster::model_with_config(name, cfg, machine)
                    .expect("roster name resolves")
                    .network(cores)
            };
            let out =
                AdaptController::new(KernelConfig::adaptive(cores), AdaptPolicy::default(), seed)
                    .converge_des(build, cores);
            let adaptive_net = build(&out.config);
            let adaptive = des::simulate(&adaptive_net, cores, ops, seed).ops_per_cycle;
            Row {
                workload: name,
                stock_ops_per_cycle: stock,
                pk_ops_per_cycle: pk,
                adaptive_ops_per_cycle: adaptive,
                promoted: out.config.enabled_count(),
                epochs: out.epochs,
                converged: out.converged,
                max_flips: out.max_direction_changes(),
                decisions: out.decisions,
            }
        })
        .collect()
}

/// Collects the gate failures over a run (empty = pass).
fn failures(rows: &[Row]) -> Vec<String> {
    let mut out = Vec::new();
    for r in rows {
        if r.ratio_vs_pk() < PK_FLOOR {
            out.push(format!(
                "{}: adaptive reached only {:.1}% of PK (floor {:.0}%)",
                r.workload,
                100.0 * r.ratio_vs_pk(),
                100.0 * PK_FLOOR
            ));
        }
        if r.max_flips > MAX_FLIPS {
            out.push(format!(
                "{}: a knob changed direction {} times (bound {MAX_FLIPS})",
                r.workload, r.max_flips
            ));
        }
        if !r.converged {
            out.push(format!(
                "{}: controller did not settle within {} epochs",
                r.workload, r.epochs
            ));
        }
    }
    out
}

/// Renders the deterministic JSON artifact: fixed key order, fixed
/// 6-decimal floats, rows in roster order, decisions in commit order.
fn report_json(seed: u64, cores: usize, ops: u64, rows: &[Row], fails: &[String]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(out, "  \"cores\": {cores},");
    let _ = writeln!(out, "  \"ops_per_core\": {ops},");
    let _ = writeln!(out, "  \"pk_floor\": {PK_FLOOR:.6},");
    let _ = writeln!(out, "  \"max_flips\": {MAX_FLIPS},");
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"workload\": \"{}\", \"stock\": {:.6}, \"pk\": {:.6}, \"adaptive\": {:.6}, \
             \"ratio_vs_pk\": {:.6}, \"promoted\": {}, \"epochs\": {}, \"converged\": {}, \
             \"max_flips\": {}, \"decisions\": [",
            r.workload,
            r.stock_ops_per_cycle,
            r.pk_ops_per_cycle,
            r.adaptive_ops_per_cycle,
            r.ratio_vs_pk(),
            r.promoted,
            r.epochs,
            r.converged,
            r.max_flips
        );
        for (j, d) in r.decisions.iter().enumerate() {
            let comma = if j + 1 == r.decisions.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "      {{\"epoch\": {}, \"class\": \"{}\", \"fix\": \"{:?}\", \"enabled\": {}, \
                 \"share_bp\": {}}}{comma}",
                d.epoch, d.class, d.fix, d.enabled, d.share_bp
            );
        }
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(out, "    ]}}{comma}");
    }
    out.push_str("  ],\n");
    let _ = writeln!(out, "  \"pass\": {}", fails.is_empty());
    out.push_str("}\n");
    out
}

fn main() {
    let mut seed = 42u64;
    let mut cores = 48usize;
    let mut ops = MEASURE_OPS_PER_CORE;
    let mut json_path = "adaptive_report.json".to_string();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} requires a value"))
        };
        match a.as_str() {
            "--seed" => seed = val("--seed").parse().expect("--seed takes a u64"),
            "--cores" => cores = val("--cores").parse().expect("--cores takes a count"),
            "--ops" => ops = val("--ops").parse().expect("--ops takes a count"),
            "--json" => json_path = val("--json"),
            other => {
                eprintln!(
                    "unknown arg {other}; usage: adaptive_report [--seed N] [--cores N] \
                     [--ops N] [--json PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    pk_bench::header(
        "Adaptive personality acceptance (pk-adapt)",
        &format!(
            "{cores} simulated cores, {ops} ops/core, seed {seed}: \
             roster × {{stock, PK, adaptive}}, adaptive must reach \
             {:.0}% of PK everywhere with ≤{MAX_FLIPS} flips per knob",
            100.0 * PK_FLOOR
        ),
    );

    let rows = run_all(seed, cores, ops);
    let mut fails = failures(&rows);

    println!(
        "{:>10}  {:>12}  {:>12}  {:>12}  {:>8}  {:>8}  {:>7}  {:>5}",
        "workload",
        "stock op/cy",
        "pk op/cy",
        "adapt op/cy",
        "vs PK",
        "promoted",
        "epochs",
        "flips"
    );
    for r in &rows {
        println!(
            "{:>10}  {:>12.6}  {:>12.6}  {:>12.6}  {:>7.1}%  {:>8}  {:>7}  {:>5}",
            r.workload,
            r.stock_ops_per_cycle,
            r.pk_ops_per_cycle,
            r.adaptive_ops_per_cycle,
            100.0 * r.ratio_vs_pk(),
            r.promoted,
            r.epochs,
            r.max_flips
        );
    }
    println!();
    for r in &rows {
        if !r.decisions.is_empty() {
            println!("{} decision log:", r.workload);
            print!("{}", pk_adapt::render_log(&r.decisions));
        }
    }

    // Determinism gate: a second full run at the same seed must render
    // the byte-identical artifact.
    let rerun = run_all(seed, cores, ops);
    let json = report_json(seed, cores, ops, &rows, &fails);
    let json2 = report_json(seed, cores, ops, &rerun, &failures(&rerun));
    if json != json2 {
        fails.push("artifact not byte-identical across reruns at the same seed".to_string());
    }

    // Re-render with the determinism verdict folded into `pass`.
    let json = if fails.is_empty() {
        json
    } else {
        report_json(seed, cores, ops, &rows, &fails)
    };
    std::fs::write(&json_path, &json).expect("write json artifact");
    println!("wrote {json_path}");

    if fails.is_empty() {
        println!(
            "PASS: adaptive ≥ {:.0}% of PK on all {} workloads, ≤{MAX_FLIPS} flips per knob, \
             byte-identical artifact",
            100.0 * PK_FLOOR,
            rows.len()
        );
    } else {
        for f in &fails {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
