//! Ablation: accept-queue organization (section 4.2).
//!
//! Single shared backlog vs per-core backlogs (with stealing), under
//! uniform and skewed flow steering.

use pk_net::{FlowHash, Listener, NetConfig, NetStats};
use pk_percpu::CoreId;
use std::sync::atomic::Ordering;
use std::sync::Arc;

fn run(percore: bool, skew: bool) -> (u64, u64, u64, u64) {
    let mut cfg = if percore {
        NetConfig::pk(8)
    } else {
        NetConfig::stock(8)
    };
    cfg.percore_accept_queues = percore;
    let stats = Arc::new(NetStats::new());
    let l = Listener::new(80, cfg, Arc::clone(&stats));
    // 8000 connections arrive, steered uniformly or 80% onto 2 cores.
    for i in 0..8000u32 {
        let arrive = if skew && i % 5 != 0 {
            (i % 2) as usize
        } else {
            (i % 8) as usize
        };
        let flow = FlowHash {
            src_ip: i,
            src_port: (i % 60000) as u16,
            dst_ip: 1,
            dst_port: 80,
        };
        l.enqueue(flow, CoreId(arrive));
    }
    // All 8 workers drain round-robin.
    let mut local_conns = 0u64;
    loop {
        let mut progress = false;
        for c in 0..8 {
            if let Some(conn) = l.accept(CoreId(c)) {
                progress = true;
                if conn.local {
                    local_conns += 1;
                }
            }
        }
        if !progress {
            break;
        }
    }
    (
        local_conns,
        stats.accept_local_queue.load(Ordering::Relaxed),
        stats.accept_steals.load(Ordering::Relaxed),
        stats.accept_shared_queue.load(Ordering::Relaxed),
    )
}

fn main() {
    pk_bench::header(
        "Ablation: accept queues",
        "8000 connections over 8 cores; shared backlog vs per-core \
         backlogs with steal-on-empty, uniform vs skewed arrival.",
    );
    println!(
        "{:>10} {:>8} {:>12} {:>12} {:>8} {:>8}",
        "queues", "skew", "local conns", "local pops", "steals", "shared"
    );
    for skew in [false, true] {
        for percore in [false, true] {
            let (local, pops, steals, shared) = run(percore, skew);
            println!(
                "{:>10} {:>8} {local:>12} {pops:>12} {steals:>8} {shared:>8}",
                if percore { "per-core" } else { "shared" },
                if skew { "80/2" } else { "uniform" }
            );
        }
    }
    println!(
        "\nPer-core backlogs keep connections on their arrival core; \
         stealing preserves work conservation under skew."
    );
}
