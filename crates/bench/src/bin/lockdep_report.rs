//! Lockdep roster report: every MOSBENCH workload × kernel config run
//! under the pk-lockdep runtime validator.
//!
//! Drives the functional drivers (with per-core work wrapped in
//! [`pk_lockdep::ActingCore`] declarations) and the DES models under
//! seeded lock-holder preemption, then prints the observed lock
//! classes, the lock-order graph, the pk-obs sample export, and every
//! recorded violation. Exits non-zero if any violation was recorded.
//!
//! Usage:
//!   lockdep_report [--seed N] [--cores N]
//!
//! Build with `--features lockdep`; without the feature the hooks are
//! no-ops and the report says so (exit 0), so accidentally running the
//! plain build is loud but not a false failure.

use pk_bench::lockdep::run_roster;
use pk_obs::Registry;

struct Args {
    seed: u64,
    cores: usize,
}

fn parse_args() -> Args {
    let mut args = Args { seed: 42, cores: 4 };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed takes a u64");
            }
            "--cores" => {
                args.cores = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--cores takes a usize");
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: lockdep_report [--seed N] [--cores N]");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    println!("== lockdep roster report ==");
    println!(
        "seed {}  cores {}  validator {}",
        args.seed,
        args.cores,
        if pk_lockdep::enabled() {
            "ENABLED"
        } else {
            "disabled (build with --features lockdep)"
        }
    );
    println!();

    let rows = run_roster(args.seed, args.cores);

    println!(
        "{:<12} {:<7} {:>10} {:>10} {:>13} {:>10}",
        "workload", "config", "func ops", "des flts", "acquisitions", "violations"
    );
    for r in &rows {
        println!(
            "{:<12} {:<7} {:>10} {:>10} {:>13} {:>10}",
            r.workload, r.config, r.functional_ops, r.des_faults, r.acquisitions, r.violations
        );
    }
    println!();

    let classes = pk_lockdep::classes();
    let (anon, named): (Vec<_>, Vec<_>) = classes.iter().partition(|c| c.name.starts_with("anon."));
    println!("lock classes observed: {}", classes.len());
    for c in &named {
        println!("  {:<28} {:<12} {}", c.name, c.krate, c.kind.label());
    }
    if !anon.is_empty() {
        println!("  (plus {} anonymous per-instance classes)", anon.len());
    }
    println!();

    let edges = pk_lockdep::edges();
    println!("lock-order edges observed: {}", edges.len());
    for e in &edges {
        println!(
            "  {:<28} -> {:<28} x{:<6} ({} -> {})",
            e.from, e.to, e.count, e.from_site, e.to_site
        );
    }
    println!();

    // The pk-obs export: the same samples any registry consumer sees.
    let registry = Registry::new(args.cores);
    registry.register_source(pk_lockdep::collector());
    let snapshot = registry.snapshot();
    println!("pk-obs samples:");
    for s in snapshot.iter().filter(|s| s.name.starts_with("lockdep.")) {
        println!("  {s}");
    }
    println!();

    let violations = pk_lockdep::violations();
    if violations.is_empty() {
        println!("RESULT: PASS — no lockdep violations across the roster");
        return;
    }
    println!("RESULT: FAIL — {} violation(s):", violations.len());
    for v in &violations {
        println!("  [{}] {}", v.kind.label(), v.message);
    }
    std::process::exit(1);
}
