//! Regenerates Figure 1: the table of 16 kernel scalability problems,
//! affected applications, and fixes.

use pk_kernel::{FIXES, LINES_ADDED, LINES_REMOVED};

fn main() {
    pk_bench::header(
        "Figure 1",
        "Linux scalability problems encountered by MOSBENCH applications \
         and their corresponding fixes.",
    );
    for fix in FIXES {
        let apps: Vec<String> = fix.apps.iter().map(|a| a.to_string()).collect();
        println!("{}   [{}]", fix.name, apps.join(", "));
        println!("  {}", fix.problem);
        println!("  => {}", fix.solution);
        println!();
    }
    println!(
        "The fixes add {LINES_ADDED} lines of code to Linux and remove \
         {LINES_REMOVED} lines of code from Linux."
    );
}
