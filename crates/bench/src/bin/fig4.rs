//! Regenerates Figure 4: Exim throughput and runtime breakdown.

use pk_workloads::exim;
use pk_workloads::KernelChoice;

fn main() {
    pk_bench::header(
        "Figure 4",
        "Exim throughput (messages/sec/core) and CPU time (usec/message), 1-48 cores.",
    );
    let stock = exim::figure4(KernelChoice::Stock);
    let pk = exim::figure4(KernelChoice::Pk);
    pk_bench::print_throughput(
        "messages/sec/core",
        1.0,
        &[
            ("Stock".to_string(), stock.clone()),
            ("PK".to_string(), pk.clone()),
        ],
    );
    pk_bench::print_cpu_breakdown("PK", "usec/message", 1.0, &pk);
    println!();
    pk_bench::print_ratio("Stock", &stock);
    pk_bench::print_ratio("PK", &pk);
}
