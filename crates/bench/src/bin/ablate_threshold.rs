//! Ablation: sloppy-counter threshold and prefetch sweep.
//!
//! The paper notes spare references are returned to the central counter
//! "if the local count grows above some threshold" but does not publish
//! the value; this sweep shows the trade-off between central-counter
//! traffic (scalability) and banked spares (slop / memory).

use pk_percpu::CoreId;
use pk_sloppy::{SloppyConfig, SloppyCounter};

fn main() {
    pk_bench::header(
        "Ablation: sloppy counter tuning",
        "A churn workload (get/put of 4 refs/iteration on 8 cores, with \
         1-in-8 cross-core releases) under varying threshold/prefetch.",
    );
    println!(
        "{:>9} {:>9} {:>14} {:>14} {:>12}",
        "threshold", "prefetch", "central ops", "local ops", "max spares"
    );
    for threshold in [0, 1, 2, 4, 8, 16, 32, 64] {
        for prefetch in [0, 4] {
            let c = SloppyCounter::with_config(
                8,
                SloppyConfig {
                    threshold,
                    prefetch,
                },
            );
            let mut max_spares = 0;
            for i in 0..10_000u64 {
                let core = CoreId((i % 8) as usize);
                c.acquire(core, 4);
                // Occasionally a reference migrates and is released on a
                // different core (the put-on-another-core pattern).
                let release_core = if i % 8 == 0 {
                    CoreId(((i + 1) % 8) as usize)
                } else {
                    core
                };
                c.release(release_core, 4);
                max_spares = max_spares.max(c.spares());
            }
            let (central, local) = c.op_counts();
            println!("{threshold:>9} {prefetch:>9} {central:>14} {local:>14} {max_spares:>12}");
            assert_eq!(c.reconcile(), 0);
        }
    }
    println!(
        "\nHigher thresholds push work off the shared cache line (fewer \
         central ops) at the cost of more banked spares."
    );
}
