//! Regenerates Figure 8: PostgreSQL 95%/5% read/write workload.

use pk_workloads::postgres::{self, PgVariant};

fn main() {
    pk_bench::header(
        "Figure 8",
        "PostgreSQL read/write workload throughput (queries/sec/core) and \
         runtime breakdown, 1-48 cores. Unmodified PostgreSQL peaks at 28 \
         cores on its own 16-mutex lock manager.",
    );
    let series: Vec<(String, Vec<pk_sim::SweepPoint>)> =
        [PgVariant::Stock, PgVariant::StockModPg, PgVariant::PkModPg]
            .into_iter()
            .map(|v| (v.label().to_string(), postgres::figure(v, false)))
            .collect();
    pk_bench::print_throughput("queries/sec/core", 1.0, &series);
    pk_bench::print_cpu_breakdown("Stock (unmodified PG)", "usec/query", 1.0, &series[0].1);
    println!();
    for (label, sweep) in &series {
        pk_bench::print_ratio(label, sweep);
    }
}
