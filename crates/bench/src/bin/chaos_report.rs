//! Chaos soak report: MOSBENCH workloads × kernel config × fault mix.
//!
//! Runs each functional workload driver fault-free and under the
//! acceptance fault mix (1% page-allocation ENOMEM + 1% NIC receive
//! drop) on one seeded fault plane, then the DES roster under
//! lock-holder preemption and core stalls. Prints throughput
//! degradation, retry counts, and invariant violations; exits non-zero
//! if any run panicked or violated an invariant (with `--strict`, also
//! if a faulted run injected nothing).
//!
//! Usage:
//!   chaos_report [--seed N] [--workloads exim,memcached,apache]
//!                [--cores N] [--strict]
//!
//! The whole report is a pure function of its arguments: re-running
//! with the same seed replays the identical fault trace.

use pk_bench::chaos;
use pk_workloads::KernelChoice;

struct Args {
    seed: u64,
    workloads: Vec<String>,
    cores: usize,
    strict: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 42,
        workloads: vec!["exim".into(), "memcached".into(), "apache".into()],
        cores: 4,
        strict: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed takes a u64");
            }
            "--workloads" => {
                let list = it.next().expect("--workloads takes a comma list");
                args.workloads = list.split(',').map(|s| s.trim().to_string()).collect();
            }
            "--cores" => {
                args.cores = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--cores takes a usize");
            }
            "--strict" => args.strict = true,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: chaos_report [--seed N] [--workloads a,b,c] [--cores N] [--strict]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    pk_bench::header(
        "Chaos soak report",
        "Each workload runs the same offered load fault-free (baseline) \
         and under the acceptance fault mix; failures must degrade \
         throughput visibly, never crash or leak.",
    );
    println!(
        "seed {}  cores {}  mix: {}\n",
        args.seed,
        args.cores,
        chaos::FaultMix::acceptance().label
    );

    let names: Vec<&str> = args.workloads.iter().map(String::as_str).collect();
    let reports = chaos::soak(args.seed, &names, args.cores);
    for name in &names {
        if !reports
            .iter()
            .any(|r| r.workload.eq_ignore_ascii_case(name))
        {
            println!("(no functional driver for {name:?}; covered by the DES sweep below)");
        }
    }

    println!(
        "{:>10} {:>6} {:>10} {:>10} {:>7} {:>8} {:>12} {:>9} {:>9} {:>6}",
        "workload",
        "config",
        "baseline",
        "faulted",
        "degr%",
        "retries",
        "backoff_cyc",
        "checked",
        "injected",
        "ok?"
    );
    let mut failed = false;
    for r in &reports {
        println!(
            "{:>10} {:>6} {:>10} {:>10} {:>6.1}% {:>8} {:>12} {:>9} {:>9} {:>6}",
            r.workload,
            r.config,
            r.baseline_ops,
            r.faulted_ops,
            r.degradation_pct(),
            r.retries,
            r.backoff_cycles,
            r.faults_checked,
            r.faults_injected,
            if r.passed() { "pass" } else { "FAIL" }
        );
        if r.panicked {
            failed = true;
            println!("{:>10}   PANICKED", "");
        }
        for v in &r.violations {
            failed = true;
            println!("{:>10}   violation: {v}", "");
        }
        if args.strict && r.faults_injected == 0 {
            failed = true;
            println!("{:>10}   strict: fault mix never fired", "");
        }
    }

    println!("\nDES chaos (lock-holder preemption + core stalls), PK config:");
    println!(
        "{:>10} {:>16} {:>16} {:>7} {:>9}",
        "workload", "base ops/cyc", "faulted ops/cyc", "degr%", "injected"
    );
    for row in chaos::des_chaos(KernelChoice::Pk, args.cores, args.seed) {
        println!(
            "{:>10} {:>16.6} {:>16.6} {:>6.1}% {:>9}",
            row.workload,
            row.baseline_ops_per_cycle,
            row.faulted_ops_per_cycle,
            row.degradation_pct(),
            row.faults_injected
        );
        if args.strict && row.faults_injected == 0 {
            failed = true;
            println!("{:>10}   strict: no scheduler faults fired", "");
        }
    }

    println!("\nAdaptive-controller chaos (convergence under scheduler faults):");
    println!(
        "{:>10} {:>8} {:>8} {:>7} {:>6} {:>9} {:>16} {:>6}",
        "workload", "clean", "faulted", "epochs", "flips", "injected", "final ops/cyc", "ok?"
    );
    for r in chaos::adaptive_chaos(args.cores, args.seed) {
        println!(
            "{:>10} {:>8} {:>8} {:>7} {:>6} {:>9} {:>16.6} {:>6}",
            r.workload,
            r.clean_promoted,
            r.faulted_promoted,
            r.epochs,
            r.max_flips,
            r.faults_injected,
            r.final_ops_per_cycle,
            if r.passed() { "pass" } else { "FAIL" }
        );
        for v in &r.violations {
            failed = true;
            println!("{:>10}   violation: {v}", "");
        }
    }

    println!("\nOpen-loop overload (2x arrivals, shedding on, 1% net.rx_drop):");
    println!(
        "{:>10} {:>6} {:>9} {:>9} {:>8} {:>8} {:>9} {:>12} {:>9} {:>6}",
        "workload",
        "config",
        "arrivals",
        "completed",
        "rx-drop",
        "shed",
        "cancelled",
        "p999",
        "peak/cap",
        "ok?"
    );
    for choice in [KernelChoice::Stock, KernelChoice::Pk] {
        for r in chaos::overload_chaos(choice, args.cores, args.seed) {
            println!(
                "{:>10} {:>6} {:>9} {:>9} {:>8} {:>8} {:>9} {:>12} {:>6}/{:<2} {:>6}",
                r.workload,
                r.config,
                r.arrivals,
                r.completed,
                r.nic_dropped,
                r.shed,
                r.deadline_cancelled,
                r.p999,
                r.queue_depth_peak,
                r.admission_cap,
                if r.passed() { "pass" } else { "FAIL" }
            );
            for v in &r.violations {
                failed = true;
                println!("{:>10}   violation: {v}", "");
            }
            if args.strict && r.nic_dropped == 0 {
                failed = true;
                println!("{:>10}   strict: rx-drop never fired", "");
            }
        }
    }

    println!("\nExhausted-deadline row (budget spent mid-retry must surface Timeout):");
    {
        let r = chaos::run_exhausted_deadline(args.seed);
        println!(
            "  {} requests: {} timeouts, {} admitted, depth after {} — {}",
            r.requests,
            r.timeouts,
            r.admitted,
            r.depth_after,
            if r.passed() { "pass" } else { "FAIL" }
        );
        for v in &r.violations {
            failed = true;
            println!("    violation: {v}");
        }
    }

    println!("\nRCU deferred-reclamation soak (forced queue spills via rcu.defer_overflow):");
    println!(
        "{:>10} {:>9} {:>8} {:>9} {:>9} {:>8} {:>6}",
        "config", "call_rcu", "freed", "pending", "injected", "spills", "ok?"
    );
    for choice in [KernelChoice::Stock, KernelChoice::Pk] {
        let r = chaos::run_rcu_overflow(choice, args.cores, args.seed);
        println!(
            "{:>10} {:>9} {:>8} {:>9} {:>9} {:>8} {:>6}",
            r.config,
            r.call_rcu,
            r.freed,
            r.pending_after_barrier,
            r.injected,
            r.spills,
            if r.passed() { "pass" } else { "FAIL" }
        );
        for v in &r.violations {
            failed = true;
            println!("{:>10}   violation: {v}", "");
        }
    }

    // When the validator is compiled in, the soak doubles as a lockdep
    // run: faults must not induce ordering or discipline violations.
    if pk_lockdep::enabled() {
        let violations = pk_lockdep::violations();
        println!(
            "\nlockdep (under fault mix): {} acquisitions, {} violations",
            pk_lockdep::acquisition_count(),
            violations.len()
        );
        for v in &violations {
            failed = true;
            println!("  [{}] {}", v.kind.label(), v.message);
        }
    }

    if failed {
        eprintln!("\nchaos soak FAILED (see violations above)");
        std::process::exit(1);
    }
    println!("\nchaos soak passed: degradation was graceful and accounted for.");
}
