//! Regenerates Figure 9: gmake throughput and runtime breakdown.

use pk_workloads::gmake;
use pk_workloads::KernelChoice;

fn main() {
    pk_bench::header(
        "Figure 9",
        "gmake throughput (builds/hour/core) and CPU time (sec/build), \
         1-48 cores. gmake scales well on both kernels (35x at 48 cores).",
    );
    let stock = gmake::figure9(KernelChoice::Stock);
    let pk = gmake::figure9(KernelChoice::Pk);
    // Builds/hour = per-second * 3600.
    pk_bench::print_throughput(
        "builds/hour/core",
        3600.0,
        &[
            ("Stock".to_string(), stock.clone()),
            ("PK".to_string(), pk.clone()),
        ],
    );
    // Seconds/build = usec * 1e-6.
    pk_bench::print_cpu_breakdown("PK", "sec/build", 1e-6, &pk);
    println!();
    let speedup = pk.last().unwrap().total_per_sec / pk[0].total_per_sec;
    println!("PK speedup at 48 cores: {speedup:.1}x");
    pk_bench::print_ratio("Stock", &stock);
    pk_bench::print_ratio("PK", &pk);
}
