//! Regenerates Figure 6: Apache throughput and runtime breakdown.

use pk_workloads::apache;
use pk_workloads::KernelChoice;

fn main() {
    pk_bench::header(
        "Figure 6",
        "Apache throughput (requests/sec/core) and CPU time \
         (usec/request), 1-48 cores. Past 36 cores the card's receive \
         FIFO overflows.",
    );
    let stock = apache::figure6(KernelChoice::Stock);
    let pk = apache::figure6(KernelChoice::Pk);
    pk_bench::print_throughput(
        "requests/sec/core",
        1.0,
        &[
            ("Stock".to_string(), stock.clone()),
            ("PK".to_string(), pk.clone()),
        ],
    );
    pk_bench::print_cpu_breakdown("PK", "usec/request", 1.0, &pk);
    let idle48 = pk.last().unwrap().idle_fraction;
    println!(
        "\nPK server idle time at 48 cores: {:.0}% (paper reports 18%)",
        idle48 * 100.0
    );
    println!();
    pk_bench::print_ratio("Stock", &stock);
    pk_bench::print_ratio("PK", &pk);
}
