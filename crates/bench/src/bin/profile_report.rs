//! profile_report: cycle-attribution tables for all seven MOSBENCH
//! workloads under both kernels, plus the CI gate on the paper's Exim
//! headline (§5.2).
//!
//! For each workload × {stock, PK, adaptive} this traces a 48-core
//! discrete-event run and prints the paper-style "top functions by % of
//! cycles" table (the adaptive column first converges the
//! `pk_adapt::AdaptController` and profiles its promoted config).
//! It then derives the Exim diagnosis — vfsmount-table lock spans must
//! dominate stock exclusive cycles and disappear under PK — and exits
//! non-zero if that inversion is not observed. A functional pass runs
//! the real Exim driver under the global tracer so the lock/syscall/RCU
//! hook plumbing is exercised end to end.
//!
//! Artifacts (paths overridable):
//! * `--json PATH` — deterministic attribution summary
//!   (`profile_report.json`), byte-identical for a fixed `--seed`.
//! * `--perfetto PATH` — Chrome `trace_event` JSON of the stock Exim
//!   run (`exim_stock.trace.json`), loadable in Perfetto / chrome://tracing.

use pk_bench::profile;
use pk_percpu::CoreId;
use pk_sim::MachineSpec;
use pk_workloads::exim::EximDriver;
use pk_workloads::{roster, KernelChoice};

fn main() {
    let mut seed = 42u64;
    let mut cores = 48usize;
    let mut ops = profile::OPS_PER_CORE;
    let mut json_path = "profile_report.json".to_string();
    let mut perfetto_path = "exim_stock.trace.json".to_string();
    let mut machine = MachineSpec::paper();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} requires a value"))
        };
        match a.as_str() {
            "--seed" => seed = val("--seed").parse().expect("--seed takes a u64"),
            "--cores" => cores = val("--cores").parse().expect("--cores takes a count"),
            "--ops" => ops = val("--ops").parse().expect("--ops takes a count"),
            "--json" => json_path = val("--json"),
            "--perfetto" => perfetto_path = val("--perfetto"),
            "--topology" => {
                machine = MachineSpec::parse_topology(&val("--topology")).unwrap_or_else(|e| {
                    eprintln!("profile_report: {e}");
                    std::process::exit(2)
                })
            }
            other => {
                eprintln!(
                    "unknown arg {other}; usage: profile_report [--seed N] [--cores N] \
                     [--ops N] [--json PATH] [--perfetto PATH] [--topology SxC]"
                );
                std::process::exit(2);
            }
        }
    }

    if let Err(e) = machine.validate_cores(cores) {
        eprintln!("profile_report: {e}");
        std::process::exit(2);
    }

    pk_bench::header(
        "Cycle attribution (pk-trace)",
        &format!("{cores} simulated cores, {ops} ops/core, seed {seed}"),
    );

    let mut runs = Vec::new();
    let mut exim = Vec::new();
    let mut exim_stock_events = Vec::new();
    for name in roster::NAMES {
        for choice in [KernelChoice::Stock, KernelChoice::Pk] {
            let (attr, events) = profile::run_traced_on(name, choice, cores, ops, seed, machine)
                .expect("roster name resolves");
            println!("--- {name} / {} ---", attr.config);
            print!("{}", attr.table);
            if attr.dropped_events > 0 {
                println!(
                    "  (! {} events dropped to ring overflow)",
                    attr.dropped_events
                );
            }
            if name == "exim" {
                if choice == KernelChoice::Stock {
                    exim_stock_events = events;
                }
                exim.push(attr.clone());
            }
            runs.push(attr);
        }
        // The adaptive axis: converge the controller, then attribute
        // cycles under whatever config it promoted.
        let build = move |cfg: &pk_kernel::KernelConfig| {
            roster::model_with_config(name, cfg, machine)
                .expect("roster name resolves")
                .network(cores)
        };
        let out = pk_adapt::AdaptController::new(
            pk_kernel::KernelConfig::adaptive(cores),
            pk_adapt::AdaptPolicy::default(),
            seed,
        )
        .converge_des(build, cores);
        let (attr, _) =
            profile::run_traced_config_on(name, &out.config, "adaptive", cores, ops, seed, machine)
                .expect("roster name resolves");
        println!(
            "--- {name} / adaptive ({} promoted in {} epochs) ---",
            out.config.enabled_count(),
            out.epochs
        );
        print!("{}", attr.table);
        runs.push(attr);
    }

    functional_exim_pass();

    let inversion = profile::exim_inversion(&exim[0], &exim[1]);
    println!("\nExim vfsmount attribution at {cores} cores:");
    println!(
        "  stock: {:5.1}% of cycles (top class: {})",
        100.0 * inversion.stock_share,
        inversion.stock_top
    );
    println!("  pk:    {:5.1}% of cycles", 100.0 * inversion.pk_share);

    let json = profile::report_json(seed, cores, &runs, &inversion);
    std::fs::write(&json_path, &json).expect("write json artifact");
    println!("wrote {json_path}");
    let chrome = pk_trace::chrome_trace_json(&exim_stock_events);
    std::fs::write(&perfetto_path, &chrome).expect("write perfetto artifact");
    println!("wrote {perfetto_path} ({} events)", exim_stock_events.len());

    if inversion.observed {
        println!(
            "PASS: stock cycles concentrate in the vfsmount lock and the \
             attribution moves off it under PK"
        );
    } else {
        eprintln!(
            "FAIL: expected vfsmount dominance >= {:.0}% on stock and <= {:.0}% under PK",
            100.0 * profile::STOCK_DOMINANCE,
            100.0 * profile::PK_CEILING
        );
        std::process::exit(1);
    }
}

/// Drives the real Exim substrate under the process-global tracer: the
/// lock, RCU, syscall, and fault hooks all feed the same rings the
/// profiler folds, so this catches plumbing rot the DES path cannot.
fn functional_exim_pass() {
    let tracer = pk_trace::install_global(pk_trace::DEFAULT_RING_CAPACITY);
    let _core = pk_percpu::registry::current_or_register();
    let driver = EximDriver::new(KernelChoice::Stock, 4).expect("exim boots");
    for conn in 0..4 {
        driver
            .run_connection(CoreId(0), conn)
            .expect("fault-free delivery");
    }
    let events = tracer.drain();
    let p = pk_trace::Profile::build(&events);
    println!("--- exim functional driver (driver clock domain) ---");
    print!("{}", p.table(10));
    assert!(
        !events.is_empty(),
        "global tracer hooks recorded nothing — wiring broke"
    );
}
