//! profile_report: cycle-attribution tables for all seven MOSBENCH
//! workloads under the four kernel personalities, plus the CI gates on
//! the paper's Exim headline (§5.2) and the §7 "past 48 cores"
//! generation-2 inversions.
//!
//! For each workload × {stock, coarse, PK, adaptive} this traces a
//! discrete-event run and prints the paper-style "top functions by % of
//! cycles" table (the adaptive column first converges the
//! `pk_adapt::AdaptController` and profiles its promoted config).
//!
//! Gates, selected by core count:
//! * **≤ 48 cores** — the Exim diagnosis: vfsmount-table lock spans
//!   must dominate stock exclusive cycles and disappear under PK.
//! * **> 48 cores** — the generation-2 inversions: for at least two
//!   workloads, the named gen-2 structure (path-walk refs, SNZI-less
//!   refcounts, flow-director table, page freelist) must hold ≥ 40% of
//!   stock cycles and drop to ≤ 5% under PK's new fixes.
//!
//! A functional pass runs the real Exim driver under the global tracer
//! so the lock/syscall/RCU hook plumbing is exercised end to end
//! (skipped when `--workloads` filters Exim out).
//!
//! Artifacts (paths overridable):
//! * `--json PATH` — deterministic attribution summary
//!   (`profile_report.json`), byte-identical for a fixed `--seed`.
//! * `--perfetto PATH` — Chrome `trace_event` JSON of the stock Exim
//!   run (`exim_stock.trace.json`), loadable in Perfetto / chrome://tracing.
//!
//! `--workloads a,b,c` restricts the roster (CI's `scale1024` job runs
//! only the two worst collapsing workloads at `--topology 64x16`).
//! `--ops` defaults to [`profile::OPS_PER_CORE`] at ≤ 48 cores and
//! scales down inversely with the core count above that, keeping the
//! total traced event volume (and the ring memory) roughly constant.

use pk_bench::profile;
use pk_percpu::CoreId;
use pk_sim::MachineSpec;
use pk_workloads::exim::EximDriver;
use pk_workloads::{roster, KernelChoice};

fn main() {
    let mut seed = 42u64;
    let mut cores = 48usize;
    let mut ops_arg: Option<u64> = None;
    let mut json_path = "profile_report.json".to_string();
    let mut perfetto_path = "exim_stock.trace.json".to_string();
    let mut machine = MachineSpec::paper();
    let mut selected: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} requires a value"))
        };
        match a.as_str() {
            "--seed" => seed = val("--seed").parse().expect("--seed takes a u64"),
            "--cores" => cores = val("--cores").parse().expect("--cores takes a count"),
            "--ops" => ops_arg = Some(val("--ops").parse().expect("--ops takes a count")),
            "--json" => json_path = val("--json"),
            "--perfetto" => perfetto_path = val("--perfetto"),
            "--workloads" => {
                for w in val("--workloads").split(',') {
                    let w = w.trim().to_string();
                    if !roster::NAMES.contains(&w.as_str()) {
                        eprintln!(
                            "profile_report: unknown workload {w:?} (roster: {})",
                            roster::NAMES.join(", ")
                        );
                        std::process::exit(2);
                    }
                    selected.push(w);
                }
            }
            "--topology" => {
                machine = MachineSpec::parse_topology(&val("--topology")).unwrap_or_else(|e| {
                    eprintln!("profile_report: {e}");
                    std::process::exit(2)
                })
            }
            other => {
                eprintln!(
                    "unknown arg {other}; usage: profile_report [--seed N] [--cores N] \
                     [--ops N] [--json PATH] [--perfetto PATH] [--topology SxC] \
                     [--workloads a,b,c]"
                );
                std::process::exit(2);
            }
        }
    }

    if let Err(e) = machine.validate_cores(cores) {
        eprintln!("profile_report: {e}");
        std::process::exit(2);
    }
    // Keep total event volume roughly constant as cores grow: 400
    // ops/core at 48 cores ≈ 40 ops/core at 1024 with the same ring
    // memory. An explicit --ops always wins.
    let ops = ops_arg.unwrap_or_else(|| {
        if cores <= 48 {
            profile::OPS_PER_CORE
        } else {
            (profile::OPS_PER_CORE * 48 / cores as u64).max(20)
        }
    });
    // Roster order, filtered — keeps the JSON artifact deterministic
    // regardless of the order given on the command line.
    let names: Vec<&str> = roster::NAMES
        .iter()
        .copied()
        .filter(|n| selected.is_empty() || selected.iter().any(|s| s == n))
        .collect();

    pk_bench::header(
        "Cycle attribution (pk-trace)",
        &format!("{cores} simulated cores, {ops} ops/core, seed {seed}"),
    );

    let mut runs = Vec::new();
    let mut exim_pair: Vec<profile::WorkloadAttribution> = Vec::new();
    let mut gen2_pairs: Vec<(profile::WorkloadAttribution, profile::WorkloadAttribution)> =
        Vec::new();
    let mut exim_stock_events = Vec::new();
    for name in &names {
        let name = *name;
        let mut stock_attr: Option<profile::WorkloadAttribution> = None;
        for choice in [KernelChoice::Stock, KernelChoice::Coarse, KernelChoice::Pk] {
            let (attr, events) = profile::run_traced_on(name, choice, cores, ops, seed, machine)
                .expect("roster name resolves");
            println!("--- {name} / {} ---", attr.config);
            print!("{}", attr.table);
            if attr.dropped_events > 0 {
                println!(
                    "  (! {} events dropped to ring overflow)",
                    attr.dropped_events
                );
            }
            match choice {
                KernelChoice::Stock => {
                    if name == "exim" {
                        exim_stock_events = events;
                        exim_pair.push(attr.clone());
                    }
                    stock_attr = Some(attr.clone());
                }
                KernelChoice::Pk => {
                    if name == "exim" {
                        exim_pair.push(attr.clone());
                    }
                    if let Some(stock) = &stock_attr {
                        gen2_pairs.push((stock.clone(), attr.clone()));
                    }
                }
                KernelChoice::Coarse => {}
            }
            runs.push(attr);
        }
        // The adaptive axis: converge the controller, then attribute
        // cycles under whatever config it promoted.
        let build = move |cfg: &pk_kernel::KernelConfig| {
            roster::model_with_config(name, cfg, machine)
                .expect("roster name resolves")
                .network(cores)
        };
        let out = pk_adapt::AdaptController::new(
            pk_kernel::KernelConfig::adaptive(cores),
            pk_adapt::AdaptPolicy::default(),
            seed,
        )
        .converge_des(build, cores);
        let (attr, _) =
            profile::run_traced_config_on(name, &out.config, "adaptive", cores, ops, seed, machine)
                .expect("roster name resolves");
        println!(
            "--- {name} / adaptive ({} promoted in {} epochs) ---",
            out.config.enabled_count(),
            out.epochs
        );
        print!("{}", attr.table);
        runs.push(attr);
    }

    if names.contains(&"exim") {
        functional_exim_pass();
    }

    let inversion = if exim_pair.len() == 2 {
        let inv = profile::exim_inversion(&exim_pair[0], &exim_pair[1]);
        println!("\nExim vfsmount attribution at {cores} cores:");
        println!(
            "  stock: {:5.1}% of cycles (top class: {})",
            100.0 * inv.stock_share,
            inv.stock_top
        );
        println!("  pk:    {:5.1}% of cycles", 100.0 * inv.pk_share);
        Some(inv)
    } else {
        None
    };

    let gen2: Vec<profile::Gen2Inversion> = gen2_pairs
        .iter()
        .filter_map(|(stock, pk)| profile::gen2_inversion(stock, pk))
        .collect();
    if cores > 48 && !gen2.is_empty() {
        println!("\nGeneration-2 inversions at {cores} cores:");
        for g in &gen2 {
            println!(
                "  {:10} {:28} stock {:5.1}% -> pk {:4.1}%  [{}]",
                g.workload,
                g.structure,
                100.0 * g.stock_share.min(1.0),
                100.0 * g.pk_share,
                if g.observed {
                    "observed"
                } else {
                    "NOT observed"
                }
            );
        }
    }

    let json = profile::report_json(seed, cores, &runs, inversion.as_ref(), &gen2);
    std::fs::write(&json_path, &json).expect("write json artifact");
    println!("wrote {json_path}");
    if !exim_stock_events.is_empty() {
        let chrome = pk_trace::chrome_trace_json(&exim_stock_events);
        std::fs::write(&perfetto_path, &chrome).expect("write perfetto artifact");
        println!("wrote {perfetto_path} ({} events)", exim_stock_events.len());
    }

    // Gate selection: at the paper's scale the Exim headline is the
    // gate; past 48 cores the gen-2 inversions are.
    if cores <= 48 {
        match &inversion {
            Some(inv) if inv.observed => {
                println!(
                    "PASS: stock cycles concentrate in the vfsmount lock and the \
                     attribution moves off it under PK"
                );
            }
            Some(_) => {
                eprintln!(
                    "FAIL: expected vfsmount dominance >= {:.0}% on stock and <= {:.0}% under PK",
                    100.0 * profile::STOCK_DOMINANCE,
                    100.0 * profile::PK_CEILING
                );
                std::process::exit(1);
            }
            None => println!("exim filtered out; vfsmount gate skipped"),
        }
    } else {
        let observed = gen2.iter().filter(|g| g.observed).count();
        let required = gen2.len().min(2);
        if observed >= required && required > 0 {
            println!(
                "PASS: {observed}/{} gen-2 structures dominate stock and vanish under PK",
                gen2.len()
            );
        } else {
            eprintln!(
                "FAIL: {observed}/{} gen-2 inversions observed (need >= {required}): \
                 expected the named structure >= {:.0}% of stock cycles and <= {:.0}% under PK",
                gen2.len(),
                100.0 * profile::STOCK_DOMINANCE,
                100.0 * profile::PK_CEILING
            );
            std::process::exit(1);
        }
    }
}

/// Drives the real Exim substrate under the process-global tracer: the
/// lock, RCU, syscall, and fault hooks all feed the same rings the
/// profiler folds, so this catches plumbing rot the DES path cannot.
fn functional_exim_pass() {
    let tracer = pk_trace::install_global(pk_trace::DEFAULT_RING_CAPACITY);
    let _core = pk_percpu::registry::current_or_register();
    let driver = EximDriver::new(KernelChoice::Stock, 4).expect("exim boots");
    for conn in 0..4 {
        driver
            .run_connection(CoreId(0), conn)
            .expect("fault-free delivery");
    }
    let events = tracer.drain();
    let p = pk_trace::Profile::build(&events);
    println!("--- exim functional driver (driver clock domain) ---");
    print!("{}", p.table(10));
    assert!(
        !events.is_empty(),
        "global tracer hooks recorded nothing — wiring broke"
    );
}
