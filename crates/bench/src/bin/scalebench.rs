//! scalebench: regenerate `BENCH_scale.json` and run live microbenches.
//!
//! Usage:
//!
//! ```text
//! scalebench [--seed N] [--out PATH] [--check PATH] [--no-live]
//! ```
//!
//! * Default: compute the deterministic metric set for `--seed`
//!   (default 42), write it to `--out` (default `BENCH_scale.json`),
//!   then run the live real-thread microbenches and print their
//!   wall-clock results to stdout (never into the JSON — see
//!   `pk_bench::scale` for the determinism split).
//! * `--check PATH`: recompute the metrics and diff them against the
//!   committed baseline at `PATH`; exits 1 on any key drift or a >10%
//!   regression in a cycles metric. Skips the live benches.

use pk_bench::scale;
use pk_percpu::CoreId;
use pk_sync::{rcu, McsLock, SpinLock};
use std::sync::Arc;
use std::time::Instant;

fn usage() -> ! {
    eprintln!("usage: scalebench [--seed N] [--out PATH] [--check PATH] [--no-live]");
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed: u64 = 42;
    let mut out = "BENCH_scale.json".to_string();
    let mut check: Option<String> = None;
    let mut live = true;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => match it.next().map(|s| s.parse()) {
                Some(Ok(s)) => seed = s,
                _ => usage(),
            },
            "--out" => out = it.next().unwrap_or_else(|| usage()).clone(),
            "--check" => check = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--no-live" => live = false,
            _ => usage(),
        }
    }

    // Deterministic half first: the rcu.* counter deltas it reads are
    // process-global and must not race the threaded microbenches.
    let metrics = scale::deterministic_metrics(seed);

    if let Some(baseline_path) = check {
        let baseline = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
            eprintln!("scalebench: cannot read baseline {baseline_path}: {e}");
            std::process::exit(1)
        });
        let report = scale::check_report(&baseline, &metrics);
        if report.passed() {
            println!(
                "scalebench --check: {} metrics match {baseline_path} (seed {seed})",
                metrics.len()
            );
            return;
        }
        eprintln!("scalebench --check FAILED against {baseline_path}:");
        for f in &report.drift {
            eprintln!("  {f}");
        }
        if !report.regressions.is_empty() {
            eprintln!(
                "  top {} regressed metrics (of {}, worst first):",
                report.regressions.len().min(3),
                report.regressions.len()
            );
            for r in report.regressions.iter().take(3) {
                eprintln!(
                    "    {}: baseline {:.3} -> candidate {:.3} ({:+.1}%)",
                    r.key,
                    r.baseline,
                    r.candidate,
                    (r.ratio - 1.0) * 100.0
                );
            }
        }
        std::process::exit(1)
    }

    std::fs::write(&out, metrics.to_json()).unwrap_or_else(|e| {
        eprintln!("scalebench: cannot write {out}: {e}");
        std::process::exit(1)
    });
    println!(
        "scalebench: wrote {} metrics to {out} (seed {seed})",
        metrics.len()
    );
    report_stall_headline(&metrics);

    if live {
        live_microbenches(4);
    }
}

/// Prints the acceptance-criteria headline: dcache writer stall under
/// both reclamation disciplines.
fn report_stall_headline(m: &scale::Metrics) {
    let blocking = m.get("stall.dcache.blocking.modeled_stall_cycles");
    let deferred = m.get("stall.dcache.deferred.modeled_stall_cycles");
    let pct = m.get("stall.dcache.stall_reduction_pct");
    if let (Some(b), Some(d), Some(p)) = (blocking, deferred, pct) {
        println!(
            "dcache writer stall: blocking synchronize {b:.0} cycles vs deferred call_rcu {d:.0} cycles ({p:.1}% reduction)"
        );
    }
}

/// Real threads hammering the repo's primitives. Wall-clock numbers —
/// printed, never persisted.
fn live_microbenches(threads: usize) {
    println!("\nlive microbenches ({threads} threads, ns/op, wall-clock — not in JSON):");
    bench_rcu_read(threads);
    bench_sloppy(threads);
    bench_dcache(threads);
    bench_spin_vs_mcs(threads);
}

/// Runs `per_thread` iterations of `op` on each of `threads` threads
/// and returns mean ns/op across all of them.
fn timed<F: Fn(usize, usize) + Sync>(threads: usize, per_thread: usize, op: F) -> f64 {
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let op = &op;
            s.spawn(move || {
                for i in 0..per_thread {
                    op(t, i);
                }
            });
        }
    });
    start.elapsed().as_nanos() as f64 / (threads * per_thread) as f64
}

fn bench_rcu_read(threads: usize) {
    let n = 1_000_000;
    let ns = timed(threads, n, |_, _| {
        let _g = rcu::read_lock();
    });
    println!("  rcu read-side enter/exit      {ns:>8.1}");
}

fn bench_sloppy(threads: usize) {
    let counter = pk_sloppy::SloppyCounter::new(threads);
    let n = 1_000_000;
    let ns = timed(threads, n, |t, _| {
        counter.acquire(CoreId(t), 1);
        counter.release(CoreId(t), 1);
    });
    println!("  sloppy acquire/release        {ns:>8.1}");
}

fn bench_dcache(threads: usize) {
    use pk_vfs::{Dcache, DentryKey, InodeId, VfsConfig, VfsStats};
    let dc = Dcache::new(256, VfsConfig::pk(threads), Arc::new(VfsStats::new()));
    let keys: Vec<DentryKey> = (0..1024)
        .map(|i| DentryKey::new(InodeId(1), format!("f{i}")))
        .collect();
    for (i, k) in keys.iter().enumerate() {
        dc.insert(k.clone(), InodeId(i as u64 + 2), CoreId(0))
            .expect("no faults armed");
    }
    let n = 200_000;
    let ns = timed(threads, n, |t, i| {
        assert!(dc
            .lookup(&keys[(t * 7 + i) % keys.len()], CoreId(t))
            .is_some());
    });
    println!("  dcache lookup (hit)           {ns:>8.1}");

    let churn = 20_000;
    let ns = timed(threads, churn, |t, i| {
        let key = DentryKey::new(InodeId(99), format!("t{t}i{i}"));
        dc.insert(key.clone(), InodeId(1_000_000 + i as u64), CoreId(t))
            .expect("no faults armed");
        assert!(dc.remove(&key, CoreId(t)));
    });
    println!("  dcache insert+remove          {ns:>8.1}");
    rcu::rcu_barrier();
}

fn bench_spin_vs_mcs(threads: usize) {
    let n = 200_000;
    let spin = SpinLock::new(0u64);
    let ns = timed(threads, n, |_, _| {
        *spin.lock() += 1;
    });
    println!("  spinlock handoff              {ns:>8.1}");

    let mcs = McsLock::new(0u64);
    let ns = timed(threads, n, |_, _| {
        *mcs.lock() += 1;
    });
    println!("  mcs handoff                   {ns:>8.1}");
    assert_eq!(*spin.lock() + *mcs.lock(), 2 * (threads * n) as u64);
}
