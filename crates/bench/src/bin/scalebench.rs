//! scalebench: regenerate `BENCH_scale.json` and run live microbenches.
//!
//! Usage:
//!
//! ```text
//! scalebench [--seed N] [--out PATH] [--check PATH] [--no-live]
//!            [--check-engine PATH] [--no-engine]
//! ```
//!
//! * Default: compute the deterministic metric set for `--seed`
//!   (default 42), write it to `--out` (default `BENCH_scale.json`),
//!   then run the live real-thread microbenches and print their
//!   wall-clock results to stdout (never into the JSON — see
//!   `pk_bench::scale` for the determinism split).
//! * `--check PATH`: recompute the metrics and diff them against the
//!   committed baseline at `PATH`; exits 1 on any key drift or a >10%
//!   regression in a cycles metric. Skips the live benches.
//! * `--check-engine PATH`: time the calendar-queue DES engine over
//!   the 48-core roster and compare events/sec against the committed
//!   floor baseline at `PATH` (`BENCH_engine.json`); exits 1 if the
//!   measured rate regresses more than 20% below the floor. Runs only
//!   the engine timing — no metrics, no microbenches.
//!
//! The default run also prints live engine-throughput rows: the wheel
//! engine vs the `BinaryHeap` reference oracle over the 48-core
//! roster, with the speedup ratio (wall-clock — never in the JSON).

use pk_bench::scale;
use pk_percpu::CoreId;
use pk_sync::{rcu, McsLock, SpinLock};
use std::sync::Arc;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: scalebench [--seed N] [--out PATH] [--check PATH] [--no-live] \
         [--check-engine PATH] [--no-engine]"
    );
    std::process::exit(2)
}

/// Ops/core for the engine-timing rows: enough events (~3.9M over the
/// roster) for a stable rate, small enough that the heap oracle leg
/// stays under a few seconds.
const ENGINE_TIMING_OPS: u64 = 500;

/// A measured rate this far below the committed floor fails the CI
/// smoke (the issue's 20% budget).
const ENGINE_REGRESSION_BUDGET: f64 = 0.20;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed: u64 = 42;
    let mut out = "BENCH_scale.json".to_string();
    let mut check: Option<String> = None;
    let mut check_engine: Option<String> = None;
    let mut live = true;
    let mut engine_rows = true;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => match it.next().map(|s| s.parse()) {
                Some(Ok(s)) => seed = s,
                _ => usage(),
            },
            "--out" => out = it.next().unwrap_or_else(|| usage()).clone(),
            "--check" => check = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--check-engine" => check_engine = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--no-live" => live = false,
            "--no-engine" => engine_rows = false,
            _ => usage(),
        }
    }

    if let Some(baseline_path) = check_engine {
        check_engine_throughput(&baseline_path, seed);
        return;
    }

    // Deterministic half first: the rcu.* counter deltas it reads are
    // process-global and must not race the threaded microbenches.
    let metrics = scale::deterministic_metrics(seed);

    if let Some(baseline_path) = check {
        let baseline = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
            eprintln!("scalebench: cannot read baseline {baseline_path}: {e}");
            std::process::exit(1)
        });
        let report = scale::check_report(&baseline, &metrics);
        if report.passed() {
            println!(
                "scalebench --check: {} metrics match {baseline_path} (seed {seed})",
                metrics.len()
            );
            return;
        }
        eprintln!("scalebench --check FAILED against {baseline_path}:");
        for f in &report.drift {
            eprintln!("  {f}");
        }
        if !report.regressions.is_empty() {
            eprintln!(
                "  top {} regressed metrics (of {}, worst first):",
                report.regressions.len().min(3),
                report.regressions.len()
            );
            for r in report.regressions.iter().take(3) {
                eprintln!(
                    "    {}: baseline {:.3} -> candidate {:.3} ({:+.1}%)",
                    r.key,
                    r.baseline,
                    r.candidate,
                    (r.ratio - 1.0) * 100.0
                );
            }
        }
        std::process::exit(1)
    }

    std::fs::write(&out, metrics.to_json()).unwrap_or_else(|e| {
        eprintln!("scalebench: cannot write {out}: {e}");
        std::process::exit(1)
    });
    println!(
        "scalebench: wrote {} metrics to {out} (seed {seed})",
        metrics.len()
    );
    report_stall_headline(&metrics);

    if engine_rows {
        engine_throughput_rows(seed);
    }

    if live {
        live_microbenches(4);
    }
}

/// Prints the wheel-vs-heap live timing rows over the 48-core roster.
/// Both engines replay the identical seeded schedule, so the event
/// counts match and the ratio is a pure engine speedup.
fn engine_throughput_rows(seed: u64) {
    println!(
        "
DES engine throughput (48-core roster, {ENGINE_TIMING_OPS} ops/core, wall-clock — not in JSON):"
    );
    let wheel = scale::time_roster_engine(scale::Engine::Wheel, ENGINE_TIMING_OPS, seed);
    let heap = scale::time_roster_engine(scale::Engine::ReferenceHeap, ENGINE_TIMING_OPS, seed);
    assert_eq!(
        wheel.events, heap.events,
        "engines must process identical schedules"
    );
    for (e, t) in [
        (scale::Engine::Wheel, &wheel),
        (scale::Engine::ReferenceHeap, &heap),
    ] {
        println!(
            "  {:<26} {:>12.0} events/sec  ({} events in {:.3}s)",
            e.label(),
            t.events_per_sec(),
            t.events,
            t.secs
        );
    }
    println!(
        "  speedup: {:.1}x",
        wheel.events_per_sec() / heap.events_per_sec()
    );
}

/// The CI engine-throughput smoke: measure the wheel engine and fail
/// if it regresses more than 20% below the committed floor. The floor
/// in `BENCH_engine.json` is deliberately conservative (about half a
/// warm local run) so shared-runner noise does not flap the gate while
/// a real structural regression — an accidental O(n) scan or per-event
/// allocation in the hot loop — still trips it.
fn check_engine_throughput(baseline_path: &str, seed: u64) {
    let baseline = std::fs::read_to_string(baseline_path).unwrap_or_else(|e| {
        eprintln!("scalebench: cannot read engine baseline {baseline_path}: {e}");
        std::process::exit(1)
    });
    let floor = scale::Metrics::parse_json(&baseline)
        .ok()
        .and_then(|m| {
            m.get("engine.wheel.events_per_sec.floor")?
                .parse::<f64>()
                .ok()
        })
        .unwrap_or_else(|| {
            eprintln!("scalebench: {baseline_path} lacks engine.wheel.events_per_sec.floor");
            std::process::exit(1)
        });
    let t = scale::time_roster_engine(scale::Engine::Wheel, ENGINE_TIMING_OPS, seed);
    let measured = t.events_per_sec();
    let limit = floor * (1.0 - ENGINE_REGRESSION_BUDGET);
    println!(
        "engine smoke: wheel {measured:.0} events/sec vs committed floor {floor:.0}          (fail below {limit:.0})"
    );
    if measured < limit {
        eprintln!(
            "scalebench --check-engine FAILED: {measured:.0} events/sec is more than              {:.0}% below the committed floor {floor:.0}",
            ENGINE_REGRESSION_BUDGET * 100.0
        );
        std::process::exit(1);
    }
}

/// Prints the acceptance-criteria headline: dcache writer stall under
/// both reclamation disciplines.
fn report_stall_headline(m: &scale::Metrics) {
    let blocking = m.get("stall.dcache.blocking.modeled_stall_cycles");
    let deferred = m.get("stall.dcache.deferred.modeled_stall_cycles");
    let pct = m.get("stall.dcache.stall_reduction_pct");
    if let (Some(b), Some(d), Some(p)) = (blocking, deferred, pct) {
        println!(
            "dcache writer stall: blocking synchronize {b:.0} cycles vs deferred call_rcu {d:.0} cycles ({p:.1}% reduction)"
        );
    }
}

/// Real threads hammering the repo's primitives. Wall-clock numbers —
/// printed, never persisted.
fn live_microbenches(threads: usize) {
    println!("\nlive microbenches ({threads} threads, ns/op, wall-clock — not in JSON):");
    bench_rcu_read(threads);
    bench_sloppy(threads);
    bench_dcache(threads);
    bench_spin_vs_mcs(threads);
}

/// Runs `per_thread` iterations of `op` on each of `threads` threads
/// and returns mean ns/op across all of them.
fn timed<F: Fn(usize, usize) + Sync>(threads: usize, per_thread: usize, op: F) -> f64 {
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let op = &op;
            s.spawn(move || {
                for i in 0..per_thread {
                    op(t, i);
                }
            });
        }
    });
    start.elapsed().as_nanos() as f64 / (threads * per_thread) as f64
}

fn bench_rcu_read(threads: usize) {
    let n = 1_000_000;
    let ns = timed(threads, n, |_, _| {
        let _g = rcu::read_lock();
    });
    println!("  rcu read-side enter/exit      {ns:>8.1}");
}

fn bench_sloppy(threads: usize) {
    let counter = pk_sloppy::SloppyCounter::new(threads);
    let n = 1_000_000;
    let ns = timed(threads, n, |t, _| {
        counter.acquire(CoreId(t), 1);
        counter.release(CoreId(t), 1);
    });
    println!("  sloppy acquire/release        {ns:>8.1}");
}

fn bench_dcache(threads: usize) {
    use pk_vfs::{Dcache, DentryKey, InodeId, VfsConfig, VfsStats};
    let dc = Dcache::new(256, VfsConfig::pk(threads), Arc::new(VfsStats::new()));
    let keys: Vec<DentryKey> = (0..1024)
        .map(|i| DentryKey::new(InodeId(1), format!("f{i}")))
        .collect();
    for (i, k) in keys.iter().enumerate() {
        dc.insert(k.clone(), InodeId(i as u64 + 2), CoreId(0))
            .expect("no faults armed");
    }
    let n = 200_000;
    let ns = timed(threads, n, |t, i| {
        assert!(dc
            .lookup(&keys[(t * 7 + i) % keys.len()], CoreId(t))
            .is_some());
    });
    println!("  dcache lookup (hit)           {ns:>8.1}");

    let churn = 20_000;
    let ns = timed(threads, churn, |t, i| {
        let key = DentryKey::new(InodeId(99), format!("t{t}i{i}"));
        dc.insert(key.clone(), InodeId(1_000_000 + i as u64), CoreId(t))
            .expect("no faults armed");
        assert!(dc.remove(&key, CoreId(t)));
    });
    println!("  dcache insert+remove          {ns:>8.1}");
    rcu::rcu_barrier();
}

fn bench_spin_vs_mcs(threads: usize) {
    let n = 200_000;
    let spin = SpinLock::new(0u64);
    let ns = timed(threads, n, |_, _| {
        *spin.lock() += 1;
    });
    println!("  spinlock handoff              {ns:>8.1}");

    let mcs = McsLock::new(0u64);
    let ns = timed(threads, n, |_, _| {
        *mcs.lock() += 1;
    });
    println!("  mcs handoff                   {ns:>8.1}");
    assert_eq!(*spin.lock() + *mcs.lock(), 2 * (threads * n) as u64);
}
