//! General-purpose sweep CLI: run any MOSBENCH model at any core counts.
//!
//! Usage:
//!
//! ```text
//! sweep <app> [--kernel stock|pk] [--cores N[,N,...]] [--rw]
//!
//! apps: exim, memcached, apache, postgres, gmake, pedsort-threads,
//!       pedsort-procs, pedsort-rr, metis-4k, metis-2m
//! ```
//!
//! Examples:
//!
//! ```text
//! sweep exim --kernel stock --cores 1,12,24,48
//! sweep postgres --rw --kernel pk
//! ```

use pk_sim::{CoreSweep, WorkloadModel};
use pk_workloads::{apache, exim, gmake, memcached, metis, pedsort, postgres, KernelChoice};

fn model(app: &str, choice: KernelChoice, rw: bool) -> Option<Box<dyn WorkloadModel>> {
    let m: Box<dyn WorkloadModel> = match app {
        "exim" => Box::new(exim::EximModel::new(choice)),
        "memcached" => Box::new(memcached::MemcachedModel::new(choice)),
        "apache" => Box::new(apache::ApacheModel::new(choice)),
        "postgres" => {
            let variant = match choice {
                KernelChoice::Stock | KernelChoice::Coarse => postgres::PgVariant::StockModPg,
                KernelChoice::Pk => postgres::PgVariant::PkModPg,
            };
            Box::new(postgres::PostgresModel::new(variant, !rw))
        }
        "gmake" => Box::new(gmake::GmakeModel::new(choice)),
        "pedsort-threads" => Box::new(pedsort::PedsortModel::new(pedsort::PedsortVariant::Threads)),
        "pedsort-procs" => Box::new(pedsort::PedsortModel::new(pedsort::PedsortVariant::Procs)),
        "pedsort-rr" => Box::new(pedsort::PedsortModel::new(
            pedsort::PedsortVariant::ProcsRoundRobin,
        )),
        "metis-4k" => Box::new(metis::MetisModel::new(metis::MetisVariant::StockSmallPages)),
        "metis-2m" => Box::new(metis::MetisModel::new(metis::MetisVariant::PkSuperPages)),
        _ => return None,
    };
    Some(if choice == KernelChoice::Coarse {
        Box::new(pk_sim::Coarsened(m))
    } else {
        m
    })
}

fn usage() -> ! {
    eprintln!(
        "usage: sweep <app> [--kernel stock|coarse|pk] [--cores N[,N,...]] [--rw]\n\
         apps: exim, memcached, apache, postgres, gmake, pedsort-threads,\n\
         \u{20}      pedsort-procs, pedsort-rr, metis-4k, metis-2m"
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut app = None;
    let mut choice = KernelChoice::Pk;
    let mut cores: Option<Vec<usize>> = None;
    let mut rw = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--kernel" => match it.next().map(String::as_str) {
                Some("stock") => choice = KernelChoice::Stock,
                Some("coarse") => choice = KernelChoice::Coarse,
                Some("pk") => choice = KernelChoice::Pk,
                _ => usage(),
            },
            "--cores" => {
                let spec = it.next().unwrap_or_else(|| usage());
                cores = Some(
                    spec.split(',')
                        .map(|s| s.parse().unwrap_or_else(|_| usage()))
                        .collect(),
                );
            }
            "--rw" => rw = true,
            "--help" | "-h" => usage(),
            a if app.is_none() && !a.starts_with('-') => app = Some(a.to_string()),
            _ => usage(),
        }
    }
    let Some(app) = app else { usage() };
    let Some(m) = model(&app, choice, rw) else {
        eprintln!("unknown app: {app}");
        usage()
    };
    let counts = cores.unwrap_or_else(CoreSweep::paper_core_counts);
    println!("{}", m.name());
    println!(
        "{:>6} {:>16} {:>16} {:>12} {:>12} {:>6}",
        "cores", "total/s", "per-core/s", "user µs", "sys µs", "cap?"
    );
    for n in counts {
        let p = CoreSweep::point(m.as_ref(), n);
        println!(
            "{:>6} {:>16.1} {:>16.1} {:>12.2} {:>12.2} {:>6}",
            p.cores,
            p.total_per_sec,
            p.per_core_per_sec,
            p.user_usec,
            p.system_usec,
            if p.hw_capped { "HW" } else { "" }
        );
    }
}
