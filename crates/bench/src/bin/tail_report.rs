//! Tail-attribution report: where the p999 goes, per request.
//!
//! Runs `SERVING × {stock, coarse, pk, adaptive}` at 48 cores through
//! the request-flow engine with causal tracing on, folds each capture
//! into per-request span trees, and prints the tail quantiles
//! decomposed over `latency = queue + service + Σ class waits +
//! slack`. Exits non-zero if any of the three derived claims fails:
//! the per-request p999 inversion, stock Exim's wait pool
//! concentrating behind the vfsmount class, or PK's attribution
//! staying flat.
//!
//! Usage:
//!   tail_report [--seed N] [--json PATH] [--openmetrics PATH]
//!               [--perfetto DIR] [--lockdep-live]
//!
//! `--perfetto DIR` writes Perfetto-loadable traces of the exim
//! stock/pk cells; `--lockdep-live` appends the functional-Exim
//! overload row (meaningful under `--features lockdep`). Every
//! artifact is a pure function of the seed.

use pk_bench::tail::{self, Personality};

struct Args {
    seed: u64,
    json: Option<String>,
    openmetrics: Option<String>,
    perfetto: Option<String>,
    lockdep_live: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 42,
        json: None,
        openmetrics: None,
        perfetto: None,
        lockdep_live: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed takes a u64");
            }
            "--json" => {
                args.json = Some(it.next().expect("--json takes a path"));
            }
            "--openmetrics" => {
                args.openmetrics = Some(it.next().expect("--openmetrics takes a path"));
            }
            "--perfetto" => {
                args.perfetto = Some(it.next().expect("--perfetto takes a directory"));
            }
            "--lockdep-live" => {
                args.lockdep_live = true;
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: tail_report [--seed N] [--json PATH] [--openmetrics PATH] \
                     [--perfetto DIR] [--lockdep-live]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    pk_bench::header(
        "Where the p999 goes",
        "Per-request causal traces folded into span trees; tail quantiles \
         decomposed over latency = queue + service + class waits + slack. \
         Arrivals anchored to PK saturation capacity for every personality.",
    );
    println!(
        "seed {}  cores {}  requests/cell {}  load {}%  exemplars/cell {}\n",
        args.seed,
        tail::TAIL_CORES,
        tail::TAIL_REQUESTS,
        tail::TAIL_LOAD_PCT,
        tail::EXEMPLARS_PER_CELL
    );

    let grid = tail::run_grid(args.seed);
    print!("{}", tail::table(&grid));

    println!("\nExim p999 decomposition, all personalities:");
    print!("{}", tail::class_table(&grid, "exim"));

    // Ring health: every cell already hard-failed on overflow; print
    // the margin so a shrinking one is visible before it bites.
    let worst = grid
        .cells
        .iter()
        .map(|c| c.dropped_by_track.iter().sum::<u64>())
        .max()
        .unwrap_or(0);
    println!(
        "\ntrace rings: 0 events dropped across {} cells (sizing rule \
         flow_ring_capacity; worst cell dropped {worst})",
        grid.cells.len()
    );

    let asserts = tail::assess(&grid);
    println!("\nDerived claims:");
    for v in &asserts.verdicts {
        println!(
            "  {:>10}: stock p999 {} vs PK p999 {} — {}",
            v.workload,
            v.stock_p999,
            v.pk_p999,
            if v.inverted {
                "inverted"
            } else {
                "NOT inverted"
            }
        );
    }
    println!(
        "  stock exim {} share of p999 waits: {:.1}% (floor {:.0}%)",
        tail::MOUNT_CLASS,
        asserts.stock_exim_mount_share * 100.0,
        tail::STOCK_MOUNT_SHARE_FLOOR * 100.0
    );
    println!(
        "  pk exim widest class: {} at {} bp of tail latency (ceiling {} bp)",
        if asserts.pk_exim_max_class.is_empty() {
            "-"
        } else {
            &asserts.pk_exim_max_class
        },
        asserts.pk_exim_max_class_bp,
        tail::PK_CLASS_BP_CEILING
    );

    if let Some(path) = &args.json {
        std::fs::write(path, tail::report_json(&grid, &asserts)).expect("write json artifact");
        println!("wrote {path}");
    }
    if let Some(path) = &args.openmetrics {
        std::fs::write(path, tail::metrics(&grid).render()).expect("write openmetrics artifact");
        println!("wrote {path}");
    }
    if let Some(dir) = &args.perfetto {
        std::fs::create_dir_all(dir).expect("create perfetto dir");
        for p in [Personality::Stock, Personality::Pk] {
            let (_, events) = tail::run_cell("exim", p, args.seed);
            let path = format!("{dir}/tail-exim-{}.json", p.label());
            std::fs::write(&path, pk_trace::chrome_trace_json(&events))
                .expect("write perfetto trace");
            println!("wrote {path}");
        }
    }

    let mut failed = !asserts.ok();
    if args.lockdep_live {
        let row = tail::run_lockdep_live(args.seed);
        println!(
            "\nlockdep-live: {} connections on {} cores, {} delivered, \
             {} acquisitions observed, {} violations, {} ctx leaks",
            row.connections,
            row.cores,
            row.delivered,
            row.acquisitions,
            row.violations,
            row.ctx_leaks
        );
        if row.violations != 0 || row.ctx_leaks != 0 {
            eprintln!("lockdep-live row FAILED");
            failed = true;
        }
    }

    if failed {
        eprintln!("\ntail report FAILED: an attribution claim did not reproduce");
        std::process::exit(1);
    }
    println!("\ntail report passed: the p999 is named, not just measured.");
}
