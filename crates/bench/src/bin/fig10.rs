//! Regenerates Figure 10: pedsort throughput and runtime breakdown.

use pk_workloads::pedsort::{self, PedsortVariant};

fn main() {
    pk_bench::header(
        "Figure 10",
        "pedsort throughput (jobs/hour/core) and CPU time (sec/job), \
         1-48 cores: threads vs processes vs round-robin placement.",
    );
    let series: Vec<(String, Vec<pk_sim::SweepPoint>)> = [
        PedsortVariant::Threads,
        PedsortVariant::Procs,
        PedsortVariant::ProcsRoundRobin,
    ]
    .into_iter()
    .map(|v| (v.label().to_string(), pedsort::figure10(v)))
    .collect();
    pk_bench::print_throughput("jobs/hour/core", 3600.0, &series);
    pk_bench::print_cpu_breakdown("Stock + Procs RR", "sec/job", 1e-6, &series[2].1);
    pk_bench::print_cpu_breakdown("Stock + Threads", "sec/job", 1e-6, &series[0].1);
    println!();
    for (label, sweep) in &series {
        pk_bench::print_ratio(label, sweep);
    }
}
