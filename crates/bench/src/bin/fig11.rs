//! Regenerates Figure 11: Metis throughput and runtime breakdown.

use pk_workloads::metis::{self, MetisVariant};

fn main() {
    pk_bench::header(
        "Figure 11",
        "Metis throughput (jobs/hour/core) and CPU time (sec/job), \
         1-48 cores: 4 KB pages vs 2 MB super-pages. With super-pages the \
         reduce phase runs into DRAM bandwidth (50.0 of 51.5 GB/s).",
    );
    let series: Vec<(String, Vec<pk_sim::SweepPoint>)> =
        [MetisVariant::StockSmallPages, MetisVariant::PkSuperPages]
            .into_iter()
            .map(|v| (v.label().to_string(), metis::figure11(v)))
            .collect();
    pk_bench::print_throughput("jobs/hour/core", 3600.0, &series);
    pk_bench::print_cpu_breakdown("Stock + 4KB pages", "sec/job", 1e-6, &series[0].1);
    pk_bench::print_cpu_breakdown("PK + 2MB pages", "sec/job", 1e-6, &series[1].1);
    println!();
    for (label, sweep) in &series {
        pk_bench::print_ratio(label, sweep);
    }
}
