//! Ablation: one fix at a time, and leave-one-out.
//!
//! The paper applies all 16 fixes together; this harness asks which ones
//! actually carry each application: (a) enable a single fix on top of
//! stock, (b) remove a single fix from PK, and report the Figure-3
//! scalability ratio each configuration achieves at 48 cores.

use pk_kernel::{KernelConfig, FIXES};
use pk_sim::{CoreSweep, WorkloadModel};
use pk_workloads::{apache::ApacheModel, exim::EximModel, memcached::MemcachedModel};

fn ratio(model: &dyn WorkloadModel) -> f64 {
    CoreSweep::figure3_ratio(model, 48)
}

fn sweep_app(name: &str, make: &dyn Fn(KernelConfig) -> Box<dyn WorkloadModel>) {
    let stock = ratio(make(KernelConfig::stock(48)).as_ref());
    let pk = ratio(make(KernelConfig::pk(48)).as_ref());
    println!("\n{name}: stock={stock:.3}  PK={pk:.3}");
    println!("{:<46} {:>12} {:>14}", "fix", "stock + fix", "PK - fix");
    for fix in FIXES {
        let plus = ratio(make(KernelConfig::stock(48).with_fix(fix.id, true)).as_ref());
        let minus = ratio(make(KernelConfig::pk(48).with_fix(fix.id, false)).as_ref());
        // Only print fixes that move this application at all.
        if (plus - stock).abs() > 1e-6 || (minus - pk).abs() > 1e-6 {
            println!("{:<46} {:>12.3} {:>14.3}", fix.name, plus, minus);
        }
    }
}

fn main() {
    pk_bench::header(
        "Ablation: per-fix contribution",
        "Figure-3 ratio (per-core throughput at 48 cores relative to 1) \
         when each fix is enabled alone (stock + fix) or removed from PK \
         (PK - fix). Rows that don't affect the application are omitted.",
    );
    sweep_app("Exim", &|c| Box::new(EximModel::with_config(c)));
    sweep_app("memcached", &|c| Box::new(MemcachedModel::with_config(c)));
    sweep_app("Apache", &|c| Box::new(ApacheModel::with_config(c)));
    println!(
        "\nEach application has one make-or-break fix (Exim: the vfsmount \
         table; memcached/Apache: their dominant shared line) — removing \
         it from PK collapses the application again, while the smaller \
         fixes only trim the residual. The full set is needed because \
         every application bottlenecks on a different line."
    );
}
