//! Regenerates Figure 2: the sloppy-counter operation trace — a thread
//! on core 0 acquires a reference from the central counter, releases it
//! locally, and a second thread on core 0 reacquires the spare without
//! touching the central counter.

use pk_percpu::CoreId;
use pk_sloppy::SloppyCounter;

fn state(c: &SloppyCounter, step: &str) {
    println!(
        "{step:<55} central={} spares={} in-use={} (central ops so far: {})",
        c.central(),
        c.spares(),
        c.in_use(),
        c.op_counts().0
    );
}

fn main() {
    pk_bench::header(
        "Figure 2",
        "The kernel using a sloppy counter for dentry reference counting.",
    );
    let c = SloppyCounter::new(2);
    state(&c, "initial");
    c.acquire(CoreId(0), 1);
    state(&c, "core 0 acquires a reference from the central counter");
    c.release(CoreId(0), 1);
    state(
        &c,
        "core 0 releases it as a local spare (central untouched)",
    );
    c.acquire(CoreId(0), 1);
    state(
        &c,
        "another thread on core 0 takes the spare (central untouched)",
    );
    c.release(CoreId(0), 1);
    state(&c, "released again: still banked locally");
    let exact = c.reconcile();
    state(&c, "reconcile (the expensive dealloc-time operation)");
    println!("\nexact value after reconcile: {exact}");
    assert_eq!(
        c.op_counts().0,
        2,
        "exactly one central acquire + reconcile"
    );
}
