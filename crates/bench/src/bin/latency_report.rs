//! Tail-latency report: the serving roster as open-loop servers.
//!
//! Sweeps {stock, PK} × {no-shed, shed} × {normal, 2× overload} at a
//! fixed seed and prints per-run latency tables plus the two derived
//! claims: the stock-vs-PK p999 inversion at a capacity-anchored
//! arrival rate, and shedding bounding p999 (while holding goodput)
//! under 2× overload where the unbounded queue diverges. Exits
//! non-zero if either claim fails to reproduce.
//!
//! Usage:
//!   latency_report [--seed N] [--json PATH]
//!
//! The report — and the `--json` artifact — is a pure function of the
//! seed: same seed, byte-identical output.

use pk_bench::latency;

struct Args {
    seed: u64,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 42,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed takes a u64");
            }
            "--json" => {
                args.json = Some(it.next().expect("--json takes a path"));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: latency_report [--seed N] [--json PATH]");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    pk_bench::header(
        "Tail latency under overload",
        "Open-loop arrivals anchored to PK saturation capacity; latency \
         in simulated cycles from arrival to completion. The SLO is 8x \
         the PK kernel's mean request time, shared by every variant.",
    );
    println!(
        "seed {}  cores {}  requests/run {}  loads {{{}%, {}%}}\n",
        args.seed,
        latency::CORES,
        latency::REQUESTS,
        latency::NORMAL_LOAD_PCT,
        latency::OVERLOAD_PCT
    );

    let grid = latency::run_grid(args.seed);
    print!("{}", latency::table(&grid));
    let asserts = latency::assess(&grid);

    println!("\nDerived claims:");
    for v in &asserts.verdicts {
        println!(
            "  {:>10}: stock p999 {} vs PK p999 {} at {}% load — {}",
            v.workload,
            v.stock_p999,
            v.pk_p999,
            latency::NORMAL_LOAD_PCT,
            if v.inverted {
                "inverted"
            } else {
                "NOT inverted"
            }
        );
        println!(
            "  {:>10}  shed@{}%: p999 {} (bound {}), goodput {:.1}% of capacity; \
             unbounded queue ends at {} (floor {}) — {}",
            "",
            latency::OVERLOAD_PCT,
            v.shed_p999,
            v.shed_p999_bound,
            100.0 * v.shed_goodput,
            v.noshed_queue_end,
            v.divergence_floor,
            if v.shed_holds { "bounded" } else { "UNBOUNDED" }
        );
    }
    println!(
        "\ninversion: {}/{} workloads (need {});  shedding bounds the tail: {}",
        asserts.inversions,
        asserts.verdicts.len(),
        latency::INVERSION_MIN_WORKLOADS,
        asserts.shedding_bounds_tail
    );

    println!("\nTrace ring health (flow engine, rings sized by flow_ring_capacity):");
    let mut ring_overflow = false;
    for h in latency::trace_ring_health(args.seed) {
        println!(
            "  {:>10}: {} events captured, {} dropped — {}",
            h.workload,
            h.events,
            h.dropped_total,
            if h.dropped_total == 0 {
                "ok"
            } else {
                "OVERFLOW"
            }
        );
        if h.dropped_total > 0 {
            ring_overflow = true;
            eprintln!(
                "warning: {} trace rings overflowed, per-track drops {:?}; \
                 span trees folded from this capture would be incomplete",
                h.workload, h.dropped_by_track
            );
        }
    }

    if let Some(path) = &args.json {
        let artifact = latency::report_json(&grid, &asserts);
        std::fs::write(path, artifact).expect("write json artifact");
        println!("wrote {path}");
    }

    if !asserts.ok() || ring_overflow {
        eprintln!("\nlatency report FAILED: an overload claim did not reproduce");
        std::process::exit(1);
    }
    println!("\nlatency report passed: tails inverted and shedding held the SLO.");
}
